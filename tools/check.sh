#!/usr/bin/env bash
# Sanitizer gate: configure a dedicated ASan+UBSan build tree, build
# everything, and run the full test suite under the sanitizers.
#
#   tools/check.sh [build-dir]          (default: build-asan)
#
# Extra ctest arguments can be passed via CTEST_ARGS, e.g.
#   CTEST_ARGS="-R Store" tools/check.sh
# TARGETS bounds the build to the named test targets (space-separated);
# pair it with a CTEST_ARGS filter so the unbuilt targets' placeholder
# tests are not selected.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-${repo}/build-asan}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "${build}" -S "${repo}" -DASAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
if [[ -n "${TARGETS:-}" ]]; then
  # shellcheck disable=SC2086
  cmake --build "${build}" -j "${jobs}" --target ${TARGETS}
else
  cmake --build "${build}" -j "${jobs}"
fi

# abort_on_error makes ASan failures fail the test instead of just logging.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "${build}" --output-on-failure -j "${jobs}" ${CTEST_ARGS:-}
echo "check.sh: all tests passed under ASan/UBSan"
