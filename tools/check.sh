#!/usr/bin/env bash
# Sanitizer gate: configure a dedicated ASan+UBSan build tree, build
# everything, and run the full test suite under the sanitizers. A full
# (unbounded) run finishes with a Release (-O2) perf smoke: the data-plane
# micro-benchmark must still clear its CRC speedup gate at optimized
# codegen, so a dispatch or kernel regression fails CI, not just a chart.
#
#   tools/check.sh [build-dir]          (default: build-asan)
#
# Extra ctest arguments can be passed via CTEST_ARGS, e.g.
#   CTEST_ARGS="-R Store" tools/check.sh
# TARGETS bounds the build to the named test targets (space-separated);
# pair it with a CTEST_ARGS filter so the unbuilt targets' placeholder
# tests are not selected. Setting TARGETS also skips the perf smoke —
# the in-tree asan_gate ctest test always sets it, which keeps the gate
# from recursing into another full build.
#
# COVERAGE=1 switches the build from sanitizers to gcov instrumentation
# (default build dir: build-cov) and prints a line-coverage summary after
# the test run — via gcovr when available, else aggregated from gcov
# directly. Informational only: no threshold is enforced yet.
#
# TSAN=1 switches from ASan/UBSan to ThreadSanitizer (default build dir:
# build-tsan) and, unless TARGETS/CTEST_ARGS narrow it, bounds the run to
# the concurrency-heavy suites: the I/O scheduler (svc), the tiered-store
# drain/restore races, the pipelined streamer, the recorder, and the
# recovery supervisor. The perf smoke is skipped — TSan throughput is
# meaningless.
#
# CHAOS=1 appends a recovery chaos campaign after the test run: the
# availability bench's --chaos mode replays CHAOS_SCHEDULES (default 32)
# seeded failure schedules under the sanitizers and fails unless every
# run recovers to the failure-free fingerprint with full failure-kind
# coverage. Fixed seeds (CHAOS_SEED, default 1) keep the gate
# reproducible.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
coverage="${COVERAGE:-}"
tsan="${TSAN:-}"
if [[ -n "${coverage}" ]]; then
  build="${1:-${repo}/build-cov}"
elif [[ -n "${tsan}" ]]; then
  build="${1:-${repo}/build-tsan}"
else
  build="${1:-${repo}/build-asan}"
fi
jobs="$(nproc 2>/dev/null || echo 4)"

if [[ -n "${tsan}" ]]; then
  # TSan mode defaults to the scheduler/drain race suites; an explicit
  # TARGETS/CTEST_ARGS pair overrides the bound.
  if [[ -z "${TARGETS:-}" && -z "${CTEST_ARGS:-}" ]]; then
    TARGETS="test_svc test_store test_streamer test_obs test_recovery test_partial_recovery test_redundancy test_delta"
    CTEST_ARGS="-R Svc|IoScheduler|TieredBackend|Streamer|Obs|Recovery|Redundan|Delta|Partial|StreamRuns"
  fi
fi

if [[ -n "${coverage}" ]]; then
  cmake -B "${build}" -S "${repo}" -DCOVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
elif [[ -n "${tsan}" ]]; then
  cmake -B "${build}" -S "${repo}" -DTSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
else
  cmake -B "${build}" -S "${repo}" -DASAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
if [[ -n "${TARGETS:-}" ]]; then
  # shellcheck disable=SC2086
  cmake --build "${build}" -j "${jobs}" --target ${TARGETS}
else
  cmake --build "${build}" -j "${jobs}"
fi

# abort_on_error makes sanitizer failures fail the test instead of just
# logging.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-abort_on_error=1:halt_on_error=1}"

ctest --test-dir "${build}" --output-on-failure -j "${jobs}" ${CTEST_ARGS:-}
if [[ -n "${coverage}" ]]; then
  echo "check.sh: all tests passed (coverage build)"
elif [[ -n "${tsan}" ]]; then
  echo "check.sh: all tests passed under TSan"
else
  echo "check.sh: all tests passed under ASan/UBSan"
fi

# Coverage summary. Prefer gcovr's report; without it, run gcov over the
# src/ object files and aggregate its per-file "Lines executed" output.
if [[ -n "${coverage}" ]]; then
  echo "---- line coverage (src/) ----"
  if command -v gcovr >/dev/null 2>&1; then
    gcovr --root "${repo}" --filter "${repo}/src/" "${build}" || true
  else
    find "${build}/src" -name '*.gcda' -print0 |
      xargs -0 -r gcov -n 2>/dev/null |
      awk '/^File .*\/src\//    { f=$2; keep=1; next }
           /^File/              { keep=0; next }
           keep && /^Lines executed:/ {
             split($0, a, ":"); split(a[2], b, "% of ");
             covered += b[1] / 100.0 * b[2]; total += b[2]; keep=0;
             printf "  %6.2f%% of %5d  %s\n", b[1], b[2], f;
           }
           END {
             if (total > 0)
               printf "TOTAL %.2f%% of %d lines\n", covered * 100.0 / total, total;
             else
               print "no coverage data found";
           }'
  fi
  exit 0
fi

# Chaos campaign (opt-in): replay the seeded failure schedules under the
# sanitizers. The bench exits non-zero if any schedule fails to recover
# bit-exactly or the campaign misses a failure kind, so a supervisor race
# or a verify regression fails the gate here.
if [[ -n "${CHAOS:-}" ]]; then
  cmake --build "${build}" -j "${jobs}" --target bench_availability_model
  (cd "${build}/bench" &&
   ./bench_availability_model --chaos "${CHAOS_SCHEDULES:-32}" "${CHAOS_SEED:-1}")
  echo "check.sh: recovery chaos campaign passed (${CHAOS_SCHEDULES:-32} schedules)"
fi

# Perf smoke (skipped for TARGETS-bounded runs, e.g. the asan_gate test):
# sanitizer instrumentation distorts throughput, so benchmark in a plain
# Release tree. bench_data_plane exits non-zero if the dispatched CRC-32C
# kernel is not at least 4x the bytewise baseline; bench_contention exits
# non-zero if the sharded I/O scheduler fails its 2x multi-tenant
# throughput gate or restores regress behind queued drains; bench_delta
# exits non-zero unless delta generations cut bytes written by >= 30%
# (and checkpoint time measurably) with a bit-exact chain restore
# (virtual-time model, so sanitizer/host speed cannot skew it).
if [[ -z "${TARGETS:-}" && -z "${tsan}" ]]; then
  perf_build="${build}-perf"
  cmake -B "${perf_build}" -S "${repo}" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
  cmake --build "${perf_build}" -j "${jobs}" --target bench_data_plane bench_contention bench_delta
  (cd "${perf_build}/bench" && ./bench_data_plane --quick)
  (cd "${perf_build}/bench" && ./bench_contention --quick)
  (cd "${perf_build}/bench" && ./bench_delta --quick)
  echo "check.sh: data-plane + contention + delta perf smokes passed (Release -O2)"
fi
