// drms_tool — operator command line for checkpoint stores that have been
// exported to a host directory (piofs::Volume::export_to_directory): the
// workflow behind the paper's checkpoint-migration story.
//
//   drms_tool list   <dir>                 inventory of checkpointed states
//   drms_tool verify [--deep] <dir> [prefix]
//                                          offline integrity check. Default:
//                                          structural (manifest, sizes,
//                                          headers). --deep: read every byte
//                                          back against the stored CRCs
//                                          (segment sized-CRC record, meta
//                                          manifest CRC, array stream CRCs)
//   drms_tool remove <dir> <prefix>        delete one state and re-export
//   drms_tool info   <dir> <prefix>        per-array detail of one state
//                                          (verifies the stored CRCs)
//   drms_tool info --restart-plan <slot> <dir> <prefix>
//                                          per-array stream runs a partial
//                                          restart would read to replace
//                                          the given lost slot (canonical
//                                          block distribution over the
//                                          checkpoint's task count), vs
//                                          the full-restore byte count
//   drms_tool export <dir> <prefix> <dst>  copy one verified state to a
//                                          fresh directory (migration)
//   drms_tool fsck   <dir> [prefix]        report committed vs torn states
//                                          (a torn state crashed before its
//                                          commit manifest was published)
//   drms_tool gc     [--dry-run] <dir> [prefix]
//                                          reclaim torn states' files and
//                                          re-export the directory.
//                                          --dry-run: report what would be
//                                          reclaimed (torn states, stray
//                                          files, and committed generations
//                                          superseded by a newer one of the
//                                          same app) without deleting
//   drms_tool trace  <dir> <prefix>        run a traced integrity pass over
//                                          one state and emit the Chrome
//                                          trace_event JSON on stdout
//   drms_tool stats  <dir> [prefix]        same pass, but print the flat
//                                          counter/latency table instead
//
// Exit code 0 on success; 2 on bad usage (unknown subcommand or missing
// arguments); 1 on a missing state or a failed CRC verification — info
// and export refuse to bless a corrupt state — or, for fsck, when any
// torn state is found.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/checkpoint_catalog.hpp"
#include "core/dist_spec.hpp"
#include "core/partial_restore.hpp"
#include "obs/instrumented_backend.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "piofs/volume.hpp"
#include "store/piofs_backend.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;

int usage() {
  std::cerr
      << "usage: drms_tool <command> <directory> [args]\n"
         "  list   <dir>                 list checkpointed states\n"
         "  verify [--deep] <dir> [prefix]\n"
         "                               verify integrity (all or one);\n"
         "                               --deep reads every byte back "
         "against\n"
         "                               the stored CRCs\n"
         "  remove <dir> <prefix>        delete a state, rewrite the dir\n"
         "  info   <dir> <prefix>        show per-array details (verifies "
         "CRCs)\n"
         "  info --restart-plan <slot> <dir> <prefix>\n"
         "                               stream runs a partial restart "
         "reads\n"
         "                               to replace the lost slot vs the "
         "full-\n"
         "                               restore bytes\n"
         "  export <dir> <prefix> <dst>  copy one verified state to <dst>\n"
         "  fsck   <dir> [prefix]        report committed vs torn states\n"
         "  gc     [--dry-run] <dir> [prefix]\n"
         "                               reclaim torn states' files;\n"
         "                               --dry-run reports reclaimable "
         "torn/\n"
         "                               superseded states without "
         "deleting\n"
         "  trace  <dir> <prefix>        traced integrity pass -> Chrome "
         "trace JSON\n"
         "  stats  <dir> [prefix]        traced integrity pass -> stats "
         "table\n";
  return 2;
}

/// The tool's working store: a host directory imported into a volume,
/// accessed through the storage-backend interface like every other
/// consumer of checkpoint data.
struct ToolStore {
  piofs::Volume volume;
  store::PiofsBackend backend;

  explicit ToolStore(const std::string& dir) : volume(16), backend(volume) {
    volume.import_from_directory(dir, "");
  }
};

/// Run the offline verifier on one state and print any problems.
/// Returns true when every stored CRC and size checks out.
bool verify_and_report(const ToolStore& st, const core::CheckpointRecord& r) {
  const auto result = core::verify_checkpoint(st.backend, r);
  for (const auto& problem : result.problems) {
    std::cerr << "    " << problem << "\n";
  }
  return result.ok;
}

int cmd_list(const std::string& dir) {
  const ToolStore st(dir);
  const auto records = core::list_checkpoints(st.backend);
  if (records.empty()) {
    std::cout << "no checkpointed states in " << dir << "\n";
    return 0;
  }
  support::TextTable table(
      {"prefix", "app", "mode", "tasks", "sop", "arrays", "size"});
  for (const auto& r : records) {
    table.add_row({r.prefix, r.meta.app_name, r.spmd ? "SPMD" : "DRMS",
                   std::to_string(r.meta.task_count),
                   std::to_string(r.meta.sop),
                   std::to_string(r.meta.arrays.size()),
                   support::format_bytes(r.state_bytes)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_verify(const std::string& dir, const std::string& prefix, bool deep) {
  const ToolStore st(dir);
  const auto records = core::list_checkpoints(st.backend, prefix);
  if (records.empty()) {
    std::cerr << "no states" << (prefix.empty() ? "" : " under " + prefix)
              << " in " << dir << "\n";
    return 1;
  }
  bool all_ok = true;
  for (const auto& r : records) {
    const auto result = core::verify_checkpoint(st.backend, r, deep);
    std::cout << r.prefix << ": "
              << (result.ok ? "OK" : "CORRUPT") << "\n";
    for (const auto& problem : result.problems) {
      std::cout << "    " << problem << "\n";
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

int cmd_remove(const std::string& dir, const std::string& prefix) {
  ToolStore st(dir);
  bool removed = false;
  for (const auto& r : core::list_checkpoints(st.backend, prefix)) {
    if (r.prefix == prefix) {
      core::remove_checkpoint(st.backend, r);
      removed = true;
    }
  }
  if (!removed) {
    std::cerr << "no state with prefix '" << prefix << "'\n";
    return 1;
  }
  // Rewrite the directory to reflect the volume.
  std::filesystem::remove_all(dir);
  st.volume.export_to_directory("", dir);
  std::cout << "removed " << prefix << "\n";
  return 0;
}

int cmd_info(const std::string& dir, const std::string& prefix) {
  const ToolStore st(dir);
  for (const auto& r : core::list_checkpoints(st.backend, prefix)) {
    if (r.prefix != prefix) {
      continue;
    }
    const bool delta = r.meta.kind == core::GenerationKind::kDelta;
    std::cout << "prefix:  " << r.prefix << "\n"
              << "app:     " << r.meta.app_name << "\n"
              << "mode:    " << (r.spmd ? "SPMD" : "DRMS") << "\n"
              << "kind:    " << core::to_string(r.meta.kind) << "\n";
    if (delta) {
      std::cout << "base:    " << r.meta.base_prefix << "\n"
                << "chain:   depth " << r.meta.chain_depth << " (block "
                << support::format_bytes(r.meta.delta_block_bytes) << ")\n";
    }
    std::cout << "tasks:   " << r.meta.task_count << "\n"
              << "sop:     " << r.meta.sop << "\n"
              << "segment: " << support::format_bytes(r.meta.segment_bytes)
              << "\n";
    if (!r.meta.arrays.empty() && delta) {
      std::uint64_t raw_total = 0;
      std::uint64_t stored_total = 0;
      support::TextTable table(
          {"array", "index space", "blocks", "raw", "stored", "ratio"});
      for (const auto& a : r.meta.arrays) {
        raw_total += a.raw_bytes;
        stored_total += a.stored_bytes;
        table.add_row(
            {a.name, a.box().to_string(),
             std::to_string(a.dirty_blocks) + "/" +
                 std::to_string(a.total_blocks),
             support::format_bytes(a.raw_bytes),
             support::format_bytes(a.stored_bytes),
             a.stored_bytes == 0
                 ? "-"
                 : support::format_fixed(
                       static_cast<double>(a.raw_bytes) /
                           static_cast<double>(a.stored_bytes),
                       2) + ":1"});
      }
      table.print(std::cout);
      std::cout << "compression: "
                << support::format_bytes(raw_total) << " raw -> "
                << support::format_bytes(stored_total) << " stored";
      if (stored_total > 0) {
        std::cout << " ("
                  << support::format_fixed(static_cast<double>(raw_total) /
                                               static_cast<double>(
                                                   stored_total),
                                           2)
                  << ":1)";
      }
      std::cout << "\n";
    } else if (!r.meta.arrays.empty()) {
      support::TextTable table({"array", "index space", "bytes", "crc"});
      for (const auto& a : r.meta.arrays) {
        table.add_row({a.name, a.box().to_string(),
                       support::format_bytes(a.stream_bytes),
                       support::format_fixed(a.stream_crc, 0)});
      }
      table.print(std::cout);
    }
    // The displayed CRCs are only trustworthy if the file contents still
    // match them.
    const bool ok = verify_and_report(st, r);
    std::cout << "integrity: " << (ok ? "OK" : "CORRUPT") << "\n";
    return ok ? 0 : 1;
  }
  std::cerr << "no state with prefix '" << prefix << "'\n";
  return 1;
}

/// What a partial restart would read to replace one lost slot: the
/// slot's assigned sections under the canonical block distribution over
/// the checkpoint's own task count, decomposed into stream-contiguous
/// byte runs of each array file. The point of the report is the ratio —
/// a replacement slot reads ~1/t1 of the state, not all of it.
int cmd_restart_plan(const std::string& dir, const std::string& prefix,
                     int lost_slot) {
  const ToolStore st(dir);
  for (const auto& r : core::list_checkpoints(st.backend, prefix)) {
    if (r.prefix != prefix) {
      continue;
    }
    if (r.spmd) {
      std::cerr << prefix
                << ": SPMD states restore whole per-task files — no "
                   "partial plan\n";
      return 1;
    }
    if (lost_slot < 0 || lost_slot >= r.meta.task_count) {
      std::cerr << "lost slot " << lost_slot << " out of range (t1 = "
                << r.meta.task_count << ")\n";
      return 2;
    }
    std::cout << "restart plan: " << prefix << ", lost slot " << lost_slot
              << " of " << r.meta.task_count
              << " (canonical block distribution)\n";
    if (r.meta.kind == core::GenerationKind::kDelta) {
      std::cout << "delta generation (chain depth " << r.meta.chain_depth
                << "): run offsets address the reconstructed stream — the "
                   "chain base's ranges are read, then the chain's blocks "
                   "touching them are replayed\n";
    }
    std::uint64_t partial_total = 0;
    std::uint64_t full_total = 0;
    support::TextTable table({"array", "section", "runs", "partial",
                              "full stream", "first byte ranges"});
    for (const auto& a : r.meta.arrays) {
      const core::Slice box = a.box();
      const core::DistSpec spec = core::DistSpec::block_auto(
          box, r.meta.task_count,
          std::vector<core::Index>(static_cast<std::size_t>(box.rank()), 0));
      const core::Slice section = spec.assigned(lost_slot);
      const auto runs = core::stream_runs(box, section, a.elem_size);
      std::uint64_t bytes = 0;
      std::string ranges;
      for (std::size_t i = 0; i < runs.size(); ++i) {
        bytes += runs[i].bytes;
        if (i < 3) {
          ranges += (i > 0 ? " " : "") + std::string("[") +
                    std::to_string(runs[i].byte_offset) + "," +
                    std::to_string(runs[i].byte_offset + runs[i].bytes) +
                    ")";
        } else if (i == 3) {
          ranges += " ...";
        }
      }
      const std::uint64_t full_bytes =
          static_cast<std::uint64_t>(box.element_count()) * a.elem_size;
      partial_total += bytes;
      full_total += full_bytes;
      table.add_row({a.name, section.to_string(),
                     std::to_string(runs.size()),
                     support::format_bytes(bytes),
                     support::format_bytes(full_bytes), ranges});
    }
    table.print(std::cout);
    std::cout << "total: " << support::format_bytes(partial_total) << " of "
              << support::format_bytes(full_total);
    if (full_total > 0) {
      std::cout << " ("
                << support::format_fixed(100.0 *
                                             static_cast<double>(
                                                 partial_total) /
                                             static_cast<double>(full_total),
                                         1)
                << "%)";
    }
    std::cout << "; plus the replicated segment ("
              << support::format_bytes(r.meta.segment_bytes)
              << ") every restart reads\n";
    return 0;
  }
  std::cerr << "no state with prefix '" << prefix << "'\n";
  return 1;
}

int cmd_export(const std::string& dir, const std::string& prefix,
               const std::string& dst) {
  const ToolStore st(dir);
  for (const auto& r : core::list_checkpoints(st.backend, prefix)) {
    if (r.prefix != prefix) {
      continue;
    }
    // Never migrate a state that fails its own fingerprints.
    if (!verify_and_report(st, r)) {
      std::cerr << prefix << ": CORRUPT — not exported\n";
      return 1;
    }
    st.volume.export_to_directory(prefix, dst);
    std::cout << "exported " << prefix << " to " << dst << "\n";
    return 0;
  }
  std::cerr << "no state with prefix '" << prefix << "'\n";
  return 1;
}

int cmd_fsck(const std::string& dir, const std::string& prefix) {
  const ToolStore st(dir);
  const auto states = core::fsck_scan(st.backend, prefix);
  if (states.empty()) {
    std::cout << "no checkpointed states"
              << (prefix.empty() ? "" : " under " + prefix) << " in " << dir
              << "\n";
    return 0;
  }
  support::TextTable table(
      {"prefix", "mode", "status", "fragments", "reclaimable"});
  int torn = 0;
  for (const auto& s : states) {
    int sets_ok = 0;
    for (const auto& fs : s.fragment_sets) {
      if (fs.recoverable) {
        ++sets_ok;
      }
    }
    const std::string frag_cell =
        s.fragment_sets.empty()
            ? "-"
            : std::to_string(sets_ok) + "/" +
                  std::to_string(s.fragment_sets.size()) + " sets";
    table.add_row({s.prefix, s.spmd ? "SPMD" : "DRMS",
                   s.committed   ? "committed"
                   : s.encoded_only ? "encoded"
                                    : "TORN",
                   frag_cell, support::format_bytes(s.reclaimable_bytes)});
    // An encoded-only state is healthy while every fragment set is
    // scavengeable; a set beyond tolerance is as fatal as a torn state.
    if ((!s.committed && !s.encoded_only) ||
        sets_ok != static_cast<int>(s.fragment_sets.size())) {
      ++torn;
    }
  }
  table.print(std::cout);
  for (const auto& s : states) {
    for (const auto& p : s.problems) {
      std::cout << "  " << s.prefix << ": " << p << "\n";
    }
    for (const auto& fs : s.fragment_sets) {
      std::cout << "  " << s.prefix << ": " << fs.base << ": "
                << fs.present << "/" << fs.expected << " fragments"
                << (fs.recoverable ? "" : " (BEYOND TOLERANCE)") << "\n";
    }
  }
  std::cout << torn << " torn state" << (torn == 1 ? "" : "s") << "\n";
  return torn == 0 ? 0 : 1;
}

/// Shared engine of `trace` and `stats`: run the offline verifier over
/// the selected states with an InstrumentedBackend between the catalog
/// code and the store, so every read lands in the recorder. Returns the
/// number of states visited, or -1 when any failed verification.
int traced_verify(ToolStore& st, obs::Recorder& recorder,
                  const std::string& prefix) {
  obs::InstrumentedBackend instrumented(st.backend, &recorder, "piofs");
  const auto records = core::list_checkpoints(instrumented, prefix);
  bool all_ok = true;
  for (const auto& r : records) {
    const auto result = core::verify_checkpoint(instrumented, r);
    for (const auto& problem : result.problems) {
      std::cerr << r.prefix << ": " << problem << "\n";
      all_ok = false;
    }
  }
  return all_ok ? static_cast<int>(records.size()) : -1;
}

int cmd_trace(const std::string& dir, const std::string& prefix) {
  ToolStore st(dir);
  obs::Recorder recorder;
  const int states = traced_verify(st, recorder, prefix);
  if (states == 0) {
    std::cerr << "no state with prefix '" << prefix << "'\n";
    return 1;
  }
  obs::write_chrome_trace(std::cout, recorder);
  return states < 0 ? 1 : 0;
}

int cmd_stats(const std::string& dir, const std::string& prefix) {
  ToolStore st(dir);
  obs::Recorder recorder;
  const int states = traced_verify(st, recorder, prefix);
  if (states == 0) {
    std::cout << "no checkpointed states"
              << (prefix.empty() ? "" : " under " + prefix) << " in " << dir
              << "\n";
    return 0;
  }
  obs::write_stats_table(std::cout, recorder);
  return states < 0 ? 1 : 0;
}

/// `gc --dry-run`: the same scans gc and retention run, reporting only.
/// Torn states and strays are what `gc` itself would reclaim; committed
/// generations superseded by a newer committed generation of the same
/// application are what retention (keep-newest) could retire.
int cmd_gc_dry_run(const ToolStore& st, const std::string& prefix) {
  support::TextTable table({"prefix", "status", "files", "reclaimable"});
  int torn_files = 0;
  std::uint64_t torn_bytes = 0;
  for (const auto& s : core::fsck_scan(st.backend, prefix)) {
    if (s.reclaimable.empty()) {
      continue;
    }
    table.add_row({s.prefix, s.committed ? "committed (strays)" : "TORN",
                   std::to_string(s.reclaimable.size()),
                   support::format_bytes(s.reclaimable_bytes)});
    torn_files += static_cast<int>(s.reclaimable.size());
    torn_bytes += s.reclaimable_bytes;
  }
  // Superseded committed generations: restart_candidates is SOP
  // descending per application, so every committed record past the
  // newest one has a newer fallback above it.
  int superseded = 0;
  std::uint64_t superseded_bytes = 0;
  std::vector<std::string> apps;
  for (const auto& r : core::list_checkpoints(st.backend, prefix)) {
    if (std::find(apps.begin(), apps.end(), r.meta.app_name) == apps.end()) {
      apps.push_back(r.meta.app_name);
    }
  }
  for (const auto& app : apps) {
    const auto candidates = core::restart_candidates(st.backend, app, prefix);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      table.add_row({candidates[i].prefix, "superseded", "-",
                     support::format_bytes(candidates[i].state_bytes)});
      ++superseded;
      superseded_bytes += candidates[i].state_bytes;
    }
  }
  if (torn_files > 0 || superseded > 0) {
    table.print(std::cout);
  }
  std::cout << "gc would reclaim " << torn_files << " file"
            << (torn_files == 1 ? "" : "s") << " ("
            << support::format_bytes(torn_bytes) << "); " << superseded
            << " superseded state" << (superseded == 1 ? "" : "s") << " ("
            << support::format_bytes(superseded_bytes)
            << ") eligible for retention; nothing deleted\n";
  return 0;
}

int cmd_gc(const std::string& dir, const std::string& prefix, bool dry_run) {
  ToolStore st(dir);
  if (dry_run) {
    return cmd_gc_dry_run(st, prefix);
  }
  const int removed = core::gc_torn_states(st.backend, prefix);
  if (removed > 0) {
    std::filesystem::remove_all(dir);
    st.volume.export_to_directory("", dir);
  }
  std::cout << "reclaimed " << removed << " file" << (removed == 1 ? "" : "s")
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  // `verify` takes an optional --deep flag before the directory, `gc` an
  // optional --dry-run, `info` an optional --restart-plan <slot>.
  bool deep = false;
  bool dry_run = false;
  bool restart_plan = false;
  int lost_slot = -1;
  int arg = 2;
  if (command == "verify" && std::string(argv[arg]) == "--deep") {
    deep = true;
    ++arg;
    if (argc <= arg) {
      return usage();
    }
  }
  if (command == "info" && std::string(argv[arg]) == "--restart-plan") {
    restart_plan = true;
    ++arg;
    if (argc <= arg + 2) {  // need <slot> <dir> <prefix>
      return usage();
    }
    try {
      lost_slot = std::stoi(argv[arg]);
    } catch (const std::exception&) {
      return usage();
    }
    ++arg;
  }
  if (command == "gc" && std::string(argv[arg]) == "--dry-run") {
    dry_run = true;
    ++arg;
    if (argc <= arg) {
      return usage();
    }
  }
  const std::string dir = argv[arg];
  try {
    if (command == "list") {
      return cmd_list(dir);
    }
    if (command == "verify") {
      return cmd_verify(dir, argc > arg + 1 ? argv[arg + 1] : "", deep);
    }
    if (command == "remove" && argc > 3) {
      return cmd_remove(dir, argv[3]);
    }
    if (command == "info" && restart_plan) {
      return cmd_restart_plan(dir, argv[arg + 1], lost_slot);
    }
    if (command == "info" && argc > 3) {
      return cmd_info(dir, argv[3]);
    }
    if (command == "export" && argc > 4) {
      return cmd_export(dir, argv[3], argv[4]);
    }
    if (command == "fsck") {
      return cmd_fsck(dir, argc > 3 ? argv[3] : "");
    }
    if (command == "gc") {
      return cmd_gc(dir, argc > arg + 1 ? argv[arg + 1] : "", dry_run);
    }
    if (command == "trace" && argc > 3) {
      return cmd_trace(dir, argv[3]);
    }
    if (command == "stats") {
      return cmd_stats(dir, argc > 3 ? argv[3] : "");
    }
  } catch (const drms::support::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
