// Scalable recovery from a processor failure — the full §4 story, driven
// end-to-end by the RecoverySupervisor:
//
//   An 8-node DRMS cluster runs the SP-like solver on all 8 processors.
//   At a randomly chosen SOP a node fails: the RC loses the TC
//   connection, kills the application's whole TC pool, informs the user,
//   and restarts the healthy TCs. The supervisor then selects the newest
//   committed generation, deep-verifies it, reconfigures the job onto the
//   7 surviving processors (t2 != t1 — no spare nodes, no waiting for
//   repair), and resumes. The run completes with exactly the field an
//   uninterrupted run produces.
//
// Build & run:  ./examples/fault_recovery [seed]
#include <cstdlib>
#include <iostream>

#include "apps/solver.hpp"
#include "piofs/volume.hpp"
#include "recovery/supervisor.hpp"
#include "store/piofs_backend.hpp"
#include "support/rng.hpp"

using namespace drms;

namespace {

apps::SolverOptions solver_options() {
  apps::SolverOptions options;
  options.spec = apps::AppSpec::sp();
  options.n = 16;
  options.iterations = 12;
  options.checkpoint_every = 3;
  options.prefix = "job.sp";
  return options;
}

/// Reference field fingerprint from an uninterrupted run (the solver's
/// numerics are distribution-invariant: one baseline covers any t2).
std::uint32_t reference_crc() {
  piofs::Volume volume(16);
  store::PiofsBackend storage(volume);
  apps::SolverOptions options = solver_options();
  options.prefix.clear();
  core::DrmsEnv env;
  env.storage = &storage;
  auto program = apps::make_program(options, env, 8);
  std::uint32_t crc = 0;
  rt::TaskGroup group(
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), 8));
  group.run([&](rt::TaskContext& ctx) {
    const auto out = apps::run_solver(*program, ctx, options);
    if (ctx.rank() == 0) {
      crc = out.field_crc;
    }
  });
  return crc;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::cout << "DRMS fault recovery demo (8-node cluster, seed " << seed
            << ")\n\n";
  const std::uint32_t reference = reference_crc();

  // An 8-node machine with NO spare processors: the job prefers all 8, so
  // the node failure forces a reconfigured restart on 7.
  sim::Machine machine;
  machine.node_count = 8;
  machine.server_count = 8;
  arch::EventLog log;
  arch::Cluster cluster(machine, &log);
  piofs::Volume volume(8);
  store::PiofsBackend storage(volume);

  recovery::SupervisorOptions options;
  options.solver = solver_options();
  options.env.storage = &storage;
  options.job_name = "SP";
  options.min_tasks = 2;
  options.preferred_tasks = 8;
  options.seed = seed;

  // Break a random node at a random SOP: the generator below lands the
  // failure on a checkpoint boundary so the restart resumes mid-run.
  support::Rng rng(seed);
  const int sops = (options.solver.iterations - 1) /
                   options.solver.checkpoint_every;
  recovery::FailureEvent failure;
  failure.kind = recovery::FailureKind::kNodeLoss;
  failure.at_iteration = options.solver.checkpoint_every *
                         static_cast<std::int64_t>(rng.uniform_int(1, sops));
  failure.node_ordinal = static_cast<int>(rng.uniform_int(0, 7));
  recovery::FailureSchedule schedule;
  schedule.events.push_back(failure);
  std::cout << ">>> schedule: " << schedule.describe() << "\n\n";

  recovery::RecoverySupervisor supervisor(cluster, &log);
  const recovery::RecoveryReport report = supervisor.run(options, schedule);

  std::cout << "RC/supervisor event trace:\n";
  for (const auto& line : log.formatted()) {
    std::cout << "  " << line << "\n";
  }

  std::cout << "\nlaunches: " << report.launches.size() << "\n";
  for (std::size_t i = 0; i < report.launches.size(); ++i) {
    const auto& l = report.launches[i];
    std::cout << "  launch " << i + 1 << ": " << l.tasks << " tasks, "
              << (l.from_checkpoint ? "from " + l.restart_prefix : "fresh")
              << ", "
              << (l.completed ? "completed" : "killed: " + l.kill_reason)
              << "\n";
  }
  for (const auto& r : report.recoveries) {
    std::cout << "recovery MTTR: detect " << r.detect_ns / 1000
              << "us, select " << r.select_ns / 1000 << "us, verify "
              << r.verify_ns / 1000 << "us, reconfigure "
              << r.reconfigure_ns / 1000 << "us, resume "
              << r.resume_ns / 1000 << "us\n";
  }
  std::cout << "available processors now: " << cluster.available_processors()
            << " (failed node still awaiting repair)\n";

  const bool reconfigured = report.reconfigurations > 0;
  const bool match = report.completed &&
                     report.outcome.field_crc == reference;
  std::cout << "\nresumed at it=" << report.outcome.start_iteration
            << " on t2=" << report.launches.back().tasks << " (t1="
            << report.launches.front().tasks << "), field "
            << (match ? "matches the uninterrupted run bit-for-bit.\n"
                      : "MISMATCH!\n");
  return match && reconfigured ? 0 : 1;
}
