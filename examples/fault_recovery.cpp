// Scalable recovery from a processor failure — the full §4 story:
//
//   A 16-node DRMS cluster runs the SP-like solver on 8 processors. Mid
//   run (after a checkpoint) a node fails: the RC loses the TC connection,
//   kills the application's whole TC pool, informs the user, and restarts
//   the healthy TCs. The JSA then restarts the application from its latest
//   checkpoint on the processors still available — WITHOUT waiting for the
//   failed node's repair — and the run completes with exactly the field an
//   uninterrupted run produces.
//
// Build & run:  ./examples/fault_recovery
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>

#include "apps/solver.hpp"
#include "arch/uic.hpp"
#include "piofs/volume.hpp"
#include "store/piofs_backend.hpp"

using namespace drms;

int main() {
  std::cout << "DRMS fault recovery demo (16-node cluster)\n\n";

  arch::EventLog log;
  arch::Cluster cluster(sim::Machine::paper_sp16(), &log);
  arch::JobScheduler jsa(cluster, &log);
  piofs::Volume volume(16);
  store::PiofsBackend storage(volume);
  arch::Uic uic(cluster, jsa, storage, log);

  // Reference field from an uninterrupted run.
  std::uint32_t reference_crc = 0;
  {
    piofs::Volume ref_volume(16);
    store::PiofsBackend ref_storage(ref_volume);
    apps::SolverOptions options;
    options.spec = apps::AppSpec::sp();
    options.n = 16;
    options.iterations = 12;
    options.checkpoint_every = 5;
    options.prefix = "ref";
    core::DrmsEnv env;
    env.storage = &ref_storage;
    auto program = apps::make_program(options, env, 8);
    rt::TaskGroup group(sim::Placement::one_per_node(
        sim::Machine::paper_sp16(), 8));
    group.run([&](rt::TaskContext& ctx) {
      const auto out = apps::run_solver(*program, ctx, options);
      if (ctx.rank() == 0) {
        reference_crc = out.field_crc;
      }
    });
  }

  // The job: SP on preferably 8 processors, checkpointing every 5
  // iterations. After the it=5 checkpoint the solver blocks (simulating a
  // long computation) so the failure lands deterministically mid-run.
  std::atomic<bool> injected{false};
  std::atomic<bool> ready_for_failure{false};
  auto outcome_slot = std::make_shared<apps::SolverOutcome>();

  apps::SolverOptions options;
  options.spec = apps::AppSpec::sp();
  options.n = 16;
  options.iterations = 12;
  options.checkpoint_every = 5;
  options.prefix = "job.sp";
  options.on_iteration = [&](std::int64_t it, rt::TaskContext& ctx) {
    if (!injected.load() && it >= 6) {
      if (ctx.rank() == 0) {
        ready_for_failure.store(true);
      }
      for (;;) {  // wait for the injected kill
        ctx.check_killed();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };

  arch::JobDescriptor job;
  job.name = "SP";
  job.min_tasks = 2;
  job.preferred_tasks = 8;
  job.checkpoint_prefix = options.prefix;
  job.base_env.storage = &storage;
  job.make_program = [options](core::DrmsEnv env, int tasks) {
    return apps::make_program(options, env, tasks);
  };
  job.body = [options, outcome_slot](core::DrmsProgram& program,
                                     rt::TaskContext& ctx) {
    const auto out = apps::run_solver(program, ctx, options);
    if (ctx.rank() == 0) {
      *outcome_slot = out;
    }
  };

  // Administrator thread: break node 3 once the job is in flight.
  std::thread chaos([&] {
    while (!ready_for_failure.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::cout << ">>> injecting failure on node 3\n";
    injected.store(true);
    uic.admin_fail_node(3);
  });

  const arch::JobOutcome outcome = uic.submit_and_wait(job);
  chaos.join();

  std::cout << "\nRC/JSA event trace:\n";
  for (const auto& line : uic.event_trace()) {
    std::cout << "  " << line << "\n";
  }

  std::cout << "\nattempts: " << outcome.attempts.size() << "\n";
  for (std::size_t i = 0; i < outcome.attempts.size(); ++i) {
    const auto& a = outcome.attempts[i];
    std::cout << "  attempt " << i + 1 << ": " << a.tasks << " tasks, "
              << (a.from_checkpoint ? "from checkpoint" : "fresh") << ", "
              << (a.completed ? "completed"
                              : ("killed: " + a.kill_reason))
              << "\n";
  }
  std::cout << "available processors now: " << uic.available_processors()
            << " (node 3 still awaiting repair)\n";
  uic.admin_repair_node(3);
  std::cout << "after repair: " << uic.available_processors() << "\n";

  const bool ok = outcome.completed && outcome_slot->restarted &&
                  outcome_slot->field_crc == reference_crc;
  std::cout << "\nresumed at it=" << outcome_slot->start_iteration
            << ", delta=" << outcome_slot->delta << ", field "
            << (outcome_slot->field_crc == reference_crc
                    ? "matches the uninterrupted run bit-for-bit.\n"
                    : "MISMATCH!\n");
  return ok ? 0 : 1;
}
