// Reconfigurable checkpoint/restart with a real application workload —
// the paper's headline capability, end to end:
//
//   1. Run the BT-like solver on 8 tasks, checkpointing at its SOPs.
//   2. Restart the archived state on 12 tasks (growing) and on 4 tasks
//      (shrinking); verify both finish with bitwise the reference field.
//   3. Migrate the checkpointed state to a DIFFERENT simulated system
//      (another volume with a different stripe width) through a host
//      directory, and restart there too — checkpoints are portable
//      because the array representation is distribution independent.
//
// Build & run:  ./examples/reconfig_restart
#include <filesystem>
#include <iostream>

#include "apps/solver.hpp"
#include "support/error.hpp"
#include "piofs/volume.hpp"
#include "store/piofs_backend.hpp"
#include "rt/task_group.hpp"
#include "support/units.hpp"

using namespace drms;

namespace {

constexpr int kIterations = 12;

apps::SolverOptions base_options() {
  apps::SolverOptions options;
  options.spec = apps::AppSpec::bt();
  options.n = 16;  // small grid so the example runs in moments
  options.iterations = kIterations;
  options.checkpoint_every = 5;
  options.prefix = "bt.state";
  return options;
}

apps::SolverOutcome run(store::StorageBackend& storage, int tasks,
                        const std::string& restart_from,
                        int stop_at = -1) {
  apps::SolverOptions options = base_options();
  options.stop_at_iteration = stop_at;
  core::DrmsEnv env;
  env.storage = &storage;
  env.restart_prefix = restart_from;
  auto program = apps::make_program(options, env, tasks);

  apps::SolverOutcome outcome;
  rt::TaskGroup group(sim::Placement::one_per_node(
      sim::Machine::paper_sp16(), tasks));
  const auto result = group.run([&](rt::TaskContext& ctx) {
    const auto out = apps::run_solver(*program, ctx, options);
    if (ctx.rank() == 0) {
      outcome = out;
    }
  });
  if (!result.completed) {
    throw support::Error("run failed: " + result.kill_reason);
  }
  return outcome;
}

}  // namespace

int main() {
  std::cout << "Reconfigurable restart of the BT-like solver\n\n";

  // Reference: uninterrupted 8-task run.
  piofs::Volume reference_volume(16);
  store::PiofsBackend reference_storage(reference_volume);
  const auto reference = run(reference_storage, 8, "");
  std::cout << "reference (8 tasks, " << kIterations
            << " iters): field CRC = " << std::hex << reference.field_crc
            << std::dec << "\n";

  // Interrupted run: stop just after the it=10 checkpoint.
  piofs::Volume volume(16);
  store::PiofsBackend storage(volume);
  (void)run(storage, 8, "", /*stop_at=*/11);
  std::cout << "checkpointed state on volume: "
            << support::format_bytes(
                   core::drms_state_size(storage, "bt.state"))
            << " (independent of the task count)\n\n";

  for (const int tasks : {12, 4}) {
    const auto resumed = run(storage, tasks, "bt.state");
    std::cout << "restart on " << tasks << " tasks: resumed at it="
              << resumed.start_iteration << ", delta=" << resumed.delta
              << ", CRC " << std::hex << resumed.field_crc << std::dec
              << (resumed.field_crc == reference.field_crc ? "  [MATCH]"
                                                           : "  [FAIL]")
              << "\n";
    if (resumed.field_crc != reference.field_crc) {
      return 1;
    }
  }

  // Migration: ship the archived state to another system via host files.
  std::cout << "\nMigrating the checkpoint to a 4-server system...\n";
  const std::string dir =
      (std::filesystem::temp_directory_path() / "drms_migration").string();
  std::filesystem::remove_all(dir);
  volume.export_to_directory("bt.state", dir);

  piofs::Volume other_system(4);  // different machine: 4 I/O servers
  other_system.import_from_directory(dir, "bt.state");
  store::PiofsBackend other_storage(other_system);
  const auto migrated = run(other_storage, 6, "bt.state");
  std::cout << "restart on the other system (6 tasks): CRC " << std::hex
            << migrated.field_crc << std::dec
            << (migrated.field_crc == reference.field_crc ? "  [MATCH]"
                                                          : "  [FAIL]")
            << "\n";
  std::filesystem::remove_all(dir);

  return migrated.field_crc == reference.field_crc ? 0 : 1;
}
