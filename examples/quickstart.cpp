// Quickstart — the paper's Figure 1 skeleton in C++.
//
// A small SPMD "solver" declares one distributed array, checkpoints every
// 10 iterations through drms_reconfig_checkpoint, and is then restarted
// from its own checkpoint with a DIFFERENT number of tasks. The restarted
// run resumes at the checkpointed iteration and finishes with bitwise the
// same field (verified by the canonical-stream CRC).
//
// Build & run:  ./examples/quickstart
#include <array>
#include <iostream>

#include "core/drms_context.hpp"
#include "core/streamer.hpp"
#include "support/error.hpp"
#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "store/piofs_backend.hpp"
#include "support/crc32.hpp"

using namespace drms;

namespace {

constexpr core::Index kN = 16;       // 16^3 global grid
constexpr int kIterations = 25;
constexpr int kCheckpointEvery = 10;

core::AppSegmentModel segment_model() {
  core::AppSegmentModel m;
  m.static_local_bytes = 256 * 1024;
  m.private_bytes = 64 * 1024;
  m.system_bytes = 512 * 1024;
  m.text_bytes = 128 * 1024;
  return m;
}

/// The SPMD application body — compare with the paper's Figure 1.
void solver_main(core::DrmsProgram& program, rt::TaskContext& task) {
  core::DrmsContext drms(program, task);

  // Replicated control state: registered BEFORE drms_initialize so a
  // restart can refresh it from the checkpointed data segment.
  std::int64_t it = 0;
  drms.store().register_i64("it", &it);

  drms.initialize();  // drms_initialize(): restores state on a restart

  // drms_create_distribution + drms_distribute: block distribution of the
  // 3-D array u among however many tasks this run has.
  const std::array<core::Index, 3> lo{0, 0, 0};
  const std::array<core::Index, 3> hi{kN - 1, kN - 1, kN - 1};
  core::DistArray& u = drms.create_array("u", lo, hi);
  const core::DistSpec dist = core::DistSpec::block_auto(
      u.global_box(), task.size(), std::vector<core::Index>(3, 1));
  drms.distribute(u, dist);  // on restart: loads the checkpointed data

  if (!drms.restarted()) {
    // Fresh start: initialize the assigned sections.
    const core::Slice& mine = dist.assigned(task.rank());
    mine.for_each_column_major([&](std::span<const core::Index> p) {
      u.local(task.rank())
          .set_f64(p, 1.0 + 0.001 * static_cast<double>(p[0] + p[1] + p[2]));
    });
    task.barrier();
  } else if (task.rank() == 0) {
    std::cout << "[rank 0] restarted from iteration " << it
              << " on " << task.size() << " tasks (delta = " << drms.delta()
              << ")\n";
  }

  while (it < kIterations) {
    if (it > 0 && it % kCheckpointEvery == 0) {
      // drms_reconfig_checkpoint(prefix, status, delta):
      const core::ReconfigResult r = drms.reconfig_checkpoint("quickstart");
      if (task.rank() == 0) {
        if (r.status == core::CheckpointStatus::kRestarted) {
          std::cout << "[rank 0] SOP at it=" << it
                    << ": resuming archived state, delta=" << r.delta
                    << "\n";
        } else {
          std::cout << "[rank 0] SOP at it=" << it
                    << ": checkpoint written\n";
        }
      }
    }
    // "Computation section" of the SOQ: a pointwise update.
    const core::Slice& mine = u.distribution().assigned(task.rank());
    mine.for_each_column_major([&](std::span<const core::Index> p) {
      u.local(task.rank())
          .set_f64(p, u.local(task.rank()).get_f64(p) * 1.0125 + 0.25);
    });
    task.barrier();
    ++it;
  }
}

/// CRC of u's distribution-independent stream, for verification.
std::uint32_t field_crc(store::StorageBackend& storage, int tasks,
                        const std::string& restart_from) {
  core::DrmsEnv env;
  env.storage = &storage;
  env.restart_prefix = restart_from;
  core::DrmsProgram program("quickstart", env, segment_model(), tasks);

  rt::TaskGroup group(sim::Placement::one_per_node(
      sim::Machine::paper_sp16(), tasks));
  std::uint32_t crc = 0;
  const auto result = group.run([&](rt::TaskContext& task) {
    solver_main(program, task);
    // Stream the final field serially and CRC it on rank 0.
    core::DrmsContext drms_view(program, task);  // for array lookup only
    core::DistArray& u = drms_view.array("u");
    if (task.rank() == 0) {
      storage.create("quickstart.final");
    }
    task.barrier();
    const core::ArrayStreamer streamer(nullptr, {});
    streamer.write_section(task, u, u.global_box(),
                           storage.open("quickstart.final"), 0, 1);
    task.barrier();
    if (task.rank() == 0) {
      const auto handle = storage.open("quickstart.final");
      crc = support::crc32c(handle.read_at(0, handle.size()));
    }
  });
  if (!result.completed) {
    throw support::Error("run failed: " + result.kill_reason);
  }
  return crc;
}

}  // namespace

int main() {
  std::cout << "DRMS quickstart: checkpoint on 6 tasks, restart on 4\n\n";
  piofs::Volume volume(16);  // PIOFS-like volume striped over 16 servers
  store::PiofsBackend storage(volume);

  std::cout << "--- uninterrupted reference run (6 tasks) ---\n";
  const std::uint32_t reference = field_crc(storage, 6, "");

  std::cout << "\n--- restart the archived it=20 state on 4 tasks ---\n";
  const std::uint32_t resumed = field_crc(storage, 4, "quickstart");

  std::cout << "\nreference CRC = " << std::hex << reference
            << ", restarted CRC = " << resumed << std::dec << "\n"
            << (reference == resumed
                    ? "SUCCESS: reconfigured restart reproduced the run "
                      "bit-for-bit.\n"
                    : "MISMATCH: this should never happen.\n");
  return reference == resumed ? 0 : 1;
}
