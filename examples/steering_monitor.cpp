// Computational steering (§3, [12]): while the BT-like solver runs, a
// monitor thread — standing in for a researcher's console or a
// visualization front end — periodically FETCHES a cross-section of the
// solution field through the steering channel and prints its statistics,
// then STORES a perturbed boundary plane back into the running
// application and watches the injection propagate.
//
// Build & run:  ./examples/steering_monitor
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>

#include "apps/solver.hpp"
#include "core/steering.hpp"
#include "rt/task_group.hpp"
#include "piofs/volume.hpp"
#include "store/piofs_backend.hpp"
#include "support/units.hpp"

using namespace drms;
using core::Index;
using core::Range;
using core::Slice;

namespace {

constexpr Index kN = 16;

struct SectionStats {
  double min = 0;
  double max = 0;
  double mean = 0;
};

SectionStats stats_of(const std::vector<std::byte>& bytes) {
  std::vector<double> values(bytes.size() / sizeof(double));
  std::memcpy(values.data(), bytes.data(), bytes.size());
  SectionStats s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0;
  for (const double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

/// Mid-plane of component 0: (0, :, :, z = kN/2).
Slice midplane() {
  return Slice{{Range::single(0), Range::contiguous(0, kN - 1),
                Range::contiguous(0, kN - 1), Range::single(kN / 2)}};
}

}  // namespace

int main() {
  std::cout << "Computational steering of the BT-like solver (6 tasks, "
            << kN << "^3 grid)\n\n";

  piofs::Volume volume(16);
  store::PiofsBackend storage(volume);
  core::SteeringChannel channel;
  std::atomic<std::int64_t> iteration{-1};

  apps::SolverOptions options;
  options.spec = apps::AppSpec::bt();
  options.n = kN;
  options.iterations = 40;
  options.checkpoint_every = 1000;  // steering demo: no checkpoints
  options.compute_field_crc = false;
  options.steering = &channel;
  options.on_iteration = [&](std::int64_t it, rt::TaskContext& ctx) {
    if (ctx.rank() == 0) {
      iteration.store(it);
    }
    // A touch of wall-clock per iteration so the monitor can interleave.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };

  core::DrmsEnv env;
  env.storage = &storage;
  auto program = apps::make_program(options, env, 6);

  std::thread app_thread([&] {
    rt::TaskGroup group(
        sim::Placement::one_per_node(sim::Machine::paper_sp16(), 6));
    const auto result = group.run([&](rt::TaskContext& ctx) {
      (void)apps::run_solver(*program, ctx, options);
    });
    if (!result.completed) {
      std::cerr << "solver failed: " << result.kill_reason << "\n";
    }
  });

  // Monitor: snapshot the mid-plane a few times as the solution evolves.
  const Slice plane = midplane();
  for (int snapshot = 0; snapshot < 3; ++snapshot) {
    while (iteration.load() < snapshot * 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    auto bytes = channel.fetch("u", plane).get();
    const SectionStats s = stats_of(bytes);
    std::cout << "snapshot at it>=" << snapshot * 5 << ": mid-plane min="
              << s.min << " max=" << s.max << " mean=" << s.mean << "\n";
  }

  // Steer: inject a hot spot into the x = 0 boundary plane of comp 0.
  const Slice boundary{{Range::single(0), Range::single(0),
                        Range::contiguous(0, kN - 1),
                        Range::contiguous(0, kN - 1)}};
  std::vector<double> hot(
      static_cast<std::size_t>(boundary.element_count()), 25.0);
  std::vector<std::byte> payload(hot.size() * sizeof(double));
  std::memcpy(payload.data(), hot.data(), payload.size());
  channel.store("u", boundary, std::move(payload)).get();
  std::cout << "\n>>> injected a 25.0 hot spot on the x=0 boundary\n\n";

  // Watch the injection spread into the interior.
  for (int snapshot = 0; snapshot < 2; ++snapshot) {
    const std::int64_t target = iteration.load() + 8;
    while (iteration.load() < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    auto bytes = channel.fetch("u", plane).get();
    const SectionStats s = stats_of(bytes);
    std::cout << "post-injection snapshot: mid-plane min=" << s.min
              << " max=" << s.max << " mean=" << s.mean << "\n";
  }

  app_thread.join();
  std::cout << "\nThe mean of the mid-plane rises after the injection — "
               "the steering\nstore reached the running computation "
               "without stopping it.\n";
  return 0;
}
