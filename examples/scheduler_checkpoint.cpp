// System-initiated checkpointing for dynamic resource management — the
// second use of reconfigurable checkpoints that §4 lists (and §8's
// "efficient resource and job scheduling" discussion):
//
//   A long-running LU job occupies 12 of 16 processors, carrying
//   drms_reconfig_chkenable SOPs. When a high-priority job arrives, the
//   JSA arms the enabling signal; at its next SOP the LU job checkpoints,
//   the scheduler stops it, runs the priority job on the freed
//   processors, and afterwards restarts LU from the system-initiated
//   checkpoint on a SMALLER partition so both workloads coexist.
//
// Build & run:  ./examples/scheduler_checkpoint
#include <iostream>

#include "apps/solver.hpp"
#include "support/error.hpp"
#include "arch/uic.hpp"
#include "piofs/volume.hpp"
#include "store/piofs_backend.hpp"

using namespace drms;

namespace {

apps::SolverOutcome run_lu(store::StorageBackend& storage, int tasks,
                           const std::string& restart_from, int stop_at,
                           arch::JobScheduler* jsa_to_arm) {
  apps::SolverOptions options;
  options.spec = apps::AppSpec::lu();
  options.n = 16;
  options.iterations = 20;
  options.checkpoint_every = 4;  // enabling SOP every 4 iterations
  options.prefix = "lu.sys";
  options.use_chkenable = true;
  options.stop_at_iteration = stop_at;
  if (jsa_to_arm != nullptr) {
    options.on_iteration = [jsa_to_arm](std::int64_t it,
                                        rt::TaskContext& ctx) {
      // "A high-priority job arrives" while LU is at iteration 6; the
      // JSA arms the enabling signal. The it=8 SOP takes the checkpoint.
      if (it == 6 && ctx.rank() == 0) {
        (void)jsa_to_arm->request_checkpoint("LU");
      }
    };
  }

  core::DrmsEnv env;
  env.storage = &storage;
  env.restart_prefix = restart_from;
  auto program = apps::make_program(options, env, tasks);

  apps::SolverOutcome outcome;
  rt::TaskGroup group(sim::Placement::one_per_node(
      sim::Machine::paper_sp16(), tasks));
  const auto result = group.run([&](rt::TaskContext& ctx) {
    const auto out = apps::run_solver(*program, ctx, options);
    if (ctx.rank() == 0) {
      outcome = out;
    }
  });
  if (!result.completed) {
    throw support::Error("LU run failed: " + result.kill_reason);
  }
  return outcome;
}

}  // namespace

int main() {
  std::cout << "System-initiated checkpointing for scheduling\n\n";

  arch::EventLog log;
  arch::Cluster cluster(sim::Machine::paper_sp16(), &log);
  arch::JobScheduler jsa(cluster, &log);
  piofs::Volume volume(16);
  store::PiofsBackend storage(volume);
  arch::Uic uic(cluster, jsa, storage, log);

  // Reference: LU runs its 20 iterations uninterrupted on 12 processors.
  piofs::Volume ref_volume(16);
  store::PiofsBackend ref_storage(ref_volume);
  const auto reference = run_lu(ref_storage, 12, "", -1, nullptr);
  std::cout << "reference LU (12 tasks): CRC " << std::hex
            << reference.field_crc << std::dec << "\n\n";

  // Phase 1: LU runs on 12 processors; the JSA arms the enabling signal
  // at iteration 6; LU checkpoints at the it=8 SOP and the scheduler
  // stops it right after (stop_at 9 models preemption).
  std::cout << "phase 1: LU on 12 processors, system checkpoint then "
               "preemption\n";
  arch::JobDescriptor lu_job;
  lu_job.name = "LU";
  lu_job.min_tasks = 4;
  lu_job.preferred_tasks = 12;
  lu_job.checkpoint_prefix = "lu.sys";
  lu_job.base_env.storage = &storage;
  auto phase1_slot = std::make_shared<apps::SolverOutcome>();
  lu_job.make_program = [](core::DrmsEnv env, int tasks) {
    apps::SolverOptions options;
    options.spec = apps::AppSpec::lu();
    options.n = 16;
    return apps::make_program(options, env, tasks);
  };
  lu_job.body = [&jsa, phase1_slot](core::DrmsProgram& program,
                                    rt::TaskContext& ctx) {
    apps::SolverOptions options;
    options.spec = apps::AppSpec::lu();
    options.n = 16;
    options.iterations = 20;
    options.checkpoint_every = 4;
    options.prefix = "lu.sys";
    options.use_chkenable = true;
    options.stop_at_iteration = 9;  // preempted after the it=8 checkpoint
    options.compute_field_crc = false;
    options.on_iteration = [&jsa](std::int64_t it, rt::TaskContext& c) {
      if (it == 6 && c.rank() == 0) {
        (void)jsa.request_checkpoint("LU");
      }
    };
    (void)apps::run_solver(program, ctx, options);
    (void)phase1_slot;
  };
  const auto phase1 = uic.submit_and_wait(lu_job);
  std::cout << "  LU preempted; checkpoint on volume: "
            << (core::checkpoint_exists(storage, "lu.sys") ? "yes" : "NO")
            << ", processors free again: " << uic.available_processors()
            << "\n\n";
  if (!phase1.completed) {
    return 1;
  }

  // Phase 2: the high-priority job takes 12 processors...
  std::cout << "phase 2: priority BT job on 12 processors\n";
  arch::JobDescriptor priority;
  priority.name = "BT-priority";
  priority.min_tasks = 8;
  priority.preferred_tasks = 12;
  priority.checkpoint_prefix = "bt.prio";
  priority.base_env.storage = &storage;
  priority.make_program = [](core::DrmsEnv env, int tasks) {
    apps::SolverOptions options;
    options.spec = apps::AppSpec::bt();
    options.n = 16;
    return apps::make_program(options, env, tasks);
  };
  priority.body = [](core::DrmsProgram& program, rt::TaskContext& ctx) {
    apps::SolverOptions options;
    options.spec = apps::AppSpec::bt();
    options.n = 16;
    options.iterations = 4;
    options.compute_field_crc = false;
    (void)apps::run_solver(program, ctx, options);
  };
  const auto prio_outcome = uic.submit_and_wait(priority);
  std::cout << "  priority job "
            << (prio_outcome.completed ? "completed" : "FAILED") << "\n\n";

  // Phase 3: ...while LU restarts from the system checkpoint on only 4
  // processors (reconfigured restart), and still reproduces the
  // reference field when it finishes.
  std::cout << "phase 3: LU restarted on 4 processors from the "
               "system-initiated checkpoint\n";
  const auto resumed = run_lu(storage, 4, "lu.sys", -1, nullptr);
  std::cout << "  resumed at it=" << resumed.start_iteration
            << " (delta=" << resumed.delta << "), CRC " << std::hex
            << resumed.field_crc << std::dec
            << (resumed.field_crc == reference.field_crc ? "  [MATCH]"
                                                         : "  [FAIL]")
            << "\n";

  std::cout << "\nevent trace:\n";
  for (const auto& line : uic.event_trace()) {
    std::cout << "  " << line << "\n";
  }
  return resumed.field_crc == reference.field_crc ? 0 : 1;
}
