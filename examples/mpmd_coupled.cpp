// MPMD application (§2.2): two coupled SPMD components — a 3-task "flow"
// solver and a 2-task "structure" solver — each with its own distributed
// data set and checkpoint files, synchronized at a globally consistent
// SET of SOPs. The flow component streams a boundary section to the
// structure component every iteration through a socket-like pipe (the
// paper's inter-application communication built on array-section
// streaming). After an interruption, the two components restart with
// INDIVIDUALLY reconfigured task counts (flow shrinks, structure grows)
// and the coupled run finishes bit-for-bit identically.
//
// Build & run:  ./examples/mpmd_coupled
#include <array>
#include <iostream>

#include "core/drms_context.hpp"
#include "core/mpmd.hpp"
#include "core/redistribute.hpp"
#include "core/sequential_channel.hpp"
#include "core/streamer.hpp"
#include "piofs/volume.hpp"
#include "store/piofs_backend.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

using namespace drms;
using core::DistArray;
using core::DistSpec;
using core::Index;
using core::Slice;

namespace {

constexpr Index kN = 8;
constexpr int kIterations = 9;
constexpr int kCheckpointEvery = 3;

core::AppSegmentModel tiny_segment() {
  core::AppSegmentModel m;
  m.static_local_bytes = 64 * 1024;
  m.system_bytes = 64 * 1024;
  return m;
}

Slice cube() {
  const std::array<Index, 3> lo{0, 0, 0};
  const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
  return Slice::box(lo, hi);
}

/// The x = 0 plane of the flow field — the coupling boundary.
Slice boundary() {
  return cube().with_range(0, core::Range::single(0));
}

struct Channels {
  core::InMemoryPipe* flow_to_structure = nullptr;
};

/// Flow component: evolves u, streams its boundary plane to structure.
void flow_body(core::DrmsProgram& program, rt::TaskContext& ctx,
               core::MpmdCoordinator& coord, Channels& channels,
               const std::string& prefix) {
  core::DrmsContext drms(program, ctx);
  std::int64_t it = 0;
  drms.store().register_i64("it", &it);
  drms.initialize();

  const std::array<Index, 3> lo{0, 0, 0};
  const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
  DistArray& u = drms.create_array("u", lo, hi);
  drms.distribute(u, DistSpec::block_auto(cube(), ctx.size(),
                                          std::vector<Index>(3, 0)));
  if (!drms.restarted()) {
    const Slice& mine = u.distribution().assigned(ctx.rank());
    mine.for_each_column_major([&](std::span<const Index> p) {
      u.local(ctx.rank())
          .set_f64(p, 0.5 + 0.001 * static_cast<double>(
                                        p[0] * 64 + p[1] * 8 + p[2]));
    });
    ctx.barrier();
  }

  const core::ArrayStreamer streamer(nullptr, {});
  while (it < kIterations) {
    if (it > 0 && it % kCheckpointEvery == 0) {
      (void)coord.arrive("flow", ctx);
      (void)drms.reconfig_checkpoint(
          core::mpmd_component_prefix(prefix, "flow"));
    }
    // Evolve, then ship the fresh boundary plane to the structure side.
    const Slice& mine = u.distribution().assigned(ctx.rank());
    mine.for_each_column_major([&](std::span<const Index> p) {
      u.local(ctx.rank())
          .set_f64(p, u.local(ctx.rank()).get_f64(p) * 1.03 + 0.01);
    });
    ctx.barrier();
    streamer.write_section_sequential(
        ctx, u, boundary(), channels.flow_to_structure->sink());
    ++it;
  }
}

/// Structure component: consumes the boundary plane into its `load`
/// array and accumulates a response field.
void structure_body(core::DrmsProgram& program, rt::TaskContext& ctx,
                    core::MpmdCoordinator& coord, Channels& channels,
                    const std::string& prefix) {
  core::DrmsContext drms(program, ctx);
  std::int64_t it = 0;
  drms.store().register_i64("it", &it);
  drms.initialize();

  const std::array<Index, 3> lo{0, 0, 0};
  const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
  DistArray& load = drms.create_array("load", lo, hi);
  DistArray& response = drms.create_array("response", lo, hi);
  const DistSpec spec = DistSpec::block_auto(cube(), ctx.size(),
                                             std::vector<Index>(3, 0));
  drms.distribute(load, spec);
  drms.distribute(response, spec);
  ctx.barrier();

  const core::ArrayStreamer streamer(nullptr, {});
  while (it < kIterations) {
    if (it > 0 && it % kCheckpointEvery == 0) {
      (void)coord.arrive("structure", ctx);
      (void)drms.reconfig_checkpoint(
          core::mpmd_component_prefix(prefix, "structure"));
    }
    // Receive the boundary plane from the flow side, then respond.
    streamer.read_section_sequential(
        ctx, load, boundary(), channels.flow_to_structure->source());
    ctx.barrier();
    const Slice my_boundary =
        boundary().intersect(spec.assigned(ctx.rank()));
    my_boundary.for_each_column_major([&](std::span<const Index> p) {
      response.local(ctx.rank())
          .set_f64(p, response.local(ctx.rank()).get_f64(p) +
                          load.local(ctx.rank()).get_f64(p));
    });
    ctx.barrier();
    ++it;
  }
}

struct CoupledResult {
  bool completed = false;
  std::uint32_t response_crc = 0;
};

CoupledResult run_coupled(store::StorageBackend& storage,
                          int flow_tasks,
                          int structure_tasks, bool restart,
                          const std::string& prefix) {
  core::MpmdCoordinator coordinator({"flow", "structure"});
  core::InMemoryPipe pipe(1 << 16);
  Channels channels{&pipe};

  core::DrmsEnv flow_env;
  flow_env.storage = &storage;
  core::DrmsEnv structure_env = flow_env;
  if (restart) {
    flow_env.restart_prefix = core::mpmd_component_prefix(prefix, "flow");
    structure_env.restart_prefix =
        core::mpmd_component_prefix(prefix, "structure");
  }
  core::DrmsProgram flow("flow", flow_env, tiny_segment(), flow_tasks);
  core::DrmsProgram structure("structure", structure_env, tiny_segment(),
                              structure_tasks);

  CoupledResult out;
  std::vector<core::MpmdComponent> components;
  std::vector<int> flow_nodes;
  for (int i = 0; i < flow_tasks; ++i) flow_nodes.push_back(i);
  std::vector<int> structure_nodes;
  for (int i = 0; i < structure_tasks; ++i) {
    structure_nodes.push_back(flow_tasks + i);
  }
  components.push_back(core::MpmdComponent{
      "flow", sim::Placement(sim::Machine::paper_sp16(), flow_nodes),
      [&](rt::TaskContext& ctx, core::MpmdCoordinator& c) {
        flow_body(flow, ctx, c, channels, prefix);
      }});
  components.push_back(core::MpmdComponent{
      "structure",
      sim::Placement(sim::Machine::paper_sp16(), structure_nodes),
      [&](rt::TaskContext& ctx, core::MpmdCoordinator& c) {
        structure_body(structure, ctx, c, channels, prefix);
        // Digest the response field through a serial stream.
        if (ctx.rank() == 0) {
          storage.create("mpmd.digest");
        }
        ctx.barrier();
        const core::ArrayStreamer streamer(nullptr, {});
        core::DrmsContext view(structure, ctx);
        DistArray& response = view.array("response");
        streamer.write_section(ctx, response, response.global_box(),
                               storage.open("mpmd.digest"), 0, 1);
        ctx.barrier();
        if (ctx.rank() == 0) {
          const auto handle = storage.open("mpmd.digest");
          out.response_crc =
              support::crc32c(handle.read_at(0, handle.size()));
        }
      }});
  const core::MpmdResult result =
      run_mpmd(std::move(components), coordinator);
  out.completed = result.completed;
  return out;
}

}  // namespace

int main() {
  std::cout << "MPMD coupled application: flow (3 tasks) + structure "
               "(2 tasks)\n\n";
  piofs::Volume volume(16);
  store::PiofsBackend storage(volume);

  const CoupledResult reference =
      run_coupled(storage, 3, 2, false, "mp.ref");
  std::cout << "reference coupled run: response CRC = " << std::hex
            << reference.response_crc << std::dec << "\n";
  if (!reference.completed) {
    return 1;
  }

  // A second run leaves its coordinated it=6 checkpoints behind...
  piofs::Volume volume2(16);
  store::PiofsBackend storage2(volume2);
  (void)run_coupled(storage2, 3, 2, false, "mp");
  std::cout << "\ncomponents checkpointed under mp.flow / mp.structure; "
               "restarting with\nflow 3->2 tasks and structure 2->4 tasks "
               "(individually reconfigured)\n";

  const CoupledResult resumed = run_coupled(storage2, 2, 4, true, "mp");
  std::cout << "restarted coupled run: response CRC = " << std::hex
            << resumed.response_crc << std::dec
            << (resumed.response_crc == reference.response_crc
                    ? "  [MATCH]\n"
                    : "  [FAIL]\n");
  return resumed.completed &&
                 resumed.response_crc == reference.response_crc
             ? 0
             : 1;
}
