// Ablation — design choices of the parallel streaming engine (§3.2):
//   (a) chunk-size sweep: the paper picks ~1 MB chunks; smaller chunks
//       inflate per-operation latency, larger ones inflate buffer memory
//       and reduce parallel slack;
//   (b) I/O width sweep (serial P=1 ... all tasks): output streaming is
//       server-limited, input streaming is client-limited;
//   (c) stripe-width sweep of the underlying volume.
//
// Reported times are SIMULATED seconds from the calibrated cost model
// (google-benchmark's wall clock would measure the host, not the modeled
// SP), surfaced as custom counters.
#include <benchmark/benchmark.h>

#include <array>
#include <memory>

#include "core/streamer.hpp"
#include "piofs/volume.hpp"
#include "store/piofs_backend.hpp"
#include "rt/task_group.hpp"
#include "sim/cost_model.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;
using core::DistArray;
using core::DistSpec;
using core::Index;
using core::Slice;
using support::kMiB;

constexpr Index kN = 48;  // 48^3 doubles ~ 0.84 MiB/component
constexpr int kComponents = 8;

Slice array_box() {
  const std::array<Index, 4> lo{0, 0, 0, 0};
  const std::array<Index, 4> hi{kComponents - 1, kN - 1, kN - 1, kN - 1};
  return Slice::box(lo, hi);
}

sim::LoadContext load_for(int tasks) {
  const auto placement =
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), tasks);
  sim::LoadContext load;
  load.busy_server_fraction = placement.busy_server_fraction();
  load.per_task_resident_bytes = 64 * kMiB;
  load.max_tasks_per_node = placement.max_tasks_per_node();
  load.server_count = 16;
  return load;
}

/// Simulated seconds to stream the whole array out (or in) once.
double stream_once(int tasks, int io_tasks, std::uint64_t chunk_bytes,
                   bool write, int stripe_servers) {
  piofs::Volume volume(stripe_servers);
  sim::LoadContext load = load_for(tasks);
  load.server_count = stripe_servers;
  const sim::CostModel cost = sim::CostModel::paper_sp16();
  store::PiofsBackend storage(volume, &cost);
  DistArray array("a", array_box(), sizeof(double), tasks);
  storage.create("f");

  rt::TaskGroup group(
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), tasks));
  const auto result = group.run([&](rt::TaskContext& ctx) {
    if (ctx.rank() == 0) {
      const std::array<Index, 4> shadow{0, 1, 1, 1};
      const std::array<int, 4> grid{1, 1, 2,
                                    tasks % 2 == 0 ? tasks / 2 : tasks};
      if (tasks % 2 == 0) {
        array.install_distribution(
            DistSpec::block(array_box(), grid, shadow));
      } else {
        array.install_distribution(
            DistSpec::block_auto(array_box(), tasks, shadow));
      }
    }
    ctx.barrier();
    const core::ArrayStreamer streamer(&storage, load, chunk_bytes);
    if (write) {
      streamer.write_section(ctx, array, array_box(),
                             storage.open("f"), 0,
                             io_tasks);
    } else {
      // Populate the file first (zero-time model would need data anyway).
      if (ctx.rank() == 0) {
        storage.open("f").write_zeros_at(
            0, array.global_byte_count());
      }
      ctx.barrier();
      streamer.read_section(ctx, array, array_box(),
                            storage.open("f"), 0,
                            io_tasks);
    }
  });
  if (!result.completed) {
    return -1.0;
  }
  return result.sim_seconds;
}

void BM_ChunkSizeSweep(benchmark::State& state) {
  const auto chunk = static_cast<std::uint64_t>(state.range(0));
  double sim = 0;
  for (auto _ : state) {
    sim = stream_once(16, 16, chunk, /*write=*/true, 16);
  }
  state.counters["sim_seconds"] = sim;
  state.counters["sim_MBps"] =
      support::to_mib(8ull * kN * kN * kN * kComponents) / sim;
}
BENCHMARK(BM_ChunkSizeSweep)
    ->Arg(64 * 1024)
    ->Arg(256 * 1024)
    ->Arg(1024 * 1024)  // the paper's choice
    ->Arg(4 * 1024 * 1024)
    ->Arg(16 * 1024 * 1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_OutputWidthSweep(benchmark::State& state) {
  const int io_tasks = static_cast<int>(state.range(0));
  double sim = 0;
  for (auto _ : state) {
    sim = stream_once(16, io_tasks, kMiB, /*write=*/true, 16);
  }
  state.counters["sim_seconds"] = sim;
}
BENCHMARK(BM_OutputWidthSweep)
    ->Arg(1)   // serial streaming (no seek needed)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_InputWidthSweep(benchmark::State& state) {
  const int io_tasks = static_cast<int>(state.range(0));
  double sim = 0;
  for (auto _ : state) {
    sim = stream_once(16, io_tasks, kMiB, /*write=*/false, 16);
  }
  state.counters["sim_seconds"] = sim;
}
BENCHMARK(BM_InputWidthSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_StripeWidthSweep(benchmark::State& state) {
  const int servers = static_cast<int>(state.range(0));
  double sim = 0;
  for (auto _ : state) {
    sim = stream_once(8, 8, kMiB, /*write=*/true, servers);
  }
  state.counters["sim_seconds"] = sim;
}
BENCHMARK(BM_StripeWidthSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
