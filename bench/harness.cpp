#include "harness.hpp"

#include <cstring>

#include <memory>

#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "sim/cost_model.hpp"
#include "store/memory_backend.hpp"
#include "store/piofs_backend.hpp"
#include "store/tiered_backend.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace drms::bench {

namespace {

sim::Placement paper_placement(int tasks) {
  return sim::Placement::one_per_node(sim::Machine::paper_sp16(), tasks);
}

apps::SolverOptions solver_options(const ExperimentConfig& cfg,
                                   const std::string& prefix) {
  apps::SolverOptions options;
  options.spec = cfg.spec;
  options.n = apps::grid_size(cfg.problem_class);
  // Checkpoint at the mid-point of execution, as in §5: two iterations,
  // SOP after the first.
  options.iterations = 2;
  options.checkpoint_every = 1;
  options.prefix = prefix;
  options.compute_field_crc = false;
  return options;
}

}  // namespace

support::RunningStats ExperimentResult::checkpoint_totals() const {
  support::RunningStats s;
  for (const auto& r : runs) s.add(r.checkpoint.total_seconds());
  return s;
}
support::RunningStats ExperimentResult::restart_totals() const {
  support::RunningStats s;
  for (const auto& r : runs) s.add(r.restart.total_seconds());
  return s;
}
support::RunningStats ExperimentResult::checkpoint_segment() const {
  support::RunningStats s;
  for (const auto& r : runs) s.add(r.checkpoint.segment_seconds);
  return s;
}
support::RunningStats ExperimentResult::checkpoint_arrays() const {
  support::RunningStats s;
  for (const auto& r : runs) s.add(r.checkpoint.arrays_seconds);
  return s;
}
support::RunningStats ExperimentResult::restart_segment() const {
  support::RunningStats s;
  for (const auto& r : runs) s.add(r.restart.segment_seconds);
  return s;
}
support::RunningStats ExperimentResult::restart_arrays() const {
  support::RunningStats s;
  for (const auto& r : runs) s.add(r.restart.arrays_seconds);
  return s;
}
support::RunningStats ExperimentResult::restart_init() const {
  support::RunningStats s;
  for (const auto& r : runs) s.add(r.restart.init_seconds);
  return s;
}
support::RunningStats ExperimentResult::drain_totals() const {
  support::RunningStats s;
  for (const auto& r : runs) s.add(r.drain_seconds);
  return s;
}
support::RunningStats ExperimentResult::checkpoint_commit() const {
  support::RunningStats s;
  for (const auto& r : runs) s.add(r.checkpoint.commit_seconds);
  return s;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  ExperimentResult result;
  result.config = cfg;

  const sim::CostModel cost = sim::CostModel::paper_sp16();
  const std::string prefix = "bench." + cfg.spec.name;
  const core::Index n = apps::grid_size(cfg.problem_class);
  result.segment_bytes = cfg.spec.segment_model(n).total();
  result.arrays_bytes = cfg.spec.arrays_bytes(n);

  for (int run = 0; run < cfg.runs; ++run) {
    piofs::Volume volume(16);
    store::PiofsBackend piofs_storage(volume, &cost);
    std::unique_ptr<store::MemoryBackend> memory;
    std::unique_ptr<store::TieredBackend> tiered;
    store::StorageBackend* storage = &piofs_storage;
    if (cfg.storage == StorageKind::kTiered) {
      memory = std::make_unique<store::MemoryBackend>(cfg.fast_capacity_bytes,
                                                      &cost);
      tiered = std::make_unique<store::TieredBackend>(*memory, piofs_storage);
      storage = tiered.get();
    }
    const std::uint64_t seed =
        cfg.seed + static_cast<std::uint64_t>(run) * 1000003ull;
    RunMeasurement m;

    // --- Phase 1: run to the mid-point SOP and take the checkpoint.
    {
      core::DrmsEnv env;
      env.storage = storage;
      env.cost = &cost;
      env.jitter = true;
      env.mode = cfg.mode;
      env.recorder = run == 0 ? cfg.recorder : nullptr;
      const apps::SolverOptions options = solver_options(cfg, prefix);
      auto program = apps::make_program(options, env, cfg.tasks);
      rt::TaskGroup group(paper_placement(cfg.tasks), seed);
      const auto outcome = group.run([&](rt::TaskContext& ctx) {
        (void)apps::run_solver(*program, ctx, options);
      });
      if (!outcome.completed) {
        throw support::Error("bench checkpoint run failed: " +
                             outcome.kill_reason);
      }
      m.checkpoint = program->last_checkpoint_timing();
    }
    if (run == 0) {
      result.state_bytes =
          cfg.mode == core::CheckpointMode::kDrms
              ? core::drms_state_size(*storage, prefix)
              : core::spmd_state_size(*storage, prefix);
    }

    // Tiered: the application has committed; drain the staged copies to
    // PIOFS in the background before the (possible) fast-tier loss.
    if (tiered != nullptr) {
      sim::LoadContext drain_load;
      drain_load.server_count = volume.server_count();
      m.drain_seconds = tiered->drain(drain_load).simulated_seconds;
      if (cfg.fail_fast_before_restart) {
        tiered->fail_fast_tier();
      }
    }

    // --- Phase 2: restart from the saved state (stop right away; only
    // the restore is timed).
    {
      core::DrmsEnv env;
      env.storage = storage;
      env.cost = &cost;
      env.jitter = true;
      env.mode = cfg.mode;
      env.recorder = run == 0 ? cfg.recorder : nullptr;
      env.restart_prefix = prefix;
      apps::SolverOptions options = solver_options(cfg, prefix);
      options.stop_at_iteration = 1;  // resume at it=1, do no more work
      auto program = apps::make_program(options, env, cfg.tasks);
      rt::TaskGroup group(paper_placement(cfg.tasks), seed ^ 0xabcdef);
      const auto outcome = group.run([&](rt::TaskContext& ctx) {
        (void)apps::run_solver(*program, ctx, options);
      });
      if (!outcome.completed) {
        throw support::Error("bench restart run failed: " +
                             outcome.kill_reason);
      }
      m.restart = program->last_restart_timing();
    }
    result.runs.push_back(m);
  }
  return result;
}

std::uint64_t measure_state_size(const apps::AppSpec& spec,
                                 apps::ProblemClass pc, int tasks,
                                 core::CheckpointMode mode) {
  piofs::Volume volume(16);
  store::PiofsBackend storage(volume);
  core::DrmsEnv env;
  env.storage = &storage;
  env.mode = mode;

  apps::SolverOptions options;
  options.spec = spec;
  options.n = apps::grid_size(pc);
  options.iterations = 2;
  options.checkpoint_every = 1;
  options.prefix = "size";
  options.compute_field_crc = false;

  auto program = apps::make_program(options, env, tasks);
  rt::TaskGroup group(paper_placement(tasks));
  const auto outcome = group.run([&](rt::TaskContext& ctx) {
    (void)apps::run_solver(*program, ctx, options);
  });
  if (!outcome.completed) {
    throw support::Error("state-size run failed: " + outcome.kill_reason);
  }
  return mode == core::CheckpointMode::kDrms
             ? core::drms_state_size(storage, "size")
             : core::spmd_state_size(storage, "size");
}

std::string mean_pm_sigma(const support::RunningStats& s, int precision) {
  return support::format_fixed(s.mean(), precision) + " +- " +
         support::format_fixed(s.stddev(), precision);
}

BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      args.runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--class") == 0 && i + 1 < argc) {
      const std::string c = argv[++i];
      if (c == "S") args.problem_class = apps::ProblemClass::kS;
      if (c == "W") args.problem_class = apps::ProblemClass::kW;
      if (c == "A") args.problem_class = apps::ProblemClass::kA;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      args.trace = true;
    }
  }
  return args;
}

}  // namespace drms::bench
