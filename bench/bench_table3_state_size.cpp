// Table 3 — Size of saved state for DRMS and non-reconfigurable SPMD
// applications (class A). DRMS state = one data segment + the
// distribution-independent array files (constant in the task count);
// SPMD state = one full data segment per task (linear in the task count).
#include <iostream>

#include "harness.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;
using bench::measure_state_size;
using support::format_fixed;
using support::to_mib;

struct PaperRow {
  const char* app;
  int drms_data, drms_array, drms_total;
  int spmd4, spmd8, spmd16;
};

// The paper's Table 3 (MB).
constexpr PaperRow kPaper[] = {
    {"BT", 63, 84, 147, 251, 502, 1004},
    {"LU", 85, 34, 119, 340, 679, 1358},
    {"SP", 53, 48, 101, 210, 420, 840},
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(argc, argv);
  std::cout << "Table 3: size of saved state (MB), class "
            << apps::to_string(args.problem_class) << " problems\n\n";

  support::TextTable table(
      {"App", "DRMS data", "DRMS array", "DRMS total", "SPMD 4PE",
       "SPMD 8PE", "SPMD 16PE", "paper DRMS", "paper SPMD 4/8/16"});

  int app_index = 0;
  for (const apps::AppSpec& spec : apps::AppSpec::all()) {
    const core::Index n = apps::grid_size(args.problem_class);
    const auto model = spec.segment_model(n);

    // Measured: take a real checkpoint and sum the files on the volume.
    const std::uint64_t drms_total = measure_state_size(
        spec, args.problem_class, 8, core::CheckpointMode::kDrms);
    const std::uint64_t data = model.total();
    const std::uint64_t arrays = spec.arrays_bytes(n);

    std::uint64_t spmd[3] = {0, 0, 0};
    const int parts[3] = {4, 8, 16};
    for (int i = 0; i < 3; ++i) {
      spmd[i] = measure_state_size(spec, args.problem_class, parts[i],
                                   core::CheckpointMode::kSpmd);
    }

    const PaperRow& paper = kPaper[app_index++];
    table.add_row(
        {spec.name, format_fixed(to_mib(data), 0),
         format_fixed(to_mib(arrays), 0),
         format_fixed(to_mib(drms_total), 0),
         format_fixed(to_mib(spmd[0]), 0), format_fixed(to_mib(spmd[1]), 0),
         format_fixed(to_mib(spmd[2]), 0),
         std::to_string(paper.drms_data) + "/" +
             std::to_string(paper.drms_array) + "/" +
             std::to_string(paper.drms_total),
         std::to_string(paper.spmd4) + "/" + std::to_string(paper.spmd8) +
             "/" + std::to_string(paper.spmd16)});
  }
  table.print(std::cout);

  std::cout << "\nInvariants: DRMS total is independent of the task count;"
            << "\nSPMD state doubles with the task count; DRMS < SPMD even"
            << "\nat the 4-processor compile minimum.\n";
  return 0;
}
