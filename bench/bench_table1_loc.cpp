// Table 1 — programming overhead of the DRMS model: lines added to each
// application to make it reconfigurable/checkpointable (~1% of the
// source in the paper's 10k-line Fortran NPB codes).
//
// Our applications are C++ re-implementations, so this bench reports two
// things: the paper's original Fortran numbers, and a mechanical count of
// the DRMS-API call sites in THIS repository's application sources (the
// same notion of "lines added to conform to the model", at our smaller
// code scale).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "support/table.hpp"
#include "support/units.hpp"

#ifndef DRMS_SOURCE_DIR
#define DRMS_SOURCE_DIR "."
#endif

namespace {

/// A line "conforms to the DRMS programming model" when it invokes the
/// checkpoint/reconfiguration API or registers replicated state.
bool is_drms_api_line(const std::string& line) {
  static const char* kMarkers[] = {
      "drms.initialize",      ".initialize()",
      "create_array",         ".distribute(",
      "reconfig_checkpoint",  "reconfig_chkenable",
      "register_i64",         "register_f64",
      "register_u64",         "register_string",
      "register_custom",      "segment_model",
      "array_distribution",   "make_program",
      "refresh_shadows",      "DrmsContext ",
  };
  for (const char* marker : kMarkers) {
    if (line.find(marker) != std::string::npos) {
      return true;
    }
  }
  return false;
}

struct FileCount {
  int total = 0;
  int api = 0;
};

FileCount count_file(const std::string& path) {
  FileCount c;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    ++c.total;
    if (is_drms_api_line(line)) {
      ++c.api;
    }
  }
  return c;
}

}  // namespace

int main() {
  std::cout << "Table 1: source lines added to conform to the DRMS "
               "programming model\n\n";

  drms::support::TextTable paper(
      {"Application", "Total source lines", "Lines added", "Overhead"});
  paper.add_row({"BT (paper, Fortran)", "10973", "107", "0.98%"});
  paper.add_row({"LU (paper, Fortran)", "9641", "85", "0.88%"});
  paper.add_row({"SP (paper, Fortran)", "9561", "99", "1.04%"});
  paper.print(std::cout);

  std::cout << "\nThis repository's application sources (C++):\n";
  drms::support::TextTable ours(
      {"File", "Total lines", "DRMS-API lines", "Share"});
  const std::string base = DRMS_SOURCE_DIR;
  const std::vector<std::string> files = {
      base + "/src/apps/solver.cpp",
      base + "/src/apps/app_spec.cpp",
      base + "/examples/quickstart.cpp",
  };
  int grand_total = 0;
  int grand_api = 0;
  for (const auto& path : files) {
    const FileCount c = count_file(path);
    if (c.total == 0) {
      continue;  // file not found (installed layout); skip quietly
    }
    grand_total += c.total;
    grand_api += c.api;
    ours.add_row({path.substr(base.size() + 1), std::to_string(c.total),
                  std::to_string(c.api),
                  drms::support::format_fixed(
                      100.0 * c.api / c.total, 1) + "%"});
  }
  if (grand_total > 0) {
    ours.add_rule();
    ours.add_row({"total", std::to_string(grand_total),
                  std::to_string(grand_api),
                  drms::support::format_fixed(
                      100.0 * grand_api / grand_total, 1) + "%"});
  }
  ours.print(std::cout);
  std::cout << "\nThe paper's point stands at either scale: exposing the "
               "distributed\ndata structures costs a small, localized "
               "fraction of the application\n(~1% of a 10k-line code).\n";
  return 0;
}
