// Perf gate — block-level delta generations with the pipelined codec
// stage vs plain full dumps, on a BT-like steady state.
//
// The application mutates its solution array everywhere each step (the
// raw-span path: conservative mark-all), touches only a thin slab of the
// rhs array (a precise insert: only the covered blocks go dirty), and
// never writes the forcing/lhs arrays after initialization. Under
// `env.delta` the engine stores one full base, then `full_every_k - 1`
// delta generations holding only the dirtied blocks, each run through
// the block codec inside the double-buffered streaming pass.
//
// Gates (exit 1 on failure):
//   bytes    steady-state delta generations write >= 30% fewer array
//            payload bytes than a full dump
//   time     their simulated checkpoint time is >= 10% below a full dump
//   restore  restarting from the chain tip reproduces the failure-free
//            array fingerprints of BOTH legs (base + deltas replayed,
//            newest block wins)
//   verify   deep verify of the chain tip walks the whole chain clean
//
// A machine-readable BENCH_delta.json is written alongside the table.
// The simulated-time tables of the paper runs are untouched: delta mode
// defaults off everywhere else.
#include <array>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/array_fingerprint.hpp"
#include "core/checkpoint_catalog.hpp"
#include "core/drms_context.hpp"
#include "json_writer.hpp"
#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "sim/cost_model.hpp"
#include "store/piofs_backend.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;
using core::DistArray;
using core::DistSpec;
using core::DrmsContext;
using core::DrmsEnv;
using core::DrmsProgram;
using core::Index;
using support::format_fixed;
using support::kKiB;
using support::kMiB;

constexpr int kTasks = 8;
constexpr int kFullEveryK = 4;

struct Params {
  Index n = 32;
  int generations = 8;
};

core::Slice grid_box(Index n) {
  const std::array<Index, 4> lo{0, 0, 0, 0};
  const std::array<Index, 4> hi{4, n - 1, n - 1, n - 1};
  return core::Slice::box(lo, hi);
}

core::AppSegmentModel segment() {
  core::AppSegmentModel m;
  m.static_local_bytes = 8 * kMiB;
  m.private_bytes = kMiB;
  m.system_bytes = 4 * kMiB;
  m.text_bytes = kMiB;
  return m;
}

/// The BT-like step, identical in both legs: u rewritten everywhere
/// through the raw typed view (mark-all), one z-plane slab of rhs
/// updated through a precise insert, forcing and lhs untouched.
void mutate_step(DistArray& u, DistArray& rhs, int rank, int gen) {
  auto view = u.local(rank).as_f64();
  for (std::size_t i = 0; i < view.size(); ++i) {
    view[i] = view[i] * 1.01 + 0.125 * static_cast<double>(gen + 1);
  }

  const core::Slice& assigned = rhs.distribution().assigned(rank);
  if (assigned.empty()) {
    return;
  }
  std::vector<Index> lo;
  std::vector<Index> hi;
  for (int k = 0; k < assigned.rank(); ++k) {
    lo.push_back(assigned.range(k).first());
    hi.push_back(k == assigned.rank() - 1 ? assigned.range(k).first()
                                          : assigned.range(k).last());
  }
  const core::Slice slab = core::Slice::box(lo, hi);
  core::LocalArray& local = rhs.local(rank);
  std::vector<std::byte> buf(
      static_cast<std::size_t>(slab.element_count()) * sizeof(double));
  local.extract(slab, buf);
  auto* vals = reinterpret_cast<double*>(buf.data());
  for (std::size_t i = 0; i < buf.size() / sizeof(double); ++i) {
    vals[i] = vals[i] * 0.99 + 0.0625 * static_cast<double>(gen + 1);
  }
  local.insert(slab, buf);
}

struct GenRecord {
  std::string kind;
  double seconds = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t dirty_blocks = 0;
  std::uint64_t total_blocks = 0;
};

struct LegResult {
  std::vector<GenRecord> gens;
  /// array_fingerprint of u, rhs, forcing, lhs after the last generation.
  std::vector<std::uint32_t> final_fingerprints;
  /// Delta leg only: fingerprints after restoring from the chain tip in
  /// a fresh program, and the chain-tip deep-verify outcome.
  std::vector<std::uint32_t> restored_fingerprints;
  bool verify_ok = true;
  std::vector<std::string> verify_problems;
  std::string tip_prefix;
};

LegResult run_leg(bool delta, const Params& p) {
  piofs::Volume volume(16);
  const sim::CostModel cost = sim::CostModel::paper_sp16();
  store::PiofsBackend storage(volume, &cost);
  const std::string app = delta ? "delta-bench" : "full-bench";
  DrmsEnv env;
  env.storage = &storage;
  env.cost = &cost;
  env.delta = delta;
  env.delta_full_every_k = kFullEveryK;
  env.delta_block_bytes = 64 * kKiB;
  env.delta_codec = support::BlockCodec::kLz;
  DrmsProgram program(app, env, segment(), kTasks);

  LegResult result;
  const std::array<int, 4> grid{1, 2, 2, 2};
  const std::array<Index, 4> shadow{0, 0, 0, 0};
  const DistSpec spec = DistSpec::block(grid_box(p.n), grid, shadow);

  rt::TaskGroup group(
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), kTasks));
  const auto run = group.run([&](rt::TaskContext& ctx) {
    DrmsContext drms(program, ctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();

    std::vector<Index> lo(4, 0);
    std::vector<Index> hi{4, p.n - 1, p.n - 1, p.n - 1};
    DistArray& u = drms.create_array("u", lo, hi);
    DistArray& rhs = drms.create_array("rhs", lo, hi);
    DistArray& forcing = drms.create_array("forcing", lo, hi);
    DistArray& lhs = drms.create_array("lhs", lo, hi);
    for (DistArray* a : {&u, &rhs, &forcing, &lhs}) {
      drms.distribute(*a, spec);
      auto view = a->local(ctx.rank()).as_f64();
      for (std::size_t i = 0; i < view.size(); ++i) {
        view[i] = static_cast<double>(i % 97) * 0.25;
      }
    }
    ctx.barrier();

    const std::uint64_t all_array_bytes = 4 * u.global_byte_count();
    for (int g = 0; g < p.generations; ++g) {
      mutate_step(u, rhs, ctx.rank(), g);
      ++it;
      ctx.barrier();
      char name[32];
      std::snprintf(name, sizeof(name), "%s.g%03d", app.c_str(), g);
      (void)drms.reconfig_checkpoint(name);
      if (ctx.rank() == 0) {
        GenRecord rec;
        rec.seconds = program.last_checkpoint_timing().total_seconds();
        if (delta) {
          const auto state = program.delta_chain_state();
          rec.kind = core::to_string(state.last_kind);
          rec.bytes = state.last_stored_bytes;
          rec.raw_bytes = state.last_raw_bytes;
          rec.dirty_blocks = state.last_dirty_blocks;
          rec.total_blocks = state.last_total_blocks;
        } else {
          rec.kind = "full";
          rec.bytes = all_array_bytes;
          rec.raw_bytes = all_array_bytes;
        }
        result.gens.push_back(rec);
        result.tip_prefix = name;
      }
      ctx.barrier();
    }
    for (DistArray* a : {&u, &rhs, &forcing, &lhs}) {
      const std::uint32_t fp = core::array_fingerprint(ctx, *a);
      if (ctx.rank() == 0) {
        result.final_fingerprints.push_back(fp);
      }
    }
  });
  if (!run.completed) {
    throw support::Error("delta bench write leg failed: " + run.kill_reason);
  }
  if (!delta) {
    return result;
  }

  // Deep verify walks the chain from the tip: the tip's own delta files,
  // then every base link down to the full generation.
  const auto tip = core::latest_checkpoint(storage, app);
  if (!tip.has_value() || tip->prefix != result.tip_prefix) {
    result.verify_ok = false;
    result.verify_problems.push_back("chain tip is not the newest candidate");
  } else {
    const core::VerifyResult v =
        core::verify_checkpoint(storage, *tip, /*deep=*/true);
    result.verify_ok = v.ok;
    result.verify_problems = v.problems;
  }

  // Restore leg: a fresh program restarts from the chain tip and must
  // reproduce the failure-free fingerprints exactly.
  DrmsEnv renv = env;
  renv.restart_prefix = result.tip_prefix;
  DrmsProgram restarted(app, renv, segment(), kTasks);
  rt::TaskGroup rgroup(
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), kTasks));
  const auto rrun = rgroup.run([&](rt::TaskContext& ctx) {
    DrmsContext drms(restarted, ctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();
    std::vector<Index> lo(4, 0);
    std::vector<Index> hi{4, p.n - 1, p.n - 1, p.n - 1};
    DistArray& u = drms.create_array("u", lo, hi);
    DistArray& rhs = drms.create_array("rhs", lo, hi);
    DistArray& forcing = drms.create_array("forcing", lo, hi);
    DistArray& lhs = drms.create_array("lhs", lo, hi);
    for (DistArray* a : {&u, &rhs, &forcing, &lhs}) {
      drms.distribute(*a, spec);
    }
    ctx.barrier();
    for (DistArray* a : {&u, &rhs, &forcing, &lhs}) {
      const std::uint32_t fp = core::array_fingerprint(ctx, *a);
      if (ctx.rank() == 0) {
        result.restored_fingerprints.push_back(fp);
      }
    }
  });
  if (!rrun.completed) {
    throw support::Error("delta bench restore leg failed: " +
                         rrun.kill_reason);
  }
  return result;
}

/// Mean over the generations the predicate selects.
template <typename Pred>
double mean_seconds(const LegResult& leg, Pred&& pred) {
  double sum = 0.0;
  int count = 0;
  for (const GenRecord& g : leg.gens) {
    if (pred(g)) {
      sum += g.seconds;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

template <typename Pred>
double mean_bytes(const LegResult& leg, Pred&& pred) {
  double sum = 0.0;
  int count = 0;
  for (const GenRecord& g : leg.gens) {
    if (pred(g)) {
      sum += static_cast<double>(g.bytes);
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

void write_json(const std::string& path, const Params& p,
                const LegResult& full, const LegResult& delta,
                double bytes_reduction, double time_reduction,
                bool restore_ok, bool fingerprints_match) {
  std::ofstream out(path);
  bench::JsonWriter json(out);
  json.begin_object();
  json.field("benchmark", "delta_generations");
  json.field("tasks", kTasks);
  json.field("n", static_cast<std::uint64_t>(p.n));
  json.field("generations", p.generations);
  json.field("full_every_k", kFullEveryK);
  json.field("block_bytes", static_cast<std::uint64_t>(64 * kKiB));
  json.field("codec", "lz");
  for (const auto* leg : {&full, &delta}) {
    json.begin_array(leg == &full ? "full" : "delta");
    for (const GenRecord& g : leg->gens) {
      json.begin_object();
      json.field("kind", g.kind);
      json.field("seconds", g.seconds);
      json.field("bytes", g.bytes);
      json.field("raw_bytes", g.raw_bytes);
      json.field("dirty_blocks", g.dirty_blocks);
      json.field("total_blocks", g.total_blocks);
      json.end_object();
    }
    json.end_array();
  }
  json.begin_object("gates");
  json.field("bytes_reduction_percent", bytes_reduction);
  json.field("time_reduction_percent", time_reduction);
  json.field("restore_fingerprints_match", restore_ok);
  json.field("cross_leg_fingerprints_match", fingerprints_match);
  json.field("chain_deep_verify_ok", delta.verify_ok);
  json.end_object();
  json.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      p.n = 16;
      p.generations = 6;
    }
  }

  std::cout << "Delta generations vs full dumps (BT-like steady state: u "
               "fully dirty,\none rhs z-plane dirty, forcing/lhs frozen; "
               "full base every " << kFullEveryK << " generations)\n\n";

  const LegResult full = run_leg(/*delta=*/false, p);
  const LegResult delta = run_leg(/*delta=*/true, p);

  support::TextTable table({"gen", "kind", "full (s)", "full (MB)",
                            "delta (s)", "delta (MB)", "blocks", "saved"});
  for (std::size_t i = 0; i < full.gens.size(); ++i) {
    const GenRecord& f = full.gens[i];
    const GenRecord& d = delta.gens[i];
    const double fb = support::to_mib(f.bytes);
    const double db = support::to_mib(d.bytes);
    table.add_row({std::to_string(i + 1), d.kind, format_fixed(f.seconds, 2),
                   format_fixed(fb, 2), format_fixed(d.seconds, 2),
                   format_fixed(db, 2),
                   std::to_string(d.dirty_blocks) + "/" +
                       std::to_string(d.total_blocks),
                   format_fixed(100.0 * (fb - db) / fb, 0) + "%"});
  }
  table.print(std::cout);

  const auto is_delta = [](const GenRecord& g) { return g.kind == "delta"; };
  const auto any = [](const GenRecord&) { return true; };
  const double full_bytes = mean_bytes(full, any);
  const double delta_bytes = mean_bytes(delta, is_delta);
  const double full_seconds = mean_seconds(full, any);
  const double delta_seconds = mean_seconds(delta, is_delta);
  const double bytes_reduction =
      full_bytes > 0.0 ? 100.0 * (full_bytes - delta_bytes) / full_bytes : 0.0;
  const double time_reduction =
      full_seconds > 0.0
          ? 100.0 * (full_seconds - delta_seconds) / full_seconds
          : 0.0;
  const bool fingerprints_match =
      full.final_fingerprints == delta.final_fingerprints;
  const bool restore_ok =
      !delta.restored_fingerprints.empty() &&
      delta.restored_fingerprints == delta.final_fingerprints;

  std::cout << "\nsteady-state delta generation: "
            << format_fixed(bytes_reduction, 1) << "% fewer bytes, "
            << format_fixed(time_reduction, 1)
            << "% less simulated checkpoint time than a full dump\n";

  write_json("BENCH_delta.json", p, full, delta, bytes_reduction,
             time_reduction, restore_ok, fingerprints_match);
  std::cout << "wrote BENCH_delta.json\n";

  bool ok = true;
  if (bytes_reduction < 30.0) {
    std::cerr << "REGRESSION: delta generations only save "
              << format_fixed(bytes_reduction, 1)
              << "% of the bytes written (expected >= 30%)\n";
    ok = false;
  }
  if (time_reduction < 10.0) {
    std::cerr << "REGRESSION: delta generations only save "
              << format_fixed(time_reduction, 1)
              << "% of the checkpoint time (expected >= 10%)\n";
    ok = false;
  }
  if (!fingerprints_match) {
    std::cerr << "REGRESSION: the delta leg's final state differs from the "
                 "full leg's\n";
    ok = false;
  }
  if (!restore_ok) {
    std::cerr << "REGRESSION: restoring from the chain tip ("
              << delta.tip_prefix
              << ") did not reproduce the failure-free fingerprints\n";
    ok = false;
  }
  if (!delta.verify_ok) {
    std::cerr << "REGRESSION: deep verify of the chain tip failed:\n";
    for (const std::string& s : delta.verify_problems) {
      std::cerr << "  " << s << "\n";
    }
    ok = false;
  }
  if (ok) {
    std::cout << "all delta gates passed (>= 30% bytes, >= 10% time, "
                 "restore + verify clean)\n";
  }
  return ok ? 0 : 1;
}
