// Ablation — multi-level (memory -> PIOFS) staged checkpointing versus
// the paper's PIOFS-only path, for the DRMS engine on 4/8/16 tasks.
//
// Three storage configurations per partition size:
//   piofs        the seed path: checkpoints commit against PIOFS
//   tiered       commit against the node-local memory tier; a background
//                drain copies the state to PIOFS afterwards; restart
//                reads the surviving fast copy
//   tiered+loss  same commit, but the memory tier is lost before the
//                restart (node failure), which falls back to the drained
//                PIOFS copy
//
// The application-visible checkpoint latency-to-commit should drop well
// below the PIOFS-only time (memory bandwidth versus server-limited
// striped writes); the drain pays the PIOFS cost off the critical path.
// A machine-readable BENCH_tiered.json is written alongside the table.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "json_writer.hpp"
#include "support/table.hpp"

namespace {

using namespace drms;
using bench::ExperimentConfig;
using bench::ExperimentResult;
using bench::mean_pm_sigma;
using bench::StorageKind;

struct Row {
  int tasks = 0;
  std::string config;
  ExperimentResult result;
};

ExperimentConfig base_config(const bench::BenchArgs& args, int tasks) {
  ExperimentConfig cfg;
  cfg.spec = apps::AppSpec::sp();
  cfg.problem_class = args.problem_class;
  cfg.tasks = tasks;
  cfg.mode = core::CheckpointMode::kDrms;
  cfg.runs = args.runs;
  return cfg;
}

void write_json(const std::string& path, const bench::BenchArgs& args,
                const std::vector<Row>& rows) {
  std::ofstream out(path);
  bench::JsonWriter json(out);
  json.begin_object();
  json.field("benchmark", "tiered_ablation");
  json.field("app", "SP");
  json.field("mode", "DRMS");
  json.field("units", "simulated_seconds");
  json.field("runs", args.runs);
  json.field("problem_class", apps::to_string(args.problem_class));
  json.begin_array("rows");
  for (const auto& row : rows) {
    json.begin_object();
    json.field("tasks", row.tasks);
    json.field("config", row.config);
    json.field("state_bytes", row.result.state_bytes);
    json.field("checkpoint_mean_s", row.result.checkpoint_totals().mean());
    json.field("checkpoint_sigma_s", row.result.checkpoint_totals().stddev());
    json.field("restart_mean_s", row.result.restart_totals().mean());
    json.field("restart_sigma_s", row.result.restart_totals().stddev());
    json.field("drain_mean_s", row.result.drain_totals().mean());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(argc, argv);
  std::cout << "Tiered ablation: SP/DRMS checkpoint latency-to-commit and "
               "restart,\nPIOFS-only vs memory->PIOFS staging, "
            << args.runs << " runs, class "
            << apps::to_string(args.problem_class) << "\n\n";

  std::vector<Row> rows;
  support::TextTable table({"Tasks", "Config", "Commit (s)", "Drain (s)",
                            "Restart (s)"});
  bool tiered_wins = true;
  for (const int tasks : {4, 8, 16}) {
    ExperimentResult piofs;
    for (const char* config : {"piofs", "tiered", "tiered+loss"}) {
      ExperimentConfig cfg = base_config(args, tasks);
      if (config != std::string("piofs")) {
        cfg.storage = StorageKind::kTiered;
        cfg.fail_fast_before_restart = config == std::string("tiered+loss");
      }
      const ExperimentResult r = bench::run_experiment(cfg);
      if (config == std::string("piofs")) {
        piofs = r;
      } else if (tasks >= 8 &&
                 r.checkpoint_totals().mean() >=
                     piofs.checkpoint_totals().mean()) {
        tiered_wins = false;
      }
      table.add_row({std::to_string(tasks), config,
                     mean_pm_sigma(r.checkpoint_totals()),
                     cfg.storage == StorageKind::kTiered
                         ? mean_pm_sigma(r.drain_totals())
                         : "-",
                     mean_pm_sigma(r.restart_totals())});
      rows.push_back(Row{tasks, config, r});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: staged commit beats the PIOFS-only "
               "checkpoint (memory\nbandwidth vs server-limited writes); "
               "the drain absorbs the PIOFS cost\noff the critical path; "
               "restart after a fast-tier loss survives on the\ndrained "
               "copy at PIOFS read speed.\n";
  std::cout << "\nlatency-to-commit below PIOFS-only at 8 and 16 tasks: "
            << (tiered_wins ? "yes" : "NO — REGRESSION") << "\n";

  write_json("BENCH_tiered.json", args, rows);
  std::cout << "wrote BENCH_tiered.json\n";
  return tiered_wins ? 0 : 1;
}
