// Ablation — cost structure of reconfiguration (drms_adjust +
// redistribute): how much of the global data set actually has to cross
// task boundaries when an application restarts with t2 instead of t1
// tasks, over a sweep of (t1 -> t2) pairs. Small |delta| keeps most block
// boundaries aligned; relatively prime task counts move nearly
// everything. Measured two ways: analytically from the slice algebra and
// by running the real exchange through the message-passing runtime.
#include <benchmark/benchmark.h>

#include <array>

#include "core/redistribute.hpp"
#include "rt/task_group.hpp"
#include "sim/machine.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;
using core::DistSpec;
using core::Index;
using core::Slice;

constexpr Index kN = 32;

Slice grid_box() {
  const std::array<Index, 3> lo{0, 0, 0};
  const std::array<Index, 3> hi{kN - 1, kN - 1, kN - 1};
  return Slice::box(lo, hi);
}

/// Bytes that must move between DIFFERENT tasks when going old -> new.
std::uint64_t analytic_moved_bytes(const DistSpec& from,
                                   const DistSpec& to) {
  std::uint64_t moved = 0;
  const int p = std::max(from.task_count(), to.task_count());
  for (int i = 0; i < from.task_count(); ++i) {
    for (int j = 0; j < to.task_count(); ++j) {
      if (i == j) {
        continue;
      }
      moved += static_cast<std::uint64_t>(
                   from.assigned(i).intersect(to.mapped(j))
                       .element_count()) *
               sizeof(double);
    }
  }
  (void)p;
  return moved;
}

void BM_ReconfigurationTraffic(benchmark::State& state) {
  const int t1 = static_cast<int>(state.range(0));
  const int t2 = static_cast<int>(state.range(1));
  const int p = std::max(t1, t2);
  const std::array<Index, 3> shadow{1, 1, 1};

  auto padded = [&](int tasks) {
    const DistSpec partial = DistSpec::block_auto(grid_box(), tasks,
                                                  shadow);
    std::vector<core::TaskSection> sections;
    for (int t = 0; t < p; ++t) {
      if (t < tasks) {
        sections.push_back(partial.section(t));
      } else {
        sections.push_back(core::TaskSection{Slice::empty_of_rank(3),
                                             Slice::empty_of_rank(3)});
      }
    }
    return DistSpec(grid_box(), std::move(sections));
  };
  const DistSpec from = padded(t1);
  const DistSpec to = padded(t2);

  std::uint64_t moved = 0;
  for (auto _ : state) {
    // Real path: run the exchange through the runtime and count the
    // bytes the volume-independent exchange shipped between tasks.
    core::DistArray array("u", grid_box(), sizeof(double), p);
    rt::TaskGroup group(sim::Placement::one_per_node(
        sim::Machine::paper_sp16(), p));
    const auto result = group.run([&](rt::TaskContext& ctx) {
      if (ctx.rank() == 0) {
        array.install_distribution(from);
      }
      ctx.barrier();
      core::redistribute(ctx, array, to);
    });
    if (!result.completed) {
      state.SkipWithError("redistribution run failed");
      return;
    }
    moved = analytic_moved_bytes(from, to);
    benchmark::DoNotOptimize(moved);
  }
  const auto total_bytes = static_cast<double>(
      grid_box().element_count() * static_cast<Index>(sizeof(double)));
  state.counters["moved_MB"] = support::to_mib(moved);
  state.counters["moved_fraction"] =
      static_cast<double>(moved) / total_bytes;
}

}  // namespace

BENCHMARK(BM_ReconfigurationTraffic)
    ->Args({8, 8})    // delta = 0: only shadow refresh traffic
    ->Args({8, 7})    // shrink by one
    ->Args({8, 9})    // grow by one
    ->Args({8, 4})    // halve (aligned boundaries)
    ->Args({4, 8})    // double
    ->Args({8, 16})
    ->Args({7, 13})   // relatively prime: nearly everything moves
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
