// Table 4 — Components of the data segment of a representative task:
// total data, local sections of the distributed arrays (static halo'd
// allocation at the 4-task compile minimum), system-related storage
// (message-passing buffers), and private/replicated data.
#include <iostream>

#include "harness.hpp"
#include "support/table.hpp"

namespace {

struct PaperRow {
  const char* app;
  std::uint64_t total, locals, system, private_repl;
};

// The paper's Table 4 (bytes). LU's private column is printed as
// 44,134,872 in the paper but is inconsistent with its own total by 1000
// bytes; the value implied by the total is shown here.
constexpr PaperRow kPaper[] = {
    {"BT", 65'982'468, 25'635'456, 34'972'228, 5'374'784},
    {"LU", 89'169'924, 10'061'824, 34'972'228, 44'135'872},
    {"SP", 55'242'756, 14'648'832, 34'972'228, 5'621'696},
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = drms::bench::parse_bench_args(argc, argv);
  std::cout << "Table 4: components of the data segment (bytes), class "
            << drms::apps::to_string(args.problem_class) << "\n\n";

  drms::support::TextTable table({"App", "Total data", "Local sections",
                                  "System related", "Private/replicated",
                                  "paper total", "match"});
  int i = 0;
  for (const auto& spec : drms::apps::AppSpec::all()) {
    const auto model =
        spec.segment_model(drms::apps::grid_size(args.problem_class));
    const PaperRow& paper = kPaper[i++];
    const bool match =
        args.problem_class == drms::apps::ProblemClass::kA &&
        model.total() == paper.total &&
        model.static_local_bytes == paper.locals &&
        model.system_bytes == paper.system &&
        model.private_bytes == paper.private_repl;
    table.add_row({spec.name, std::to_string(model.total()),
                   std::to_string(model.static_local_bytes),
                   std::to_string(model.system_bytes),
                   std::to_string(model.private_bytes),
                   std::to_string(paper.total),
                   match ? "EXACT" : "(class != A)"});
  }
  table.print(std::cout);
  std::cout << "\nLocal sections are slightly larger than 1/4 of the "
               "distributed arrays\nbecause of the shadow regions in each "
               "task's address space (see Section 6).\n";
  return 0;
}
