// Section 6 — the analytical shadow-region model: a grid-based
// computation over an N^d grid on P = Q^d tasks with shadow width delta
// keeps (n + 2*delta)^d local points per task (n = N/Q), so task-based
// (local-view) checkpointing saves r = ((n + 2*delta)/n)^d times more
// grid data than global-view (DRMS) checkpointing. The paper's example:
// n = 32, delta = 1, d = 3 gives r = 1.38; for NPB BT class C on 125
// processors that is ~500 MB of extra data.
//
// This bench prints the analytic sweep AND cross-checks the formula
// against the DistSpec mapped/assigned accounting of the real
// distribution machinery.
#include <cmath>
#include <iostream>

#include "core/dist_spec.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;
using core::DistSpec;
using core::Index;
using core::Slice;
using support::format_fixed;

double ratio(double n, double delta, int d) {
  return std::pow((n + 2.0 * delta) / n, d);
}

}  // namespace

int main() {
  std::cout << "Section 6: local-view vs global-view saved grid data\n"
            << "r = ((n + 2*delta)/n)^d, n = N/P^(1/d)\n\n";

  // --- Analytic sweep over the per-task subgrid size and shadow width.
  support::TextTable sweep({"n", "delta=1 d=2", "delta=1 d=3",
                            "delta=2 d=3", "delta=3 d=3"});
  for (const Index n : {8, 16, 32, 64, 128}) {
    sweep.add_row({std::to_string(n),
                   format_fixed(ratio(static_cast<double>(n), 1, 2), 3),
                   format_fixed(ratio(static_cast<double>(n), 1, 3), 3),
                   format_fixed(ratio(static_cast<double>(n), 2, 3), 3),
                   format_fixed(ratio(static_cast<double>(n), 3, 3), 3)});
  }
  sweep.print(std::cout);

  // The paper quotes r = 1.38 for n = 32, d = 3; the shadow width it used
  // is lost in the available text. r(delta=1) = 1.20 and r(delta=2) = 1.42
  // bracket it; the quoted value corresponds to an effective delta of
  // ~1.75 (BT mixes shadow widths across its arrays).
  std::cout << "\nPaper's example (n=32, d=3): r(delta=1) = "
            << format_fixed(ratio(32, 1, 3), 2) << ", r(delta=2) = "
            << format_fixed(ratio(32, 2, 3), 2)
            << "  (paper quotes r = 1.38, i.e. effective delta ~1.75)\n";

  // BT class C: 162^3 grid on 125 (5^3) processors; the paper quotes
  // ~500 MB of extra local-view data.
  {
    const double edge = 162.0;
    const double procs = 125.0;
    const double n = edge / std::cbrt(procs);
    // BT's distributed grid data: 84 MiB at class A's 64^3, scaled.
    const double grid_mb = 84.0 * std::pow(edge / 64.0, 3);
    const double extra_quoted = grid_mb * (1.38 - 1.0);
    const double extra_d2 = grid_mb * (ratio(n, 2, 3) - 1.0);
    std::cout << "BT class C on 125 processors: n = " << format_fixed(n, 1)
              << ", grid data = " << format_fixed(grid_mb, 0)
              << " MB; extra local-view data = "
              << format_fixed(extra_d2, 0) << " MB at delta=2, "
              << format_fixed(extra_quoted, 0)
              << " MB at the paper's r=1.38 (paper: ~500 MB)\n";
  }

  // --- Cross-check against the real distribution machinery: the ratio of
  // mapped to assigned element totals of interior tasks approaches r as
  // P grows (boundary clamping explains the gap at small P).
  std::cout << "\nCross-check vs DistSpec accounting (64^3 grid, "
               "delta=1):\n";
  support::TextTable check(
      {"P", "n", "analytic r", "measured mapped/assigned", "max task r"});
  const std::vector<Index> lo(3, 0);
  const std::vector<Index> hi(3, 63);
  const Slice box = Slice::box(lo, hi);
  for (const int procs : {8, 27, 64}) {
    const std::vector<Index> shadow(3, 1);
    const DistSpec spec = DistSpec::block_auto(box, procs, shadow);
    const double measured =
        static_cast<double>(spec.mapped_element_total()) /
        static_cast<double>(spec.assigned_element_total());
    double max_task = 0;
    for (int t = 0; t < procs; ++t) {
      max_task = std::max(
          max_task, static_cast<double>(spec.mapped(t).element_count()) /
                        static_cast<double>(
                            spec.assigned(t).element_count()));
    }
    const double n = 64.0 / std::cbrt(static_cast<double>(procs));
    check.add_row({std::to_string(procs), format_fixed(n, 1),
                   format_fixed(ratio(n, 1, 3), 3),
                   format_fixed(measured, 3), format_fixed(max_task, 3)});
  }
  check.print(std::cout);
  std::cout << "\nr grows with P at fixed N — task-based checkpointing "
               "saves ever more\nredundant shadow data as the machine "
               "scales, while global-view DRMS\ncheckpoints stay at "
               "exactly the grid size.\n";
  return 0;
}
