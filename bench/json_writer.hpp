// Tiny streaming JSON writer for the machine-readable bench outputs
// (BENCH_table5.json, BENCH_tiered.json). Only what the benches need:
// nested objects/arrays plus string, integer and double fields. Doubles
// are written with round-trip precision; non-finite values become null.
#pragma once

#include <cstdint>
#include <limits>
#include <cmath>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace drms::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object() {
    element();
    out_ << '{';
    frames_.push_back(false);
  }
  void begin_object(const std::string& key) {
    member(key);
    out_ << '{';
    frames_.push_back(false);
  }
  void end_object() {
    DRMS_EXPECTS_MSG(!frames_.empty(), "end_object without begin_object");
    out_ << '}';
    frames_.pop_back();
  }
  void begin_array(const std::string& key) {
    member(key);
    out_ << '[';
    frames_.push_back(false);
  }
  void end_array() {
    DRMS_EXPECTS_MSG(!frames_.empty(), "end_array without begin_array");
    out_ << ']';
    frames_.pop_back();
  }

  void field(const std::string& key, const std::string& value) {
    member(key);
    quote(value);
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    member(key);
    number(value);
  }
  void field(const std::string& key, std::uint64_t value) {
    member(key);
    out_ << value;
  }
  void field(const std::string& key, int value) {
    member(key);
    out_ << value;
  }
  void field(const std::string& key, bool value) {
    member(key);
    out_ << (value ? "true" : "false");
  }

 private:
  /// Comma bookkeeping for the next element of the innermost container.
  void element() {
    if (!frames_.empty()) {
      if (frames_.back()) {
        out_ << ',';
      }
      frames_.back() = true;
    }
  }
  void member(const std::string& key) {
    element();
    quote(key);
    out_ << ':';
  }
  void quote(const std::string& s) {
    static const char* kHex = "0123456789abcdef";
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        case '\r':
          out_ << "\\r";
          break;
        default: {
          // RFC 8259: all other control characters MUST be escaped.
          const auto u = static_cast<unsigned char>(c);
          if (u < 0x20) {
            out_ << "\\u00" << kHex[u >> 4] << kHex[u & 0xf];
          } else {
            out_ << c;
          }
        }
      }
    }
    out_ << '"';
  }
  void number(double value) {
    if (!std::isfinite(value)) {
      out_ << "null";
      return;
    }
    std::ostringstream tmp;
    tmp.precision(std::numeric_limits<double>::max_digits10);
    tmp << value;
    out_ << tmp.str();
  }

  std::ostream& out_;
  std::vector<bool> frames_;
};

}  // namespace drms::bench
