// Figure 7 — The Table 6 data in graphical form: for each partition size
// (8 and 16 processors) and each application, stacked bars for the
// checkpoint ('C') and restart ('R') operations, broken into the data
// segment, distributed arrays, and other (restart initialization)
// components. Rendered as horizontal ASCII bars plus a CSV block for
// replotting.
#include <iostream>
#include <string>

#include "harness.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;

void print_bar(const std::string& label, double seg, double arr,
               double other, double scale) {
  auto repeat = [](char c, double seconds, double s) {
    return std::string(static_cast<std::size_t>(seconds * s + 0.5), c);
  };
  const double total = seg + arr + other;
  std::cout << "  " << label << " |" << repeat('#', seg, scale)
            << repeat('=', arr, scale) << repeat('.', other, scale) << "  "
            << support::format_fixed(total, 1) << " s\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(argc, argv);
  std::cout << "Figure 7: components of DRMS checkpoint ('C') and restart "
               "('R') times\n"
            << "(# data segment, = distributed arrays, . other; "
            << args.runs << " runs, class "
            << apps::to_string(args.problem_class) << ")\n";

  struct Bar {
    std::string label;
    double seg, arr, other;
  };
  std::vector<Bar> bars;
  std::vector<std::string> csv;
  csv.push_back(
      "partition,app,operation,segment_s,arrays_s,other_s,total_s");

  for (const int pe : {8, 16}) {
    std::cout << "\n" << pe << " processors:\n";
    for (const auto& spec : apps::AppSpec::all()) {
      bench::ExperimentConfig cfg;
      cfg.spec = spec;
      cfg.problem_class = args.problem_class;
      cfg.tasks = pe;
      cfg.mode = core::CheckpointMode::kDrms;
      cfg.runs = args.runs;
      const auto r = bench::run_experiment(cfg);

      const double c_seg = r.checkpoint_segment().mean();
      const double c_arr = r.checkpoint_arrays().mean();
      const double r_seg = r.restart_segment().mean();
      const double r_arr = r.restart_arrays().mean();
      const double r_other = r.restart_init().mean();

      print_bar(spec.name + " C", c_seg, c_arr, 0.0, 1.0);
      print_bar(spec.name + " R", r_seg, r_arr, r_other, 1.0);

      csv.push_back(std::to_string(pe) + "," + spec.name + ",C," +
                    support::format_fixed(c_seg, 2) + "," +
                    support::format_fixed(c_arr, 2) + ",0.00," +
                    support::format_fixed(c_seg + c_arr, 2));
      csv.push_back(std::to_string(pe) + "," + spec.name + ",R," +
                    support::format_fixed(r_seg, 2) + "," +
                    support::format_fixed(r_arr, 2) + "," +
                    support::format_fixed(r_other, 2) + "," +
                    support::format_fixed(r_seg + r_arr + r_other, 2));
    }
  }

  std::cout << "\nCSV series (for replotting):\n";
  for (const auto& line : csv) {
    std::cout << line << '\n';
  }
  std::cout << "\nThe paper's headline visual: restart on 16 processors is "
               "markedly\nshorter than the same restart on 8 (the '=' "
               "array component halves),\nwhile checkpoint grows slightly.\n";
  return 0;
}
