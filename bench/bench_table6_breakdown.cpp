// Table 6 — Components of DRMS checkpoint and restart operations: total
// time and I/O rate, plus the data-segment and distributed-array
// components (percent of total, and component rates).
//
// Rate conventions follow the paper: checkpoint rates divide the bytes
// written once; the restart data-segment rate counts the bytes DELIVERED
// (every task reads the whole shared segment, so bytes x tasks), which is
// why read rates grow with the partition while write rates do not.
#include <iostream>

#include "harness.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;
using support::format_fixed;
using support::to_mib;

struct PaperRow {
  const char* app;
  int pe;
  double c_total, c_rate, c_seg_pct, c_seg_rate, c_arr_pct, c_arr_rate;
  double r_total, r_rate, r_seg_pct, r_seg_rate, r_arr_pct, r_arr_rate;
};

// The paper's Table 6.
constexpr PaperRow kPaper[] = {
    {"BT", 8, 16.0, 9.2, 32, 12.4, 68, 7.7, 41.6, 14.1, 42, 29.0, 49, 4.1},
    {"BT", 16, 19.5, 7.5, 38, 8.4, 62, 7.0, 31.7, 34.4, 57, 55.4, 32, 8.4},
    {"LU", 8, 19.0, 6.3, 68, 6.6, 32, 5.5, 46.4, 15.4, 69, 21.3, 23, 3.1},
    {"LU", 16, 18.2, 6.5, 56, 8.4, 44, 4.2, 30.7, 45.4, 71, 62.6, 15, 7.2},
    {"SP", 8, 13.3, 7.6, 40, 10.0, 60, 6.0, 34.5, 13.6, 47, 26.0, 42, 3.3},
    {"SP", 16, 16.3, 6.2, 39, 8.3, 61, 4.9, 26.5, 33.6, 57, 55.9, 29, 6.2},
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(argc, argv);
  std::cout << "Table 6: components of DRMS checkpoint and restart ("
            << args.runs << " runs, class "
            << apps::to_string(args.problem_class) << ")\n\n";

  support::TextTable table(
      {"App", "PEs", "C total(s)", "C rate", "C seg%", "C seg rate",
       "C arr%", "C arr rate", "R total(s)", "R rate", "R seg%",
       "R seg rate", "R arr%", "R arr rate"});
  support::TextTable paper_table(
      {"App", "PEs", "C total(s)", "C rate", "C seg%", "C seg rate",
       "C arr%", "C arr rate", "R total(s)", "R rate", "R seg%",
       "R seg rate", "R arr%", "R arr rate"});

  int row = 0;
  for (const auto& spec : apps::AppSpec::all()) {
    for (const int pe : {8, 16}) {
      bench::ExperimentConfig cfg;
      cfg.spec = spec;
      cfg.problem_class = args.problem_class;
      cfg.tasks = pe;
      cfg.mode = core::CheckpointMode::kDrms;
      cfg.runs = args.runs;
      const auto r = bench::run_experiment(cfg);

      const double seg_mb = to_mib(r.segment_bytes);
      const double arr_mb = to_mib(r.arrays_bytes);
      const double total_mb = seg_mb + arr_mb;

      const double c_total = r.checkpoint_totals().mean();
      const double c_seg = r.checkpoint_segment().mean();
      const double c_arr = r.checkpoint_arrays().mean();
      const double r_total = r.restart_totals().mean();
      const double r_seg = r.restart_segment().mean();
      const double r_arr = r.restart_arrays().mean();
      // Restart "rate" counts delivered bytes: P copies of the segment
      // plus one pass over the arrays.
      const double r_delivered_mb = seg_mb * pe + arr_mb;

      table.add_row(
          {spec.name, std::to_string(pe), format_fixed(c_total, 1),
           format_fixed(total_mb / c_total, 1),
           format_fixed(100.0 * c_seg / c_total, 0),
           format_fixed(seg_mb / c_seg, 1),
           format_fixed(100.0 * c_arr / c_total, 0),
           format_fixed(arr_mb / c_arr, 1), format_fixed(r_total, 1),
           format_fixed(r_delivered_mb / r_total, 1),
           format_fixed(100.0 * r_seg / r_total, 0),
           format_fixed(seg_mb * pe / r_seg, 1),
           format_fixed(100.0 * r_arr / r_total, 0),
           format_fixed(arr_mb / r_arr, 1)});

      const PaperRow& p = kPaper[row++];
      paper_table.add_row(
          {p.app, std::to_string(p.pe), format_fixed(p.c_total, 1),
           format_fixed(p.c_rate, 1), format_fixed(p.c_seg_pct, 0),
           format_fixed(p.c_seg_rate, 1), format_fixed(p.c_arr_pct, 0),
           format_fixed(p.c_arr_rate, 1), format_fixed(p.r_total, 1),
           format_fixed(p.r_rate, 1), format_fixed(p.r_seg_pct, 0),
           format_fixed(p.r_seg_rate, 1), format_fixed(p.r_arr_pct, 0),
           format_fixed(p.r_arr_rate, 1)});
    }
  }

  std::cout << "Measured (simulated time, rates in MB/s):\n";
  table.print(std::cout);
  std::cout << "\nPaper (Table 6):\n";
  paper_table.print(std::cout);
  std::cout <<
      "\nExpected shapes: restart components sum to 85-90% of the total\n"
      "(the rest is application-text load); segment READ rates grow with\n"
      "the partition (client-limited + prefetch) while WRITE rates fall\n"
      "or stay flat (server-limited + co-location interference).\n";
  return 0;
}
