// Table 5 — Time to checkpoint and restart DRMS and non-reconfigurable
// SPMD applications, on 8 and 16 of the 16 SP nodes, mean +- sigma over
// N runs (paper: 10) in simulated seconds. Alongside the printed table a
// machine-readable BENCH_table5.json is written to the working directory.
#include <fstream>
#include <iostream>

#include "harness.hpp"
#include "json_writer.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "support/table.hpp"

namespace {

using namespace drms;
using bench::ExperimentConfig;
using bench::mean_pm_sigma;

struct PaperCell {
  int mean, sigma;
};
struct PaperRow {
  const char* app;
  PaperCell ckpt8_drms, ckpt8_spmd, ckpt16_drms, ckpt16_spmd;
  PaperCell rst8_drms, rst8_spmd, rst16_drms, rst16_spmd;
};

// The paper's Table 5 (seconds, mean +- sigma of 10 runs). The published
// table is partially garbled in the available text; SPMD cells marked by
// the prose ("BT restart shows a five-fold increase 8->16", "SP only
// doubles", "LU minimal additional degradation") are reconstructed from
// those constraints and the size data.
constexpr PaperRow kPaper[] = {
    {"BT", {16, 2}, {41, 16}, {20, 2}, {114, 16},
     {42, 3}, {21, 1}, {32, 5}, {109, 10}},
    {"LU", {19, 2}, {128, 18}, {18, 4}, {185, 10},
     {46, 20}, {125, 20}, {31, 3}, {145, 27}},
    {"SP", {13, 3}, {28, 12}, {16, 2}, {96, 18},
     {35, 2}, {16, 1}, {26, 2}, {42, 11}},
};

std::string paper_cell(const PaperCell& c) {
  return std::to_string(c.mean) + " +- " + std::to_string(c.sigma);
}

struct JsonCell {
  std::string app;
  int tasks = 0;
  core::CheckpointMode mode = core::CheckpointMode::kDrms;
  bench::ExperimentResult result;
};

void write_json(const std::string& path, const bench::BenchArgs& args,
                const std::vector<JsonCell>& cells) {
  std::ofstream out(path);
  bench::JsonWriter json(out);
  json.begin_object();
  json.field("benchmark", "table5");
  json.field("units", "simulated_seconds");
  json.field("runs", args.runs);
  json.field("problem_class", apps::to_string(args.problem_class));
  json.begin_array("cells");
  for (const auto& cell : cells) {
    json.begin_object();
    json.field("app", cell.app);
    json.field("tasks", cell.tasks);
    json.field("mode",
               cell.mode == core::CheckpointMode::kDrms ? "DRMS" : "SPMD");
    json.field("state_bytes", cell.result.state_bytes);
    json.field("checkpoint_mean_s", cell.result.checkpoint_totals().mean());
    json.field("checkpoint_sigma_s",
               cell.result.checkpoint_totals().stddev());
    json.field("restart_mean_s", cell.result.restart_totals().mean());
    json.field("restart_sigma_s", cell.result.restart_totals().stddev());
    // Commit-publication overhead (meta + manifest), NOT included in
    // checkpoint_mean_s — reported like the drain time.
    json.field("commit_mean_s", cell.result.checkpoint_commit().mean());
    json.field("commit_sigma_s", cell.result.checkpoint_commit().stddev());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_bench_args(argc, argv);
  std::cout << "Table 5: checkpoint and restart times (simulated s), "
            << args.runs << " runs, class "
            << apps::to_string(args.problem_class) << "\n\n";

  support::TextTable ckpt({"App", "8PE DRMS", "8PE SPMD", "16PE DRMS",
                           "16PE SPMD", "paper 8 D/S", "paper 16 D/S",
                           "commit 16 D/S"});
  support::TextTable rst({"App", "8PE DRMS", "8PE SPMD", "16PE DRMS",
                          "16PE SPMD", "paper 8 D/S", "paper 16 D/S"});

  // --trace: record run 0 of every cell into one recorder and dump the
  // Chrome trace alongside the JSON. Recording never touches simulated
  // time, so BENCH_table5.json is bit-identical with or without it.
  obs::Recorder trace_recorder;
  int i = 0;
  std::vector<JsonCell> json_cells;
  for (const auto& spec : apps::AppSpec::all()) {
    bench::ExperimentResult cell[2][2];  // [partition][mode]
    const int parts[2] = {8, 16};
    const core::CheckpointMode modes[2] = {core::CheckpointMode::kDrms,
                                           core::CheckpointMode::kSpmd};
    for (int p = 0; p < 2; ++p) {
      for (int m = 0; m < 2; ++m) {
        ExperimentConfig cfg;
        cfg.spec = spec;
        cfg.problem_class = args.problem_class;
        cfg.tasks = parts[p];
        cfg.mode = modes[m];
        cfg.runs = args.runs;
        cfg.recorder = args.trace ? &trace_recorder : nullptr;
        cell[p][m] = bench::run_experiment(cfg);
        json_cells.push_back(
            JsonCell{spec.name, parts[p], modes[m], cell[p][m]});
      }
    }
    const PaperRow& paper = kPaper[i++];
    ckpt.add_row({spec.name,
                  mean_pm_sigma(cell[0][0].checkpoint_totals()),
                  mean_pm_sigma(cell[0][1].checkpoint_totals()),
                  mean_pm_sigma(cell[1][0].checkpoint_totals()),
                  mean_pm_sigma(cell[1][1].checkpoint_totals()),
                  paper_cell(paper.ckpt8_drms) + " / " +
                      paper_cell(paper.ckpt8_spmd),
                  paper_cell(paper.ckpt16_drms) + " / " +
                      paper_cell(paper.ckpt16_spmd),
                  // Commit-publication overhead (meta + manifest), not
                  // part of the checkpoint columns to its left.
                  mean_pm_sigma(cell[1][0].checkpoint_commit(), 3) + " / " +
                      mean_pm_sigma(cell[1][1].checkpoint_commit(), 3)});
    rst.add_row({spec.name,
                 mean_pm_sigma(cell[0][0].restart_totals()),
                 mean_pm_sigma(cell[0][1].restart_totals()),
                 mean_pm_sigma(cell[1][0].restart_totals()),
                 mean_pm_sigma(cell[1][1].restart_totals()),
                 paper_cell(paper.rst8_drms) + " / " +
                     paper_cell(paper.rst8_spmd),
                 paper_cell(paper.rst16_drms) + " / " +
                     paper_cell(paper.rst16_spmd)});
  }

  std::cout << "Checkpoint time (s):\n";
  ckpt.print(std::cout);
  std::cout << "\nRestart time (s):\n";
  rst.print(std::cout);
  std::cout <<
      "\nExpected shapes: DRMS checkpoint always beats SPMD and the gap\n"
      "widens with the partition; DRMS checkpoint rises slightly 8->16\n"
      "(server co-location) while DRMS restart falls (client-limited\n"
      "reads); SPMD restart collapses past the buffer-memory threshold\n"
      "(BT ~5x at 16PE, LU already slow at 8PE, SP roughly doubles); and\n"
      "below the threshold (BT/SP at 8PE) SPMD restart beats DRMS restart.\n";
  write_json("BENCH_table5.json", args, json_cells);
  std::cout << "\nwrote BENCH_table5.json\n";
  if (args.trace) {
    std::ofstream trace_out("TRACE_table5.json");
    obs::write_chrome_trace(trace_out, trace_recorder);
    trace_out << "\n";
    std::cout << "wrote TRACE_table5.json (" << trace_recorder.span_count()
              << " spans)\n";
  }
  return 0;
}
