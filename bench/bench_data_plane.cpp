// Data-plane microbenchmark — host wall-clock throughput of the byte-
// moving layers under the checkpoint engines, at the paper's 64^3 array
// shape:
//
//   crc          CRC-32C kernels (bytewise / slicing-by-16 / hardware)
//                over a 64 MiB buffer, plus the runtime-dispatched one
//   gather       LocalArray::extract into a stream-ordered buffer
//   scatter      LocalArray::insert back from the stream
//   exchange     one exchange_sections round across an 8-task group
//   checkpoint   full DrmsCheckpoint write / restore against the memory
//                backend (null cost model: pure host data plane)
//
// All numbers are HOST wall-clock GB/s — the simulated-time tables are
// untouched by definition (this bench charges no simulated seconds). A
// machine-readable BENCH_dataplane.json is written alongside the table.
// Exit status is 1 when the dispatched CRC kernel fails to beat the
// bytewise reference by at least 4x (the hardware/slicing paths are the
// point of the fast data plane).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/drms_checkpoint.hpp"
#include "core/exchange.hpp"
#include "core/streamer.hpp"
#include "json_writer.hpp"
#include "obs/instrumented_backend.hpp"
#include "obs/recorder.hpp"
#include "obs/trace_export.hpp"
#include "rt/task_group.hpp"
#include "sim/machine.hpp"
#include "store/memory_backend.hpp"
#include "support/crc32.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double gbps(std::uint64_t bytes, double seconds) {
  return seconds <= 0.0 ? 0.0
                        : static_cast<double>(bytes) / seconds / 1.0e9;
}

std::string fmt_gbps(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Deterministic non-trivial fill (no RNG state shared with the
/// simulation paths).
void fill_pattern(std::span<std::byte> out) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < out.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::byte>(x);
  }
}

/// Run `body` enough times to accumulate a measurable interval; returns
/// wall seconds per call.
template <typename F>
double time_per_call(int reps, F&& body) {
  body();  // warm-up (page in buffers, resolve dispatch)
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) {
    body();
  }
  return seconds_since(t0) / reps;
}

struct CrcResult {
  std::string kernel;
  bool available = false;
  double gb_per_s = 0.0;
  double speedup_vs_bytewise = 0.0;
};

std::vector<CrcResult> bench_crc(std::uint64_t buffer_bytes, int reps) {
  std::vector<std::byte> buffer(static_cast<std::size_t>(buffer_bytes));
  fill_pattern(buffer);

  const std::uint32_t reference =
      support::crc32c(support::Crc32cKernel::kBytewise, buffer);

  std::vector<CrcResult> results;
  double bytewise_gbps = 0.0;
  for (const auto kernel : {support::Crc32cKernel::kBytewise,
                            support::Crc32cKernel::kSlicing16,
                            support::Crc32cKernel::kHardware}) {
    CrcResult r;
    r.kernel = support::to_string(kernel);
    r.available = support::crc32c_kernel_available(kernel);
    if (r.available) {
      // Every kernel must agree before being timed — a fast wrong answer
      // is worthless.
      if (support::crc32c(kernel, buffer) != reference) {
        std::cerr << "FATAL: kernel " << r.kernel
                  << " disagrees with the bytewise reference\n";
        std::exit(1);
      }
      volatile std::uint32_t sink = 0;
      const double per_call = time_per_call(
          kernel == support::Crc32cKernel::kBytewise ? std::max(1, reps / 8)
                                                     : reps,
          [&] { sink = support::crc32c(kernel, buffer); });
      (void)sink;
      r.gb_per_s = gbps(buffer_bytes, per_call);
      if (kernel == support::Crc32cKernel::kBytewise) {
        bytewise_gbps = r.gb_per_s;
      }
      r.speedup_vs_bytewise =
          bytewise_gbps > 0.0 ? r.gb_per_s / bytewise_gbps : 0.0;
    }
    results.push_back(r);
  }
  // The kernel the data plane actually uses.
  CrcResult active;
  active.kernel = std::string("dispatched(") +
                  support::to_string(support::crc32c_active_kernel()) + ")";
  active.available = true;
  volatile std::uint32_t sink = 0;
  const double per_call =
      time_per_call(reps, [&] { sink = support::crc32c(buffer); });
  (void)sink;
  active.gb_per_s = gbps(buffer_bytes, per_call);
  active.speedup_vs_bytewise =
      bytewise_gbps > 0.0 ? active.gb_per_s / bytewise_gbps : 0.0;
  results.push_back(active);
  return results;
}

struct PlainResult {
  std::string name;
  std::uint64_t bytes_per_call = 0;
  double gb_per_s = 0.0;
};

/// extract/insert over the paper shape: one task's 64^3 double block.
std::vector<PlainResult> bench_gather_scatter(int reps) {
  const core::Slice box = core::Slice::box(
      std::vector<core::Index>{0, 0, 0}, std::vector<core::Index>{63, 63, 63});
  core::LocalArray local(box, sizeof(double));
  fill_pattern(local.bytes());
  std::vector<std::byte> stream(local.byte_size());

  std::vector<PlainResult> out;
  {
    PlainResult r;
    r.name = "gather (extract)";
    r.bytes_per_call = local.byte_size();
    const double per_call =
        time_per_call(reps, [&] { local.extract(box, stream); });
    r.gb_per_s = gbps(r.bytes_per_call, per_call);
    out.push_back(r);
  }
  {
    PlainResult r;
    r.name = "scatter (insert)";
    r.bytes_per_call = local.byte_size();
    const double per_call =
        time_per_call(reps, [&] { local.insert(box, stream); });
    r.gb_per_s = gbps(r.bytes_per_call, per_call);
    out.push_back(r);
  }
  return out;
}

/// One parallel-write exchange round on an 8-task group: block-distributed
/// 64^3 array redistributed into the canonical per-chunk staging locals.
PlainResult bench_exchange(int reps) {
  constexpr int kTasks = 8;
  const core::Slice box = core::Slice::box(
      std::vector<core::Index>{0, 0, 0}, std::vector<core::Index>{63, 63, 63});
  const std::uint64_t total_bytes =
      static_cast<std::uint64_t>(box.element_count()) * sizeof(double);

  rt::TaskGroup group(
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), kTasks));
  core::DistArray array("u", box, sizeof(double), kTasks);

  // Round 0 of an 8-wide stream plan: task q stages chunk q.
  const core::StreamPlan plan =
      core::make_stream_plan(box, sizeof(double), kTasks,
                             total_bytes / kTasks + 1);
  double per_call = 0.0;
  const auto result = group.run([&](rt::TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(core::DistSpec::block_auto(
          box, kTasks, std::vector<core::Index>(3, 0)));
    }
    ctx.barrier();
    fill_pattern(array.local(ctx.rank()).bytes());
    ctx.barrier();

    const core::Slice empty = core::Slice::empty_of_rank(3);
    std::vector<core::Slice> dst_mapped(kTasks, empty);
    for (int q = 0; q < kTasks; ++q) {
      if (static_cast<std::size_t>(q) < plan.chunk_count()) {
        dst_mapped[static_cast<std::size_t>(q)] =
            plan.chunks[static_cast<std::size_t>(q)];
      }
    }
    const core::Slice& mine =
        dst_mapped[static_cast<std::size_t>(ctx.rank())];
    core::LocalArray staging =
        mine.empty() ? core::LocalArray()
                     : core::LocalArray(mine, sizeof(double));
    const std::vector<core::Slice> src_assigned =
        array.distribution().assigned_slices();

    const auto run_once = [&] {
      core::exchange_sections(
          ctx, src_assigned, &array.local(ctx.rank()), dst_mapped,
          staging.element_count() > 0 ? &staging : nullptr, sizeof(double));
    };
    run_once();  // warm-up
    ctx.barrier();
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      run_once();
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      per_call = seconds_since(t0) / reps;
    }
  });
  if (!result.completed) {
    std::cerr << "FATAL: exchange bench group did not complete\n";
    std::exit(1);
  }

  PlainResult r;
  r.name = "exchange round (8 tasks)";
  r.bytes_per_call = total_bytes;
  r.gb_per_s = gbps(r.bytes_per_call, per_call);
  return r;
}

/// Full checkpoint write and restore of a 64^3 double array through the
/// DRMS engine against the in-memory backend (null cost model — the run
/// is pure host data plane: exchange, CRC, write_at, read_at_into).
std::vector<PlainResult> bench_checkpoint(int reps) {
  constexpr int kTasks = 8;
  const core::Slice box = core::Slice::box(
      std::vector<core::Index>{0, 0, 0}, std::vector<core::Index>{63, 63, 63});
  const std::uint64_t array_bytes =
      static_cast<std::uint64_t>(box.element_count()) * sizeof(double);

  store::MemoryBackend backend;  // unlimited, no cost model
  core::DrmsCheckpoint engine(backend, {}, kTasks);
  core::AppSegmentModel segment;
  segment.private_bytes = 1 * support::kMiB;

  rt::TaskGroup group(
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), kTasks));
  core::DistArray array("u", box, sizeof(double), kTasks);
  std::int64_t sop = 42;
  core::ReplicatedStore store;
  store.register_i64("sop", &sop);

  double write_per_call = 0.0;
  double restore_per_call = 0.0;
  const auto result = group.run([&](rt::TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(core::DistSpec::block_auto(
          box, kTasks, std::vector<core::Index>(3, 0)));
    }
    ctx.barrier();
    fill_pattern(array.local(ctx.rank()).bytes());
    ctx.barrier();

    core::DistArray* arrays[] = {&array};
    const auto write_once = [&] {
      engine.write(ctx, "bench/ckpt", "bench", sop, store, arrays, segment);
    };
    write_once();  // warm-up; also leaves a checkpoint for the reads
    ctx.barrier();
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      write_once();
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      write_per_call = seconds_since(t0) / reps;
    }

    const auto restore_once = [&] {
      core::RestartTiming timing;
      const core::CheckpointMeta meta =
          engine.restore_segment(ctx, "bench/ckpt", store, segment, timing);
      engine.restore_array(ctx, "bench/ckpt", meta, array, timing);
    };
    restore_once();  // warm-up
    ctx.barrier();
    t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      restore_once();
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      restore_per_call = seconds_since(t0) / reps;
    }
  });
  if (!result.completed) {
    std::cerr << "FATAL: checkpoint bench group did not complete\n";
    std::exit(1);
  }

  std::vector<PlainResult> out;
  out.push_back({"checkpoint write (DRMS, memory)", array_bytes,
                 gbps(array_bytes, write_per_call)});
  out.push_back({"checkpoint restore (DRMS, memory)", array_bytes,
                 gbps(array_bytes, restore_per_call)});
  return out;
}

/// --trace: one extra (untimed) checkpoint write + restore with the
/// recorder attached and the store instrumented, dumped as a Chrome
/// trace. Runs after the timed loops so the recording cost (span
/// bookkeeping, store wrapping) cannot touch the reported numbers.
void trace_checkpoint(const std::string& path) {
  constexpr int kTasks = 8;
  const core::Slice box = core::Slice::box(
      std::vector<core::Index>{0, 0, 0}, std::vector<core::Index>{63, 63, 63});

  obs::Recorder recorder;
  store::MemoryBackend memory;
  obs::InstrumentedBackend backend(memory, &recorder, "memory");
  core::DrmsCheckpoint engine(backend, {}, /*io_tasks=*/0, support::kMiB,
                              /*jitter=*/false, &recorder);
  core::AppSegmentModel segment;
  segment.private_bytes = 1 * support::kMiB;

  rt::TaskGroup group(
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), kTasks));
  core::DistArray array("u", box, sizeof(double), kTasks);
  std::int64_t sop = 42;
  core::ReplicatedStore store;
  store.register_i64("sop", &sop);

  const auto result = group.run([&](rt::TaskContext& ctx) {
    if (ctx.rank() == 0) {
      array.install_distribution(core::DistSpec::block_auto(
          box, kTasks, std::vector<core::Index>(3, 0)));
    }
    ctx.barrier();
    fill_pattern(array.local(ctx.rank()).bytes());
    ctx.barrier();

    core::DistArray* arrays[] = {&array};
    engine.write(ctx, "bench/trace", "bench", sop, store, arrays, segment);
    core::RestartTiming timing;
    const core::CheckpointMeta meta =
        engine.restore_segment(ctx, "bench/trace", store, segment, timing);
    engine.restore_array(ctx, "bench/trace", meta, array, timing);
  });
  if (!result.completed) {
    std::cerr << "FATAL: traced checkpoint group did not complete\n";
    std::exit(1);
  }

  std::ofstream out(path);
  obs::write_chrome_trace(out, recorder);
  out << '\n';
  std::cout << "wrote " << path << " (" << recorder.span_count()
            << " spans)\n";
}

void write_json(const std::string& path, std::uint64_t crc_buffer_bytes,
                const std::vector<CrcResult>& crc,
                const std::vector<PlainResult>& rest) {
  std::ofstream out(path);
  bench::JsonWriter json(out);
  json.begin_object();
  json.field("benchmark", "data_plane");
  json.field("units", "GB_per_second_wall_clock");
  json.field("array_shape", "64x64x64 doubles");
  json.field("crc_buffer_bytes", crc_buffer_bytes);
  json.begin_array("crc");
  for (const auto& r : crc) {
    json.begin_object();
    json.field("kernel", r.kernel);
    json.field("available", r.available);
    json.field("gb_per_s", r.gb_per_s);
    json.field("speedup_vs_bytewise", r.speedup_vs_bytewise);
    json.end_object();
  }
  json.end_array();
  json.begin_array("data_path");
  for (const auto& r : rest) {
    json.begin_object();
    json.field("name", r.name);
    json.field("bytes_per_call", r.bytes_per_call);
    json.field("gb_per_s", r.gb_per_s);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: fewer repetitions (CI perf smoke); numbers are noisier but
  // the >= 4x CRC gate still has an order of magnitude of headroom.
  bool quick = false;
  bool trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else if (std::string(argv[i]) == "--trace") {
      trace = true;
    }
  }
  const int crc_reps = quick ? 4 : 32;
  const int data_reps = quick ? 8 : 64;
  const std::uint64_t crc_buffer_bytes =
      (quick ? 16 : 64) * support::kMiB;

  const std::vector<CrcResult> crc = bench_crc(crc_buffer_bytes, crc_reps);
  std::vector<PlainResult> rest = bench_gather_scatter(data_reps);
  rest.push_back(bench_exchange(data_reps));
  for (auto& r : bench_checkpoint(quick ? 4 : 16)) {
    rest.push_back(r);
  }

  support::TextTable table({"Stage", "GB/s", "vs bytewise"});
  for (const auto& r : crc) {
    table.add_row({"crc32c " + r.kernel,
                   r.available ? fmt_gbps(r.gb_per_s) : "n/a",
                   r.available ? fmt_gbps(r.speedup_vs_bytewise) + "x"
                               : "n/a"});
  }
  table.add_rule();
  for (const auto& r : rest) {
    table.add_row({r.name, fmt_gbps(r.gb_per_s), ""});
  }
  table.print(std::cout);

  write_json("BENCH_dataplane.json", crc_buffer_bytes, crc, rest);
  std::cout << "\nwrote BENCH_dataplane.json\n";
  if (trace) {
    trace_checkpoint("TRACE_dataplane.json");
  }

  const double dispatched_speedup = crc.back().speedup_vs_bytewise;
  if (dispatched_speedup < 4.0) {
    std::cerr << "REGRESSION: dispatched CRC-32C is only "
              << fmt_gbps(dispatched_speedup)
              << "x the bytewise reference (expected >= 4x)\n";
    return 1;
  }
  std::cout << "dispatched CRC-32C speedup: "
            << fmt_gbps(dispatched_speedup) << "x (>= 4x required)\n";
  return 0;
}
