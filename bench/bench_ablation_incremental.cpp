// Ablation — incremental checkpointing (the §6 memory-exclusion
// optimization applied to DRMS at whole-array granularity).
//
// The BT-like application mutates only its solution and rhs fields each
// iteration; forcing and the lhs work arrays are write-once. A sequence
// of checkpoints under one prefix is taken with and without incremental
// mode; the second and later incremental checkpoints skip the unchanged
// arrays and their simulated streaming time.
#include <array>
#include <iostream>

#include "core/drms_context.hpp"
#include "piofs/volume.hpp"
#include "store/piofs_backend.hpp"
#include "support/error.hpp"
#include "rt/task_group.hpp"
#include "sim/cost_model.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;
using core::DistArray;
using core::DistSpec;
using core::DrmsContext;
using core::DrmsEnv;
using core::DrmsProgram;
using core::Index;
using support::format_fixed;
using support::kMiB;

constexpr Index kN = 32;
constexpr int kTasks = 8;
constexpr int kCheckpoints = 4;

core::Slice grid_box() {
  const std::array<Index, 4> lo{0, 0, 0, 0};
  const std::array<Index, 4> hi{4, kN - 1, kN - 1, kN - 1};
  return core::Slice::box(lo, hi);
}

core::AppSegmentModel segment() {
  core::AppSegmentModel m;
  m.static_local_bytes = 8 * kMiB;
  m.private_bytes = kMiB;
  m.system_bytes = 4 * kMiB;
  m.text_bytes = kMiB;
  return m;
}

struct SequenceResult {
  std::vector<double> checkpoint_seconds;
  int skipped_last = 0;
  std::uint64_t skipped_bytes_last = 0;
};

SequenceResult run_sequence(bool incremental) {
  piofs::Volume volume(16);
  const sim::CostModel cost = sim::CostModel::paper_sp16();
  store::PiofsBackend storage(volume, &cost);
  DrmsEnv env;
  env.storage = &storage;
  env.cost = &cost;
  env.incremental = incremental;
  DrmsProgram program("inc-bench", env, segment(), kTasks);

  SequenceResult result;
  rt::TaskGroup group(
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), kTasks));
  const auto run = group.run([&](rt::TaskContext& ctx) {
    DrmsContext drms(program, ctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();

    std::vector<Index> lo(4, 0);
    std::vector<Index> hi{4, kN - 1, kN - 1, kN - 1};
    DistArray& u = drms.create_array("u", lo, hi);
    DistArray& rhs = drms.create_array("rhs", lo, hi);
    DistArray& forcing = drms.create_array("forcing", lo, hi);
    DistArray& lhs = drms.create_array("lhs", lo, hi);
    const std::array<int, 4> grid{1, 2, 2, 2};
    const std::array<Index, 4> shadow{0, 0, 0, 0};
    const DistSpec spec = DistSpec::block(grid_box(), grid, shadow);
    for (DistArray* a : {&u, &rhs, &forcing, &lhs}) {
      drms.distribute(*a, spec);
      auto view = a->local(ctx.rank()).as_f64();
      for (std::size_t i = 0; i < view.size(); ++i) {
        view[i] = static_cast<double>(i % 97) * 0.25;
      }
    }
    ctx.barrier();

    for (int c = 0; c < kCheckpoints; ++c) {
      // Mutate only u and rhs between checkpoints.
      for (DistArray* a : {&u, &rhs}) {
        auto view = a->local(ctx.rank()).as_f64();
        for (std::size_t i = 0; i < view.size(); ++i) {
          view[i] = view[i] * 1.01 + 0.125;
        }
      }
      ctx.barrier();
      (void)drms.reconfig_checkpoint("inc.state");
      if (ctx.rank() == 0) {
        result.checkpoint_seconds.push_back(
            program.last_checkpoint_timing().total_seconds());
      }
      ctx.barrier();
    }
  });
  if (!run.completed) {
    throw support::Error("incremental bench run failed: " +
                         run.kill_reason);
  }
  const auto state = program.incremental_state();
  result.skipped_last = state.arrays_skipped;
  result.skipped_bytes_last = state.bytes_skipped;
  return result;
}

}  // namespace

int main() {
  std::cout << "Ablation: incremental DRMS checkpointing\n"
            << "(4 arrays x "
            << format_fixed(support::to_mib(5ull * kN * kN * kN * 8), 1)
            << " MB; only u and rhs change between checkpoints)\n\n";

  const SequenceResult full = run_sequence(false);
  const SequenceResult inc = run_sequence(true);

  support::TextTable table({"checkpoint #", "full (s)", "incremental (s)",
                            "saving"});
  for (int c = 0; c < kCheckpoints; ++c) {
    const double f = full.checkpoint_seconds[static_cast<std::size_t>(c)];
    const double i = inc.checkpoint_seconds[static_cast<std::size_t>(c)];
    table.add_row({std::to_string(c + 1), format_fixed(f, 2),
                   format_fixed(i, 2),
                   format_fixed(100.0 * (f - i) / f, 0) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nlast incremental checkpoint skipped "
            << inc.skipped_last << " arrays ("
            << support::format_bytes(inc.skipped_bytes_last)
            << " of streaming avoided).\n"
            << "The first checkpoint writes everything; later ones skip "
               "the write-once\narrays — the paper's point that "
               "memory-exclusion optimizations compose\nwith DRMS "
               "checkpointing (§6).\n";
  return 0;
}
