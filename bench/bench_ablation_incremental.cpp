// Ablation — incremental checkpointing (the §6 memory-exclusion
// optimization applied to DRMS at whole-array granularity).
//
// The BT-like application mutates only its solution and rhs fields each
// iteration; forcing and the lhs work arrays are write-once. A sequence
// of checkpoints under one prefix is taken with and without incremental
// mode; the second and later incremental checkpoints skip the unchanged
// arrays and their simulated streaming time.
#include <array>
#include <iostream>

#include "core/drms_context.hpp"
#include "piofs/volume.hpp"
#include "store/piofs_backend.hpp"
#include "support/error.hpp"
#include "rt/task_group.hpp"
#include "sim/cost_model.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using namespace drms;
using core::DistArray;
using core::DistSpec;
using core::DrmsContext;
using core::DrmsEnv;
using core::DrmsProgram;
using core::Index;
using support::format_fixed;
using support::kMiB;

constexpr Index kN = 32;
constexpr int kTasks = 8;
constexpr int kCheckpoints = 4;

core::Slice grid_box() {
  const std::array<Index, 4> lo{0, 0, 0, 0};
  const std::array<Index, 4> hi{4, kN - 1, kN - 1, kN - 1};
  return core::Slice::box(lo, hi);
}

core::AppSegmentModel segment() {
  core::AppSegmentModel m;
  m.static_local_bytes = 8 * kMiB;
  m.private_bytes = kMiB;
  m.system_bytes = 4 * kMiB;
  m.text_bytes = kMiB;
  return m;
}

/// Which ablation leg: full dumps every time, whole-array incremental
/// skipping, or block-level delta generations (one full, then deltas).
enum class Mode { kFull, kIncremental, kDelta };

struct SequenceResult {
  std::vector<double> checkpoint_seconds;
  /// Array payload actually written per checkpoint (full stream bytes,
  /// minus skipped arrays for incremental, stored delta bytes for delta).
  std::vector<std::uint64_t> bytes_written;
  int skipped_last = 0;
  std::uint64_t skipped_bytes_last = 0;
};

SequenceResult run_sequence(Mode mode) {
  piofs::Volume volume(16);
  const sim::CostModel cost = sim::CostModel::paper_sp16();
  store::PiofsBackend storage(volume, &cost);
  DrmsEnv env;
  env.storage = &storage;
  env.cost = &cost;
  env.incremental = mode == Mode::kIncremental;
  env.delta = mode == Mode::kDelta;
  env.delta_full_every_k = kCheckpoints;  // one full base, then deltas
  DrmsProgram program("inc-bench", env, segment(), kTasks);

  SequenceResult result;
  rt::TaskGroup group(
      sim::Placement::one_per_node(sim::Machine::paper_sp16(), kTasks));
  const auto run = group.run([&](rt::TaskContext& ctx) {
    DrmsContext drms(program, ctx);
    std::int64_t it = 0;
    drms.store().register_i64("it", &it);
    drms.initialize();

    std::vector<Index> lo(4, 0);
    std::vector<Index> hi{4, kN - 1, kN - 1, kN - 1};
    DistArray& u = drms.create_array("u", lo, hi);
    DistArray& rhs = drms.create_array("rhs", lo, hi);
    DistArray& forcing = drms.create_array("forcing", lo, hi);
    DistArray& lhs = drms.create_array("lhs", lo, hi);
    const std::array<int, 4> grid{1, 2, 2, 2};
    const std::array<Index, 4> shadow{0, 0, 0, 0};
    const DistSpec spec = DistSpec::block(grid_box(), grid, shadow);
    for (DistArray* a : {&u, &rhs, &forcing, &lhs}) {
      drms.distribute(*a, spec);
      auto view = a->local(ctx.rank()).as_f64();
      for (std::size_t i = 0; i < view.size(); ++i) {
        view[i] = static_cast<double>(i % 97) * 0.25;
      }
    }
    ctx.barrier();

    const std::uint64_t all_array_bytes = 4 * u.global_byte_count();
    for (int c = 0; c < kCheckpoints; ++c) {
      // Mutate only u and rhs between checkpoints.
      for (DistArray* a : {&u, &rhs}) {
        auto view = a->local(ctx.rank()).as_f64();
        for (std::size_t i = 0; i < view.size(); ++i) {
          view[i] = view[i] * 1.01 + 0.125;
        }
      }
      ctx.barrier();
      // Delta mode chains generations across distinct prefixes (a delta
      // must never overwrite a member of its own chain); the other modes
      // cycle one prefix as before.
      (void)drms.reconfig_checkpoint(
          mode == Mode::kDelta ? "inc.state.g" + std::to_string(c)
                               : "inc.state");
      if (ctx.rank() == 0) {
        result.checkpoint_seconds.push_back(
            program.last_checkpoint_timing().total_seconds());
        std::uint64_t written = all_array_bytes;
        if (mode == Mode::kIncremental) {
          written -= program.incremental_state().bytes_skipped;
        } else if (mode == Mode::kDelta) {
          written = program.delta_chain_state().last_stored_bytes;
        }
        result.bytes_written.push_back(written);
      }
      ctx.barrier();
    }
  });
  if (!run.completed) {
    throw support::Error("incremental bench run failed: " +
                         run.kill_reason);
  }
  const auto state = program.incremental_state();
  result.skipped_last = state.arrays_skipped;
  result.skipped_bytes_last = state.bytes_skipped;
  return result;
}

}  // namespace

int main() {
  std::cout << "Ablation: incremental DRMS checkpointing\n"
            << "(4 arrays x "
            << format_fixed(support::to_mib(5ull * kN * kN * kN * 8), 1)
            << " MB; only u and rhs change between checkpoints)\n\n";

  const SequenceResult full = run_sequence(Mode::kFull);
  const SequenceResult inc = run_sequence(Mode::kIncremental);
  const SequenceResult delta = run_sequence(Mode::kDelta);

  support::TextTable table({"checkpoint #", "full (s)", "full (MB)",
                            "incr (s)", "incr (MB)", "delta (s)",
                            "delta (MB)", "delta vs full"});
  for (int c = 0; c < kCheckpoints; ++c) {
    const auto i = static_cast<std::size_t>(c);
    const double fs = full.checkpoint_seconds[i];
    const double is = inc.checkpoint_seconds[i];
    const double ds = delta.checkpoint_seconds[i];
    const double fb = support::to_mib(full.bytes_written[i]);
    const double ib = support::to_mib(inc.bytes_written[i]);
    const double db = support::to_mib(delta.bytes_written[i]);
    table.add_row({std::to_string(c + 1), format_fixed(fs, 2),
                   format_fixed(fb, 1), format_fixed(is, 2),
                   format_fixed(ib, 1), format_fixed(ds, 2),
                   format_fixed(db, 1),
                   format_fixed(100.0 * (fb - db) / fb, 0) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nlast incremental checkpoint skipped "
            << inc.skipped_last << " arrays ("
            << support::format_bytes(inc.skipped_bytes_last)
            << " of streaming avoided).\n"
            << "The first checkpoint writes everything; later ones skip "
               "the write-once\narrays (incremental) or store only the "
               "dirtied blocks through the codec\nstage (delta) — the "
               "paper's point that memory-exclusion optimizations\n"
               "compose with DRMS checkpointing (§6).\n";
  return 0;
}
