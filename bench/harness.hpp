// Shared harness for the table/figure reproduction benches: runs the
// BT/LU/SP applications on the simulated 16-node SP with the calibrated
// PIOFS cost model, takes a blocking checkpoint at mid-execution, restarts
// from it, and collects the simulated-time components (the measurements
// behind Tables 3, 5, 6 and Figure 7).
#pragma once

#include <string>
#include <vector>

#include "apps/app_spec.hpp"
#include "apps/solver.hpp"
#include "core/drms_context.hpp"
#include "obs/recorder.hpp"
#include "support/stats.hpp"

namespace drms::bench {

/// Which storage stack the experiment checkpoints against.
enum class StorageKind {
  /// The paper's configuration: PIOFS only.
  kPiofs,
  /// Multi-level: a node-local memory tier staged over PIOFS.
  kTiered,
};

struct ExperimentConfig {
  apps::AppSpec spec;
  apps::ProblemClass problem_class = apps::ProblemClass::kA;
  int tasks = 8;
  core::CheckpointMode mode = core::CheckpointMode::kDrms;
  /// Timed repetitions (the paper reports mean and sigma over 10 runs).
  int runs = 10;
  std::uint64_t seed = 20260704;
  StorageKind storage = StorageKind::kPiofs;
  /// Tiered: memory-tier capacity in bytes (0 = unlimited).
  std::uint64_t fast_capacity_bytes = 0;
  /// Tiered: drop the memory tier between checkpoint and restart (node
  /// loss), forcing the restart to read the drained PIOFS copies.
  bool fail_fast_before_restart = false;
  /// Non-null: record trace spans and metrics for run 0 only (repeated
  /// runs would bloat the trace without adding information). Recording
  /// never perturbs simulated time, so the measured results are identical
  /// with or without it.
  obs::Recorder* recorder = nullptr;
};

/// One run's simulated-time measurements.
struct RunMeasurement {
  core::CheckpointTiming checkpoint;
  core::RestartTiming restart;
  /// Tiered runs: simulated background time of the PIOFS drain (NOT part
  /// of the application-visible checkpoint latency).
  double drain_seconds = 0.0;
};

struct ExperimentResult {
  ExperimentConfig config;
  std::vector<RunMeasurement> runs;
  /// On-volume size of the saved state (identical across runs).
  std::uint64_t state_bytes = 0;
  std::uint64_t segment_bytes = 0;
  std::uint64_t arrays_bytes = 0;

  [[nodiscard]] support::RunningStats checkpoint_totals() const;
  [[nodiscard]] support::RunningStats restart_totals() const;
  [[nodiscard]] support::RunningStats checkpoint_segment() const;
  [[nodiscard]] support::RunningStats checkpoint_arrays() const;
  [[nodiscard]] support::RunningStats restart_segment() const;
  [[nodiscard]] support::RunningStats restart_arrays() const;
  [[nodiscard]] support::RunningStats restart_init() const;
  [[nodiscard]] support::RunningStats drain_totals() const;
  /// Commit-publication overhead (meta + manifest write), reported beside
  /// the phase totals like drain_seconds — not part of checkpoint_totals().
  [[nodiscard]] support::RunningStats checkpoint_commit() const;
};

/// Run the full checkpoint-at-midpoint / restart-from-midpoint experiment
/// of §5 for one (app, partition, version) cell.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Saved-state size only (no cost model, single run) — for Table 3.
[[nodiscard]] std::uint64_t measure_state_size(const apps::AppSpec& spec,
                                               apps::ProblemClass pc,
                                               int tasks,
                                               core::CheckpointMode mode);

/// "16.0 +- 2.1" formatting used in the Table 5 cells.
[[nodiscard]] std::string mean_pm_sigma(const support::RunningStats& s,
                                        int precision = 0);

/// Parse a "--runs N" / "--class S|W|A" / "--trace" style command line
/// (very small, shared by the bench mains). Unknown flags are ignored.
struct BenchArgs {
  int runs = 10;
  apps::ProblemClass problem_class = apps::ProblemClass::kA;
  /// Additionally dump a Chrome trace_event JSON of an instrumented pass.
  bool trace = false;
};
[[nodiscard]] BenchArgs parse_bench_args(int argc, char** argv);

}  // namespace drms::bench
