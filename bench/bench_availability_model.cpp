// Availability analysis — the Wong & Franklin result ([19]) the paper
// leans on: "checkpoint/recovery WITHOUT load redistribution has limited
// use for applications requiring a large number of processors. When
// recovery with load redistribution is possible, application performance
// degradation in the presence of failures is negligibly small, as long as
// the checkpointing and load-redistribution overheads are small."
//
// Model: an application needs W hours of useful work on P of N
// processors. Processor failures are independent with MTBF M per node
// (exponential), repairs take R hours. Checkpoints cost c hours every tau
// hours of progress.
//
//   rigid    — restart requires exactly P processors: after a failure the
//              application WAITS for the repair, then resumes from the
//              last checkpoint.
//   reconfig — DRMS-style: the application restarts immediately on the
//              surviving processors (work rate scales with processors),
//              returning to P when the repair completes.
//
// Expected-dilation is estimated by a seeded Monte Carlo simulation of
// the failure/repair process (10k trials per cell).
#include <algorithm>
#include <cmath>
#include <limits>
#include <iostream>
#include <vector>

#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using drms::support::Rng;
using drms::support::format_fixed;

struct Scenario {
  double work_hours = 100.0;   // useful work at full speed
  double mtbf_hours = 2000.0;  // per processor
  double repair_hours = 8.0;
  double tau_hours = 1.0;      // checkpoint interval (in progress time)
  double overhead_hours = 0.01;  // checkpoint cost
  int processors = 16;
  bool reconfigurable = false;
};

/// Simulate one run; returns the wall-clock hours to finish.
double simulate_run(const Scenario& s, Rng& rng) {
  double wall = 0.0;
  double progress = 0.0;          // useful work completed
  double last_checkpoint = 0.0;   // progress at the last checkpoint
  int up = s.processors;          // processors currently healthy
  // Repair completion times (wall clock), one per failed processor.
  std::vector<double> repairs;

  auto draw_failure_gap = [&](int procs) {
    // Time to the next failure among `procs` processors.
    const double rate = procs / s.mtbf_hours;
    double u = rng.next_double();
    if (u <= 0.0) {
      u = 1e-12;
    }
    return -std::log(u) / rate;
  };

  while (progress < s.work_hours) {
    // Next repair completion, if any.
    const double next_repair =
        repairs.empty() ? std::numeric_limits<double>::infinity()
                        : *std::min_element(repairs.begin(), repairs.end());
    if (up == 0 || (!s.reconfigurable && up < s.processors)) {
      // Rigid application (or nothing left): wait for the repair.
      wall = next_repair;
      repairs.erase(std::min_element(repairs.begin(), repairs.end()));
      ++up;
      continue;
    }

    // Work proceeds at up/P of full speed (reconfigured restart keeps
    // the surviving processors busy; rigid mode only reaches here with
    // up == P).
    const double speed = static_cast<double>(up) / s.processors;
    // Time until the next interesting event.
    const double work_left = s.work_hours - progress;
    const double next_ckpt_progress =
        last_checkpoint + s.tau_hours - progress;
    const double to_next_stop = std::min(work_left, next_ckpt_progress);
    const double run_time = to_next_stop / speed;
    const double failure_gap = draw_failure_gap(up);

    const double until_repair = next_repair - wall;
    if (failure_gap < run_time && failure_gap < until_repair) {
      // A processor fails mid-stretch: progress since the last checkpoint
      // is lost, the failed node enters repair.
      wall += failure_gap;
      progress = last_checkpoint;
      repairs.push_back(wall + s.repair_hours);
      --up;
      continue;
    }
    if (until_repair < run_time) {
      // A repair completes first: partial progress is kept (no restart
      // needed to grow in this model — DRMS would checkpoint/restart to
      // expand; the growth overhead is one checkpoint, charged below).
      progress += speed * until_repair;
      wall = next_repair;
      repairs.erase(std::min_element(repairs.begin(), repairs.end()));
      ++up;
      if (s.reconfigurable) {
        wall += s.overhead_hours;  // expand via checkpoint/restart
      }
      continue;
    }
    // Reached the checkpoint (or the end).
    wall += run_time;
    progress += to_next_stop;
    if (progress < s.work_hours) {
      wall += s.overhead_hours / speed;
      last_checkpoint = progress;
    }
  }
  return wall;
}

double expected_dilation(const Scenario& s, int trials, Rng& rng) {
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    total += simulate_run(s, rng);
  }
  return (total / trials) / s.work_hours;
}

}  // namespace

int main() {
  std::cout
      << "Availability model (Wong & Franklin [19]): expected completion\n"
      << "dilation vs. partition size, rigid restart vs. reconfigurable\n"
      << "restart (100 h of work, 2000 h/node MTBF, 8 h repairs, 1 h\n"
      << "checkpoint interval, 36 s checkpoint overhead; 10k trials)\n\n";

  Rng rng(0xD0C5EED);
  drms::support::TextTable table(
      {"processors", "rigid dilation", "reconfig dilation", "advantage"});
  for (const int p : {8, 16, 32, 64, 128, 256}) {
    Scenario rigid;
    rigid.processors = p;
    rigid.reconfigurable = false;
    Scenario reconfig = rigid;
    reconfig.reconfigurable = true;
    const double dr = expected_dilation(rigid, 10000, rng);
    const double dc = expected_dilation(reconfig, 10000, rng);
    table.add_row({std::to_string(p), format_fixed(dr, 3),
                   format_fixed(dc, 3),
                   format_fixed(100.0 * (dr - dc) / dr, 1) + "%"});
  }
  table.print(std::cout);
  std::cout
      << "\nShapes: the rigid scheme's dilation grows quickly with the\n"
      << "partition (every failure idles the WHOLE application for the\n"
      << "repair time), while reconfigurable recovery stays within a few\n"
      << "percent of failure-free execution — the paper's §7 citation of\n"
      << "[19] and the motivation for scalable recovery.\n";
  return 0;
}
