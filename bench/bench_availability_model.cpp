// Availability analysis — the Wong & Franklin result ([19]) the paper
// leans on: "checkpoint/recovery WITHOUT load redistribution has limited
// use for applications requiring a large number of processors. When
// recovery with load redistribution is possible, application performance
// degradation in the presence of failures is negligibly small, as long as
// the checkpointing and load-redistribution overheads are small."
//
// Model: an application needs W hours of useful work on P of N
// processors. Processor failures are independent with MTBF M per node
// (exponential), repairs take R hours. Checkpoints cost c hours every tau
// hours of progress.
//
//   rigid    — restart requires exactly P processors: after a failure the
//              application WAITS for the repair, then resumes from the
//              last checkpoint.
//   reconfig — DRMS-style: the application restarts immediately on the
//              surviving processors (work rate scales with processors),
//              returning to P when the repair completes.
//
// Expected-dilation is estimated by a seeded Monte Carlo simulation of
// the failure/repair process (10k trials per cell).
//
// `--chaos [count] [base_seed]` switches to the MEASURED counterpart of
// the model: a seeded chaos campaign that runs `count` randomized failure
// schedules (task kills, node loss, transient storage faults, torn and
// corrupt newest generations) through the RecoverySupervisor, across
// {DRMS, SPMD} x {memory, PIOFS, tiered} storage, asserting every run
// recovers WITHOUT manual intervention to the failure-free field
// fingerprint, and emits BENCH_recovery.json with the per-phase MTTR
// breakdown (detect / select / verify / reconfigure / resume).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/solver.hpp"
#include "arch/cluster.hpp"
#include "core/checkpoint_format.hpp"
#include "json_writer.hpp"
#include "obs/instrumented_backend.hpp"
#include "obs/recorder.hpp"
#include "piofs/volume.hpp"
#include "recovery/failure_schedule.hpp"
#include "recovery/reconfig_policy.hpp"
#include "recovery/supervisor.hpp"
#include "sim/cost_model.hpp"
#include "rt/task_group.hpp"
#include "store/fault_injection_backend.hpp"
#include "store/memory_backend.hpp"
#include "store/piofs_backend.hpp"
#include "store/redundant_backend.hpp"
#include "store/tiered_backend.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace {

using drms::support::Rng;
using drms::support::format_fixed;

struct Scenario {
  double work_hours = 100.0;   // useful work at full speed
  double mtbf_hours = 2000.0;  // per processor
  double repair_hours = 8.0;
  double tau_hours = 1.0;      // checkpoint interval (in progress time)
  double overhead_hours = 0.01;  // checkpoint cost
  int processors = 16;
  bool reconfigurable = false;
};

/// Simulate one run; returns the wall-clock hours to finish.
double simulate_run(const Scenario& s, Rng& rng) {
  double wall = 0.0;
  double progress = 0.0;          // useful work completed
  double last_checkpoint = 0.0;   // progress at the last checkpoint
  int up = s.processors;          // processors currently healthy
  // Repair completion times (wall clock), one per failed processor.
  std::vector<double> repairs;

  auto draw_failure_gap = [&](int procs) {
    // Time to the next failure among `procs` processors.
    const double rate = procs / s.mtbf_hours;
    double u = rng.next_double();
    if (u <= 0.0) {
      u = 1e-12;
    }
    return -std::log(u) / rate;
  };

  while (progress < s.work_hours) {
    // Next repair completion, if any.
    const double next_repair =
        repairs.empty() ? std::numeric_limits<double>::infinity()
                        : *std::min_element(repairs.begin(), repairs.end());
    if (up == 0 || (!s.reconfigurable && up < s.processors)) {
      // Rigid application (or nothing left): wait for the repair.
      wall = next_repair;
      repairs.erase(std::min_element(repairs.begin(), repairs.end()));
      ++up;
      continue;
    }

    // Work proceeds at up/P of full speed (reconfigured restart keeps
    // the surviving processors busy; rigid mode only reaches here with
    // up == P).
    const double speed = static_cast<double>(up) / s.processors;
    // Time until the next interesting event.
    const double work_left = s.work_hours - progress;
    const double next_ckpt_progress =
        last_checkpoint + s.tau_hours - progress;
    const double to_next_stop = std::min(work_left, next_ckpt_progress);
    const double run_time = to_next_stop / speed;
    const double failure_gap = draw_failure_gap(up);

    const double until_repair = next_repair - wall;
    if (failure_gap < run_time && failure_gap < until_repair) {
      // A processor fails mid-stretch: progress since the last checkpoint
      // is lost, the failed node enters repair.
      wall += failure_gap;
      progress = last_checkpoint;
      repairs.push_back(wall + s.repair_hours);
      --up;
      continue;
    }
    if (until_repair < run_time) {
      // A repair completes first: partial progress is kept (no restart
      // needed to grow in this model — DRMS would checkpoint/restart to
      // expand; the growth overhead is one checkpoint, charged below).
      progress += speed * until_repair;
      wall = next_repair;
      repairs.erase(std::min_element(repairs.begin(), repairs.end()));
      ++up;
      if (s.reconfigurable) {
        wall += s.overhead_hours;  // expand via checkpoint/restart
      }
      continue;
    }
    // Reached the checkpoint (or the end).
    wall += run_time;
    progress += to_next_stop;
    if (progress < s.work_hours) {
      wall += s.overhead_hours / speed;
      last_checkpoint = progress;
    }
  }
  return wall;
}

double expected_dilation(const Scenario& s, int trials, Rng& rng) {
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    total += simulate_run(s, rng);
  }
  return (total / trials) / s.work_hours;
}

// ---- measured chaos campaign (--chaos) --------------------------------------

namespace chaos {

using namespace drms;

constexpr int kIterations = 12;
constexpr int kCheckpointEvery = 3;
constexpr int kPreferredTasks = 4;

enum class BackendKind { kMemory, kPiofs, kTiered };

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMemory: return "memory";
    case BackendKind::kPiofs: return "piofs";
    case BackendKind::kTiered: return "tiered";
  }
  return "?";
}

/// A fresh storage stack with the fault decorator on top, like the
/// crash-consistency suite's.
struct Stack {
  std::unique_ptr<piofs::Volume> volume;
  std::unique_ptr<store::PiofsBackend> piofs;
  std::unique_ptr<store::MemoryBackend> memory;
  std::unique_ptr<store::TieredBackend> tiered;
  std::unique_ptr<store::FaultInjectionBackend> fault;
};

Stack make_stack(BackendKind kind) {
  Stack s;
  store::StorageBackend* inner = nullptr;
  switch (kind) {
    case BackendKind::kMemory:
      s.memory = std::make_unique<store::MemoryBackend>();
      inner = s.memory.get();
      break;
    case BackendKind::kPiofs:
      s.volume = std::make_unique<piofs::Volume>(4);
      s.piofs = std::make_unique<store::PiofsBackend>(*s.volume);
      inner = s.piofs.get();
      break;
    case BackendKind::kTiered:
      s.volume = std::make_unique<piofs::Volume>(4);
      s.piofs = std::make_unique<store::PiofsBackend>(*s.volume);
      s.memory = std::make_unique<store::MemoryBackend>();
      s.tiered = std::make_unique<store::TieredBackend>(*s.memory, *s.piofs);
      inner = s.tiered.get();
      break;
  }
  s.fault = std::make_unique<store::FaultInjectionBackend>(*inner);
  return s;
}

/// SP with most of its inventory trimmed away: the campaign measures the
/// recovery loop, not the Table-4 data volume.
apps::SolverOptions solver_options() {
  apps::SolverOptions o;
  o.spec = apps::AppSpec::sp();
  o.spec.arrays.resize(2);
  o.spec.private_bytes = 4 * 1024;
  o.spec.system_bytes = 4 * 1024;
  o.spec.text_bytes = 4 * 1024;
  o.n = 8;
  o.iterations = kIterations;
  o.checkpoint_every = kCheckpointEvery;
  o.prefix = "job";
  return o;
}

/// The failure-free fingerprint at field size `n`. ONE baseline per size
/// suffices: the solver's numerics are distribution-invariant, so the CRC
/// is identical across task counts, storage backends and restart paths.
std::uint32_t baseline_crc_for(core::Index n) {
  store::MemoryBackend storage;
  apps::SolverOptions o = solver_options();
  o.n = n;
  o.prefix.clear();
  core::DrmsEnv env;
  env.storage = &storage;
  auto program = apps::make_program(o, env, kPreferredTasks);
  std::uint32_t crc = 0;
  rt::TaskGroup group(sim::Placement::one_per_node(
      sim::Machine::paper_sp16(), kPreferredTasks));
  group.run([&](rt::TaskContext& ctx) {
    const auto out = apps::run_solver(*program, ctx, o);
    if (ctx.rank() == 0) {
      crc = out.field_crc;
    }
  });
  return crc;
}

struct CampaignRow {
  std::uint64_t seed = 0;
  bool spmd = false;
  BackendKind backend = BackendKind::kMemory;
  std::string schedule;
  bool ok = false;
  int launches = 0;
  int generation_fallbacks = 0;
  int reconfigurations = 0;
  recovery::RecoveryPhases phases;  // summed over the run's recoveries
  int recoveries = 0;
};

// ---- redundancy-encoded fast tier: scavenge vs PIOFS fallback ---------------

/// One node-loss-before-drain trial of the redundant fast tier. The
/// cluster maps its processors one-to-one onto the fast tier's store
/// nodes (arch/placement.hpp), so a kNodeLoss schedule event takes the
/// storage down with the processor.
struct ScavengeRow {
  std::string scheme;
  std::string scenario;  // "scavenge" or "piofs_fallback"
  bool ok = false;
  int recoveries = 0;
  std::uint64_t mttr_ns = 0;
  std::uint64_t slow_reads = 0;    // store.slow.read_at.ops over the run
  std::uint64_t files_rebuilt = 0; // recover.scavenge.rebuilt
  std::uint64_t files_lost = 0;    // recover.scavenge.lost
  std::string problem;
};

/// Run the supervisor under a single node-loss-before-drain schedule.
/// `beyond_tolerance` additionally kills a second store node of the same
/// redundancy group (without a second processor loss): the group is then
/// unrecoverable and restore must fall back to the drained PIOFS copies.
ScavengeRow run_scavenge_trial(store::RedundancyScheme scheme,
                               bool beyond_tolerance, std::uint32_t baseline,
                               std::uint64_t seed) {
  ScavengeRow row;
  row.scheme = scheme.describe();
  row.scenario = beyond_tolerance ? "piofs_fallback" : "scavenge";

  sim::Machine machine;
  machine.node_count = kPreferredTasks;
  machine.server_count = machine.node_count;
  arch::Cluster cluster(machine, nullptr);

  obs::Recorder rec;
  piofs::Volume volume(4);
  store::PiofsBackend piofs_backend(volume);
  obs::InstrumentedBackend slow(piofs_backend, &rec, "slow");
  store::RedundantBackend fast(kPreferredTasks, scheme);
  store::TieredBackend tiered(fast, slow);

  recovery::SupervisorOptions o;
  o.solver = solver_options();
  // Background protection, driven from the solver's iteration hook: the
  // fast tier is always encoded by the time a failure can land, and only
  // the fallback scenario ever drains to PIOFS.
  o.solver.on_iteration = [&](std::int64_t, rt::TaskContext& ctx) {
    if (ctx.rank() != 0) {
      return;
    }
    fast.encode_all();
    if (beyond_tolerance) {
      tiered.drain();
    }
  };
  o.env.storage = &tiered;
  o.env.mode = core::CheckpointMode::kDrms;
  o.preferred_tasks = kPreferredTasks;
  o.min_tasks = 1;
  o.seed = seed;
  o.backoff_base = std::chrono::microseconds(1);
  o.recorder = &rec;
  o.on_node_loss = [&](int node) {
    const int victim = node % kPreferredTasks;
    fast.fail_node(victim);
    if (beyond_tolerance) {
      // A second storage-only loss inside the victim's redundancy group:
      // one more than either scheme tolerates.
      const int base = (victim / scheme.group_size) * scheme.group_size;
      fast.fail_node(base + ((victim - base) + 1) % scheme.group_size);
    }
    tiered.reconcile_fast_tier();
  };
  o.scavenge = [&] { return fast.scavenge(); };

  recovery::FailureSchedule schedule;
  recovery::FailureEvent ev;
  ev.kind = recovery::FailureKind::kNodeLoss;
  ev.launch = 0;
  // After the first generation committed (and was encoded by the hook),
  // before the next SOP.
  ev.at_iteration = kCheckpointEvery + 1;
  ev.node_ordinal = 0;
  schedule.events.push_back(ev);

  recovery::RecoverySupervisor supervisor(cluster);
  const recovery::RecoveryReport report = supervisor.run(o, schedule);

  row.recoveries = static_cast<int>(report.recoveries.size());
  row.mttr_ns = report.total_recovery_ns();
  row.slow_reads = rec.counter("store.slow.read_at.ops");
  row.files_rebuilt = rec.counter("recover.scavenge.rebuilt");
  row.files_lost = rec.counter("recover.scavenge.lost");

  if (!report.completed) {
    row.problem = "did not complete";
  } else if (report.outcome.field_crc != baseline) {
    row.problem = "fingerprint mismatch";
  } else if (row.recoveries == 0) {
    row.problem = "node loss never fired";
  } else if (!beyond_tolerance && row.slow_reads != 0) {
    // The whole point: a tolerated loss recovers from the fast tier
    // alone — not one byte comes back from PIOFS.
    row.problem = "read PIOFS despite scavengeable fast tier";
  } else if (!beyond_tolerance && row.files_rebuilt == 0) {
    row.problem = "scavenge rebuilt nothing";
  } else if (beyond_tolerance && row.slow_reads == 0) {
    row.problem = "beyond-tolerance loss never touched PIOFS";
  } else if (beyond_tolerance && row.files_lost == 0) {
    row.problem = "beyond-tolerance loss lost no fast-tier file";
  }
  row.ok = row.problem.empty();
  return row;
}

// ---- base+delta chain recovery ----------------------------------------------

/// One supervised kill/recover run with delta generations enabled: the
/// failure lands right after the chain's first delta committed, so
/// select/verify/restore must walk a base+delta chain. The launch
/// reports' restart prefixes are checked against the on-storage metas —
/// at least one recovery must come back through a delta-kind generation.
struct DeltaChainRow {
  bool ok = false;
  int recoveries = 0;
  int chain_restarts = 0;  // restarts whose generation was a delta
  std::int64_t max_chain_depth = 0;
  std::uint64_t mttr_ns = 0;
  std::string problem;
};

DeltaChainRow run_delta_chain_trial(std::uint32_t baseline,
                                    std::uint64_t seed) {
  DeltaChainRow row;

  sim::Machine machine;
  machine.node_count = kPreferredTasks;
  machine.server_count = machine.node_count;
  arch::Cluster cluster(machine, nullptr);
  store::MemoryBackend storage;

  recovery::SupervisorOptions o;
  o.solver = solver_options();
  o.env.storage = &storage;
  o.env.mode = core::CheckpointMode::kDrms;
  o.env.delta = true;
  // g3 is the chain's full base; g6/g9/g12 are deltas, so the kill below
  // leaves a delta as the newest committed generation.
  o.env.delta_full_every_k = 4;
  o.env.delta_block_bytes = 64 * 1024;
  o.preferred_tasks = kPreferredTasks;
  o.min_tasks = 1;
  o.seed = seed;
  o.backoff_base = std::chrono::microseconds(1);

  recovery::FailureSchedule schedule;
  recovery::FailureEvent ev;
  ev.kind = recovery::FailureKind::kKillPool;
  ev.launch = 0;
  // After the second generation — the chain's first delta — committed.
  ev.at_iteration = 2 * kCheckpointEvery + 1;
  schedule.events.push_back(ev);

  recovery::RecoverySupervisor supervisor(cluster);
  const recovery::RecoveryReport report = supervisor.run(o, schedule);

  row.recoveries = static_cast<int>(report.recoveries.size());
  row.mttr_ns = report.total_recovery_ns();
  for (const auto& launch : report.launches) {
    if (!launch.from_checkpoint) {
      continue;
    }
    const core::CheckpointMeta meta =
        core::read_checkpoint_meta(storage, launch.restart_prefix);
    if (meta.kind == core::GenerationKind::kDelta) {
      ++row.chain_restarts;
      row.max_chain_depth = std::max(row.max_chain_depth, meta.chain_depth);
    }
  }

  if (!report.completed) {
    row.problem = "did not complete";
  } else if (report.outcome.field_crc != baseline) {
    row.problem = "fingerprint mismatch";
  } else if (row.recoveries == 0) {
    row.problem = "kill never fired";
  } else if (row.chain_restarts == 0) {
    row.problem = "no restart walked a base+delta chain";
  }
  row.ok = row.problem.empty();
  return row;
}

// ---- localized recovery: partial vs full restart ----------------------------

/// One directed single-node-loss trial of the partial-restore path,
/// run TWICE on identical fresh stacks — once with partial_restore off
/// (the matched full-restart control) and once with it on. Both runs must
/// reproduce the failure-free fingerprint; the partial run must keep the
/// survivors off storage entirely and its simulated restore time must be
/// strictly below the control's — the paper's localized-recovery claim
/// (restart cost scales with the failed fraction) in one number.
struct PartialRow {
  std::string scenario;  // "shrink" or "same_count"
  BackendKind backend = BackendKind::kPiofs;
  core::Index n = 8;
  bool ok = false;
  double full_restore_seconds = 0.0;
  double partial_restore_seconds = 0.0;
  std::uint64_t restore_read_bytes = 0;   // replacement-task section reads
  std::uint64_t survivor_read_bytes = 0;  // must stay 0
  std::uint64_t adopted_sections = 0;
  std::string problem;
};

PartialRow run_partial_trial(bool same_count, BackendKind kind,
                             core::Index n, std::uint32_t baseline,
                             std::uint64_t seed) {
  PartialRow row;
  row.scenario = same_count ? "same_count" : "shrink";
  row.backend = kind;
  row.n = n;

  // Simulated storage time makes restore_seconds a deterministic MTTR
  // signal; every tier of every stack charges the same paper model.
  const sim::CostModel cost = sim::CostModel::paper_sp16();
  const recovery::SameCountPolicy same_count_policy;

  const auto run_once = [&](bool partial, double* restore_seconds,
                            obs::Recorder* rec) {
    sim::Machine machine;
    // The shrink scenario has no spare: losing a node forces t2 = t1 - 1.
    // The same-count scenario keeps one spare so SameCountPolicy can
    // refill the lost slot at t2 == t1.
    machine.node_count = kPreferredTasks + (same_count ? 1 : 0);
    machine.server_count = machine.node_count;
    arch::Cluster cluster(machine, nullptr);

    piofs::Volume volume(4);
    store::PiofsBackend piofs_backend(volume, &cost);
    store::MemoryBackend memory(0, &cost);
    std::unique_ptr<store::TieredBackend> tiered;
    store::StorageBackend* storage = &piofs_backend;
    if (kind == BackendKind::kTiered) {
      tiered = std::make_unique<store::TieredBackend>(memory, piofs_backend);
      storage = tiered.get();
    }

    recovery::SupervisorOptions o;
    o.solver = solver_options();
    o.solver.n = n;
    o.env.storage = storage;
    o.env.mode = core::CheckpointMode::kDrms;
    o.env.recorder = rec;
    o.preferred_tasks = kPreferredTasks;
    o.min_tasks = 1;
    o.seed = seed;
    o.backoff_base = std::chrono::microseconds(1);
    o.partial_restore = partial;
    o.recorder = rec;
    if (same_count) {
      o.policy = &same_count_policy;
    }

    recovery::FailureSchedule schedule;
    recovery::FailureEvent ev;
    ev.kind = recovery::FailureKind::kNodeLoss;
    ev.launch = 0;
    ev.at_iteration = kCheckpointEvery + 1;  // after the first commit
    ev.node_ordinal = 2;
    schedule.events.push_back(ev);

    recovery::RecoverySupervisor supervisor(cluster);
    const recovery::RecoveryReport report = supervisor.run(o, schedule);
    if (!report.completed) {
      return std::string(partial ? "partial" : "full") +
             " run did not complete";
    }
    if (report.outcome.field_crc != baseline) {
      return std::string(partial ? "partial" : "full") +
             " run fingerprint mismatch";
    }
    if (report.launches.size() != 2) {
      return std::string("expected exactly one recovery, saw ") +
             std::to_string(report.launches.size() - 1);
    }
    if (report.launches[1].partial != partial) {
      return std::string(partial ? "partial scope not chosen"
                                 : "control run restarted partially");
    }
    *restore_seconds = report.launches[1].restore_seconds;
    return std::string();
  };

  obs::Recorder control_rec;
  row.problem = run_once(false, &row.full_restore_seconds, &control_rec);
  if (!row.problem.empty()) {
    row.ok = false;
    return row;
  }
  obs::Recorder rec;
  row.problem = run_once(true, &row.partial_restore_seconds, &rec);
  row.restore_read_bytes = rec.counter("recover.partial.restore_read_bytes");
  row.survivor_read_bytes =
      rec.counter("recover.partial.survivor_read_bytes");
  row.adopted_sections = rec.counter("recover.partial.adopted_sections");

  if (row.problem.empty()) {
    if (row.survivor_read_bytes != 0) {
      // The whole point: survivors keep their arrays — zero checkpoint
      // reads while the replacement slot streams its sections in.
      row.problem = "survivors read checkpoint data";
    } else if (row.restore_read_bytes == 0) {
      row.problem = "replacement task read nothing";
    } else if (row.adopted_sections == 0) {
      row.problem = "survivors adopted nothing";
    } else if (row.full_restore_seconds <= 0.0 ||
               row.partial_restore_seconds <= 0.0) {
      row.problem = "restore charged no simulated time";
    } else if (row.partial_restore_seconds >= row.full_restore_seconds) {
      row.problem = "partial restore not cheaper than full";
    }
  }
  row.ok = row.problem.empty();
  return row;
}

int run_campaign(int count, std::uint64_t base_seed) {
  std::cout << "Chaos campaign: " << count
            << " seeded failure schedules x {DRMS, SPMD} x {memory, "
               "piofs, tiered}\n";
  const std::uint32_t baseline = baseline_crc_for(8);
  std::cout << "failure-free baseline field CRC: " << baseline << "\n\n";

  recovery::ScheduleShape shape;
  shape.iterations = kIterations;
  shape.checkpoint_every = kCheckpointEvery;

  std::vector<CampaignRow> rows;
  bool kind_seen[5] = {};
  int failures = 0;
  for (int i = 0; i < count; ++i) {
    CampaignRow row;
    row.seed = base_seed + static_cast<std::uint64_t>(i);
    row.spmd = i % 2 == 1;
    row.backend = static_cast<BackendKind>((i / 2) % 3);
    const recovery::FailureSchedule schedule =
        recovery::FailureSchedule::random(row.seed, shape);
    row.schedule = schedule.describe();
    for (int k = 0; k < 5; ++k) {
      if (schedule.has_kind(static_cast<recovery::FailureKind>(k))) {
        kind_seen[k] = true;
      }
    }

    // DRMS runs on a machine with NO spare nodes, so node loss forces a
    // reconfigured restart (t2 < t1); SPMD — which can only restart on
    // t2 == t1 — gets spares to shrink into.
    sim::Machine machine;
    machine.node_count = row.spmd ? kPreferredTasks + 2 : kPreferredTasks;
    machine.server_count = machine.node_count;
    arch::Cluster cluster(machine, nullptr);
    Stack stack = make_stack(row.backend);

    recovery::SupervisorOptions o;
    o.solver = solver_options();
    o.env.storage = stack.fault.get();
    o.env.mode = row.spmd ? core::CheckpointMode::kSpmd
                          : core::CheckpointMode::kDrms;
    o.preferred_tasks = kPreferredTasks;
    o.min_tasks = 1;
    o.seed = row.seed;
    o.fault = stack.fault.get();
    o.backoff_base = std::chrono::microseconds(1);

    recovery::RecoverySupervisor supervisor(cluster);
    const recovery::RecoveryReport report = supervisor.run(o, schedule);
    row.ok = report.completed && report.outcome.field_crc == baseline;
    row.launches = static_cast<int>(report.launches.size());
    row.generation_fallbacks = report.generation_fallbacks;
    row.reconfigurations = report.reconfigurations;
    row.recoveries = static_cast<int>(report.recoveries.size());
    for (const auto& r : report.recoveries) {
      row.phases.detect_ns += r.detect_ns;
      row.phases.select_ns += r.select_ns;
      row.phases.verify_ns += r.verify_ns;
      row.phases.reconfigure_ns += r.reconfigure_ns;
      row.phases.resume_ns += r.resume_ns;
    }
    if (!row.ok) {
      ++failures;
      std::cout << "FAILED seed " << row.seed << " ("
                << (row.spmd ? "SPMD" : "DRMS") << "/"
                << to_string(row.backend) << "): " << row.schedule
                << (report.completed ? " — fingerprint mismatch"
                                     : " — did not complete")
                << "\n";
    }
    rows.push_back(row);
  }

  drms::support::TextTable table({"seed", "mode", "backend", "schedule",
                                  "launches", "fallbacks", "reconfigs",
                                  "MTTR us", "result"});
  recovery::RecoveryPhases total;
  int total_recoveries = 0;
  int fallback_runs = 0;
  int reconfig_runs = 0;
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.seed), row.spmd ? "SPMD" : "DRMS",
                   to_string(row.backend), row.schedule,
                   std::to_string(row.launches),
                   std::to_string(row.generation_fallbacks),
                   std::to_string(row.reconfigurations),
                   std::to_string(row.phases.total_ns() / 1000),
                   row.ok ? "OK" : "FAILED"});
    total.detect_ns += row.phases.detect_ns;
    total.select_ns += row.phases.select_ns;
    total.verify_ns += row.phases.verify_ns;
    total.reconfigure_ns += row.phases.reconfigure_ns;
    total.resume_ns += row.phases.resume_ns;
    total_recoveries += row.recoveries;
    fallback_runs += row.generation_fallbacks > 0 ? 1 : 0;
    reconfig_runs += row.reconfigurations > 0 ? 1 : 0;
  }
  table.print(std::cout);

  const auto mean_us = [&](std::uint64_t ns) {
    return total_recoveries == 0
               ? 0.0
               : static_cast<double>(ns) / total_recoveries / 1000.0;
  };
  std::cout << "\n"
            << total_recoveries << " recoveries; mean MTTR breakdown: detect "
            << format_fixed(mean_us(total.detect_ns), 1) << "us, select "
            << format_fixed(mean_us(total.select_ns), 1) << "us, verify "
            << format_fixed(mean_us(total.verify_ns), 1)
            << "us, reconfigure "
            << format_fixed(mean_us(total.reconfigure_ns), 1)
            << "us, resume " << format_fixed(mean_us(total.resume_ns), 1)
            << "us\n";

  // Coverage: the campaign must actually exercise every failure class,
  // at least one generation fallback and at least one t2 != t1 restart.
  bool covered = true;
  for (int k = 0; k < 5; ++k) {
    if (!kind_seen[k]) {
      std::cout << "COVERAGE GAP: no schedule of kind "
                << recovery::to_string(
                       static_cast<recovery::FailureKind>(k))
                << "\n";
      covered = false;
    }
  }
  if (fallback_runs == 0) {
    std::cout << "COVERAGE GAP: no run exercised generation fallback\n";
    covered = false;
  }
  if (reconfig_runs == 0) {
    std::cout << "COVERAGE GAP: no run exercised reconfiguration\n";
    covered = false;
  }

  // Redundant fast tier: node loss BEFORE any drain must recover from
  // surviving fragments alone (zero PIOFS reads); losing more nodes of a
  // group than the scheme tolerates must fall back to the drained PIOFS
  // copies. The MTTR pair is the paper's scalable-recovery argument in
  // one number.
  std::cout << "\nRedundant fast tier: scavenge vs PIOFS fallback\n";
  std::vector<ScavengeRow> scavenge_rows;
  for (const auto& scheme :
       {store::RedundancyScheme{store::RedundancyKind::kPartner, 2},
        store::RedundancyScheme{store::RedundancyKind::kXor, 4}}) {
    for (const bool beyond : {false, true}) {
      scavenge_rows.push_back(
          run_scavenge_trial(scheme, beyond, baseline, base_seed));
    }
  }
  drms::support::TextTable stable({"scheme", "scenario", "recoveries",
                                   "MTTR us", "slow reads", "rebuilt",
                                   "lost", "result"});
  int scavenge_failures = 0;
  for (const auto& row : scavenge_rows) {
    stable.add_row({row.scheme, row.scenario, std::to_string(row.recoveries),
                    std::to_string(row.mttr_ns / 1000),
                    std::to_string(row.slow_reads),
                    std::to_string(row.files_rebuilt),
                    std::to_string(row.files_lost),
                    row.ok ? "OK" : "FAILED"});
    if (!row.ok) {
      ++scavenge_failures;
      std::cout << "FAILED " << row.scheme << "/" << row.scenario << ": "
                << row.problem << "\n";
    }
  }
  stable.print(std::cout);

  // Base+delta chain recovery: one supervised kill with delta generations
  // enabled. The delta subsystem's recovery bar: at least one restart
  // must restore through a delta-kind generation (full base replayed,
  // then the chain's dirty blocks), bit-exact against the baseline.
  std::cout << "\nDelta-chain recovery trial (delta generations on)\n";
  const DeltaChainRow delta_row = run_delta_chain_trial(baseline, base_seed);
  std::cout << "  recoveries " << delta_row.recoveries << ", chain restarts "
            << delta_row.chain_restarts << ", max chain depth "
            << delta_row.max_chain_depth << ", MTTR "
            << delta_row.mttr_ns / 1000 << "us — "
            << (delta_row.ok ? std::string("OK")
                             : "FAILED: " + delta_row.problem)
            << "\n";

  // Localized recovery: the partial-restore path vs the matched full
  // restart, across reconfiguration scenarios and storage stacks, plus a
  // size-scaling pair — growing the job must NOT grow the partial/full
  // cost ratio, because a partial restart pays for the failed fraction,
  // not for the job.
  std::cout << "\nLocalized recovery: partial vs full restart (single node "
               "loss)\n";
  std::vector<PartialRow> partial_rows;
  for (const bool same_count : {false, true}) {
    for (const BackendKind kind : {BackendKind::kPiofs,
                                   BackendKind::kTiered}) {
      partial_rows.push_back(
          run_partial_trial(same_count, kind, 8, baseline, base_seed));
    }
  }
  partial_rows.push_back(run_partial_trial(/*same_count=*/false,
                                           BackendKind::kPiofs, 16,
                                           baseline_crc_for(16), base_seed));

  drms::support::TextTable ptable({"scenario", "backend", "n", "full ms",
                                   "partial ms", "ratio", "restore KiB",
                                   "survivor reads", "result"});
  int partial_failures = 0;
  double ratio_small = 0.0;
  double ratio_large = 0.0;
  for (const auto& row : partial_rows) {
    const double ratio =
        row.full_restore_seconds > 0.0
            ? row.partial_restore_seconds / row.full_restore_seconds
            : 0.0;
    if (row.scenario == "shrink" && row.backend == BackendKind::kPiofs) {
      (row.n == 8 ? ratio_small : ratio_large) = ratio;
    }
    ptable.add_row({row.scenario, to_string(row.backend),
                    std::to_string(row.n),
                    format_fixed(row.full_restore_seconds * 1e3, 3),
                    format_fixed(row.partial_restore_seconds * 1e3, 3),
                    format_fixed(ratio, 3),
                    std::to_string(row.restore_read_bytes / 1024),
                    std::to_string(row.survivor_read_bytes),
                    row.ok ? "OK" : "FAILED"});
    if (!row.ok) {
      ++partial_failures;
      std::cout << "FAILED " << row.scenario << "/" << to_string(row.backend)
                << " n=" << row.n << ": " << row.problem << "\n";
    }
  }
  ptable.print(std::cout);
  const bool partial_scales =
      ratio_small > 0.0 && ratio_large > 0.0 &&
      ratio_large <= ratio_small + 0.05;
  if (!partial_scales) {
    std::cout << "FAILED scaling: partial/full ratio grew with job size ("
              << format_fixed(ratio_small, 3) << " at n=8 -> "
              << format_fixed(ratio_large, 3) << " at n=16)\n";
  }

  std::ofstream out("BENCH_recovery.json");
  bench::JsonWriter json(out);
  json.begin_object();
  json.field("bench", "recovery_chaos");
  json.field("schedules", count);
  json.field("base_seed", base_seed);
  json.field("baseline_crc", static_cast<std::uint64_t>(baseline));
  json.begin_array("rows");
  for (const auto& row : rows) {
    json.begin_object();
    json.field("seed", row.seed);
    json.field("mode", row.spmd ? "SPMD" : "DRMS");
    json.field("backend", to_string(row.backend));
    json.field("schedule", row.schedule);
    json.field("ok", row.ok);
    json.field("launches", row.launches);
    json.field("recoveries", row.recoveries);
    json.field("generation_fallbacks", row.generation_fallbacks);
    json.field("reconfigurations", row.reconfigurations);
    json.field("detect_ns", row.phases.detect_ns);
    json.field("select_ns", row.phases.select_ns);
    json.field("verify_ns", row.phases.verify_ns);
    json.field("reconfigure_ns", row.phases.reconfigure_ns);
    json.field("resume_ns", row.phases.resume_ns);
    json.field("total_ns", row.phases.total_ns());
    json.end_object();
  }
  json.end_array();
  json.begin_object("mttr");
  json.field("recoveries", total_recoveries);
  json.field("mean_detect_us", mean_us(total.detect_ns));
  json.field("mean_select_us", mean_us(total.select_ns));
  json.field("mean_verify_us", mean_us(total.verify_ns));
  json.field("mean_reconfigure_us", mean_us(total.reconfigure_ns));
  json.field("mean_resume_us", mean_us(total.resume_ns));
  json.field("mean_total_us", mean_us(total.total_ns()));
  json.end_object();
  json.begin_object("coverage");
  for (int k = 0; k < 5; ++k) {
    json.field(recovery::to_string(static_cast<recovery::FailureKind>(k)),
               kind_seen[k]);
  }
  json.field("fallback_runs", fallback_runs);
  json.field("reconfig_runs", reconfig_runs);
  json.end_object();
  json.begin_array("scavenge");
  for (const auto& row : scavenge_rows) {
    json.begin_object();
    json.field("scheme", row.scheme);
    json.field("scenario", row.scenario);
    json.field("ok", row.ok);
    json.field("recoveries", row.recoveries);
    json.field("mttr_ns", row.mttr_ns);
    json.field("slow_read_ops", row.slow_reads);
    json.field("files_rebuilt", row.files_rebuilt);
    json.field("files_lost", row.files_lost);
    json.end_object();
  }
  json.end_array();
  json.begin_object("delta_chain");
  json.field("ok", delta_row.ok);
  json.field("recoveries", delta_row.recoveries);
  json.field("chain_restarts", delta_row.chain_restarts);
  json.field("max_chain_depth",
             static_cast<std::uint64_t>(delta_row.max_chain_depth));
  json.field("mttr_ns", delta_row.mttr_ns);
  json.end_object();
  json.begin_array("partial");
  for (const auto& row : partial_rows) {
    json.begin_object();
    json.field("scenario", row.scenario);
    json.field("backend", to_string(row.backend));
    json.field("n", static_cast<std::uint64_t>(row.n));
    json.field("ok", row.ok);
    json.field("full_restore_seconds", row.full_restore_seconds);
    json.field("partial_restore_seconds", row.partial_restore_seconds);
    json.field("restore_read_bytes", row.restore_read_bytes);
    json.field("survivor_read_bytes", row.survivor_read_bytes);
    json.field("adopted_sections", row.adopted_sections);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
  std::cout << "wrote BENCH_recovery.json\n";

  if (failures > 0 || scavenge_failures > 0 || !covered || !delta_row.ok ||
      partial_failures > 0 || !partial_scales) {
    std::cout << "\nCHAOS CAMPAIGN FAILED: " << failures << " of " << count
              << " schedules did not recover"
              << (scavenge_failures > 0 ? " (and the scavenge gate failed)"
                                        : "")
              << (covered ? "" : " (and coverage gaps remain)")
              << (delta_row.ok ? "" : " (and the delta-chain trial failed)")
              << (partial_failures > 0 || !partial_scales
                      ? " (and the partial-restore gate failed)"
                      : "")
              << "\n";
    return 1;
  }
  std::cout << "\nall " << count
            << " schedules recovered to the failure-free fingerprint.\n";
  return 0;
}

}  // namespace chaos

/// The original no-argument mode: the Wong & Franklin dilation table
/// (byte-identical output to the pre-campaign version of this bench).
int availability_table();

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--chaos") {
    const int count = argc > 2 ? std::atoi(argv[2]) : 32;
    const std::uint64_t base_seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    return chaos::run_campaign(std::max(count, 1), base_seed);
  }
  return availability_table();
}

namespace {

int availability_table() {
  std::cout
      << "Availability model (Wong & Franklin [19]): expected completion\n"
      << "dilation vs. partition size, rigid restart vs. reconfigurable\n"
      << "restart (100 h of work, 2000 h/node MTBF, 8 h repairs, 1 h\n"
      << "checkpoint interval, 36 s checkpoint overhead; 10k trials)\n\n";

  Rng rng(0xD0C5EED);
  drms::support::TextTable table(
      {"processors", "rigid dilation", "reconfig dilation", "advantage"});
  for (const int p : {8, 16, 32, 64, 128, 256}) {
    Scenario rigid;
    rigid.processors = p;
    rigid.reconfigurable = false;
    Scenario reconfig = rigid;
    reconfig.reconfigurable = true;
    const double dr = expected_dilation(rigid, 10000, rng);
    const double dc = expected_dilation(reconfig, 10000, rng);
    table.add_row({std::to_string(p), format_fixed(dr, 3),
                   format_fixed(dc, 3),
                   format_fixed(100.0 * (dr - dc) / dr, 1) + "%"});
  }
  table.print(std::cout);
  std::cout
      << "\nShapes: the rigid scheme's dilation grows quickly with the\n"
      << "partition (every failure idles the WHOLE application for the\n"
      << "repair time), while reconfigurable recovery stays within a few\n"
      << "percent of failure-free execution — the paper's §7 citation of\n"
      << "[19] and the motivation for scalable recovery.\n";
  return 0;
}

}  // namespace
