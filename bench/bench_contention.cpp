// Multi-tenant contention benchmark — the checkpoint service's gate.
//
// Four concurrent jobs checkpoint through one IoScheduler against each
// storage backend (memory / piofs / tiered). Two schedulings of the SAME
// submission stream are compared:
//
//   serialized   shard_count=1, fifo_only — every tenant funnels through
//                one class-blind queue (the pre-service drain model: one
//                volume lock, one background sweep)
//   sharded      shard_count=4 with priority classes — independent jobs
//                land on independent server queues
//
// All quantities come from the scheduler's DETERMINISTIC virtual-time
// queueing model (each shard advances a virtual clock by the cost-model
// service seconds of the items it dequeues): aggregate throughput is
// total bytes over makespan, queue waits are virtual-start minus
// virtual-submit. Reproducible across runs and machines, and unaffected
// by host core count — which is the point, since wall-clock speedups are
// meaningless on a single-core CI box.
//
// A second experiment queues RESTORE-class reads against a backlog of
// DRAIN-class tier traffic (the tiered scenario drains real dirty files
// through svc::submit_drain) and checks the p99 restore queue-wait with
// drains active against the drain-free baseline: priority dequeueing
// must keep restores ahead of background traffic.
//
// Writes BENCH_contention.json. Exit status 1 when any backend's sharded
// speedup falls below 2x, or the restore p99 regresses when drains are
// queued. --quick shrinks the per-job item count for the CI smoke.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "json_writer.hpp"
#include "piofs/volume.hpp"
#include "sim/cost_model.hpp"
#include "store/memory_backend.hpp"
#include "store/piofs_backend.hpp"
#include "store/storage_backend.hpp"
#include "store/tiered_backend.hpp"
#include "support/table.hpp"
#include "support/units.hpp"
#include "svc/drain_service.hpp"
#include "svc/io_scheduler.hpp"

namespace {

using namespace drms;
using svc::IoScheduler;
using svc::JobToken;
using svc::Priority;

constexpr int kJobs = 4;
constexpr std::uint64_t kBytesPerItem = 256 * 1024;

/// One storage under test. Owns whatever tiers/volumes back it, all
/// timed by the paper-calibrated cost model so service seconds are
/// non-trivial and identical across runs.
struct Rig {
  std::string name;
  store::StorageBackend* storage = nullptr;
  store::TieredBackend* tiered = nullptr;  // non-null for the tiered rig

  sim::CostModel cost = sim::CostModel::paper_sp16();
  piofs::Volume volume{16};
  std::unique_ptr<store::MemoryBackend> memory;
  std::unique_ptr<store::PiofsBackend> piofs_backend;
  std::unique_ptr<store::TieredBackend> tiered_backend;
};

std::unique_ptr<Rig> make_rig(const std::string& kind) {
  auto rig = std::make_unique<Rig>();
  rig->name = kind;
  if (kind == "memory") {
    rig->memory = std::make_unique<store::MemoryBackend>(0, &rig->cost);
    rig->storage = rig->memory.get();
  } else if (kind == "piofs") {
    rig->piofs_backend =
        std::make_unique<store::PiofsBackend>(rig->volume, &rig->cost);
    rig->storage = rig->piofs_backend.get();
  } else {  // tiered
    rig->memory = std::make_unique<store::MemoryBackend>(0, &rig->cost);
    rig->piofs_backend =
        std::make_unique<store::PiofsBackend>(rig->volume, &rig->cost);
    rig->tiered_backend = std::make_unique<store::TieredBackend>(
        *rig->memory, *rig->piofs_backend);
    rig->storage = rig->tiered_backend.get();
    rig->tiered = rig->tiered_backend.get();
  }
  return rig;
}

/// Queue every job's checkpoint writes (real bytes, cost-model service
/// seconds) and return the virtual makespan once the queue runs dry.
double run_write_storm(IoScheduler& scheduler, store::StorageBackend& storage,
                       int items_per_job) {
  const std::vector<std::byte> payload(kBytesPerItem, std::byte{0x5d});
  std::vector<JobToken> jobs;
  jobs.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    jobs.push_back(scheduler.register_job("job" + std::to_string(j)));
  }
  const double service =
      storage.single_write_seconds(kBytesPerItem, {}, nullptr);
  for (int k = 0; k < items_per_job; ++k) {
    for (int j = 0; j < kJobs; ++j) {
      const std::string file =
          "job" + std::to_string(j) + "/seg" + std::to_string(k);
      scheduler.submit(jobs[j], Priority::kForeground, file, kBytesPerItem,
                       service, [&storage, &payload, file] {
                         storage.create(file).write_at(0, payload);
                       });
    }
  }
  scheduler.resume();
  for (auto& job : jobs) {
    scheduler.barrier(job);
  }
  scheduler.wait_idle();
  return scheduler.makespan_seconds();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples.size())));
  return samples[std::min(rank == 0 ? 0 : rank - 1, samples.size() - 1)];
}

/// Queue restore-class reads (with a foreground backlog) and return the
/// p99 virtual queue-wait of the restores. When `with_drains`, a DRAIN
/// backlog is queued first — real dirty tiered files via the drain
/// service when the rig is tiered, synthetic drain items otherwise.
double restore_p99(Rig& rig, int items_per_job, bool with_drains) {
  IoScheduler::Options opts;
  opts.shard_count = 4;
  opts.start_paused = true;
  opts.force_async = true;
  opts.keep_wait_samples = true;
  IoScheduler scheduler(opts);

  // State to restore, created synchronously before anything queues.
  const std::vector<std::byte> payload(kBytesPerItem, std::byte{0x3c});
  for (int k = 0; k < items_per_job; ++k) {
    rig.storage->create("ck/seg" + std::to_string(k)).write_at(0, payload);
  }

  JobToken drain_job = scheduler.register_job("drainer");
  svc::DrainTicket drain_ticket;
  if (with_drains) {
    if (rig.tiered != nullptr) {
      // The checkpoint writes above left the fast tier dirty: drain the
      // real backlog through the service, one DRAIN item per file.
      drain_ticket = svc::submit_drain(scheduler, drain_job, *rig.tiered);
    } else {
      const double service =
          rig.storage->single_write_seconds(kBytesPerItem, {}, nullptr);
      for (int k = 0; k < 4 * items_per_job; ++k) {
        scheduler.submit(drain_job, Priority::kDrain,
                         "drain" + std::to_string(k), kBytesPerItem, service,
                         [] {});
      }
    }
  }

  // The contending tenants: a foreground write backlog plus the restore
  // reads whose waits are under test.
  std::vector<JobToken> jobs;
  for (int j = 0; j < kJobs; ++j) {
    jobs.push_back(scheduler.register_job("job" + std::to_string(j)));
  }
  const double write_service =
      rig.storage->single_write_seconds(kBytesPerItem, {}, nullptr);
  const double read_service =
      rig.storage->private_read_seconds(kBytesPerItem, 1, {}, nullptr);
  for (int k = 0; k < items_per_job; ++k) {
    for (int j = 0; j < kJobs; ++j) {
      const std::string file =
          "fg" + std::to_string(j) + "/seg" + std::to_string(k);
      scheduler.submit(jobs[j], Priority::kForeground, file, kBytesPerItem,
                       write_service, [&rig, &payload, file] {
                         rig.storage->create(file).write_at(0, payload);
                       });
    }
    const std::string ck = "ck/seg" + std::to_string(k);
    scheduler.submit(jobs[k % kJobs], Priority::kRestore, ck, kBytesPerItem,
                     read_service, [&rig, ck] {
                       (void)rig.storage->open(ck).read_at(0, kBytesPerItem);
                     });
  }

  scheduler.resume();
  scheduler.wait_idle();
  if (with_drains && rig.tiered != nullptr) {
    (void)drain_ticket.wait();
  }
  return percentile(scheduler.wait_samples(Priority::kRestore), 0.99);
}

struct ScenarioResult {
  std::string backend;
  double serialized_makespan = 0.0;
  double sharded_makespan = 0.0;
  double speedup = 0.0;
  double restore_p99_quiet = 0.0;
  double restore_p99_drains = 0.0;
  bool pass_speedup = false;
  bool pass_restore = false;
};

ScenarioResult run_scenario(const std::string& kind, int items_per_job) {
  ScenarioResult result;
  result.backend = kind;

  {
    auto rig = make_rig(kind);
    IoScheduler::Options opts;
    opts.shard_count = 1;
    opts.fifo_only = true;
    opts.start_paused = true;
    opts.force_async = true;
    IoScheduler serialized(opts);
    result.serialized_makespan =
        run_write_storm(serialized, *rig->storage, items_per_job);
  }
  {
    auto rig = make_rig(kind);
    IoScheduler::Options opts;
    opts.shard_count = kJobs;
    opts.start_paused = true;
    opts.force_async = true;
    IoScheduler sharded(opts);
    result.sharded_makespan =
        run_write_storm(sharded, *rig->storage, items_per_job);
  }
  result.speedup = result.sharded_makespan > 0.0
                       ? result.serialized_makespan / result.sharded_makespan
                       : 0.0;
  result.pass_speedup = result.speedup >= 2.0;

  {
    auto rig = make_rig(kind);
    result.restore_p99_quiet = restore_p99(*rig, items_per_job, false);
  }
  {
    auto rig = make_rig(kind);
    result.restore_p99_drains = restore_p99(*rig, items_per_job, true);
  }
  // Priority dequeueing must keep queued drains out of the restore path:
  // no regression beyond floating-point noise.
  result.pass_restore =
      result.restore_p99_drains <= result.restore_p99_quiet + 1e-9;
  return result;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    }
  }
  const int items_per_job = quick ? 8 : 32;

  std::vector<ScenarioResult> results;
  for (const std::string kind : {"memory", "piofs", "tiered"}) {
    results.push_back(run_scenario(kind, items_per_job));
  }

  std::cout << "Checkpoint-service contention (" << kJobs
            << " jobs x " << items_per_job << " x "
            << support::format_bytes(kBytesPerItem)
            << ", virtual-time model)\n";
  support::TextTable table({"backend", "serialized s", "sharded s", "speedup",
                            "restore p99 quiet", "restore p99 drains",
                            "gate"});
  bool all_pass = true;
  for (const auto& r : results) {
    const bool pass = r.pass_speedup && r.pass_restore;
    all_pass = all_pass && pass;
    table.add_row({r.backend, fmt(r.serialized_makespan),
                   fmt(r.sharded_makespan), fmt(r.speedup),
                   fmt(r.restore_p99_quiet), fmt(r.restore_p99_drains),
                   pass ? "PASS" : "FAIL"});
  }
  table.print(std::cout);

  {
    std::ofstream out("BENCH_contention.json");
    bench::JsonWriter json(out);
    json.begin_object();
    json.field("bench", "contention");
    json.field("quick", quick);
    json.field("jobs", kJobs);
    json.field("items_per_job", items_per_job);
    json.field("bytes_per_item", kBytesPerItem);
    json.field("speedup_gate", 2.0);
    json.begin_array("scenarios");
    for (const auto& r : results) {
      json.begin_object();
      json.field("backend", r.backend);
      json.field("serialized_makespan_s", r.serialized_makespan);
      json.field("sharded_makespan_s", r.sharded_makespan);
      json.field("speedup", r.speedup);
      json.field("restore_p99_quiet_s", r.restore_p99_quiet);
      json.field("restore_p99_drains_s", r.restore_p99_drains);
      json.field("pass_speedup", r.pass_speedup);
      json.field("pass_restore", r.pass_restore);
      json.end_object();
    }
    json.end_array();
    json.field("pass", all_pass);
    json.end_object();
    out << "\n";
  }

  if (!all_pass) {
    std::cerr << "bench_contention: GATE FAILED (speedup < 2x or restore "
                 "p99 regressed with drains active)\n";
    return 1;
  }
  std::cout << "bench_contention: gates passed\n";
  return 0;
}
