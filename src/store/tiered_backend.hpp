// Two-tier staged checkpoint storage (SCR / ReStore lineage).
//
// Writes land in the FAST tier (write-through staging): the checkpoint is
// committed — and the application resumes — as soon as the fast tier
// holds the bytes. A background drain() later copies the dirty files to
// the SLOW tier (the parallel FS), off the application's critical path.
// Restart reads the nearest valid copy: fast when it survived, the
// drained slow copy after a fast-tier loss (fail_fast_tier()).
//
// Capacity fallback: when a fast-tier write throws CapacityExceeded, the
// file spills — its staged bytes move to the slow tier and all further
// writes to it go there directly, degrading gracefully to the PIOFS-only
// behaviour instead of failing the checkpoint.
//
// Timing: the engines charge phase times through the backend primitives.
// Write phases price at the fast tier while it has room for the phase
// (else the slow tier — the spilled case); read phases price at the fast
// tier while it holds staged copies, and at the slow tier after a loss.
// This is a phase-level decision, consistent with the repo's architecture
// of engines charging whole phases with a global view. Drain time is
// simulated against the slow tier but reported separately — it is
// background work, never charged to the application's clock.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "store/storage_backend.hpp"

namespace drms::store {

struct TieredOptions {
  /// Drop the fast copy once drained (frees fast capacity; restarts then
  /// read the slow tier). Default keeps it for fast restarts.
  bool evict_fast_after_drain = false;
};

class TieredBackend final : public StorageBackend {
 public:
  /// Borrows both tiers; they must outlive the backend. The slow tier is
  /// authoritative for server_count and the cost model's ambient knobs.
  TieredBackend(StorageBackend& fast, StorageBackend& slow,
                TieredOptions options = {});

  TieredBackend(const TieredBackend&) = delete;
  TieredBackend& operator=(const TieredBackend&) = delete;

  FileHandle create(const std::string& name) override;
  [[nodiscard]] FileHandle open(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  void remove(const std::string& name) override;
  int remove_prefix(const std::string& prefix) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix = "") const override;

  [[nodiscard]] StorageStats stats() const override;
  void reset_stats() override;
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] int server_count() const override {
    return slow_.server_count();
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return fast_.capacity_bytes();
  }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return fast_.used_bytes();
  }

  [[nodiscard]] const sim::CostModel* cost_model() const override {
    return slow_.cost_model() != nullptr ? slow_.cost_model()
                                         : fast_.cost_model();
  }

  [[nodiscard]] double single_write_seconds(
      std::uint64_t bytes, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double concurrent_write_seconds(
      std::uint64_t bytes_per_writer, int writers,
      const sim::LoadContext& ctx, support::Rng* jitter) const override;
  [[nodiscard]] double shared_read_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double private_read_seconds(
      std::uint64_t bytes_per_reader, int readers,
      const sim::LoadContext& ctx, support::Rng* jitter) const override;
  [[nodiscard]] double stream_write_round_seconds(
      std::uint64_t bytes, int writers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double stream_read_round_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;

  // ---- staging control ------------------------------------------------------
  struct DrainReport {
    int files_drained = 0;
    std::uint64_t bytes_drained = 0;
    /// Simulated slow-tier write time of the drained copies (background;
    /// NOT charged to the application).
    double simulated_seconds = 0.0;
  };

  /// Copy every dirty fast-tier file to the slow tier. `load` shapes the
  /// simulated slow-tier write time of the report (a drain typically runs
  /// while the application computes, so the servers see its residency).
  DrainReport drain(const sim::LoadContext& load = {});

  // ---- event-model drain ----------------------------------------------------
  // drain() above is the synchronous sweep; the checkpoint service
  // (svc::submit_drain) instead asks for the work list and drains one
  // file per scheduler item, so restores can preempt between files.

  /// One dirty file awaiting drain.
  struct DrainItem {
    std::string name;
    std::uint64_t bytes = 0;  ///< staged size at snapshot time
  };
  /// Snapshot of the dirty fast-tier files (the drain work list).
  [[nodiscard]] std::vector<DrainItem> drain_work() const;
  /// Drain a single file: copy fast -> slow under the entry lock, mark it
  /// clean, honour evict_fast_after_drain. Returns the bytes copied, or
  /// nullopt when the file was already clean, spilled, or removed
  /// meanwhile (callers race benignly with writers and GC).
  std::optional<std::uint64_t> drain_file(const std::string& name);
  /// Modeled background write time of draining `bytes` to the slow tier
  /// (never charged to the application's clock).
  [[nodiscard]] double drain_write_seconds(
      std::uint64_t bytes, const sim::LoadContext& load = {}) const;

  /// Simulate losing the fast tier (node crash): every fast copy is
  /// dropped. Files already drained fall back to their slow copy;
  /// undrained files are LOST — subsequent open()/exists() fail, exactly
  /// the window a multi-level scheme accepts.
  void fail_fast_tier();

  /// Re-sync the entry table with what the fast tier actually still
  /// holds. A redundancy-encoded fast tier loses files out from under the
  /// entries on a PARTIAL node failure (RedundantBackend::fail_node);
  /// entries whose fast copy vanished are downgraded — drained files fall
  /// back to their slow copy, undrained ones are lost. Returns the number
  /// of entries downgraded.
  int reconcile_fast_tier();

  /// Dirty fast-tier bytes awaiting drain.
  [[nodiscard]] std::uint64_t drain_backlog_bytes() const;
  /// True while any file still has a fast-tier copy.
  [[nodiscard]] bool fast_holds_data() const;

 private:
  /// Where one file's bytes currently live. dirty == the fast copy is
  /// newer than (or absent from) the slow tier.
  struct Entry {
    std::mutex mutex;
    bool in_fast = false;
    bool in_slow = false;
    bool dirty = false;
  };
  class TieredFileObject;

  /// Entry lookup; adopts pre-existing slow-tier files (a tiered backend
  /// layered over a volume that already holds checkpoints) and creates
  /// the entry when `create_missing`.
  std::shared_ptr<Entry> find_entry(const std::string& name,
                                    bool create_missing) const;
  /// Move a file's staged bytes fast -> slow after a capacity overflow.
  /// Caller holds the entry mutex.
  void spill_locked(const std::string& name, Entry& entry);
  /// Copy one file fast -> slow in bounded chunks. Caller holds the entry
  /// mutex. Returns bytes copied.
  std::uint64_t copy_to_slow_locked(const std::string& name);
  [[nodiscard]] bool fast_fits(std::uint64_t bytes) const;
  /// How much of a `bytes`-sized write the fast tier can still absorb
  /// before it overflows (the timing model's picture of a mid-operation
  /// spill).
  [[nodiscard]] std::uint64_t fast_admissible(std::uint64_t bytes) const;

  StorageBackend& fast_;
  StorageBackend& slow_;
  TieredOptions options_;
  mutable std::mutex mutex_;  // guards entries_ (the map, not the files)
  mutable std::map<std::string, std::shared_ptr<Entry>> entries_;
  std::atomic<std::uint64_t> fast_bytes_committed_{0};
  std::atomic<std::uint64_t> drained_bytes_{0};
  std::atomic<std::uint64_t> fast_spills_{0};
};

}  // namespace drms::store
