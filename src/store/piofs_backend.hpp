// StorageBackend adapter over piofs::Volume — the paper's substrate.
//
// Every namespace operation delegates to the volume (keeping its
// per-server striping accountancy intact) and every timing primitive
// delegates to the given cost model, so a PIOFS-only run through this
// adapter is bit-identical to the seed's direct-Volume path: same bytes,
// same stats, same simulated seconds, same jitter-RNG draw sequence.
#pragma once

#include "piofs/volume.hpp"
#include "store/storage_backend.hpp"

namespace drms::store {

class PiofsBackend final : public StorageBackend {
 public:
  /// The backend borrows the volume (and cost model); both must outlive
  /// it. `cost` may be null: no time accounting.
  explicit PiofsBackend(piofs::Volume& volume,
                        const sim::CostModel* cost = nullptr)
      : volume_(volume), cost_(cost) {}

  FileHandle create(const std::string& name) override;
  [[nodiscard]] FileHandle open(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override {
    return volume_.exists(name);
  }
  void remove(const std::string& name) override { volume_.remove(name); }
  int remove_prefix(const std::string& prefix) override {
    return volume_.remove_prefix(prefix);
  }
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix = "") const override {
    return volume_.list(prefix);
  }
  [[nodiscard]] std::uint64_t file_size(
      const std::string& name) const override {
    return volume_.file_size(name);
  }
  [[nodiscard]] std::uint64_t total_size(
      const std::string& prefix) const override {
    return volume_.total_size(prefix);
  }

  [[nodiscard]] StorageStats stats() const override;
  void reset_stats() override { volume_.reset_stats(); }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] int server_count() const override {
    return volume_.server_count();
  }

  [[nodiscard]] const sim::CostModel* cost_model() const override {
    return cost_;
  }

  [[nodiscard]] double single_write_seconds(
      std::uint64_t bytes, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double concurrent_write_seconds(
      std::uint64_t bytes_per_writer, int writers,
      const sim::LoadContext& ctx, support::Rng* jitter) const override;
  [[nodiscard]] double shared_read_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double private_read_seconds(
      std::uint64_t bytes_per_reader, int readers,
      const sim::LoadContext& ctx, support::Rng* jitter) const override;
  [[nodiscard]] double stream_write_round_seconds(
      std::uint64_t bytes, int writers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double stream_read_round_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;

  /// The adapted volume, for host-side operations that are inherently
  /// PIOFS-specific (export/import to a host directory).
  [[nodiscard]] piofs::Volume& volume() noexcept { return volume_; }
  [[nodiscard]] const piofs::Volume& volume() const noexcept {
    return volume_;
  }

 private:
  piofs::Volume& volume_;
  const sim::CostModel* cost_;
};

}  // namespace drms::store
