#include "store/piofs_backend.hpp"

#include <utility>

namespace drms::store {

namespace {

/// FileObject over a piofs::FileHandle (which is itself a cheap value
/// handle onto the volume's shared file state).
class PiofsFileObject final : public FileObject {
 public:
  explicit PiofsFileObject(piofs::FileHandle file)
      : file_(std::move(file)) {}

  void write_at(std::uint64_t offset,
                std::span<const std::byte> data) override {
    file_.write_at(offset, data);
  }
  void write_zeros_at(std::uint64_t offset, std::uint64_t count) override {
    file_.write_zeros_at(offset, count);
  }
  [[nodiscard]] std::vector<std::byte> read_at(
      std::uint64_t offset, std::uint64_t count) const override {
    return file_.read_at(offset, count);
  }
  void read_at_into(std::uint64_t offset,
                    std::span<std::byte> out) const override {
    file_.read_at_into(offset, out);
  }
  void append(std::span<const std::byte> data) override {
    file_.append(data);
  }
  [[nodiscard]] std::uint64_t size() const override { return file_.size(); }
  [[nodiscard]] const std::string& name() const override {
    return file_.name();
  }

 private:
  piofs::FileHandle file_;
};

}  // namespace

FileHandle PiofsBackend::create(const std::string& name) {
  return FileHandle(
      std::make_shared<PiofsFileObject>(volume_.create(name)));
}

FileHandle PiofsBackend::open(const std::string& name) const {
  return FileHandle(std::make_shared<PiofsFileObject>(volume_.open(name)));
}

StorageStats PiofsBackend::stats() const {
  const piofs::VolumeStats v = volume_.stats();
  StorageStats s;
  s.bytes_written = v.bytes_written;
  s.bytes_read = v.bytes_read;
  s.write_ops = v.write_ops;
  s.read_ops = v.read_ops;
  s.files_created = v.files_created;
  return s;
}

std::string PiofsBackend::description() const {
  return "piofs(servers=" + std::to_string(volume_.server_count()) + ")";
}

double PiofsBackend::single_write_seconds(std::uint64_t bytes,
                                          const sim::LoadContext& ctx,
                                          support::Rng* jitter) const {
  return cost_ == nullptr ? 0.0
                          : cost_->single_write_seconds(bytes, ctx, jitter);
}

double PiofsBackend::concurrent_write_seconds(std::uint64_t bytes_per_writer,
                                              int writers,
                                              const sim::LoadContext& ctx,
                                              support::Rng* jitter) const {
  return cost_ == nullptr ? 0.0
                          : cost_->concurrent_write_seconds(
                                bytes_per_writer, writers, ctx, jitter);
}

double PiofsBackend::shared_read_seconds(std::uint64_t bytes, int readers,
                                         const sim::LoadContext& ctx,
                                         support::Rng* jitter) const {
  return cost_ == nullptr
             ? 0.0
             : cost_->shared_read_seconds(bytes, readers, ctx, jitter);
}

double PiofsBackend::private_read_seconds(std::uint64_t bytes_per_reader,
                                          int readers,
                                          const sim::LoadContext& ctx,
                                          support::Rng* jitter) const {
  return cost_ == nullptr ? 0.0
                          : cost_->private_read_seconds(
                                bytes_per_reader, readers, ctx, jitter);
}

double PiofsBackend::stream_write_round_seconds(std::uint64_t bytes,
                                                int writers,
                                                const sim::LoadContext& ctx,
                                                support::Rng* jitter) const {
  return cost_ == nullptr ? 0.0
                          : cost_->stream_write_round_seconds(bytes, writers,
                                                              ctx, jitter);
}

double PiofsBackend::stream_read_round_seconds(std::uint64_t bytes,
                                               int readers,
                                               const sim::LoadContext& ctx,
                                               support::Rng* jitter) const {
  return cost_ == nullptr ? 0.0
                          : cost_->stream_read_round_seconds(bytes, readers,
                                                             ctx, jitter);
}

}  // namespace drms::store
