#include "store/fault_injection_backend.hpp"

#include <memory>
#include <utility>

namespace drms::store {

namespace {

/// FileObject wrapper routing every mutation through the backend's fault
/// gate and every read through the read gate (dead flag + optional
/// read-indexed crash point for sweeps over read-only restore windows).
class FaultInjectedFile final : public FileObject {
 public:
  FaultInjectedFile(FaultInjectionBackend& owner, FileHandle inner)
      : owner_(owner), inner_(std::move(inner)) {}

  void write_at(std::uint64_t offset,
                std::span<const std::byte> data) override {
    if (owner_.before_mutation() ==
        FaultInjectionBackend::Verdict::kTear) {
      inner_.write_at(offset, data.first(data.size() / 2));
      owner_.die("injected crash: torn write to '" + inner_.name() + "'");
    }
    inner_.write_at(offset, data);
  }

  void write_zeros_at(std::uint64_t offset, std::uint64_t count) override {
    if (owner_.before_mutation() ==
        FaultInjectionBackend::Verdict::kTear) {
      inner_.write_zeros_at(offset, count / 2);
      owner_.die("injected crash: torn zero-fill of '" + inner_.name() +
                 "'");
    }
    inner_.write_zeros_at(offset, count);
  }

  [[nodiscard]] std::vector<std::byte> read_at(
      std::uint64_t offset, std::uint64_t count) const override {
    owner_.before_read();
    return inner_.read_at(offset, count);
  }

  void read_at_into(std::uint64_t offset,
                    std::span<std::byte> out) const override {
    owner_.before_read();
    inner_.read_at_into(offset, out);
  }

  void append(std::span<const std::byte> data) override {
    if (owner_.before_mutation() ==
        FaultInjectionBackend::Verdict::kTear) {
      inner_.append(data.first(data.size() / 2));
      owner_.die("injected crash: torn append to '" + inner_.name() + "'");
    }
    inner_.append(data);
  }

  [[nodiscard]] std::uint64_t size() const override {
    owner_.check_dead();
    return inner_.size();
  }
  [[nodiscard]] const std::string& name() const override {
    return inner_.name();
  }

 private:
  FaultInjectionBackend& owner_;
  FileHandle inner_;
};

}  // namespace

void FaultInjectionBackend::arm_crash(std::uint64_t op_index,
                                      CrashStyle style) {
  const std::lock_guard<std::mutex> lock(mutex_);
  armed_ = true;
  crash_index_ = op_index;
  style_ = style;
  dead_ = false;
  ops_ = 0;
}

void FaultInjectionBackend::arm_read_crash(std::uint64_t read_index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  read_armed_ = true;
  read_crash_index_ = read_index;
  dead_ = false;
  read_ops_ = 0;
}

void FaultInjectionBackend::disarm() {
  const std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  read_armed_ = false;
  dead_ = false;
  transient_budget_ = 0;
}

void FaultInjectionBackend::inject_transient_faults(int count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  transient_budget_ = count;
}

std::uint64_t FaultInjectionBackend::mutation_ops() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

std::uint64_t FaultInjectionBackend::read_ops() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return read_ops_;
}

std::uint64_t FaultInjectionBackend::faults_injected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

bool FaultInjectionBackend::crashed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dead_;
}

void FaultInjectionBackend::die(const std::string& why) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    dead_ = true;
  }
  throw support::IoError(why);
}

void FaultInjectionBackend::check_dead() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) {
    throw support::IoError(
        "storage unreachable: node lost by injected crash");
  }
}

void FaultInjectionBackend::before_read() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) {
    throw support::IoError(
        "storage unreachable: node lost by injected crash");
  }
  const std::uint64_t index = read_ops_++;
  if (read_armed_ && index == read_crash_index_) {
    ++faults_;
    dead_ = true;
    throw support::IoError("injected crash at storage read " +
                           std::to_string(index));
  }
}

FaultInjectionBackend::Verdict FaultInjectionBackend::before_mutation() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) {
    throw support::IoError(
        "storage unreachable: node lost by injected crash");
  }
  const std::uint64_t index = ops_++;
  if (armed_ && index == crash_index_) {
    ++faults_;
    if (style_ == CrashStyle::kTornWrite) {
      return Verdict::kTear;  // caller half-writes, then calls die()
    }
    dead_ = true;
    throw support::IoError("injected crash at storage op " +
                           std::to_string(index));
  }
  if (transient_budget_ > 0) {
    --transient_budget_;
    ++faults_;
    throw support::TransientIoError("injected transient I/O fault at op " +
                                    std::to_string(index));
  }
  return Verdict::kProceed;
}

FileHandle FaultInjectionBackend::create(const std::string& name) {
  if (before_mutation() == Verdict::kTear) {
    // There is no half of a create; treat it as a clean stop.
    die("injected crash: create of '" + name + "'");
  }
  return FileHandle(
      std::make_shared<FaultInjectedFile>(*this, inner_.create(name)));
}

FileHandle FaultInjectionBackend::open(const std::string& name) const {
  check_dead();
  return FileHandle(std::make_shared<FaultInjectedFile>(
      const_cast<FaultInjectionBackend&>(*this), inner_.open(name)));
}

bool FaultInjectionBackend::exists(const std::string& name) const {
  check_dead();
  return inner_.exists(name);
}

void FaultInjectionBackend::remove(const std::string& name) {
  if (before_mutation() == Verdict::kTear) {
    die("injected crash: remove of '" + name + "'");
  }
  inner_.remove(name);
}

int FaultInjectionBackend::remove_prefix(const std::string& prefix) {
  if (before_mutation() == Verdict::kTear) {
    die("injected crash: remove_prefix of '" + prefix + "'");
  }
  return inner_.remove_prefix(prefix);
}

std::vector<std::string> FaultInjectionBackend::list(
    const std::string& prefix) const {
  check_dead();
  return inner_.list(prefix);
}

std::uint64_t FaultInjectionBackend::file_size(const std::string& name) const {
  check_dead();
  return inner_.file_size(name);
}

std::uint64_t FaultInjectionBackend::total_size(
    const std::string& prefix) const {
  check_dead();
  return inner_.total_size(prefix);
}

}  // namespace drms::store
