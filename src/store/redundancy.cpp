#include "store/redundancy.hpp"

#include <algorithm>

#include "support/crc32.hpp"
#include "support/error.hpp"

namespace drms::store {

const char* to_string(RedundancyKind kind) noexcept {
  switch (kind) {
    case RedundancyKind::kPartner:
      return "partner";
    case RedundancyKind::kXor:
      return "xor";
  }
  return "?";
}

std::string RedundancyScheme::describe() const {
  if (kind == RedundancyKind::kPartner) {
    return "partner";
  }
  return "xor(" + std::to_string(group_size) + ")";
}

namespace {
constexpr const char* kFragmentTag = "#f";
}  // namespace

std::string fragment_name(const std::string& base, int index) {
  return base + kFragmentTag + std::to_string(index);
}

std::optional<FragmentName> parse_fragment_name(const std::string& name) {
  const std::size_t pos = name.rfind(kFragmentTag);
  if (pos == std::string::npos || pos == 0) {
    return std::nullopt;
  }
  const std::string tail = name.substr(pos + 2);
  if (tail.empty() || !std::all_of(tail.begin(), tail.end(), [](char c) {
        return c >= '0' && c <= '9';
      })) {
    return std::nullopt;
  }
  FragmentName out;
  out.base = name.substr(0, pos);
  out.index = std::stoi(tail);
  return out;
}

void write_fragment(StorageBackend& storage, const std::string& frag_name,
                    const FragmentHeader& header,
                    std::span<const std::byte> payload) {
  DRMS_EXPECTS_MSG(payload.size() == header.payload_bytes,
                   "fragment payload size disagrees with its header");
  support::ByteBuffer head;
  head.put_u32(kFragmentMagic);
  head.put_u32(static_cast<std::uint32_t>(header.kind));
  head.put_u32(header.index);
  head.put_u32(header.fragment_count);
  head.put_u64(header.payload_bytes);
  head.put_u64(header.total_bytes);
  head.put_u32(header.payload_crc);
  FileHandle file = storage.create(frag_name);
  file.write_at(0, head.bytes());
  if (!payload.empty()) {
    file.write_at(kFragmentHeaderBytes, payload);
  }
}

std::optional<FragmentHeader> read_fragment_header(
    const StorageBackend& storage, const std::string& frag_name) {
  if (!storage.exists(frag_name)) {
    return std::nullopt;
  }
  const FileHandle file = storage.open(frag_name);
  if (file.size() < kFragmentHeaderBytes) {
    return std::nullopt;
  }
  support::ByteBuffer head = read_to_buffer(file, 0, kFragmentHeaderBytes);
  if (head.get_u32() != kFragmentMagic) {
    return std::nullopt;
  }
  FragmentHeader out;
  out.kind = static_cast<RedundancyKind>(head.get_u32());
  out.index = head.get_u32();
  out.fragment_count = head.get_u32();
  out.payload_bytes = head.get_u64();
  out.total_bytes = head.get_u64();
  out.payload_crc = head.get_u32();
  if (file.size() < kFragmentHeaderBytes + out.payload_bytes) {
    return std::nullopt;  // torn payload
  }
  return out;
}

std::optional<support::ByteBuffer> read_fragment_payload(
    const StorageBackend& storage, const std::string& frag_name,
    const FragmentHeader& header) {
  const FileHandle file = storage.open(frag_name);
  if (file.size() < kFragmentHeaderBytes + header.payload_bytes) {
    return std::nullopt;
  }
  support::ByteBuffer payload =
      read_to_buffer(file, kFragmentHeaderBytes, header.payload_bytes);
  if (support::crc32c(payload.bytes()) != header.payload_crc) {
    return std::nullopt;
  }
  return payload;
}

FragmentExtent fragment_extent(std::uint64_t total_bytes, int data_fragments,
                               int index) {
  DRMS_EXPECTS_MSG(data_fragments > 0 && index >= 0,
                   "fragment_extent: bad geometry");
  const auto n = static_cast<std::uint64_t>(data_fragments);
  const auto i = static_cast<std::uint64_t>(index);
  if (i >= n) {
    return FragmentExtent{total_bytes, 0};
  }
  const std::uint64_t base = total_bytes / n;
  const std::uint64_t rem = total_bytes % n;
  FragmentExtent out;
  out.offset = i * base + std::min(i, rem);
  out.length = base + (i < rem ? 1 : 0);
  return out;
}

}  // namespace drms::store
