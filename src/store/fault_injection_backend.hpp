// Fault-injecting StorageBackend decorator (test/chaos harness).
//
// Wraps any backend and perturbs its MUTATING operations (create, remove,
// remove_prefix, write_at, write_zeros_at, append) while delegating
// everything else untouched:
//
//   arm_crash(n, style)      — the n-th mutation (0-based, counted across
//                              the whole backend) fails; kStop fails it
//                              outright, kTornWrite applies the first half
//                              of the data first (a torn write). After the
//                              crash the backend is DEAD: every subsequent
//                              operation, reads included, throws IoError —
//                              the node is gone — until disarm().
//   inject_transient_faults  — the next n mutation attempts each fail once
//                              with TransientIoError; a retry of the same
//                              operation then succeeds. Models dropped
//                              requests beneath the cost model's radar.
//   arm_read_crash(n)        — the n-th READ (read_at/read_at_into) dies
//                              instead; restore windows are read-only, so
//                              this is the crash axis a restore sweep
//                              needs.
//
// mutation_ops() exposes the operation counter so a crash-point sweep can
// size its index range from a clean dry run. Thread-safe: the checkpoint
// engines mutate storage from many tasks at once.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "store/storage_backend.hpp"

namespace drms::store {

class FaultInjectionBackend final : public StorageBackend {
 public:
  enum class CrashStyle {
    /// The armed operation fails without touching the inner backend.
    kStop,
    /// The armed operation applies roughly half of its bytes, then fails.
    kTornWrite,
  };

  /// The decorator does not own `inner`; it must outlive this object.
  explicit FaultInjectionBackend(StorageBackend& inner) : inner_(inner) {}

  // ---- fault controls -------------------------------------------------------
  void arm_crash(std::uint64_t op_index, CrashStyle style = CrashStyle::kStop);
  /// Arm a crash on the n-th READ operation (0-based; read_at and
  /// read_at_into counted across the whole backend). Restore windows are
  /// read-only, so a read-indexed crash point is what a sweep over the
  /// partial-restore window needs; mutation crash points never fire
  /// there. After the crash the backend is DEAD exactly as with
  /// arm_crash.
  void arm_read_crash(std::uint64_t read_index);
  /// Clear the crash point, the dead state, and any transient budget.
  void disarm();
  void inject_transient_faults(int count);
  [[nodiscard]] std::uint64_t mutation_ops() const;
  /// Read operations observed since construction or the last
  /// arm_read_crash (which, like arm_crash, resets its counter so sweeps
  /// can size their index range from a clean dry run).
  [[nodiscard]] std::uint64_t read_ops() const;
  [[nodiscard]] std::uint64_t faults_injected() const;
  /// True once an armed crash has fired (and until disarm()).
  [[nodiscard]] bool crashed() const;

  // ---- StorageBackend -------------------------------------------------------
  FileHandle create(const std::string& name) override;
  [[nodiscard]] FileHandle open(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  void remove(const std::string& name) override;
  int remove_prefix(const std::string& prefix) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix = "") const override;
  [[nodiscard]] std::uint64_t file_size(
      const std::string& name) const override;
  [[nodiscard]] std::uint64_t total_size(
      const std::string& prefix) const override;

  [[nodiscard]] StorageStats stats() const override { return inner_.stats(); }
  void reset_stats() override { inner_.reset_stats(); }
  [[nodiscard]] std::string description() const override {
    return "fault(" + inner_.description() + ")";
  }
  [[nodiscard]] int server_count() const override {
    return inner_.server_count();
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return inner_.capacity_bytes();
  }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return inner_.used_bytes();
  }

  [[nodiscard]] const sim::CostModel* cost_model() const override {
    return inner_.cost_model();
  }
  [[nodiscard]] double single_write_seconds(
      std::uint64_t bytes, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.single_write_seconds(bytes, ctx, jitter);
  }
  [[nodiscard]] double concurrent_write_seconds(
      std::uint64_t bytes_per_writer, int writers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.concurrent_write_seconds(bytes_per_writer, writers, ctx,
                                           jitter);
  }
  [[nodiscard]] double shared_read_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.shared_read_seconds(bytes, readers, ctx, jitter);
  }
  [[nodiscard]] double private_read_seconds(
      std::uint64_t bytes_per_reader, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.private_read_seconds(bytes_per_reader, readers, ctx, jitter);
  }
  [[nodiscard]] double stream_write_round_seconds(
      std::uint64_t bytes, int writers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.stream_write_round_seconds(bytes, writers, ctx, jitter);
  }
  [[nodiscard]] double stream_read_round_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.stream_read_round_seconds(bytes, readers, ctx, jitter);
  }

  // ---- fault gate (used by the wrapped FileObjects; not a user API) ---------
  /// Outcome of the fault gate for one mutation attempt.
  enum class Verdict { kProceed, kTear };
  /// Count one mutation attempt; throws (dead / crash / transient) or
  /// returns whether the op should proceed normally or tear.
  Verdict before_mutation();
  /// Count one read attempt; throws when dead or when the armed read
  /// crash-point fires.
  void before_read();
  void check_dead() const;
  /// Mark the backend dead and throw the crash IoError.
  [[noreturn]] void die(const std::string& why);

 private:
  StorageBackend& inner_;

  mutable std::mutex mutex_;
  std::uint64_t ops_ = 0;
  std::uint64_t read_ops_ = 0;
  std::uint64_t faults_ = 0;
  bool armed_ = false;
  bool read_armed_ = false;
  std::uint64_t crash_index_ = 0;
  std::uint64_t read_crash_index_ = 0;
  CrashStyle style_ = CrashStyle::kStop;
  bool dead_ = false;
  int transient_budget_ = 0;
};

}  // namespace drms::store
