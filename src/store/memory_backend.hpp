// Node-local in-memory checkpoint tier (ReStore-style).
//
// Files live in host RAM (sparsely, via piofs::ExtentFile, so the
// logically-sized segment padding costs nothing real). The tier has a
// configurable logical capacity; a write that would not fit throws
// CapacityExceeded BEFORE mutating anything, which is the signal
// TieredBackend uses to spill the file to the slow tier.
//
// Timing uses the memory-tier knobs of sim::CostModel: writes and reads
// move at memory bandwidth on every task independently (the tier is
// node-local, so there is no file-server contention and no co-location
// penalty); the redistribution half of a streaming round is client CPU
// work and keeps the PIOFS model's rate.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "store/storage_backend.hpp"

namespace drms::store {

class MemoryBackend final : public StorageBackend {
 public:
  /// `capacity_bytes` caps the sum of logical file sizes (0 = unlimited).
  /// `cost` may be null: no time accounting.
  explicit MemoryBackend(std::uint64_t capacity_bytes = 0,
                         const sim::CostModel* cost = nullptr)
      : capacity_bytes_(capacity_bytes), cost_(cost) {}

  MemoryBackend(const MemoryBackend&) = delete;
  MemoryBackend& operator=(const MemoryBackend&) = delete;

  FileHandle create(const std::string& name) override;
  [[nodiscard]] FileHandle open(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  void remove(const std::string& name) override;
  int remove_prefix(const std::string& prefix) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix = "") const override;

  [[nodiscard]] StorageStats stats() const override;
  void reset_stats() override;
  [[nodiscard]] std::string description() const override;
  /// Node-local: an I/O phase against this tier touches no file servers.
  [[nodiscard]] int server_count() const override { return 1; }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return capacity_bytes_;
  }
  [[nodiscard]] std::uint64_t used_bytes() const override;

  [[nodiscard]] const sim::CostModel* cost_model() const override {
    return cost_;
  }

  [[nodiscard]] double single_write_seconds(
      std::uint64_t bytes, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double concurrent_write_seconds(
      std::uint64_t bytes_per_writer, int writers,
      const sim::LoadContext& ctx, support::Rng* jitter) const override;
  [[nodiscard]] double shared_read_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double private_read_seconds(
      std::uint64_t bytes_per_reader, int readers,
      const sim::LoadContext& ctx, support::Rng* jitter) const override;
  [[nodiscard]] double stream_write_round_seconds(
      std::uint64_t bytes, int writers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double stream_read_round_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;

 private:
  struct MemFile;
  class MemFileObject;

  /// Reserve `grow_by` additional logical bytes; throws CapacityExceeded
  /// when the tier would overflow. Also bumps the write counters.
  void account_write(std::uint64_t grow_by, std::uint64_t count);
  void account_read(std::uint64_t count) const;
  [[nodiscard]] double jittered(double seconds, support::Rng* jitter) const;

  std::uint64_t capacity_bytes_;
  const sim::CostModel* cost_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<MemFile>> files_;
  std::uint64_t used_bytes_ = 0;
  mutable StorageStats stats_;
};

}  // namespace drms::store
