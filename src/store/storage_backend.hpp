// Pluggable checkpoint storage layer (drms::store).
//
// The checkpoint engines describe WHAT a checkpoint is (segment files,
// distribution-independent array streams, meta records); a StorageBackend
// decides WHERE the bytes live and HOW LONG the simulated I/O phases take.
// The seed system was hard-wired to the PIOFS substrate of the 1997
// paper; modern descendants of its strategy (SCR-style multi-level
// checkpointing, ReStore's in-memory replicated storage, arXiv:2203.01107)
// stage checkpoints to a fast near tier and drain to the parallel FS
// asynchronously. This interface is the seam that makes both worlds
// expressible:
//
//   PiofsBackend   — adapts piofs::Volume, preserving every byte and every
//                    cost-model charge of the seed (bit-identical).
//   MemoryBackend  — node-local in-memory tier with a capacity limit and
//                    simulated memory bandwidth.
//   TieredBackend  — write-through staging across a fast and a slow tier
//                    with background drain and tier-loss fallback.
//
// Timing stays the engines' responsibility: they have the global view of
// each I/O phase (who writes, how much, under what load) and call the
// backend's `*_seconds` primitives, which mirror sim::CostModel's. A
// backend without a cost model reports charges_time() == false and the
// engines skip charging entirely — exactly the seed's null-cost behaviour.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "support/byte_buffer.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace drms::store {

/// Cumulative transfer counters of one backend. Single-tier backends fill
/// only the first group; TieredBackend adds the staging counters.
struct StorageStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t files_created = 0;

  /// Bytes whose checkpoint commit completed against the fast tier.
  std::uint64_t fast_bytes_committed = 0;
  /// Bytes copied fast -> slow by background drains so far.
  std::uint64_t drained_bytes = 0;
  /// Bytes currently dirty in the fast tier (commit done, drain pending).
  std::uint64_t drain_backlog_bytes = 0;
  /// Files that overflowed the fast tier and fell through to the slow one.
  std::uint64_t fast_spills = 0;
};

/// Thrown by a capacity-limited backend when a write would not fit. The
/// write is NOT applied; TieredBackend catches this to spill to the slow
/// tier.
class CapacityExceeded : public support::IoError {
 public:
  using IoError::IoError;
};

/// One open file, whatever tier its bytes live in. Implementations must be
/// safe for concurrent use by the parallel-streaming tasks.
class FileObject {
 public:
  virtual ~FileObject() = default;
  virtual void write_at(std::uint64_t offset,
                        std::span<const std::byte> data) = 0;
  /// Logical zero-fill write: accounted like a real write but may be
  /// stored sparsely.
  virtual void write_zeros_at(std::uint64_t offset, std::uint64_t count) = 0;
  [[nodiscard]] virtual std::vector<std::byte> read_at(
      std::uint64_t offset, std::uint64_t count) const = 0;
  /// Zero-copy read: lands out.size() bytes at `offset` directly in the
  /// caller's buffer. The default bridges through read_at() so every
  /// existing backend stays correct; the in-tree backends override it to
  /// skip the intermediate vector.
  virtual void read_at_into(std::uint64_t offset,
                            std::span<std::byte> out) const {
    const std::vector<std::byte> bytes = read_at(offset, out.size());
    std::copy(bytes.begin(), bytes.end(), out.begin());
  }
  /// Append at the current end of file (serial streaming; no seek needed).
  virtual void append(std::span<const std::byte> data) = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;
};

/// Value handle to one open file. Cheap to copy; all copies refer to the
/// same file object (mirrors piofs::FileHandle).
class FileHandle {
 public:
  FileHandle() = default;
  explicit FileHandle(std::shared_ptr<FileObject> object)
      : object_(std::move(object)) {}

  void write_at(std::uint64_t offset, std::span<const std::byte> data) {
    DRMS_EXPECTS_MSG(valid(), "write through an invalid file handle");
    object_->write_at(offset, data);
  }
  void write_zeros_at(std::uint64_t offset, std::uint64_t count) {
    DRMS_EXPECTS_MSG(valid(), "write through an invalid file handle");
    object_->write_zeros_at(offset, count);
  }
  [[nodiscard]] std::vector<std::byte> read_at(std::uint64_t offset,
                                               std::uint64_t count) const {
    DRMS_EXPECTS_MSG(valid(), "read through an invalid file handle");
    return object_->read_at(offset, count);
  }
  /// Zero-copy read into a caller-owned buffer (see FileObject).
  void read_at_into(std::uint64_t offset, std::span<std::byte> out) const {
    DRMS_EXPECTS_MSG(valid(), "read through an invalid file handle");
    object_->read_at_into(offset, out);
  }
  void append(std::span<const std::byte> data) {
    DRMS_EXPECTS_MSG(valid(), "append through an invalid file handle");
    object_->append(data);
  }
  [[nodiscard]] std::uint64_t size() const {
    DRMS_EXPECTS_MSG(valid(), "size of an invalid file handle");
    return object_->size();
  }
  [[nodiscard]] const std::string& name() const {
    DRMS_EXPECTS_MSG(valid(), "name of an invalid file handle");
    return object_->name();
  }
  [[nodiscard]] bool valid() const noexcept { return object_ != nullptr; }

 private:
  std::shared_ptr<FileObject> object_;
};

/// Read `count` bytes at `offset` straight into a fresh ByteBuffer with no
/// intermediate vector (the buffer's storage is default-initialized, then
/// filled in place by the backend).
[[nodiscard]] inline support::ByteBuffer read_to_buffer(
    const FileHandle& file, std::uint64_t offset, std::uint64_t count) {
  support::ByteBuffer buf;
  file.read_at_into(offset,
                    buf.append_uninitialized(static_cast<std::size_t>(count)));
  return buf;
}

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  // ---- namespace operations -------------------------------------------------
  /// Create (or truncate) a file.
  virtual FileHandle create(const std::string& name) = 0;
  /// Open an existing file; throws IoError if absent.
  [[nodiscard]] virtual FileHandle open(const std::string& name) const = 0;
  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;
  virtual void remove(const std::string& name) = 0;
  /// Remove every file whose name starts with `prefix`; returns the count.
  virtual int remove_prefix(const std::string& prefix) = 0;
  /// Names of all files with the given prefix, sorted.
  [[nodiscard]] virtual std::vector<std::string> list(
      const std::string& prefix = "") const = 0;
  [[nodiscard]] virtual std::uint64_t file_size(
      const std::string& name) const {
    return open(name).size();
  }
  /// Sum of file sizes under a prefix — the "size of saved state" metric.
  [[nodiscard]] virtual std::uint64_t total_size(
      const std::string& prefix) const {
    std::uint64_t total = 0;
    for (const auto& name : list(prefix)) {
      total += file_size(name);
    }
    return total;
  }

  // ---- introspection --------------------------------------------------------
  [[nodiscard]] virtual StorageStats stats() const = 0;
  virtual void reset_stats() = 0;
  /// Human-readable one-liner, e.g. "piofs(servers=16)".
  [[nodiscard]] virtual std::string description() const = 0;
  /// File-system server nodes an I/O phase stripes across (feeds
  /// sim::LoadContext::server_count; 1 for node-local tiers).
  [[nodiscard]] virtual int server_count() const = 0;
  /// Capacity in bytes (0 = unlimited) and current logical usage.
  [[nodiscard]] virtual std::uint64_t capacity_bytes() const { return 0; }
  [[nodiscard]] virtual std::uint64_t used_bytes() const { return 0; }

  // ---- simulated time -------------------------------------------------------
  /// Cost model driving the timing primitives (null: no time accounting).
  /// Engines also use it directly for non-storage charges (restart text
  /// load, jitter sigma).
  [[nodiscard]] virtual const sim::CostModel* cost_model() const = 0;
  /// True when the timing primitives return meaningful (possibly zero)
  /// charges; false mirrors the seed's "null cost model" mode in which the
  /// engines skip charging — and jitter-RNG draws — entirely.
  [[nodiscard]] bool charges_time() const { return cost_model() != nullptr; }

  // The six phase primitives mirror sim::CostModel's signatures so the
  // engines' call sites stay unchanged in shape. All return seconds.
  [[nodiscard]] virtual double single_write_seconds(
      std::uint64_t bytes, const sim::LoadContext& ctx,
      support::Rng* jitter) const = 0;
  [[nodiscard]] virtual double concurrent_write_seconds(
      std::uint64_t bytes_per_writer, int writers,
      const sim::LoadContext& ctx, support::Rng* jitter) const = 0;
  [[nodiscard]] virtual double shared_read_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const = 0;
  [[nodiscard]] virtual double private_read_seconds(
      std::uint64_t bytes_per_reader, int readers,
      const sim::LoadContext& ctx, support::Rng* jitter) const = 0;
  [[nodiscard]] virtual double stream_write_round_seconds(
      std::uint64_t bytes, int writers, const sim::LoadContext& ctx,
      support::Rng* jitter) const = 0;
  [[nodiscard]] virtual double stream_read_round_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const = 0;
};

}  // namespace drms::store
