// Pluggable fast-tier redundancy schemes (SCR / ReStore lineage).
//
// A RedundancyScheme describes how RedundantBackend fragments one staged
// checkpoint file across cluster nodes so a committed generation survives
// node loss without ever touching slow storage:
//
//   kPartner — every fragment is a full copy of the file, placed on the
//              two nodes of the file's partner pair (SCR's PARTNER
//              descriptor). Survives the loss of either node.
//   kXor     — the file is split contiguously into group_size-1 data
//              fragments plus one XOR parity fragment, one fragment per
//              node of the file's group (SCR's XOR / RAID-5 descriptor).
//              Survives the loss of any ONE node per group.
//
// Fragments are self-describing files named "<base>#f<index>": a fixed
// header (magic, scheme, index/count, payload and original sizes, payload
// CRC-32C) followed by the payload bytes. The header is what makes the
// scavenge path — and `drms_tool fsck`'s fragment-set report — possible
// without any out-of-band metadata: everything needed to reassemble (or
// to prove a set incomplete) is on the surviving nodes themselves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "store/storage_backend.hpp"

namespace drms::store {

enum class RedundancyKind : std::uint32_t {
  kPartner = 1,  ///< full-copy pairs
  kXor = 2,      ///< group_size-1 data fragments + 1 XOR parity
};

[[nodiscard]] const char* to_string(RedundancyKind kind) noexcept;

struct RedundancyScheme {
  RedundancyKind kind = RedundancyKind::kPartner;
  /// Nodes per redundancy group: 2 for partner pairs, >= 3 for XOR
  /// (group_size - 1 data fragments plus the parity).
  int group_size = 2;

  /// Fragment files one encoded checkpoint file turns into.
  [[nodiscard]] int fragment_count() const noexcept {
    return kind == RedundancyKind::kPartner ? 2 : group_size;
  }
  /// Node losses per group the scheme reassembles through. Both in-tree
  /// schemes tolerate exactly one.
  [[nodiscard]] int tolerated_losses() const noexcept { return 1; }
  /// "partner" / "xor(4)".
  [[nodiscard]] std::string describe() const;
};

// ---- fragment naming --------------------------------------------------------

/// "ckpt.segment" + index 1 -> "ckpt.segment#f1". The '#' never occurs in
/// checkpoint state-file names, so fragment names cannot collide with (or
/// be mistaken for) logical files.
[[nodiscard]] std::string fragment_name(const std::string& base, int index);

/// Inverse of fragment_name: ("ckpt.segment#f1") -> {"ckpt.segment", 1};
/// nullopt when `name` is not a fragment name.
struct FragmentName {
  std::string base;
  int index = 0;
};
[[nodiscard]] std::optional<FragmentName> parse_fragment_name(
    const std::string& name);

// ---- on-volume fragment format ----------------------------------------------

struct FragmentHeader {
  RedundancyKind kind = RedundancyKind::kPartner;
  std::uint32_t index = 0;
  std::uint32_t fragment_count = 0;
  std::uint64_t payload_bytes = 0;
  /// Size of the original (pre-encoding) file.
  std::uint64_t total_bytes = 0;
  /// CRC-32C of the payload, verified by the scavenge path before a
  /// fragment is trusted for reassembly.
  std::uint32_t payload_crc = 0;
};

inline constexpr std::uint32_t kFragmentMagic = 0x44524647;  // "DRFG"
/// magic + kind + index + count + payload_bytes + total_bytes + crc.
inline constexpr std::uint64_t kFragmentHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8 + 4;

/// Write one fragment file (header + payload) on `storage`.
void write_fragment(StorageBackend& storage, const std::string& frag_name,
                    const FragmentHeader& header,
                    std::span<const std::byte> payload);

/// Parse a fragment file's header; nullopt when the file is missing, too
/// small, or carries the wrong magic.
[[nodiscard]] std::optional<FragmentHeader> read_fragment_header(
    const StorageBackend& storage, const std::string& frag_name);

/// Read a fragment's payload and verify it against the header CRC;
/// nullopt when the payload is torn or corrupt (the scavenge path treats
/// that fragment as lost).
[[nodiscard]] std::optional<support::ByteBuffer> read_fragment_payload(
    const StorageBackend& storage, const std::string& frag_name,
    const FragmentHeader& header);

// ---- contiguous split geometry ----------------------------------------------

/// Byte range of data fragment `index` when `total_bytes` split into
/// `data_fragments` contiguous pieces (first `total % n` pieces get the
/// extra byte). offset == total and length == 0 past the data.
struct FragmentExtent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};
[[nodiscard]] FragmentExtent fragment_extent(std::uint64_t total_bytes,
                                             int data_fragments, int index);

// ---- scavenge report --------------------------------------------------------

/// Outcome of RedundantBackend::scavenge(): the restart-time sweep that
/// reassembles every surviving file and rebuilds missing fragments onto
/// live nodes (read-repair), so the subsequent restore never touches the
/// slow tier unless a group lost more nodes than the scheme tolerates.
struct ScavengeReport {
  /// Files whose staged copy or full fragment set survived untouched.
  int files_intact = 0;
  /// Files reassembled from a partial fragment set (within tolerance).
  int files_rebuilt = 0;
  /// Files beyond tolerance: their remnants were dropped and restores
  /// must fall back to the slow tier.
  int files_lost = 0;
  /// Fragment payloads re-written onto live nodes by read-repair.
  int fragments_rebuilt = 0;
  /// Fragments whose payload failed its header CRC (counted as lost).
  int crc_failures = 0;
  std::uint64_t bytes_recovered = 0;
  std::vector<std::string> lost;  ///< names of the beyond-tolerance files

  [[nodiscard]] bool complete() const noexcept { return files_lost == 0; }
};

}  // namespace drms::store
