#include "store/tiered_backend.hpp"

#include <algorithm>
#include <utility>

#include "support/units.hpp"

namespace drms::store {

namespace {

/// Chunk size for fast -> slow copies (bounds the host-memory footprint
/// of draining a large staged segment).
constexpr std::uint64_t kCopyChunkBytes = 8 * support::kMiB;

}  // namespace

/// Routes every operation to the file's CURRENT tier under the entry
/// mutex, so a concurrent spill (capacity overflow on another task)
/// cannot strand a handle on a removed fast copy.
class TieredBackend::TieredFileObject final : public FileObject {
 public:
  TieredFileObject(TieredBackend* backend, std::string name,
                   std::shared_ptr<Entry> entry)
      : backend_(backend), name_(std::move(name)), entry_(std::move(entry)) {}

  void write_at(std::uint64_t offset,
                std::span<const std::byte> data) override {
    const std::lock_guard<std::mutex> lock(entry_->mutex);
    if (entry_->in_fast) {
      try {
        backend_->fast_.open(name_).write_at(offset, data);
        entry_->dirty = true;
        backend_->fast_bytes_committed_.fetch_add(data.size());
        return;
      } catch (const CapacityExceeded&) {
        backend_->spill_locked(name_, *entry_);
      }
    }
    slow_file().write_at(offset, data);
  }

  void write_zeros_at(std::uint64_t offset, std::uint64_t count) override {
    const std::lock_guard<std::mutex> lock(entry_->mutex);
    if (entry_->in_fast) {
      try {
        backend_->fast_.open(name_).write_zeros_at(offset, count);
        entry_->dirty = true;
        backend_->fast_bytes_committed_.fetch_add(count);
        return;
      } catch (const CapacityExceeded&) {
        backend_->spill_locked(name_, *entry_);
      }
    }
    slow_file().write_zeros_at(offset, count);
  }

  [[nodiscard]] std::vector<std::byte> read_at(
      std::uint64_t offset, std::uint64_t count) const override {
    const std::lock_guard<std::mutex> lock(entry_->mutex);
    return current_file().read_at(offset, count);
  }

  void read_at_into(std::uint64_t offset,
                    std::span<std::byte> out) const override {
    const std::lock_guard<std::mutex> lock(entry_->mutex);
    current_file().read_at_into(offset, out);
  }

  void append(std::span<const std::byte> data) override {
    const std::lock_guard<std::mutex> lock(entry_->mutex);
    if (entry_->in_fast) {
      try {
        backend_->fast_.open(name_).append(data);
        entry_->dirty = true;
        backend_->fast_bytes_committed_.fetch_add(data.size());
        return;
      } catch (const CapacityExceeded&) {
        backend_->spill_locked(name_, *entry_);
      }
    }
    slow_file().append(data);
  }

  [[nodiscard]] std::uint64_t size() const override {
    const std::lock_guard<std::mutex> lock(entry_->mutex);
    return current_file().size();
  }

  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  /// Nearest valid copy (reads). Caller holds the entry mutex.
  [[nodiscard]] FileHandle current_file() const {
    if (entry_->in_fast) {
      return backend_->fast_.open(name_);
    }
    if (entry_->in_slow) {
      return backend_->slow_.open(name_);
    }
    throw support::IoError("file '" + name_ +
                           "' was lost with the fast tier before draining");
  }

  /// Slow-tier handle for post-spill writes. Caller holds the entry mutex.
  [[nodiscard]] FileHandle slow_file() const {
    if (!entry_->in_slow) {
      backend_->slow_.create(name_);
      entry_->in_slow = true;
    }
    return backend_->slow_.open(name_);
  }

  TieredBackend* backend_;
  std::string name_;
  std::shared_ptr<Entry> entry_;
};

TieredBackend::TieredBackend(StorageBackend& fast, StorageBackend& slow,
                             TieredOptions options)
    : fast_(fast), slow_(slow), options_(options) {}

std::shared_ptr<TieredBackend::Entry> TieredBackend::find_entry(
    const std::string& name, bool create_missing) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second;
  }
  // Adopt a file the slow tier already holds (e.g. a tiered backend
  // layered over a volume with pre-existing checkpoints).
  if (slow_.exists(name)) {
    auto entry = std::make_shared<Entry>();
    entry->in_slow = true;
    entries_[name] = entry;
    return entry;
  }
  if (!create_missing) {
    return nullptr;
  }
  auto entry = std::make_shared<Entry>();
  entries_[name] = entry;
  return entry;
}

bool TieredBackend::fast_fits(std::uint64_t bytes) const {
  const std::uint64_t capacity = fast_.capacity_bytes();
  return capacity == 0 || fast_.used_bytes() + bytes <= capacity;
}

std::uint64_t TieredBackend::fast_admissible(std::uint64_t bytes) const {
  const std::uint64_t capacity = fast_.capacity_bytes();
  if (capacity == 0) {
    return bytes;
  }
  const std::uint64_t used = fast_.used_bytes();
  return used >= capacity ? 0 : std::min(bytes, capacity - used);
}

std::uint64_t TieredBackend::copy_to_slow_locked(const std::string& name) {
  const FileHandle src = fast_.open(name);
  FileHandle dst = slow_.create(name);
  const std::uint64_t total = src.size();
  for (std::uint64_t offset = 0; offset < total;
       offset += kCopyChunkBytes) {
    const std::uint64_t n = std::min(kCopyChunkBytes, total - offset);
    dst.write_at(offset, src.read_at(offset, n));
  }
  return total;
}

void TieredBackend::spill_locked(const std::string& name, Entry& entry) {
  copy_to_slow_locked(name);
  fast_.remove(name);
  entry.in_fast = false;
  entry.in_slow = true;
  entry.dirty = false;
  fast_spills_.fetch_add(1);
}

FileHandle TieredBackend::create(const std::string& name) {
  auto entry = find_entry(name, /*create_missing=*/true);
  const std::lock_guard<std::mutex> lock(entry->mutex);
  // A re-created file supersedes both copies.
  if (entry->in_fast && fast_.exists(name)) {
    fast_.remove(name);
  }
  if (entry->in_slow && slow_.exists(name)) {
    slow_.remove(name);
  }
  fast_.create(name);
  entry->in_fast = true;
  entry->in_slow = false;
  entry->dirty = true;
  return FileHandle(std::make_shared<TieredFileObject>(this, name, entry));
}

FileHandle TieredBackend::open(const std::string& name) const {
  auto entry = find_entry(name, /*create_missing=*/false);
  if (entry != nullptr) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->in_fast || entry->in_slow) {
      return FileHandle(std::make_shared<TieredFileObject>(
          const_cast<TieredBackend*>(this), name, entry));
    }
  }
  throw support::IoError("no such file: '" + name + "'");
}

bool TieredBackend::exists(const std::string& name) const {
  auto entry = find_entry(name, /*create_missing=*/false);
  if (entry == nullptr) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(entry->mutex);
  return entry->in_fast || entry->in_slow;
}

void TieredBackend::remove(const std::string& name) {
  // Failure must be side-effect-free: live TieredFileObject handles share
  // the entry, so the record may only change once something was actually
  // removed.
  auto entry = find_entry(name, /*create_missing=*/false);
  bool removed = false;
  if (entry != nullptr) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->in_fast || entry->in_slow) {
      if (entry->in_fast) {
        if (fast_.exists(name)) {
          fast_.remove(name);
        }
        entry->in_fast = false;
      }
      if (entry->in_slow) {
        slow_.remove(name);
        entry->in_slow = false;
      }
      entry->dirty = false;
      removed = true;
    }
    // else: lost with the fast tier — nothing to remove; keep the
    // tombstone entry so existing handles stay consistently invalid.
  }
  if (!removed) {
    throw support::IoError("cannot remove missing file: '" + name + "'");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(name);
}

int TieredBackend::remove_prefix(const std::string& prefix) {
  int removed = 0;
  for (const auto& name : list(prefix)) {
    try {
      remove(name);
      ++removed;
    } catch (const support::IoError&) {
      // Vanished between list() and remove() (concurrent drain eviction /
      // GC); MemoryBackend quietly skips these too.
    }
  }
  return removed;
}

std::vector<std::string> TieredBackend::list(
    const std::string& prefix) const {
  std::vector<std::string> names = slow_.list(prefix);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, entry] : entries_) {
      if (name.rfind(prefix, 0) == 0 && (entry->in_fast || entry->in_slow)) {
        names.push_back(name);
      }
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  // Drop names whose only copy was lost with the fast tier.
  std::erase_if(names, [this](const std::string& n) { return !exists(n); });
  return names;
}

StorageStats TieredBackend::stats() const {
  const StorageStats f = fast_.stats();
  const StorageStats s = slow_.stats();
  StorageStats out;
  out.bytes_written = f.bytes_written + s.bytes_written;
  out.bytes_read = f.bytes_read + s.bytes_read;
  out.write_ops = f.write_ops + s.write_ops;
  out.read_ops = f.read_ops + s.read_ops;
  out.files_created = f.files_created + s.files_created;
  out.fast_bytes_committed = fast_bytes_committed_.load();
  out.drained_bytes = drained_bytes_.load();
  out.drain_backlog_bytes = drain_backlog_bytes();
  out.fast_spills = fast_spills_.load();
  return out;
}

void TieredBackend::reset_stats() {
  fast_.reset_stats();
  slow_.reset_stats();
  fast_bytes_committed_.store(0);
  drained_bytes_.store(0);
  fast_spills_.store(0);
}

std::string TieredBackend::description() const {
  return "tiered(fast=" + fast_.description() +
         ", slow=" + slow_.description() + ")";
}

TieredBackend::DrainReport TieredBackend::drain(
    const sim::LoadContext& load) {
  // Synchronous sweep over the event-model primitives: snapshot the work
  // list, then drain each file under its own lock so concurrent writers
  // aren't blocked for the whole sweep.
  DrainReport report;
  for (const auto& item : drain_work()) {
    const std::optional<std::uint64_t> copied = drain_file(item.name);
    if (!copied.has_value()) {
      continue;  // cleaned, spilled, or removed since the snapshot
    }
    ++report.files_drained;
    report.bytes_drained += *copied;
    report.simulated_seconds += drain_write_seconds(*copied, load);
  }
  return report;
}

std::vector<TieredBackend::DrainItem> TieredBackend::drain_work() const {
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(entries_.begin(), entries_.end());
  }
  std::vector<DrainItem> work;
  for (const auto& [name, entry] : snapshot) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->in_fast && entry->dirty && fast_.exists(name)) {
      work.push_back(DrainItem{name, fast_.file_size(name)});
    }
  }
  return work;
}

std::optional<std::uint64_t> TieredBackend::drain_file(
    const std::string& name) {
  auto entry = find_entry(name, /*create_missing=*/false);
  if (entry == nullptr) {
    return std::nullopt;
  }
  const std::lock_guard<std::mutex> lock(entry->mutex);
  if (!entry->in_fast || !entry->dirty) {
    return std::nullopt;
  }
  if (!fast_.exists(name)) {
    // Deleted or superseded between drain_work() and execution (GC, a
    // re-created generation, or a fast-tier node loss). Draining now
    // would either throw or resurrect stale bytes onto the slow tier;
    // instead the entry downgrades and the dirty set forgets the file.
    entry->in_fast = false;
    entry->dirty = false;
    return std::nullopt;
  }
  const std::uint64_t copied = copy_to_slow_locked(name);
  entry->in_slow = true;
  entry->dirty = false;
  if (options_.evict_fast_after_drain) {
    fast_.remove(name);
    entry->in_fast = false;
  }
  drained_bytes_.fetch_add(copied);
  return copied;
}

double TieredBackend::drain_write_seconds(std::uint64_t bytes,
                                          const sim::LoadContext& load) const {
  return slow_.single_write_seconds(bytes, load, nullptr);
}

void TieredBackend::fail_fast_tier() {
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(entries_.begin(), entries_.end());
  }
  for (auto& [name, entry] : snapshot) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->in_fast) {
      if (fast_.exists(name)) {
        fast_.remove(name);
      }
      entry->in_fast = false;
      entry->dirty = false;
      // An undrained file has no surviving copy; its entry stays with
      // both flags cleared and open()/exists() report it gone.
    }
  }
}

int TieredBackend::reconcile_fast_tier() {
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(entries_.begin(), entries_.end());
  }
  int downgraded = 0;
  for (auto& [name, entry] : snapshot) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->in_fast && !fast_.exists(name)) {
      entry->in_fast = false;
      entry->dirty = false;
      ++downgraded;
    }
  }
  return downgraded;
}

std::uint64_t TieredBackend::drain_backlog_bytes() const {
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(entries_.begin(), entries_.end());
  }
  std::uint64_t backlog = 0;
  for (const auto& [name, entry] : snapshot) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->in_fast && entry->dirty && fast_.exists(name)) {
      backlog += fast_.file_size(name);
    }
  }
  return backlog;
}

bool TieredBackend::fast_holds_data() const {
  std::vector<std::shared_ptr<Entry>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, entry] : entries_) {
      snapshot.push_back(entry);
    }
  }
  for (const auto& entry : snapshot) {
    const std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->in_fast) {
      return true;
    }
  }
  return false;
}

double TieredBackend::single_write_seconds(std::uint64_t bytes,
                                           const sim::LoadContext& ctx,
                                           support::Rng* jitter) const {
  // Mirror the data path: the write lands in the fast tier until it no
  // longer fits, at which point spill_locked() re-copies the WHOLE file
  // (staged prefix included) to the slow tier and the write finishes
  // there. A mid-operation spill therefore costs the staged prefix at
  // fast speed plus the full size at slow speed.
  const std::uint64_t fast_part = fast_admissible(bytes);
  if (fast_part == bytes) {
    return fast_.single_write_seconds(bytes, ctx, jitter);
  }
  if (fast_part == 0) {
    return slow_.single_write_seconds(bytes, ctx, jitter);
  }
  return fast_.single_write_seconds(fast_part, ctx, jitter) +
         slow_.single_write_seconds(bytes, ctx, jitter);
}

double TieredBackend::concurrent_write_seconds(std::uint64_t bytes_per_writer,
                                               int writers,
                                               const sim::LoadContext& ctx,
                                               support::Rng* jitter) const {
  const std::uint64_t total =
      bytes_per_writer * static_cast<std::uint64_t>(writers);
  return fast_fits(total)
             ? fast_.concurrent_write_seconds(bytes_per_writer, writers, ctx,
                                              jitter)
             : slow_.concurrent_write_seconds(bytes_per_writer, writers, ctx,
                                              jitter);
}

double TieredBackend::shared_read_seconds(std::uint64_t bytes, int readers,
                                          const sim::LoadContext& ctx,
                                          support::Rng* jitter) const {
  return fast_holds_data()
             ? fast_.shared_read_seconds(bytes, readers, ctx, jitter)
             : slow_.shared_read_seconds(bytes, readers, ctx, jitter);
}

double TieredBackend::private_read_seconds(std::uint64_t bytes_per_reader,
                                           int readers,
                                           const sim::LoadContext& ctx,
                                           support::Rng* jitter) const {
  return fast_holds_data()
             ? fast_.private_read_seconds(bytes_per_reader, readers, ctx,
                                          jitter)
             : slow_.private_read_seconds(bytes_per_reader, readers, ctx,
                                          jitter);
}

double TieredBackend::stream_write_round_seconds(std::uint64_t bytes,
                                                 int writers,
                                                 const sim::LoadContext& ctx,
                                                 support::Rng* jitter) const {
  // Same mid-round spill accounting as single_write_seconds.
  const std::uint64_t fast_part = fast_admissible(bytes);
  if (fast_part == bytes) {
    return fast_.stream_write_round_seconds(bytes, writers, ctx, jitter);
  }
  if (fast_part == 0) {
    return slow_.stream_write_round_seconds(bytes, writers, ctx, jitter);
  }
  return fast_.stream_write_round_seconds(fast_part, writers, ctx, jitter) +
         slow_.stream_write_round_seconds(bytes, writers, ctx, jitter);
}

double TieredBackend::stream_read_round_seconds(std::uint64_t bytes,
                                                int readers,
                                                const sim::LoadContext& ctx,
                                                support::Rng* jitter) const {
  return fast_holds_data()
             ? fast_.stream_read_round_seconds(bytes, readers, ctx, jitter)
             : slow_.stream_read_round_seconds(bytes, readers, ctx, jitter);
}

}  // namespace drms::store
