#include "store/memory_backend.hpp"

#include <algorithm>

#include "piofs/extent_file.hpp"

namespace drms::store {

/// One in-memory file. All access is serialized by the backend mutex —
/// the tier is a simulator construct moving memcpy-sized chunks, so a
/// single lock is simpler than the per-file locking piofs needs and still
/// safe for the parallel-streaming tasks.
struct MemoryBackend::MemFile {
  explicit MemFile(std::string file_name) : name(std::move(file_name)) {}
  std::string name;
  piofs::ExtentFile data;
};

class MemoryBackend::MemFileObject final : public FileObject {
 public:
  MemFileObject(MemoryBackend* backend, std::shared_ptr<MemFile> file)
      : backend_(backend), file_(std::move(file)) {}

  void write_at(std::uint64_t offset,
                std::span<const std::byte> data) override {
    const std::lock_guard<std::mutex> lock(backend_->mutex_);
    const std::uint64_t old_size = file_->data.size();
    const std::uint64_t new_size =
        std::max(old_size, offset + data.size());
    backend_->account_write(new_size - old_size, data.size());
    file_->data.write_at(offset, data);
  }

  void write_zeros_at(std::uint64_t offset, std::uint64_t count) override {
    const std::lock_guard<std::mutex> lock(backend_->mutex_);
    const std::uint64_t old_size = file_->data.size();
    const std::uint64_t new_size = std::max(old_size, offset + count);
    backend_->account_write(new_size - old_size, count);
    file_->data.write_zeros_at(offset, count);
  }

  [[nodiscard]] std::vector<std::byte> read_at(
      std::uint64_t offset, std::uint64_t count) const override {
    const std::lock_guard<std::mutex> lock(backend_->mutex_);
    if (offset + count > file_->data.size()) {
      throw support::IoError("read past end of file '" + file_->name +
                             "' (offset " + std::to_string(offset) +
                             " count " + std::to_string(count) + " size " +
                             std::to_string(file_->data.size()) + ")");
    }
    backend_->account_read(count);
    return file_->data.read_at(offset, count);
  }

  void read_at_into(std::uint64_t offset,
                    std::span<std::byte> out) const override {
    const std::lock_guard<std::mutex> lock(backend_->mutex_);
    if (offset + out.size() > file_->data.size()) {
      throw support::IoError("read past end of file '" + file_->name +
                             "' (offset " + std::to_string(offset) +
                             " count " + std::to_string(out.size()) +
                             " size " + std::to_string(file_->data.size()) +
                             ")");
    }
    backend_->account_read(out.size());
    file_->data.read_at_into(offset, out);
  }

  void append(std::span<const std::byte> data) override {
    const std::lock_guard<std::mutex> lock(backend_->mutex_);
    backend_->account_write(data.size(), data.size());
    file_->data.write_at(file_->data.size(), data);
  }

  [[nodiscard]] std::uint64_t size() const override {
    const std::lock_guard<std::mutex> lock(backend_->mutex_);
    return file_->data.size();
  }

  [[nodiscard]] const std::string& name() const override {
    return file_->name;
  }

 private:
  MemoryBackend* backend_;
  std::shared_ptr<MemFile> file_;
};

void MemoryBackend::account_write(std::uint64_t grow_by,
                                  std::uint64_t count) {
  if (capacity_bytes_ > 0 && used_bytes_ + grow_by > capacity_bytes_) {
    throw CapacityExceeded(
        "memory tier full: " + std::to_string(used_bytes_) + " + " +
        std::to_string(grow_by) + " bytes exceeds capacity " +
        std::to_string(capacity_bytes_));
  }
  used_bytes_ += grow_by;
  stats_.bytes_written += count;
  ++stats_.write_ops;
}

void MemoryBackend::account_read(std::uint64_t count) const {
  stats_.bytes_read += count;
  ++stats_.read_ops;
}

FileHandle MemoryBackend::create(const std::string& name) {
  DRMS_EXPECTS(!name.empty());
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = files_[name];
  if (slot == nullptr) {
    slot = std::make_shared<MemFile>(name);
    ++stats_.files_created;
  } else {
    used_bytes_ -= slot->data.size();
    slot->data.truncate();
  }
  return FileHandle(std::make_shared<MemFileObject>(this, slot));
}

FileHandle MemoryBackend::open(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(name);
  if (it == files_.end()) {
    throw support::IoError("no such file: '" + name + "'");
  }
  return FileHandle(std::make_shared<MemFileObject>(
      const_cast<MemoryBackend*>(this), it->second));
}

bool MemoryBackend::exists(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(name) != 0;
}

void MemoryBackend::remove(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(name);
  if (it == files_.end()) {
    throw support::IoError("cannot remove missing file: '" + name + "'");
  }
  used_bytes_ -= it->second->data.size();
  files_.erase(it);
}

int MemoryBackend::remove_prefix(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  int removed = 0;
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      used_bytes_ -= it->second->data.size();
      it = files_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> MemoryBackend::list(
    const std::string& prefix) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, file] : files_) {
    if (name.rfind(prefix, 0) == 0) {
      names.push_back(name);
    }
  }
  return names;  // std::map iteration is already sorted
}

StorageStats MemoryBackend::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void MemoryBackend::reset_stats() {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats_ = StorageStats{};
}

std::string MemoryBackend::description() const {
  return "memory(capacity=" +
         (capacity_bytes_ == 0 ? std::string("unlimited")
                               : std::to_string(capacity_bytes_)) +
         ")";
}

std::uint64_t MemoryBackend::used_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return used_bytes_;
}

double MemoryBackend::jittered(double seconds, support::Rng* jitter) const {
  if (jitter == nullptr || cost_ == nullptr || cost_->jitter_sigma <= 0.0) {
    return seconds;
  }
  return seconds * jitter->jitter(cost_->jitter_sigma);
}

double MemoryBackend::single_write_seconds(std::uint64_t bytes,
                                           const sim::LoadContext& /*ctx*/,
                                           support::Rng* jitter) const {
  if (cost_ == nullptr || cost_->memory_write_bw <= 0.0) {
    return 0.0;
  }
  return jittered(static_cast<double>(bytes) / cost_->memory_write_bw +
                      cost_->memory_op_latency,
                  jitter);
}

double MemoryBackend::concurrent_write_seconds(std::uint64_t bytes_per_writer,
                                               int writers,
                                               const sim::LoadContext& /*ctx*/,
                                               support::Rng* jitter) const {
  DRMS_EXPECTS(writers > 0);
  if (cost_ == nullptr || cost_->memory_write_bw <= 0.0) {
    return 0.0;
  }
  // Node-local: every writer proceeds at memory bandwidth independently.
  return jittered(
      static_cast<double>(bytes_per_writer) / cost_->memory_write_bw +
          cost_->memory_op_latency,
      jitter);
}

double MemoryBackend::shared_read_seconds(std::uint64_t bytes, int readers,
                                          const sim::LoadContext& /*ctx*/,
                                          support::Rng* jitter) const {
  DRMS_EXPECTS(readers > 0);
  if (cost_ == nullptr || cost_->memory_read_bw <= 0.0) {
    return 0.0;
  }
  return jittered(static_cast<double>(bytes) / cost_->memory_read_bw +
                      cost_->memory_op_latency,
                  jitter);
}

double MemoryBackend::private_read_seconds(std::uint64_t bytes_per_reader,
                                           int readers,
                                           const sim::LoadContext& /*ctx*/,
                                           support::Rng* jitter) const {
  DRMS_EXPECTS(readers > 0);
  if (cost_ == nullptr || cost_->memory_read_bw <= 0.0) {
    return 0.0;
  }
  // No buffer-memory threshold: the tier IS the buffer memory.
  return jittered(
      static_cast<double>(bytes_per_reader) / cost_->memory_read_bw +
          cost_->memory_op_latency,
      jitter);
}

double MemoryBackend::stream_write_round_seconds(std::uint64_t bytes,
                                                 int writers,
                                                 const sim::LoadContext& ctx,
                                                 support::Rng* jitter) const {
  DRMS_EXPECTS(writers > 0);
  if (cost_ == nullptr || cost_->memory_write_bw <= 0.0) {
    return 0.0;
  }
  // Phase 1 (redistribution into the canonical distribution) is client
  // CPU work and keeps the PIOFS model's rate; only phase 2 (the actual
  // write) runs at memory speed, in parallel on every writer.
  double redist = 0.0;
  if (cost_->redistribution_bw > 0.0) {
    const double rate =
        cost_->redistribution_bw / cost_->client_congestion(ctx);
    redist =
        static_cast<double>(bytes) / (rate * static_cast<double>(writers));
  }
  const double write =
      static_cast<double>(bytes) /
      (cost_->memory_write_bw * static_cast<double>(writers));
  return jittered(redist + write + cost_->memory_op_latency, jitter);
}

double MemoryBackend::stream_read_round_seconds(std::uint64_t bytes,
                                                int readers,
                                                const sim::LoadContext& /*ctx*/,
                                                support::Rng* jitter) const {
  DRMS_EXPECTS(readers > 0);
  if (cost_ == nullptr || cost_->memory_read_bw <= 0.0) {
    return 0.0;
  }
  return jittered(
      static_cast<double>(bytes) /
              (cost_->memory_read_bw * static_cast<double>(readers)) +
          cost_->memory_op_latency,
      jitter);
}

}  // namespace drms::store
