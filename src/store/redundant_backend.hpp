// Redundancy-encoded fast tier: N node-local memory stores behind one
// StorageBackend, with background fragment encoding and a scavenge path.
//
// Life of a file (mirrors TieredBackend's staged/dirty protocol one level
// down):
//
//   staged    create()/writes land as ONE full copy on a node of the
//             file's redundancy group — the checkpoint commits at memory
//             speed, exactly like the plain MemoryBackend tier.
//   encoded   encode_file() (run off the critical path, one svc work item
//             per file — see svc::submit_encode) fragments the staged
//             copy across the group's nodes per the RedundancyScheme and
//             drops the staged copy. From here the file survives the loss
//             of any tolerated node subset.
//   read      open()/read route to the staged copy when present; an
//             encoded file is read straight out of its fragments
//             (contiguous-split arithmetic, no reassembly copy). A
//             missing-but-reconstructible fragment is rebuilt onto a live
//             node on first touch (read-repair).
//   scavenge  after fail_node(), scavenge() sweeps every file: verifies
//             surviving fragments against their header CRCs, rebuilds the
//             missing ones within tolerance, and drops the remnants of
//             files beyond tolerance so restores fall back to the slow
//             tier instead of erroring.
//
// The backend is arch-agnostic: it numbers nodes 0..N-1 and leaves the
// mapping to arch::Cluster processors to the caller (see
// arch/placement.hpp), so drms::store keeps its no-upward-deps layering.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "store/memory_backend.hpp"
#include "store/redundancy.hpp"
#include "store/storage_backend.hpp"

namespace drms::store {

class RedundantBackend final : public StorageBackend {
 public:
  /// `node_count` must be a positive multiple of the scheme's group size.
  /// `capacity_per_node` caps each node store (0 = unlimited); `cost` may
  /// be null (no time accounting), as for MemoryBackend.
  RedundantBackend(int node_count, RedundancyScheme scheme,
                   std::uint64_t capacity_per_node = 0,
                   const sim::CostModel* cost = nullptr);

  RedundantBackend(const RedundantBackend&) = delete;
  RedundantBackend& operator=(const RedundantBackend&) = delete;

  // ---- StorageBackend -------------------------------------------------------
  FileHandle create(const std::string& name) override;
  [[nodiscard]] FileHandle open(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  void remove(const std::string& name) override;
  int remove_prefix(const std::string& prefix) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix = "") const override;
  [[nodiscard]] std::uint64_t file_size(
      const std::string& name) const override;

  [[nodiscard]] StorageStats stats() const override;
  void reset_stats() override;
  [[nodiscard]] std::string description() const override;
  /// Node-local memory: no file servers.
  [[nodiscard]] int server_count() const override { return 1; }
  /// Aggregate over the UP nodes (a lost node takes its room with it).
  [[nodiscard]] std::uint64_t capacity_bytes() const override;
  [[nodiscard]] std::uint64_t used_bytes() const override;

  [[nodiscard]] const sim::CostModel* cost_model() const override {
    return cost_;
  }
  [[nodiscard]] double single_write_seconds(
      std::uint64_t bytes, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double concurrent_write_seconds(
      std::uint64_t bytes_per_writer, int writers,
      const sim::LoadContext& ctx, support::Rng* jitter) const override;
  [[nodiscard]] double shared_read_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double private_read_seconds(
      std::uint64_t bytes_per_reader, int readers,
      const sim::LoadContext& ctx, support::Rng* jitter) const override;
  [[nodiscard]] double stream_write_round_seconds(
      std::uint64_t bytes, int writers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;
  [[nodiscard]] double stream_read_round_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override;

  // ---- redundancy control ---------------------------------------------------
  [[nodiscard]] const RedundancyScheme& scheme() const noexcept {
    return scheme_;
  }
  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] bool node_up(int node) const;

  /// One staged file awaiting encoding (shape mirrors
  /// TieredBackend::DrainItem so svc can schedule both the same way).
  struct EncodeItem {
    std::string name;
    std::uint64_t bytes = 0;
  };
  /// Snapshot of the staged-but-unencoded files (the encode work list).
  [[nodiscard]] std::vector<EncodeItem> encode_work() const;
  /// Encode one file: fragment the staged copy across its group's nodes
  /// and drop the staged copy. Returns the original file's bytes, or
  /// nullopt when the file was removed, re-created, or already encoded
  /// meanwhile (callers race benignly, like TieredBackend::drain_file).
  std::optional<std::uint64_t> encode_file(const std::string& name);
  /// Encode every staged file (the synchronous sweep); returns the count.
  int encode_all();
  /// Modeled background memory-write time of encoding a `bytes` file
  /// (fragments + parity written at memory bandwidth; never charged to
  /// the application's clock).
  [[nodiscard]] double encode_write_seconds(
      std::uint64_t bytes, const sim::LoadContext& load = {}) const;
  /// Total fragment bytes an encoded `bytes`-sized file occupies.
  [[nodiscard]] std::uint64_t encoded_bytes(std::uint64_t bytes) const;

  /// Take node `node` down and drop everything it stored (the fast-tier
  /// half of an arch::Cluster::fail_node event).
  void fail_node(int node);
  /// Bring a repaired node back, empty. Content is NOT restored here;
  /// scavenge()'s read-repair re-protects files onto it lazily.
  void repair_node(int node);

  /// Restart-time sweep: CRC-verify surviving fragments, rebuild missing
  /// ones within tolerance onto live nodes, and drop the remnants of
  /// files beyond tolerance (their restores fall back to the slow tier).
  /// `prefix` limits the sweep ("" = everything).
  ScavengeReport scavenge(const std::string& prefix = "");

  /// Copy every physical file (staged copies and raw fragments) from the
  /// live nodes onto `dst` — the volume-export path drms_tool fsck uses
  /// to audit fragment-set completeness offline.
  void mirror_to(StorageBackend& dst) const;

  /// Placement introspection (tests): node of the staged copy (-1 when
  /// encoded or absent) and the per-fragment nodes (empty when staged).
  [[nodiscard]] int staged_node_of(const std::string& name) const;
  [[nodiscard]] std::vector<int> fragment_nodes_of(
      const std::string& name) const;

 private:
  struct Node {
    std::unique_ptr<MemoryBackend> store;
    std::atomic<bool> up{true};
  };
  /// Where one file's bytes live. Staged and encoded are mutually
  /// exclusive: encode drops the staged copy, materialize drops the
  /// fragments.
  struct FileRec {
    std::mutex mutex;
    int staged_node = -1;
    bool encoded = false;
    std::vector<int> frag_nodes;  ///< node per fragment index, when encoded
    std::uint64_t total = 0;      ///< original (pre-encoding) size
  };
  class RedundantFileObject;

  [[nodiscard]] std::shared_ptr<FileRec> find_rec(const std::string& name,
                                                  bool create_missing) const;
  void drop_rec(const std::string& name);
  /// First group node of `name` (hash placement) and the rotation that
  /// spreads parity across the group.
  [[nodiscard]] int home_group_base(const std::string& name) const;
  [[nodiscard]] int rotation_of(const std::string& name) const;
  /// A live node to stage/rebuild onto: prefers the home group, skips
  /// nodes in `avoid`; -1 when every node is down.
  [[nodiscard]] int pick_live_node(const std::string& name,
                                   const std::vector<int>& avoid) const;

  // All four helpers below run with rec->mutex held.
  [[nodiscard]] bool readable_locked(const std::string& name,
                                     const FileRec& rec) const;
  /// True when fragment `index` is present, live, and structurally sound.
  [[nodiscard]] bool fragment_live_locked(const std::string& name,
                                          const FileRec& rec,
                                          int index) const;
  /// Lowest live fragment index; throws IoError when none survived.
  [[nodiscard]] int first_live_fragment_locked(const std::string& name,
                                               const FileRec& rec) const;
  /// Payload of fragment `index`, reconstructing it from the surviving
  /// group when its own copy is gone. Throws IoError beyond tolerance.
  [[nodiscard]] support::ByteBuffer fragment_payload_locked(
      const std::string& name, const FileRec& rec, int index) const;
  /// Rebuild missing fragment `index` onto a live node (read-repair).
  void rebuild_fragment_locked(const std::string& name, FileRec& rec,
                               int index);
  /// Reassemble an encoded file back into a staged copy (before a write
  /// mutates it) and drop the fragments.
  void materialize_locked(const std::string& name, FileRec& rec);
  void remove_physical_locked(const std::string& name, FileRec& rec);

  RedundancyScheme scheme_;
  const sim::CostModel* cost_;
  std::vector<std::unique_ptr<Node>> nodes_;
  mutable std::mutex mutex_;  // guards recs_ (the map, not the files)
  mutable std::map<std::string, std::shared_ptr<FileRec>> recs_;
};

}  // namespace drms::store
