#include "store/redundant_backend.hpp"

#include <algorithm>
#include <utility>

#include "support/crc32.hpp"
#include "support/error.hpp"

namespace drms::store {

namespace {

/// FNV-1a: placement must be a stable pure function of the file name
/// (std::hash is implementation-defined and would make fragment layout —
/// and the tests pinning it — differ across standard libraries).
std::uint64_t stable_hash(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

// ---- file object ------------------------------------------------------------

/// Routes every operation to the file's CURRENT form (staged copy or
/// fragment set) under the record mutex, so encode/materialize/scavenge
/// transitions cannot strand a live handle.
class RedundantBackend::RedundantFileObject final : public FileObject {
 public:
  RedundantFileObject(RedundantBackend* backend, std::string name,
                      std::shared_ptr<FileRec> rec)
      : backend_(backend), name_(std::move(name)), rec_(std::move(rec)) {}

  void write_at(std::uint64_t offset,
                std::span<const std::byte> data) override {
    const std::lock_guard<std::mutex> lock(rec_->mutex);
    staged_file().write_at(offset, data);
    rec_->total = staged_size();
  }

  void write_zeros_at(std::uint64_t offset, std::uint64_t count) override {
    const std::lock_guard<std::mutex> lock(rec_->mutex);
    staged_file().write_zeros_at(offset, count);
    rec_->total = staged_size();
  }

  void append(std::span<const std::byte> data) override {
    const std::lock_guard<std::mutex> lock(rec_->mutex);
    staged_file().append(data);
    rec_->total = staged_size();
  }

  [[nodiscard]] std::vector<std::byte> read_at(
      std::uint64_t offset, std::uint64_t count) const override {
    std::vector<std::byte> out(static_cast<std::size_t>(count));
    read_at_into(offset, out);
    return out;
  }

  void read_at_into(std::uint64_t offset,
                    std::span<std::byte> out) const override {
    const std::lock_guard<std::mutex> lock(rec_->mutex);
    if (staged_live()) {
      backend_->nodes_[static_cast<std::size_t>(rec_->staged_node)]
          ->store->open(name_)
          .read_at_into(offset, out);
      return;
    }
    if (!rec_->encoded) {
      throw support::IoError("file '" + name_ +
                             "' was lost with its fast-tier node");
    }
    read_encoded(offset, out);
  }

  [[nodiscard]] std::uint64_t size() const override {
    const std::lock_guard<std::mutex> lock(rec_->mutex);
    return staged_live() ? staged_size() : rec_->total;
  }

  [[nodiscard]] const std::string& name() const override { return name_; }

 private:
  [[nodiscard]] bool staged_live() const {
    return rec_->staged_node >= 0 &&
           backend_->nodes_[static_cast<std::size_t>(rec_->staged_node)]
               ->up.load() &&
           backend_->nodes_[static_cast<std::size_t>(rec_->staged_node)]
               ->store->exists(name_);
  }

  [[nodiscard]] std::uint64_t staged_size() const {
    return backend_->nodes_[static_cast<std::size_t>(rec_->staged_node)]
        ->store->file_size(name_);
  }

  /// Writable staged handle; reassembles an encoded file first (a mutated
  /// file must be re-encoded before it is redundant again).
  [[nodiscard]] FileHandle staged_file() {
    if (rec_->encoded) {
      backend_->materialize_locked(name_, *rec_);
    }
    if (!staged_live()) {
      throw support::IoError("file '" + name_ +
                             "' was lost with its fast-tier node");
    }
    return backend_->nodes_[static_cast<std::size_t>(rec_->staged_node)]
        ->store->open(name_);
  }

  /// Serve a read straight from the fragment set: contiguous-split
  /// arithmetic per data fragment, with read-repair on a missing one.
  void read_encoded(std::uint64_t offset, std::span<std::byte> out) const {
    if (offset + out.size() > rec_->total) {
      throw support::IoError("read past end of encoded file '" + name_ +
                             "'");
    }
    const RedundancyScheme& scheme = backend_->scheme_;
    if (scheme.kind == RedundancyKind::kPartner) {
      const int live = backend_->first_live_fragment_locked(name_, *rec_);
      backend_->nodes_[static_cast<std::size_t>(rec_->frag_nodes[
          static_cast<std::size_t>(live)])]
          ->store->open(fragment_name(name_, live))
          .read_at_into(kFragmentHeaderBytes + offset, out);
      return;
    }
    const int data_fragments = scheme.group_size - 1;
    std::uint64_t done = 0;
    for (int i = 0; i < data_fragments && done < out.size(); ++i) {
      const FragmentExtent ext =
          fragment_extent(rec_->total, data_fragments, i);
      const std::uint64_t lo = std::max(ext.offset, offset);
      const std::uint64_t hi =
          std::min(ext.offset + ext.length, offset + out.size());
      if (lo >= hi) {
        continue;
      }
      if (!backend_->fragment_live_locked(name_, *rec_, i)) {
        backend_->rebuild_fragment_locked(name_, *rec_, i);  // read-repair
      }
      backend_->nodes_[static_cast<std::size_t>(
          rec_->frag_nodes[static_cast<std::size_t>(i)])]
          ->store->open(fragment_name(name_, i))
          .read_at_into(kFragmentHeaderBytes + (lo - ext.offset),
                        out.subspan(static_cast<std::size_t>(lo - offset),
                                    static_cast<std::size_t>(hi - lo)));
      done += hi - lo;
    }
  }

  RedundantBackend* backend_;
  std::string name_;
  std::shared_ptr<FileRec> rec_;
};

// ---- construction -----------------------------------------------------------

RedundantBackend::RedundantBackend(int node_count, RedundancyScheme scheme,
                                   std::uint64_t capacity_per_node,
                                   const sim::CostModel* cost)
    : scheme_(scheme), cost_(cost) {
  DRMS_EXPECTS_MSG(scheme_.group_size >= 2,
                   "redundancy groups need at least two nodes");
  DRMS_EXPECTS_MSG(
      scheme_.kind != RedundancyKind::kPartner || scheme_.group_size == 2,
      "partner replication uses pairs (group_size == 2)");
  DRMS_EXPECTS_MSG(
      scheme_.kind != RedundancyKind::kXor || scheme_.group_size >= 3,
      "xor groups need at least two data fragments (group_size >= 3)");
  DRMS_EXPECTS_MSG(node_count > 0 && node_count % scheme_.group_size == 0,
                   "node count must be a positive multiple of the group "
                   "size");
  nodes_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    auto node = std::make_unique<Node>();
    node->store = std::make_unique<MemoryBackend>(capacity_per_node, cost);
    nodes_.push_back(std::move(node));
  }
}

// ---- record plumbing --------------------------------------------------------

std::shared_ptr<RedundantBackend::FileRec> RedundantBackend::find_rec(
    const std::string& name, bool create_missing) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = recs_.find(name);
  if (it != recs_.end()) {
    return it->second;
  }
  if (!create_missing) {
    return nullptr;
  }
  auto rec = std::make_shared<FileRec>();
  recs_[name] = rec;
  return rec;
}

void RedundantBackend::drop_rec(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  recs_.erase(name);
}

int RedundantBackend::home_group_base(const std::string& name) const {
  const int groups = node_count() / scheme_.group_size;
  return static_cast<int>(stable_hash(name) %
                          static_cast<std::uint64_t>(groups)) *
         scheme_.group_size;
}

int RedundantBackend::rotation_of(const std::string& name) const {
  return static_cast<int>(
      (stable_hash(name) >> 32) %
      static_cast<std::uint64_t>(scheme_.group_size));
}

int RedundantBackend::pick_live_node(const std::string& name,
                                     const std::vector<int>& avoid) const {
  const auto usable = [&](int n) {
    return nodes_[static_cast<std::size_t>(n)]->up.load() &&
           std::find(avoid.begin(), avoid.end(), n) == avoid.end();
  };
  const int base = home_group_base(name);
  const int rot = rotation_of(name);
  for (int k = 0; k < scheme_.group_size; ++k) {
    const int n = base + (rot + k) % scheme_.group_size;
    if (usable(n)) {
      return n;
    }
  }
  for (int n = 0; n < node_count(); ++n) {
    if (usable(n)) {
      return n;
    }
  }
  return -1;
}

// ---- namespace operations ---------------------------------------------------

FileHandle RedundantBackend::create(const std::string& name) {
  auto rec = find_rec(name, /*create_missing=*/true);
  const std::lock_guard<std::mutex> lock(rec->mutex);
  remove_physical_locked(name, *rec);  // a re-created file supersedes all
  const int node = pick_live_node(name, {});
  if (node < 0) {
    throw support::IoError("create '" + name +
                           "': every fast-tier node is down");
  }
  nodes_[static_cast<std::size_t>(node)]->store->create(name);
  rec->staged_node = node;
  rec->encoded = false;
  rec->frag_nodes.clear();
  rec->total = 0;
  return FileHandle(
      std::make_shared<RedundantFileObject>(this, name, rec));
}

FileHandle RedundantBackend::open(const std::string& name) const {
  auto rec = find_rec(name, /*create_missing=*/false);
  if (rec != nullptr) {
    const std::lock_guard<std::mutex> lock(rec->mutex);
    if (readable_locked(name, *rec)) {
      return FileHandle(std::make_shared<RedundantFileObject>(
          const_cast<RedundantBackend*>(this), name, rec));
    }
  }
  throw support::IoError("no such file: '" + name + "'");
}

bool RedundantBackend::exists(const std::string& name) const {
  auto rec = find_rec(name, /*create_missing=*/false);
  if (rec == nullptr) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(rec->mutex);
  return readable_locked(name, *rec);
}

void RedundantBackend::remove(const std::string& name) {
  auto rec = find_rec(name, /*create_missing=*/false);
  if (rec == nullptr) {
    throw support::IoError("cannot remove missing file: '" + name + "'");
  }
  {
    const std::lock_guard<std::mutex> lock(rec->mutex);
    remove_physical_locked(name, *rec);
    rec->staged_node = -1;
    rec->encoded = false;
    rec->frag_nodes.clear();
  }
  drop_rec(name);
}

int RedundantBackend::remove_prefix(const std::string& prefix) {
  std::vector<std::string> names;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, rec] : recs_) {
      if (name.rfind(prefix, 0) == 0) {
        names.push_back(name);
      }
    }
  }
  int removed = 0;
  for (const auto& name : names) {
    try {
      remove(name);
      ++removed;
    } catch (const support::IoError&) {
      // Vanished meanwhile.
    }
  }
  return removed;
}

std::vector<std::string> RedundantBackend::list(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::shared_ptr<FileRec>>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, rec] : recs_) {
      if (name.rfind(prefix, 0) == 0) {
        snapshot.emplace_back(name, rec);
      }
    }
  }
  std::vector<std::string> out;
  for (const auto& [name, rec] : snapshot) {
    const std::lock_guard<std::mutex> lock(rec->mutex);
    if (readable_locked(name, *rec)) {
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t RedundantBackend::file_size(const std::string& name) const {
  auto rec = find_rec(name, /*create_missing=*/false);
  if (rec == nullptr) {
    throw support::IoError("no such file: '" + name + "'");
  }
  const std::lock_guard<std::mutex> lock(rec->mutex);
  if (!readable_locked(name, *rec)) {
    throw support::IoError("no such file: '" + name + "'");
  }
  if (rec->staged_node >= 0) {
    return nodes_[static_cast<std::size_t>(rec->staged_node)]
        ->store->file_size(name);
  }
  return rec->total;
}

// ---- introspection ----------------------------------------------------------

StorageStats RedundantBackend::stats() const {
  StorageStats out;
  for (const auto& node : nodes_) {
    const StorageStats s = node->store->stats();
    out.bytes_written += s.bytes_written;
    out.bytes_read += s.bytes_read;
    out.write_ops += s.write_ops;
    out.read_ops += s.read_ops;
    out.files_created += s.files_created;
  }
  return out;
}

void RedundantBackend::reset_stats() {
  for (const auto& node : nodes_) {
    node->store->reset_stats();
  }
}

std::string RedundantBackend::description() const {
  return "redundant(" + scheme_.describe() +
         ", nodes=" + std::to_string(node_count()) + ")";
}

std::uint64_t RedundantBackend::capacity_bytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (!node->up.load()) {
      continue;
    }
    const std::uint64_t c = node->store->capacity_bytes();
    if (c == 0) {
      return 0;  // any unlimited live node makes the tier unlimited
    }
    total += c;
  }
  return total;
}

std::uint64_t RedundantBackend::used_bytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node->up.load()) {
      total += node->store->used_bytes();
    }
  }
  return total;
}

bool RedundantBackend::node_up(int node) const {
  DRMS_EXPECTS_MSG(node >= 0 && node < node_count(), "node out of range");
  return nodes_[static_cast<std::size_t>(node)]->up.load();
}

// ---- simulated time ---------------------------------------------------------
// The staged write path is a single memory-tier copy; delegate every
// primitive to a node store (they all share the cost model).

double RedundantBackend::single_write_seconds(std::uint64_t bytes,
                                              const sim::LoadContext& ctx,
                                              support::Rng* jitter) const {
  return nodes_.front()->store->single_write_seconds(bytes, ctx, jitter);
}

double RedundantBackend::concurrent_write_seconds(
    std::uint64_t bytes_per_writer, int writers, const sim::LoadContext& ctx,
    support::Rng* jitter) const {
  return nodes_.front()->store->concurrent_write_seconds(bytes_per_writer,
                                                         writers, ctx, jitter);
}

double RedundantBackend::shared_read_seconds(std::uint64_t bytes, int readers,
                                             const sim::LoadContext& ctx,
                                             support::Rng* jitter) const {
  return nodes_.front()->store->shared_read_seconds(bytes, readers, ctx,
                                                    jitter);
}

double RedundantBackend::private_read_seconds(std::uint64_t bytes_per_reader,
                                              int readers,
                                              const sim::LoadContext& ctx,
                                              support::Rng* jitter) const {
  return nodes_.front()->store->private_read_seconds(bytes_per_reader,
                                                     readers, ctx, jitter);
}

double RedundantBackend::stream_write_round_seconds(
    std::uint64_t bytes, int writers, const sim::LoadContext& ctx,
    support::Rng* jitter) const {
  return nodes_.front()->store->stream_write_round_seconds(bytes, writers,
                                                           ctx, jitter);
}

double RedundantBackend::stream_read_round_seconds(
    std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
    support::Rng* jitter) const {
  return nodes_.front()->store->stream_read_round_seconds(bytes, readers,
                                                          ctx, jitter);
}

// ---- encode path ------------------------------------------------------------

std::vector<RedundantBackend::EncodeItem> RedundantBackend::encode_work()
    const {
  std::vector<std::pair<std::string, std::shared_ptr<FileRec>>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(recs_.begin(), recs_.end());
  }
  std::vector<EncodeItem> work;
  for (const auto& [name, rec] : snapshot) {
    const std::lock_guard<std::mutex> lock(rec->mutex);
    if (rec->encoded || rec->staged_node < 0) {
      continue;
    }
    const auto& node = nodes_[static_cast<std::size_t>(rec->staged_node)];
    if (node->up.load() && node->store->exists(name)) {
      work.push_back(EncodeItem{name, node->store->file_size(name)});
    }
  }
  return work;
}

std::optional<std::uint64_t> RedundantBackend::encode_file(
    const std::string& name) {
  auto rec = find_rec(name, /*create_missing=*/false);
  if (rec == nullptr) {
    return std::nullopt;
  }
  const std::lock_guard<std::mutex> lock(rec->mutex);
  if (rec->encoded || rec->staged_node < 0) {
    return std::nullopt;  // encoded, re-created, or removed meanwhile
  }
  const auto& staged = nodes_[static_cast<std::size_t>(rec->staged_node)];
  if (!staged->up.load() || !staged->store->exists(name)) {
    return std::nullopt;  // lost with its node before encoding
  }
  const FileHandle src = staged->store->open(name);
  const std::uint64_t total = src.size();
  const support::ByteBuffer content = read_to_buffer(src, 0, total);

  // Build the fragment payloads.
  const int count = scheme_.fragment_count();
  std::vector<std::span<const std::byte>> payloads(
      static_cast<std::size_t>(count));
  support::ByteBuffer parity;
  if (scheme_.kind == RedundancyKind::kPartner) {
    payloads[0] = content.bytes();
    payloads[1] = content.bytes();
  } else {
    const int data_fragments = scheme_.group_size - 1;
    const std::uint64_t stripe =
        fragment_extent(total, data_fragments, 0).length;
    std::span<std::byte> p =
        parity.append_uninitialized(static_cast<std::size_t>(stripe));
    std::fill(p.begin(), p.end(), std::byte{0});
    for (int i = 0; i < data_fragments; ++i) {
      const FragmentExtent ext = fragment_extent(total, data_fragments, i);
      payloads[static_cast<std::size_t>(i)] = content.bytes().subspan(
          static_cast<std::size_t>(ext.offset),
          static_cast<std::size_t>(ext.length));
      for (std::uint64_t j = 0; j < ext.length; ++j) {
        p[static_cast<std::size_t>(j)] ^=
            content.bytes()[static_cast<std::size_t>(ext.offset + j)];
      }
    }
    payloads[static_cast<std::size_t>(data_fragments)] = p;
  }

  // Place one fragment per node, parity rotated by the file hash.
  std::vector<int> targets;
  for (int i = 0; i < count; ++i) {
    const int preferred =
        home_group_base(name) +
        (rotation_of(name) + i) % scheme_.group_size;
    targets.push_back(
        nodes_[static_cast<std::size_t>(preferred)]->up.load() &&
                std::find(targets.begin(), targets.end(), preferred) ==
                    targets.end()
            ? preferred
            : pick_live_node(name, targets));
    if (targets.back() < 0) {
      return std::nullopt;  // not enough live nodes to protect the file
    }
  }
  std::vector<std::string> written;
  try {
    for (int i = 0; i < count; ++i) {
      FragmentHeader header;
      header.kind = scheme_.kind;
      header.index = static_cast<std::uint32_t>(i);
      header.fragment_count = static_cast<std::uint32_t>(count);
      header.payload_bytes = payloads[static_cast<std::size_t>(i)].size();
      header.total_bytes = total;
      header.payload_crc =
          support::crc32c(payloads[static_cast<std::size_t>(i)]);
      write_fragment(*nodes_[static_cast<std::size_t>(targets[
                         static_cast<std::size_t>(i)])]
                          ->store,
                     fragment_name(name, i), header,
                     payloads[static_cast<std::size_t>(i)]);
      written.push_back(fragment_name(name, i));
    }
  } catch (const CapacityExceeded&) {
    // Undo the partial set; the file stays staged (readable, just not
    // redundant yet) rather than half-encoded.
    for (std::size_t i = 0; i < written.size(); ++i) {
      nodes_[static_cast<std::size_t>(targets[i])]->store->remove(
          written[i]);
    }
    return std::nullopt;
  }
  staged->store->remove(name);
  rec->staged_node = -1;
  rec->encoded = true;
  rec->frag_nodes = std::move(targets);
  rec->total = total;
  return total;
}

int RedundantBackend::encode_all() {
  int encoded = 0;
  for (const auto& item : encode_work()) {
    if (encode_file(item.name).has_value()) {
      ++encoded;
    }
  }
  return encoded;
}

std::uint64_t RedundantBackend::encoded_bytes(std::uint64_t bytes) const {
  if (scheme_.kind == RedundancyKind::kPartner) {
    return 2 * bytes;
  }
  return bytes + fragment_extent(bytes, scheme_.group_size - 1, 0).length;
}

double RedundantBackend::encode_write_seconds(
    std::uint64_t bytes, const sim::LoadContext& load) const {
  return nodes_.front()->store->single_write_seconds(encoded_bytes(bytes),
                                                     load, nullptr);
}

// ---- failure & scavenge -----------------------------------------------------

void RedundantBackend::fail_node(int node) {
  DRMS_EXPECTS_MSG(node >= 0 && node < node_count(), "node out of range");
  auto& n = *nodes_[static_cast<std::size_t>(node)];
  n.up.store(false);
  n.store->remove_prefix("");  // its memory is gone with it
}

void RedundantBackend::repair_node(int node) {
  DRMS_EXPECTS_MSG(node >= 0 && node < node_count(), "node out of range");
  auto& n = *nodes_[static_cast<std::size_t>(node)];
  n.store->remove_prefix("");
  n.up.store(true);
}

bool RedundantBackend::readable_locked(const std::string& name,
                                       const FileRec& rec) const {
  if (rec.staged_node >= 0) {
    const auto& node = nodes_[static_cast<std::size_t>(rec.staged_node)];
    return node->up.load() && node->store->exists(name);
  }
  if (!rec.encoded) {
    return false;
  }
  int missing = 0;
  for (int i = 0; i < scheme_.fragment_count(); ++i) {
    if (!fragment_live_locked(name, rec, i)) {
      ++missing;
    }
  }
  if (scheme_.kind == RedundancyKind::kPartner) {
    return missing < scheme_.fragment_count();
  }
  return missing <= scheme_.tolerated_losses();
}

bool RedundantBackend::fragment_live_locked(const std::string& name,
                                            const FileRec& rec,
                                            int index) const {
  const int node = rec.frag_nodes[static_cast<std::size_t>(index)];
  if (node < 0 || !nodes_[static_cast<std::size_t>(node)]->up.load()) {
    return false;
  }
  return read_fragment_header(*nodes_[static_cast<std::size_t>(node)]->store,
                              fragment_name(name, index))
      .has_value();
}

int RedundantBackend::first_live_fragment_locked(const std::string& name,
                                                 const FileRec& rec) const {
  for (int i = 0; i < scheme_.fragment_count(); ++i) {
    if (fragment_live_locked(name, rec, i)) {
      return i;
    }
  }
  throw support::IoError("file '" + name +
                         "' lost every fast-tier fragment");
}

support::ByteBuffer RedundantBackend::fragment_payload_locked(
    const std::string& name, const FileRec& rec, int index) const {
  const auto read_checked =
      [&](int i) -> std::optional<support::ByteBuffer> {
    if (!fragment_live_locked(name, rec, i)) {
      return std::nullopt;
    }
    const auto& store =
        *nodes_[static_cast<std::size_t>(
                    rec.frag_nodes[static_cast<std::size_t>(i)])]
             ->store;
    const auto header =
        read_fragment_header(store, fragment_name(name, i));
    if (!header.has_value()) {
      return std::nullopt;
    }
    return read_fragment_payload(store, fragment_name(name, i), *header);
  };

  if (auto own = read_checked(index)) {
    return std::move(*own);
  }
  if (scheme_.kind == RedundancyKind::kPartner) {
    if (auto other = read_checked(1 - index)) {
      return std::move(*other);  // payloads are identical full copies
    }
    throw support::IoError("file '" + name +
                           "' lost both partner copies");
  }
  // XOR: the missing fragment is the XOR of every other one, truncated to
  // its own extent length (the parity stripe is the longest extent).
  const int data_fragments = scheme_.group_size - 1;
  const std::uint64_t stripe =
      fragment_extent(rec.total, data_fragments, 0).length;
  support::ByteBuffer acc;
  std::span<std::byte> a =
      acc.append_uninitialized(static_cast<std::size_t>(stripe));
  std::fill(a.begin(), a.end(), std::byte{0});
  for (int i = 0; i < scheme_.fragment_count(); ++i) {
    if (i == index) {
      continue;
    }
    const auto payload = read_checked(i);
    if (!payload.has_value()) {
      throw support::IoError("file '" + name +
                             "' lost more fragments than the xor group "
                             "tolerates");
    }
    const auto bytes = payload->bytes();
    for (std::size_t j = 0; j < bytes.size(); ++j) {
      a[j] ^= bytes[j];
    }
  }
  const std::uint64_t want =
      index == data_fragments
          ? stripe
          : fragment_extent(rec.total, data_fragments, index).length;
  acc.resize_uninitialized(static_cast<std::size_t>(want));
  return acc;
}

void RedundantBackend::rebuild_fragment_locked(const std::string& name,
                                               FileRec& rec, int index) {
  support::ByteBuffer payload = fragment_payload_locked(name, rec, index);
  std::vector<int> avoid;
  for (int i = 0; i < scheme_.fragment_count(); ++i) {
    if (i != index && fragment_live_locked(name, rec, i)) {
      avoid.push_back(rec.frag_nodes[static_cast<std::size_t>(i)]);
    }
  }
  int node = pick_live_node(name, avoid);
  if (node < 0) {
    // Every live node already holds one of the file's fragments (e.g. a
    // single-group tier after a loss). Double up on a live node: the
    // file stays fully readable now, at the cost of tolerance until the
    // failed node is repaired and re-protected.
    node = pick_live_node(name, {});
  }
  if (node < 0) {
    throw support::IoError("rebuild '" + name +
                           "': no live node left for the fragment");
  }
  FragmentHeader header;
  header.kind = scheme_.kind;
  header.index = static_cast<std::uint32_t>(index);
  header.fragment_count =
      static_cast<std::uint32_t>(scheme_.fragment_count());
  header.payload_bytes = payload.bytes().size();
  header.total_bytes = rec.total;
  header.payload_crc = support::crc32c(payload.bytes());
  write_fragment(*nodes_[static_cast<std::size_t>(node)]->store,
                 fragment_name(name, index), header, payload.bytes());
  rec.frag_nodes[static_cast<std::size_t>(index)] = node;
}

void RedundantBackend::materialize_locked(const std::string& name,
                                          FileRec& rec) {
  support::ByteBuffer content;
  if (scheme_.kind == RedundancyKind::kPartner) {
    content = fragment_payload_locked(name, rec, 0);
  } else {
    content.reserve(static_cast<std::size_t>(rec.total));
    for (int i = 0; i < scheme_.group_size - 1; ++i) {
      content.append(fragment_payload_locked(name, rec, i).bytes());
    }
  }
  // Drop the fragments first so the staged copy has room on the group.
  for (int i = 0; i < scheme_.fragment_count(); ++i) {
    const int node = rec.frag_nodes[static_cast<std::size_t>(i)];
    if (node >= 0 && nodes_[static_cast<std::size_t>(node)]->up.load() &&
        nodes_[static_cast<std::size_t>(node)]->store->exists(
            fragment_name(name, i))) {
      nodes_[static_cast<std::size_t>(node)]->store->remove(
          fragment_name(name, i));
    }
  }
  const int node = pick_live_node(name, {});
  if (node < 0) {
    throw support::IoError("materialize '" + name +
                           "': every fast-tier node is down");
  }
  FileHandle dst = nodes_[static_cast<std::size_t>(node)]->store->create(name);
  if (!content.bytes().empty()) {
    dst.write_at(0, content.bytes());
  }
  rec.staged_node = node;
  rec.encoded = false;
  rec.frag_nodes.clear();
  rec.total = content.bytes().size();
}

void RedundantBackend::remove_physical_locked(const std::string& name,
                                              FileRec& rec) {
  if (rec.staged_node >= 0) {
    const auto& node = nodes_[static_cast<std::size_t>(rec.staged_node)];
    if (node->up.load() && node->store->exists(name)) {
      node->store->remove(name);
    }
  }
  for (std::size_t i = 0; i < rec.frag_nodes.size(); ++i) {
    const int node = rec.frag_nodes[i];
    const std::string frag = fragment_name(name, static_cast<int>(i));
    if (node >= 0 && nodes_[static_cast<std::size_t>(node)]->up.load() &&
        nodes_[static_cast<std::size_t>(node)]->store->exists(frag)) {
      nodes_[static_cast<std::size_t>(node)]->store->remove(frag);
    }
  }
}

ScavengeReport RedundantBackend::scavenge(const std::string& prefix) {
  std::vector<std::pair<std::string, std::shared_ptr<FileRec>>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, rec] : recs_) {
      if (name.rfind(prefix, 0) == 0) {
        snapshot.emplace_back(name, rec);
      }
    }
  }
  ScavengeReport report;
  std::vector<std::string> dead;
  for (const auto& [name, rec] : snapshot) {
    const std::lock_guard<std::mutex> lock(rec->mutex);
    if (rec->staged_node >= 0) {
      const auto& node = nodes_[static_cast<std::size_t>(rec->staged_node)];
      if (node->up.load() && node->store->exists(name)) {
        ++report.files_intact;
      } else {
        // Lost before it was ever encoded — the exact window the scheme
        // does not cover (like an undrained tiered file).
        ++report.files_lost;
        report.lost.push_back(name);
        dead.push_back(name);
      }
      continue;
    }
    if (!rec->encoded) {
      continue;  // tombstone
    }
    // CRC-verify every surviving fragment; a corrupt payload counts as
    // missing (it must not poison a reassembly).
    std::vector<int> missing;
    for (int i = 0; i < scheme_.fragment_count(); ++i) {
      if (!fragment_live_locked(name, *rec, i)) {
        missing.push_back(i);
        continue;
      }
      const auto& store =
          *nodes_[static_cast<std::size_t>(
                      rec->frag_nodes[static_cast<std::size_t>(i)])]
               ->store;
      const auto header =
          read_fragment_header(store, fragment_name(name, i));
      if (!header.has_value() ||
          !read_fragment_payload(store, fragment_name(name, i), *header)
               .has_value()) {
        ++report.crc_failures;
        missing.push_back(i);
      }
    }
    if (missing.empty()) {
      ++report.files_intact;
      continue;
    }
    const bool recoverable =
        scheme_.kind == RedundancyKind::kPartner
            ? static_cast<int>(missing.size()) < scheme_.fragment_count()
            : static_cast<int>(missing.size()) <=
                  scheme_.tolerated_losses();
    if (!recoverable) {
      remove_physical_locked(name, *rec);
      rec->encoded = false;
      rec->frag_nodes.clear();
      ++report.files_lost;
      report.lost.push_back(name);
      dead.push_back(name);
      continue;
    }
    for (const int index : missing) {
      rebuild_fragment_locked(name, *rec, index);
      ++report.fragments_rebuilt;
    }
    ++report.files_rebuilt;
    report.bytes_recovered += rec->total;
  }
  for (const auto& name : dead) {
    drop_rec(name);
  }
  return report;
}

void RedundantBackend::mirror_to(StorageBackend& dst) const {
  for (const auto& node : nodes_) {
    if (!node->up.load()) {
      continue;
    }
    for (const auto& name : node->store->list()) {
      const FileHandle src = node->store->open(name);
      FileHandle out = dst.create(name);
      const std::uint64_t size = src.size();
      if (size > 0) {
        out.write_at(0, read_to_buffer(src, 0, size).bytes());
      }
    }
  }
}

int RedundantBackend::staged_node_of(const std::string& name) const {
  auto rec = find_rec(name, /*create_missing=*/false);
  if (rec == nullptr) {
    return -1;
  }
  const std::lock_guard<std::mutex> lock(rec->mutex);
  return rec->staged_node;
}

std::vector<int> RedundantBackend::fragment_nodes_of(
    const std::string& name) const {
  auto rec = find_rec(name, /*create_missing=*/false);
  if (rec == nullptr) {
    return {};
  }
  const std::lock_guard<std::mutex> lock(rec->mutex);
  return rec->frag_nodes;
}

}  // namespace drms::store
