// Per-task storage for a mapped array section. Elements are laid out in
// column-major order over the mapped slice's own index space, so the
// canonical streaming chunks (whose mapped section IS the chunk) are
// already in stream order in memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/slice.hpp"

namespace drms::core {

class LocalArray {
 public:
  /// An empty local array (no mapped section).
  LocalArray() = default;
  /// Allocate zero-initialized storage for `mapped` with `elem_size`-byte
  /// elements.
  LocalArray(Slice mapped, std::size_t elem_size);

  [[nodiscard]] const Slice& mapped() const noexcept { return mapped_; }
  [[nodiscard]] std::size_t elem_size() const noexcept { return elem_size_; }
  [[nodiscard]] Index element_count() const noexcept {
    return mapped_.rank() == 0 ? 0 : mapped_.element_count();
  }
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return static_cast<std::uint64_t>(data_.size());
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<std::byte> bytes() noexcept {
    return {data_.data(), data_.size()};
  }

  /// Byte offset of a global multi-index, or nullopt when the point is not
  /// in the mapped section.
  [[nodiscard]] std::optional<std::uint64_t> offset_of(
      std::span<const Index> point) const;

  /// Copy the elements of sub-slice `s` (must be covered by mapped()) into
  /// `out` in column-major stream order. `out` must hold
  /// s.element_count() * elem_size() bytes.
  void extract(const Slice& s, std::span<std::byte> out) const;

  /// Inverse of extract: scatter stream-ordered bytes into sub-slice `s`.
  void insert(const Slice& s, std::span<const std::byte> in);

  /// Typed element accessors (for solvers and tests; double arrays are the
  /// common case in the paper's CFD workloads).
  [[nodiscard]] double get_f64(std::span<const Index> point) const;
  void set_f64(std::span<const Index> point, double value);

  /// Direct typed view over the whole local storage (column-major over the
  /// mapped slice). Only valid when elem_size() == sizeof(double).
  [[nodiscard]] std::span<double> as_f64();
  [[nodiscard]] std::span<const double> as_f64() const;

 private:
  /// Per-axis local positions of the values of `s.range(axis)` inside
  /// mapped().range(axis); throws if any value is absent.
  [[nodiscard]] std::vector<std::vector<Index>> position_tables(
      const Slice& s) const;

  Slice mapped_;
  std::size_t elem_size_ = 0;
  /// Column-major strides in elements, per axis.
  std::vector<Index> stride_;
  std::vector<std::byte> data_;
};

}  // namespace drms::core
