// Per-task storage for a mapped array section. Elements are laid out in
// column-major order over the mapped slice's own index space, so the
// canonical streaming chunks (whose mapped section IS the chunk) are
// already in stream order in memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/slice.hpp"

namespace drms::core {

/// Dirty-region log for delta checkpoints. Mutation paths record the
/// global sub-slices they touched; when precise tracking is unavailable
/// (raw-span access) or the slice list overflows, the log degrades to a
/// conservative mark-all over the owner's mapped section. Consumers test
/// blocks with intersects() — a clean() log means the section is
/// provably unchanged since the last clear().
struct MutationLog {
  /// Bound on precise slices before degrading to mark-all: keeps the
  /// per-mutation cost O(1) amortized and the per-block dirty test cheap.
  static constexpr std::size_t kMaxSlices = 64;

  bool all = false;
  std::vector<Slice> slices;

  void mark_all() noexcept {
    all = true;
    slices.clear();
  }
  void mark(const Slice& s) {
    if (all || s.empty()) {
      return;
    }
    if (slices.size() >= kMaxSlices) {
      mark_all();
      return;
    }
    slices.push_back(s);
  }
  void clear() noexcept {
    all = false;
    slices.clear();
  }
  [[nodiscard]] bool clean() const noexcept { return !all && slices.empty(); }
  /// True when the marked regions overlap `s`. `all` intersects
  /// everything — callers clip against the owner's mapped section.
  [[nodiscard]] bool intersects(const Slice& s) const {
    if (all) {
      return true;
    }
    for (const Slice& m : slices) {
      if (!m.intersect(s).empty()) {
        return true;
      }
    }
    return false;
  }
};

class LocalArray {
 public:
  /// An empty local array (no mapped section).
  LocalArray() = default;
  /// Allocate zero-initialized storage for `mapped` with `elem_size`-byte
  /// elements.
  LocalArray(Slice mapped, std::size_t elem_size);

  [[nodiscard]] const Slice& mapped() const noexcept { return mapped_; }
  [[nodiscard]] std::size_t elem_size() const noexcept { return elem_size_; }
  [[nodiscard]] Index element_count() const noexcept {
    return mapped_.rank() == 0 ? 0 : mapped_.element_count();
  }
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return static_cast<std::uint64_t>(data_.size());
  }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<std::byte> bytes() noexcept {
    if (log_ != nullptr) {
      log_->mark_all();
    }
    return {data_.data(), data_.size()};
  }

  /// Attach (or detach, with nullptr) a dirty log. The log outlives the
  /// attachment; mutation paths record into it: insert() marks its target
  /// slice, set_f64() marks the point, and the raw-span accessors
  /// (non-const bytes()/as_f64()) conservatively mark everything.
  void attach_mutation_log(MutationLog* log) noexcept { log_ = log; }
  [[nodiscard]] MutationLog* mutation_log() const noexcept { return log_; }

  /// Byte offset of a global multi-index, or nullopt when the point is not
  /// in the mapped section.
  [[nodiscard]] std::optional<std::uint64_t> offset_of(
      std::span<const Index> point) const;

  /// Copy the elements of sub-slice `s` (must be covered by mapped()) into
  /// `out` in column-major stream order. `out` must hold
  /// s.element_count() * elem_size() bytes.
  void extract(const Slice& s, std::span<std::byte> out) const;

  /// Inverse of extract: scatter stream-ordered bytes into sub-slice `s`.
  void insert(const Slice& s, std::span<const std::byte> in);

  /// Typed element accessors (for solvers and tests; double arrays are the
  /// common case in the paper's CFD workloads).
  [[nodiscard]] double get_f64(std::span<const Index> point) const;
  void set_f64(std::span<const Index> point, double value);

  /// Direct typed view over the whole local storage (column-major over the
  /// mapped slice). Only valid when elem_size() == sizeof(double).
  [[nodiscard]] std::span<double> as_f64();
  [[nodiscard]] std::span<const double> as_f64() const;

 private:
  /// Per-axis local positions of the values of `s.range(axis)` inside
  /// mapped().range(axis); throws if any value is absent.
  [[nodiscard]] std::vector<std::vector<Index>> position_tables(
      const Slice& s) const;

  Slice mapped_;
  std::size_t elem_size_ = 0;
  /// Optional dirty log (owned by the enclosing DistArray); null when
  /// delta tracking is off — the hooks then cost one branch.
  MutationLog* log_ = nullptr;
  /// Column-major strides in elements, per axis.
  std::vector<Index> stride_;
  std::vector<std::byte> data_;
};

}  // namespace drms::core
