#include "core/checkpoint_catalog.hpp"

#include <algorithm>

#include "support/byte_buffer.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

namespace drms::core {

namespace {

/// "foo.bar.meta" -> "foo.bar"; nullopt when not a meta file.
std::optional<std::string> prefix_of_meta(const std::string& name,
                                          bool& spmd) {
  static const std::string kSpmdSuffix = ".spmd.meta";
  static const std::string kSuffix = ".meta";
  if (name.size() > kSpmdSuffix.size() &&
      name.compare(name.size() - kSpmdSuffix.size(), kSpmdSuffix.size(),
                   kSpmdSuffix) == 0) {
    spmd = true;
    return name.substr(0, name.size() - kSpmdSuffix.size());
  }
  if (name.size() > kSuffix.size() &&
      name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                   kSuffix) == 0) {
    spmd = false;
    return name.substr(0, name.size() - kSuffix.size());
  }
  return std::nullopt;
}

}  // namespace

std::vector<CheckpointRecord> list_checkpoints(
    const store::StorageBackend& storage, const std::string& prefix_filter) {
  std::vector<CheckpointRecord> records;
  for (const auto& name : storage.list(prefix_filter)) {
    bool spmd = false;
    const auto prefix = prefix_of_meta(name, spmd);
    if (!prefix.has_value()) {
      continue;
    }
    CheckpointRecord record;
    record.prefix = *prefix;
    record.spmd = spmd;
    try {
      record.meta = spmd ? read_spmd_meta(storage, *prefix)
                         : read_checkpoint_meta(storage, *prefix);
      record.state_bytes = spmd ? spmd_state_size(storage, *prefix)
                                : drms_state_size(storage, *prefix);
    } catch (const support::Error&) {
      continue;  // torn meta or missing files: not a restart candidate
    }
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const CheckpointRecord& a, const CheckpointRecord& b) {
              if (a.meta.sop != b.meta.sop) {
                return a.meta.sop < b.meta.sop;
              }
              return a.prefix < b.prefix;
            });
  return records;
}

std::optional<CheckpointRecord> latest_checkpoint(
    const store::StorageBackend& storage, const std::string& app_name,
    const std::string& prefix_filter) {
  std::optional<CheckpointRecord> best;
  for (auto& record : list_checkpoints(storage, prefix_filter)) {
    if (record.meta.app_name != app_name) {
      continue;
    }
    if (!best.has_value() || record.meta.sop > best->meta.sop) {
      best = std::move(record);
    }
  }
  return best;
}

void remove_checkpoint(store::StorageBackend& storage,
                       const CheckpointRecord& record) {
  if (record.spmd) {
    storage.remove(spmd_meta_file_name(record.prefix));
    for (int r = 0; r < record.meta.task_count; ++r) {
      const std::string file = spmd_task_file_name(record.prefix, r);
      if (storage.exists(file)) {
        storage.remove(file);
      }
    }
    return;
  }
  storage.remove(meta_file_name(record.prefix));
  if (storage.exists(segment_file_name(record.prefix))) {
    storage.remove(segment_file_name(record.prefix));
  }
  for (const auto& a : record.meta.arrays) {
    const std::string file = array_file_name(record.prefix, a.name);
    if (storage.exists(file)) {
      storage.remove(file);
    }
  }
}

namespace {

void check(bool condition, const std::string& what, VerifyResult& out) {
  if (!condition) {
    out.ok = false;
    out.problems.push_back(what);
  }
}

/// Verify a segment payload of the form [u64 size][u32 crc][body...].
void verify_sized_crc_record(const store::FileHandle& file,
                             std::uint64_t offset, const std::string& what,
                             VerifyResult& out) {
  if (offset + 12 > file.size()) {
    check(false, what + ": truncated record header", out);
    return;
  }
  drms::support::ByteBuffer head(file.read_at(offset, 12));
  const std::uint64_t body_size = head.get_u64();
  const std::uint32_t crc = head.get_u32();
  if (offset + 12 + body_size > file.size()) {
    check(false, what + ": truncated record body", out);
    return;
  }
  const auto body = file.read_at(offset + 12, body_size);
  check(drms::support::crc32c(body) == crc, what + ": CRC mismatch", out);
}

}  // namespace

VerifyResult verify_checkpoint(const store::StorageBackend& storage,
                               const CheckpointRecord& record) {
  VerifyResult out;
  if (record.spmd) {
    for (int r = 0; r < record.meta.task_count; ++r) {
      const std::string name = spmd_task_file_name(record.prefix, r);
      if (!storage.exists(name)) {
        check(false, name + ": missing", out);
        continue;
      }
      const auto file = storage.open(name);
      check(file.size() == record.meta.segment_bytes,
            name + ": unexpected size", out);
      verify_sized_crc_record(file, 0, name, out);
    }
    return out;
  }

  // DRMS state: the single segment plus one file per array.
  const std::string seg_name = segment_file_name(record.prefix);
  if (!storage.exists(seg_name)) {
    check(false, seg_name + ": missing", out);
  } else {
    const auto seg = storage.open(seg_name);
    check(seg.size() == record.meta.segment_bytes,
          seg_name + ": unexpected size", out);
    if (seg.size() >= wire::kSegmentHeaderBytes) {
      support::ByteBuffer header(
          seg.read_at(0, wire::kSegmentHeaderBytes));
      check(header.get_u32() == wire::kSegmentMagic,
            seg_name + ": bad magic", out);
      check(header.get_u32() == wire::kSegmentVersion,
            seg_name + ": bad version", out);
      (void)header.get_u64();  // replicated size
      check(header.get_u64() == seg.size(),
            seg_name + ": header/size mismatch", out);
      // The replicated payload carries its own sized CRC record.
      verify_sized_crc_record(seg, wire::kSegmentHeaderBytes, seg_name,
                              out);
    } else {
      check(false, seg_name + ": too small for a header", out);
    }
  }
  for (const auto& a : record.meta.arrays) {
    const std::string name = array_file_name(record.prefix, a.name);
    if (!storage.exists(name)) {
      check(false, name + ": missing", out);
      continue;
    }
    const auto file = storage.open(name);
    check(file.size() == a.stream_bytes, name + ": unexpected size", out);
    if (file.size() == a.stream_bytes) {
      const auto bytes = file.read_at(0, file.size());
      check(support::crc32c(bytes) == a.stream_crc,
            name + ": stream CRC mismatch", out);
    }
  }
  return out;
}

}  // namespace drms::core
