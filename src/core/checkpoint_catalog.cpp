#include "core/checkpoint_catalog.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/delta_format.hpp"
#include "store/redundancy.hpp"
#include "support/byte_buffer.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

namespace drms::core {

namespace {

/// "foo.bar.meta" -> "foo.bar"; nullopt when not a meta file.
std::optional<std::string> prefix_of_meta(const std::string& name,
                                          bool& spmd) {
  static const std::string kSpmdSuffix = ".spmd.meta";
  static const std::string kSuffix = ".meta";
  if (name.size() > kSpmdSuffix.size() &&
      name.compare(name.size() - kSpmdSuffix.size(), kSpmdSuffix.size(),
                   kSpmdSuffix) == 0) {
    spmd = true;
    return name.substr(0, name.size() - kSpmdSuffix.size());
  }
  if (name.size() > kSuffix.size() &&
      name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                   kSuffix) == 0) {
    spmd = false;
    return name.substr(0, name.size() - kSuffix.size());
  }
  return std::nullopt;
}

}  // namespace

CommitCheck commit_status(const store::StorageBackend& storage,
                          const std::string& prefix, bool spmd) {
  CommitCheck out;
  const std::string commit_name = commit_file_name(prefix);
  if (!storage.exists(commit_name)) {
    out.problems.push_back(commit_name + ": missing (state not committed)");
    return out;
  }
  try {
    out.manifest = read_commit_manifest(storage, prefix);
  } catch (const support::Error& e) {
    out.problems.push_back(e.what());
    return out;
  }
  if (out.manifest.spmd != spmd) {
    out.problems.push_back(commit_name +
                           ": manifest belongs to the other layout");
    return out;
  }
  for (const auto& e : out.manifest.entries) {
    if (!storage.exists(e.name)) {
      out.problems.push_back(e.name + ": listed in manifest but missing");
    } else if (storage.file_size(e.name) != e.size) {
      out.problems.push_back(e.name + ": size differs from manifest");
    }
  }
  // A delta generation is only as committed as every generation under it:
  // walk the base links and hold each member to the same standard, so a
  // broken chain disqualifies the whole tail (restart falls back, gc
  // reclaims).
  if (out.problems.empty() && !out.manifest.base_prefix.empty()) {
    std::set<std::string> seen{prefix};
    std::string cur = out.manifest.base_prefix;
    int depth = 0;
    while (!cur.empty() && out.problems.empty()) {
      if (++depth > wire::kMaxChainDepth) {
        out.problems.push_back("chain under '" + prefix +
                               "' exceeds the depth bound");
        break;
      }
      if (!seen.insert(cur).second) {
        out.problems.push_back("chain under '" + prefix + "' is cyclic at '" +
                               cur + "'");
        break;
      }
      if (!storage.exists(commit_file_name(cur))) {
        out.problems.push_back(commit_file_name(cur) +
                               ": chain base not committed");
        break;
      }
      CommitManifest base;
      try {
        base = read_commit_manifest(storage, cur);
      } catch (const support::Error& e) {
        out.problems.push_back(e.what());
        break;
      }
      if (base.spmd) {
        out.problems.push_back(commit_file_name(cur) +
                               ": chain base belongs to the SPMD layout");
        break;
      }
      for (const auto& e : base.entries) {
        if (!storage.exists(e.name)) {
          out.problems.push_back(e.name +
                                 ": listed in chain manifest but missing");
        } else if (storage.file_size(e.name) != e.size) {
          out.problems.push_back(e.name +
                                 ": size differs from chain manifest");
        }
      }
      cur = base.base_prefix;
    }
  }
  out.committed = out.problems.empty();
  return out;
}

std::vector<CheckpointRecord> list_checkpoints(
    const store::StorageBackend& storage, const std::string& prefix_filter) {
  std::vector<CheckpointRecord> records;
  for (const auto& name : storage.list(prefix_filter)) {
    bool spmd = false;
    const auto prefix = prefix_of_meta(name, spmd);
    if (!prefix.has_value()) {
      continue;
    }
    CheckpointRecord record;
    record.prefix = *prefix;
    record.spmd = spmd;
    if (!commit_status(storage, *prefix, spmd).committed) {
      continue;  // torn (crashed before publication): not a candidate
    }
    try {
      record.meta = spmd ? read_spmd_meta(storage, *prefix)
                         : read_checkpoint_meta(storage, *prefix);
      record.state_bytes = spmd ? spmd_state_size(storage, *prefix)
                                : drms_state_size(storage, *prefix);
    } catch (const support::Error&) {
      continue;  // torn meta or missing files: not a restart candidate
    }
    records.push_back(std::move(record));
  }
  std::sort(records.begin(), records.end(),
            [](const CheckpointRecord& a, const CheckpointRecord& b) {
              if (a.meta.sop != b.meta.sop) {
                return a.meta.sop < b.meta.sop;
              }
              return a.prefix < b.prefix;
            });
  return records;
}

std::vector<CheckpointRecord> restart_candidates(
    const store::StorageBackend& storage, const std::string& app_name,
    const std::string& prefix_filter) {
  std::vector<CheckpointRecord> out;
  for (auto& record : list_checkpoints(storage, prefix_filter)) {
    if (record.meta.app_name == app_name) {
      out.push_back(std::move(record));
    }
  }
  // list_checkpoints sorts SOP ascending; a supervisor wants newest first.
  std::reverse(out.begin(), out.end());
  return out;
}

std::optional<CheckpointRecord> latest_checkpoint(
    const store::StorageBackend& storage, const std::string& app_name,
    const std::string& prefix_filter, const DeepVerifyHook& deep_verify) {
  for (auto& record : restart_candidates(storage, app_name, prefix_filter)) {
    if (deep_verify && !deep_verify(record)) {
      continue;  // committed but corrupt: fall back to an older generation
    }
    return std::move(record);
  }
  return std::nullopt;
}

void remove_checkpoint(store::StorageBackend& storage,
                       const CheckpointRecord& record) {
  // Decommit first: the state must stop being a restart candidate before
  // its files start disappearing.
  decommit_checkpoint(storage, record.prefix);
  if (record.spmd) {
    storage.remove(spmd_meta_file_name(record.prefix));
    for (int r = 0; r < record.meta.task_count; ++r) {
      const std::string file = spmd_task_file_name(record.prefix, r);
      if (storage.exists(file)) {
        storage.remove(file);
      }
    }
    return;
  }
  storage.remove(meta_file_name(record.prefix));
  if (storage.exists(segment_file_name(record.prefix))) {
    storage.remove(segment_file_name(record.prefix));
  }
  for (const auto& a : record.meta.arrays) {
    for (const std::string& file :
         {array_file_name(record.prefix, a.name),
          delta_array_file_name(record.prefix, a.name)}) {
      if (storage.exists(file)) {
        storage.remove(file);
      }
    }
  }
}

namespace {

void check(bool condition, const std::string& what, VerifyResult& out) {
  if (!condition) {
    out.ok = false;
    out.problems.push_back(what);
  }
}

/// Verify a segment payload of the form [u64 size][u32 crc][body...].
/// Structural bounds checks always run; the body CRC only when `deep`.
void verify_sized_crc_record(const store::FileHandle& file,
                             std::uint64_t offset, const std::string& what,
                             bool deep, VerifyResult& out) {
  if (offset + 12 > file.size()) {
    check(false, what + ": truncated record header", out);
    return;
  }
  drms::support::ByteBuffer head =
      store::read_to_buffer(file, offset, 12);
  const std::uint64_t body_size = head.get_u64();
  const std::uint32_t crc = head.get_u32();
  if (offset + 12 + body_size > file.size()) {
    check(false, what + ": truncated record body", out);
    return;
  }
  if (!deep) {
    return;
  }
  const drms::support::ByteBuffer body =
      store::read_to_buffer(file, offset + 12, body_size);
  check(drms::support::crc32c(body.bytes()) == crc, what + ": CRC mismatch",
        out);
}

}  // namespace

VerifyResult verify_checkpoint(const store::StorageBackend& storage,
                               const CheckpointRecord& record, bool deep) {
  VerifyResult out;
  // Commit-manifest check first: a state that was never published (or
  // whose published file list no longer matches the volume) is torn.
  const CommitCheck commit =
      commit_status(storage, record.prefix, record.spmd);
  for (const auto& p : commit.problems) {
    check(false, p, out);
  }
  if (commit.committed) {
    // Content CRCs the manifest carries beyond the size checks above: the
    // meta record file (array streams are re-checked against the meta's
    // own CRCs below, which the manifest mirrors).
    const std::string meta_name = record.spmd
                                      ? spmd_meta_file_name(record.prefix)
                                      : meta_file_name(record.prefix);
    const CommitEntry* entry = commit.manifest.entry(meta_name);
    if (entry == nullptr) {
      check(false, meta_name + ": not listed in commit manifest", out);
    } else if (deep && entry->has_crc) {
      const auto file = storage.open(meta_name);
      const support::ByteBuffer bytes =
          store::read_to_buffer(file, 0, file.size());
      check(support::crc32c(bytes.bytes()) == entry->crc,
            meta_name + ": CRC differs from manifest", out);
    }
  }
  if (record.spmd) {
    for (int r = 0; r < record.meta.task_count; ++r) {
      const std::string name = spmd_task_file_name(record.prefix, r);
      if (!storage.exists(name)) {
        check(false, name + ": missing", out);
        continue;
      }
      const auto file = storage.open(name);
      check(file.size() == record.meta.segment_bytes,
            name + ": unexpected size", out);
      verify_sized_crc_record(file, 0, name, deep, out);
    }
    return out;
  }

  // DRMS state: the single segment plus one file per array.
  const std::string seg_name = segment_file_name(record.prefix);
  if (!storage.exists(seg_name)) {
    check(false, seg_name + ": missing", out);
  } else {
    const auto seg = storage.open(seg_name);
    check(seg.size() == record.meta.segment_bytes,
          seg_name + ": unexpected size", out);
    if (seg.size() >= wire::kSegmentHeaderBytes) {
      support::ByteBuffer header =
          store::read_to_buffer(seg, 0, wire::kSegmentHeaderBytes);
      check(header.get_u32() == wire::kSegmentMagic,
            seg_name + ": bad magic", out);
      check(header.get_u32() == wire::kSegmentVersion,
            seg_name + ": bad version", out);
      (void)header.get_u64();  // replicated size
      check(header.get_u64() == seg.size(),
            seg_name + ": header/size mismatch", out);
      // The replicated payload carries its own sized CRC record.
      verify_sized_crc_record(seg, wire::kSegmentHeaderBytes, seg_name,
                              deep, out);
    } else {
      check(false, seg_name + ": too small for a header", out);
    }
  }
  if (record.meta.kind == GenerationKind::kDelta) {
    // Delta generation: each array's delta file carries per-block CRCs
    // (raw + stored) behind a framed index; verify_delta_file checks the
    // structure always and every block's round trip when deep.
    for (const auto& a : record.meta.arrays) {
      const std::string name = delta_array_file_name(record.prefix, a.name);
      if (!verify_delta_file(storage, name, a.stream_bytes, deep,
                             out.problems)) {
        out.ok = false;
      }
    }
    // The state is only restorable through its chain: the walk must
    // resolve (cycle/commit checks), and the base must itself verify —
    // recursing through the base covers every generation down to the
    // full dump exactly once.
    try {
      (void)resolve_checkpoint_chain(storage, record.prefix);
      CheckpointRecord base;
      base.prefix = record.meta.base_prefix;
      base.spmd = false;
      base.meta = read_checkpoint_meta(storage, base.prefix);
      const VerifyResult base_result =
          verify_checkpoint(storage, base, deep);
      for (const auto& p : base_result.problems) {
        check(false, "chain: " + p, out);
      }
    } catch (const support::Error& e) {
      check(false, e.what(), out);
    }
    return out;
  }
  for (const auto& a : record.meta.arrays) {
    const std::string name = array_file_name(record.prefix, a.name);
    if (!storage.exists(name)) {
      check(false, name + ": missing", out);
      continue;
    }
    const auto file = storage.open(name);
    check(file.size() == a.stream_bytes, name + ": unexpected size", out);
    if (deep && file.size() == a.stream_bytes) {
      const support::ByteBuffer bytes =
          store::read_to_buffer(file, 0, file.size());
      check(support::crc32c(bytes.bytes()) == a.stream_crc,
            name + ": stream CRC mismatch", out);
    }
  }
  return out;
}

namespace {

/// Which state a file belongs to, derived from its name alone (fsck must
/// classify files whose meta/manifest may be unreadable).
struct ClassifiedFile {
  std::string prefix;
  enum class Kind { kDrms, kSpmd, kCommit } kind;
};

bool ends_with(const std::string& name, const std::string& suffix) {
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

std::optional<ClassifiedFile> classify_state_file(const std::string& name) {
  using Kind = ClassifiedFile::Kind;
  static const std::string kCommit = ".commit";
  static const std::string kSpmdMeta = ".spmd.meta";
  static const std::string kSpmdTask = ".spmd.task";
  static const std::string kMeta = ".meta";
  static const std::string kSegment = ".segment";
  static const std::string kArray = ".array.";
  if (ends_with(name, kCommit)) {
    return ClassifiedFile{name.substr(0, name.size() - kCommit.size()),
                          Kind::kCommit};
  }
  if (ends_with(name, kSpmdMeta)) {
    return ClassifiedFile{name.substr(0, name.size() - kSpmdMeta.size()),
                          Kind::kSpmd};
  }
  const std::size_t task_pos = name.rfind(kSpmdTask);
  if (task_pos != std::string::npos &&
      task_pos + kSpmdTask.size() < name.size()) {
    const std::string tail = name.substr(task_pos + kSpmdTask.size());
    if (std::all_of(tail.begin(), tail.end(),
                    [](char c) { return c >= '0' && c <= '9'; })) {
      return ClassifiedFile{name.substr(0, task_pos), Kind::kSpmd};
    }
  }
  if (ends_with(name, kMeta)) {
    return ClassifiedFile{name.substr(0, name.size() - kMeta.size()),
                          Kind::kDrms};
  }
  if (ends_with(name, kSegment)) {
    return ClassifiedFile{name.substr(0, name.size() - kSegment.size()),
                          Kind::kDrms};
  }
  const std::size_t array_pos = name.find(kArray);
  if (array_pos != std::string::npos && array_pos > 0) {
    return ClassifiedFile{name.substr(0, array_pos), Kind::kDrms};
  }
  static const std::string kDelta = ".delta.";
  const std::size_t delta_pos = name.find(kDelta);
  if (delta_pos != std::string::npos && delta_pos > 0) {
    return ClassifiedFile{name.substr(0, delta_pos), Kind::kDrms};
  }
  return std::nullopt;
}

std::uint64_t safe_file_size(const store::StorageBackend& storage,
                             const std::string& name) {
  try {
    return storage.file_size(name);
  } catch (const support::Error&) {
    return 0;
  }
}

}  // namespace

std::vector<FsckState> fsck_scan(const store::StorageBackend& storage,
                                 const std::string& prefix_filter) {
  struct Group {
    std::vector<std::string> drms_files;
    std::vector<std::string> spmd_files;
    bool has_commit = false;
  };
  struct FragGroup {
    std::set<int> present;
    int expected = 0;
  };
  std::map<std::string, Group> groups;
  // prefix -> fragment base -> set summary. Keyed off the *base* name's
  // classification so fragments report under the state that owns them.
  std::map<std::string, std::map<std::string, FragGroup>> frag_groups;
  for (const auto& name : storage.list(prefix_filter)) {
    // Redundancy fragments ("<base>#f<k>") are physical fast-tier files,
    // not state files: classify them by their base name and keep them out
    // of the torn/committed grouping entirely.
    if (const auto frag = store::parse_fragment_name(name)) {
      const auto base_class = classify_state_file(frag->base);
      const std::string owner =
          base_class.has_value() ? base_class->prefix : frag->base;
      FragGroup& fg = frag_groups[owner][frag->base];
      if (const auto header = store::read_fragment_header(storage, name)) {
        fg.present.insert(frag->index);
        fg.expected = std::max(
            fg.expected, static_cast<int>(header->fragment_count));
      }
      continue;
    }
    const auto c = classify_state_file(name);
    if (!c.has_value()) {
      continue;
    }
    Group& g = groups[c->prefix];
    switch (c->kind) {
      case ClassifiedFile::Kind::kCommit:
        g.has_commit = true;
        break;
      case ClassifiedFile::Kind::kSpmd:
        g.spmd_files.push_back(name);
        break;
      case ClassifiedFile::Kind::kDrms:
        g.drms_files.push_back(name);
        break;
    }
  }

  std::vector<FsckState> out;
  const auto reclaim = [&](FsckState& s, const std::string& file) {
    s.reclaimable.push_back(file);
    s.reclaimable_bytes += safe_file_size(storage, file);
  };
  for (auto& [prefix, g] : groups) {
    std::optional<CommitManifest> manifest;
    std::string manifest_problem;
    if (g.has_commit) {
      try {
        manifest = read_commit_manifest(storage, prefix);
      } catch (const support::Error& e) {
        manifest_problem = e.what();
      }
    }
    if (manifest.has_value()) {
      FsckState s;
      s.prefix = prefix;
      s.spmd = manifest->spmd;
      for (const auto& e : manifest->entries) {
        if (!storage.exists(e.name)) {
          s.problems.push_back(e.name + ": listed in manifest but missing");
        } else if (storage.file_size(e.name) != e.size) {
          s.problems.push_back(e.name + ": size differs from manifest");
        }
      }
      if (s.problems.empty() && !manifest->base_prefix.empty()) {
        // A delta whose chain is broken (base missing or torn) is not a
        // restorable state: report it torn so gc reclaims the stranded
        // tail. commit_status performs the full chain walk.
        const CommitCheck chain_check =
            commit_status(storage, prefix, manifest->spmd);
        for (const auto& p : chain_check.problems) {
          s.problems.push_back(p);
        }
      }
      s.committed = s.problems.empty();
      std::vector<std::string>& own =
          s.spmd ? g.spmd_files : g.drms_files;
      if (s.committed) {
        // Stray files in this state's namespace the manifest never
        // published (e.g. an array dropped between incremental rounds).
        for (const auto& f : own) {
          if (manifest->entry(f) == nullptr) {
            s.problems.push_back(f + ": stray (not in commit manifest)");
            reclaim(s, f);
          }
        }
      } else {
        for (const auto& f : own) {
          reclaim(s, f);
        }
        reclaim(s, commit_file_name(prefix));
      }
      out.push_back(std::move(s));
      // Files of the OTHER layout under this prefix can never be covered
      // by the (single) manifest: torn.
      const std::vector<std::string>& other =
          manifest->spmd ? g.drms_files : g.spmd_files;
      if (!other.empty()) {
        FsckState t;
        t.prefix = prefix;
        t.spmd = !manifest->spmd;
        t.problems.push_back(
            "state files present but the commit manifest belongs to the "
            "other layout");
        for (const auto& f : other) {
          reclaim(t, f);
        }
        out.push_back(std::move(t));
      }
      continue;
    }
    // No (readable) manifest: everything under this prefix is torn.
    const std::string why =
        g.has_commit ? manifest_problem
                     : commit_file_name(prefix) +
                           ": missing (checkpoint crashed before "
                           "publication)";
    bool commit_attached = !g.has_commit;
    const auto emit_torn = [&](bool spmd,
                               const std::vector<std::string>& files) {
      if (files.empty()) {
        return;
      }
      FsckState s;
      s.prefix = prefix;
      s.spmd = spmd;
      s.problems.push_back(why);
      for (const auto& f : files) {
        reclaim(s, f);
      }
      if (!commit_attached) {
        reclaim(s, commit_file_name(prefix));
        commit_attached = true;
      }
      out.push_back(std::move(s));
    };
    emit_torn(false, g.drms_files);
    emit_torn(true, g.spmd_files);
    if (!commit_attached) {
      // An unreadable manifest with no state files left at all.
      FsckState s;
      s.prefix = prefix;
      s.problems.push_back(why);
      reclaim(s, commit_file_name(prefix));
      out.push_back(std::move(s));
    }
  }

  // Attach fragment-set completeness to the owning state; a prefix with
  // only fragments (fully-encoded fast tier) gets an encoded_only entry.
  for (auto& [prefix, bases] : frag_groups) {
    FsckState* target = nullptr;
    for (auto& s : out) {
      if (s.prefix == prefix) {
        target = &s;
        break;
      }
    }
    if (target == nullptr) {
      FsckState s;
      s.prefix = prefix;
      s.encoded_only = true;
      out.push_back(std::move(s));
      target = &out.back();
    }
    for (auto& [base, fg] : bases) {
      FsckFragmentSet fs;
      fs.base = base;
      fs.present = static_cast<int>(fg.present.size());
      fs.expected = fg.expected;
      // Both in-tree schemes tolerate one lost fragment per set.
      fs.recoverable = fg.expected > 0 && fs.present >= fg.expected - 1;
      if (!fs.recoverable) {
        target->problems.push_back(
            base + ": fragment set " + std::to_string(fs.present) + "/" +
            std::to_string(fs.expected) +
            " beyond scavenge tolerance");
      }
      target->fragment_sets.push_back(std::move(fs));
    }
  }
  return out;
}

int gc_torn_states(store::StorageBackend& storage,
                   const std::string& prefix_filter) {
  int removed = 0;
  for (const auto& s : fsck_scan(storage, prefix_filter)) {
    for (const auto& f : s.reclaimable) {
      try {
        storage.remove(f);
        ++removed;
      } catch (const support::IoError&) {
        // Vanished since the scan; reclaiming it was the goal anyway.
      }
    }
  }
  return removed;
}

int gc_superseded_states(store::StorageBackend& storage,
                         const std::string& app_name,
                         const std::string& prefix_filter, int keep_last_k,
                         std::span<const std::string> pinned) {
  const int keep = std::max(keep_last_k, 1);
  // restart_candidates is SOP descending: everything past index keep-1 is
  // superseded.
  const std::vector<CheckpointRecord> candidates =
      restart_candidates(storage, app_name, prefix_filter);
  // Chain closure of the keep set: a kept delta is only restorable
  // through its chain, so every generation under it survives too — a base
  // is never reclaimed while a committed delta depends on it.
  std::set<std::string> keep_set;
  for (std::size_t i = 0;
       i < candidates.size() && i < static_cast<std::size_t>(keep); ++i) {
    keep_set.insert(candidates[i].prefix);
    if (candidates[i].meta.kind == GenerationKind::kDelta) {
      try {
        for (const auto& member :
             resolve_checkpoint_chain(storage, candidates[i].prefix)) {
          keep_set.insert(member);
        }
      } catch (const support::Error&) {
        // Broken chain: the candidate would not have listed as committed;
        // nothing extra to protect.
      }
    }
  }
  // Pinned generations (a restore in flight, or the next attempt's
  // fallback target) survive regardless of their SOP rank: keep-newest
  // alone would reclaim an old-but-good generation the moment newer —
  // possibly corrupt but still committed — generations fill the keep
  // slots. Pins get the same chain closure as kept candidates.
  for (const std::string& pin : pinned) {
    keep_set.insert(pin);
    try {
      for (const auto& member : resolve_checkpoint_chain(storage, pin)) {
        keep_set.insert(member);
      }
    } catch (const support::Error&) {
      // Not a delta (single-element chain is fine) or already gone.
    }
  }
  int removed = 0;
  for (std::size_t i = static_cast<std::size_t>(keep);
       i < candidates.size(); ++i) {
    if (keep_set.contains(candidates[i].prefix)) {
      continue;  // a kept delta still chains through this generation
    }
    remove_checkpoint(storage, candidates[i]);
    ++removed;
  }
  return removed;
}

}  // namespace drms::core
