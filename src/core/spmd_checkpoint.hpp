// Conventional (non-reconfigurable) SPMD checkpointing — the baseline the
// paper compares against (§5). Every task dumps its entire data segment
// to a private file: replicated variables, the REAL bytes of its local
// array sections (shadow regions included), and padding for private and
// system storage up to the compile-time static segment size. Restart
// requires exactly the same number of tasks.
#pragma once

#include <span>
#include <string>

#include "core/checkpoint_format.hpp"
#include "core/dist_array.hpp"
#include "core/drms_checkpoint.hpp"  // CheckpointTiming / RestartTiming
#include "core/replicated_store.hpp"
#include "core/spmd_restore_cursor.hpp"
#include "rt/task_context.hpp"
#include "sim/cost_model.hpp"

namespace drms::core {

class SpmdCheckpoint {
 public:
  /// A non-null `recorder` receives per-phase trace spans and retry
  /// counters; recording never charges simulated time.
  SpmdCheckpoint(store::StorageBackend& storage, sim::LoadContext load,
                 bool jitter = false, obs::Recorder* recorder = nullptr);

  /// COLLECTIVE: every task writes its own segment file; all synchronize
  /// at the end (the paper's blocking-checkpoint semantics).
  CheckpointTiming write(rt::TaskContext& ctx, const std::string& prefix,
                         const std::string& app_name, std::int64_t sop,
                         const ReplicatedStore& store,
                         std::span<DistArray* const> arrays,
                         const AppSegmentModel& segment_model);

  /// COLLECTIVE: full restore. The arrays must already carry the SAME
  /// distribution used when the checkpoint was taken (re-created by the
  /// restarted program), and ctx.size() must equal the checkpoint task
  /// count — reconfigured restart is impossible by construction, and a
  /// mismatch throws support::Error.
  CheckpointMeta restore(rt::TaskContext& ctx, const std::string& prefix,
                         ReplicatedStore& store,
                         std::span<DistArray* const> arrays,
                         const AppSegmentModel& segment_model,
                         RestartTiming& timing);

  /// COLLECTIVE: phase 1 of a two-phase restore — read and validate this
  /// task's segment file, restore the replicated store, and return a
  /// cursor positioned at the array records (for restore_array_from once
  /// the arrays have been re-distributed).
  CheckpointMeta restore_begin(rt::TaskContext& ctx,
                               const std::string& prefix,
                               ReplicatedStore& store,
                               const AppSegmentModel& segment_model,
                               RestartTiming& timing,
                               SpmdRestoreCursor& cursor);

  /// Phase 2: load the next array record from the cursor into this task's
  /// local section. Records must be consumed in checkpoint order.
  void restore_array_from(SpmdRestoreCursor& cursor, DistArray& array,
                          int rank) const;

  /// Attach a checkpoint-service session (see DrmsCheckpoint): each
  /// rank's task-segment write becomes one queued FOREGROUND item sharded
  /// by its file name, so independent ranks overlap across shards; every
  /// rank drains the job with an explicit completion barrier before the
  /// collective barrier that precedes publication, preserving the
  /// manifest-last ordering (the manifest reads every task file's size).
  void attach_io_session(svc::IoScheduler* scheduler,
                         const svc::JobToken* job) {
    io_ = scheduler;
    io_job_ = job;
  }

 private:
  [[nodiscard]] support::RetryPolicy retry_policy(const char* what) const;
  [[nodiscard]] bool io_session_active() const {
    return io_ != nullptr && io_job_ != nullptr && io_job_->valid();
  }
  void submit_io(const std::string& file, std::uint64_t bytes,
                 std::function<void()> fn);
  void io_barrier();

  store::StorageBackend& storage_;
  sim::LoadContext load_;
  bool jitter_;
  obs::Recorder* recorder_;
  svc::IoScheduler* io_ = nullptr;
  const svc::JobToken* io_job_ = nullptr;
};

}  // namespace drms::core
