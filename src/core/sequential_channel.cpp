#include "core/sequential_channel.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace drms::core {

void FileSource::read(std::span<std::byte> out) {
  if (cursor_ + out.size() > file_.size()) {
    throw support::IoError("sequential source: premature end of file '" +
                           file_.name() + "'");
  }
  file_.read_at_into(cursor_, out);
  cursor_ += out.size();
}

void VectorSource::read(std::span<std::byte> out) {
  if (cursor_ + out.size() > data_.size()) {
    throw support::IoError("sequential source: vector exhausted");
  }
  std::copy_n(data_.begin() + static_cast<long>(cursor_), out.size(),
              out.begin());
  cursor_ += out.size();
}

void InMemoryPipe::write(std::span<const std::byte> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return buffer_.size() < capacity_ || closed_; });
    if (closed_) {
      throw support::IoError("write to a closed pipe");
    }
    const std::size_t room = capacity_ - buffer_.size();
    const std::size_t n = std::min(room, data.size() - written);
    buffer_.insert(buffer_.end(), data.begin() + written,
                   data.begin() + written + n);
    written += n;
    transferred_ += n;
    lock.unlock();
    cv_.notify_all();
  }
}

void InMemoryPipe::read(std::span<std::byte> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !buffer_.empty() || closed_; });
    if (buffer_.empty() && closed_) {
      throw support::IoError("pipe closed with " +
                             std::to_string(out.size() - got) +
                             " bytes still expected");
    }
    const std::size_t n = std::min(buffer_.size(), out.size() - got);
    std::copy_n(buffer_.begin(), n, out.begin() + got);
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(n));
    got += n;
    lock.unlock();
    cv_.notify_all();
  }
}

void InMemoryPipe::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::uint64_t InMemoryPipe::bytes_transferred() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return transferred_;
}

}  // namespace drms::core
