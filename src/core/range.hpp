// Ranges — the 1-D building block of DRMS array sections (§3.1 of the
// paper). A range is a monotonically increasing ordered set of integers;
// DRMS supports both regular sections (l:u:s triplets) and sections
// defined by explicit lists of indices.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "support/byte_buffer.hpp"

namespace drms::core {

using Index = std::int64_t;

class Range {
 public:
  /// The empty range.
  Range() = default;

  /// Regular section l:u (inclusive) with stride 1. Empty when u < l.
  [[nodiscard]] static Range contiguous(Index lo, Index hi);
  /// Regular section l:u:s (inclusive upper bound, stride >= 1).
  [[nodiscard]] static Range strided(Index lo, Index hi, Index stride);
  /// Section from an explicit, strictly increasing index list.
  [[nodiscard]] static Range of_indices(std::vector<Index> indices);
  /// Single-element range.
  [[nodiscard]] static Range single(Index v) { return contiguous(v, v); }

  [[nodiscard]] Index size() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// i-th element (0-based position in the ordered set).
  [[nodiscard]] Index at(Index i) const;
  [[nodiscard]] Index first() const { return at(0); }
  [[nodiscard]] Index last() const { return at(size() - 1); }

  [[nodiscard]] bool contains(Index v) const noexcept;
  /// Position of `v` in the ordered set, if present.
  [[nodiscard]] std::optional<Index> position_of(Index v) const noexcept;

  /// Set intersection (the paper's q*r operation). Result is a Range with
  /// all elements common to both, preserving order.
  [[nodiscard]] Range intersect(const Range& other) const;

  /// First `n` elements / all but the first `n` elements.
  [[nodiscard]] Range take(Index n) const;
  [[nodiscard]] Range drop(Index n) const;

  /// Split into (lower half, upper half) by element count — lower gets
  /// ceil(size/2). Used by the recursive stream partitioner (Fig. 5a).
  [[nodiscard]] std::pair<Range, Range> split_half() const;

  /// True when the range is l:u with stride 1.
  [[nodiscard]] bool is_contiguous() const noexcept;
  /// True when representable as a triplet (any stride).
  [[nodiscard]] bool is_regular() const noexcept;
  [[nodiscard]] Index stride() const noexcept;

  /// All elements, materialized (small: per-dimension extents).
  [[nodiscard]] std::vector<Index> to_vector() const;

  /// "8:12:2" or "{8,9,12}" — for diagnostics and golden tests.
  [[nodiscard]] std::string to_string() const;

  /// Wire encoding (used to ship slices between tasks and processes).
  void serialize(support::ByteBuffer& out) const;
  [[nodiscard]] static Range deserialize(support::ByteBuffer& in);

  friend bool operator==(const Range& a, const Range& b);

 private:
  struct Regular {
    Index lo = 0;
    Index stride = 1;
    Index count = 0;
    friend bool operator==(const Regular&, const Regular&) = default;
  };

  explicit Range(Regular r) : rep_(r) {}
  explicit Range(std::vector<Index> v) : rep_(std::move(v)) {}

  // Empty ranges normalize to Regular{0,1,0}.
  std::variant<Regular, std::vector<Index>> rep_ = Regular{};
};

/// The paper writes intersection as q*r.
[[nodiscard]] inline Range operator*(const Range& a, const Range& b) {
  return a.intersect(b);
}

}  // namespace drms::core
