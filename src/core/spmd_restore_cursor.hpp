// Two-phase SPMD restore support. The SPMD task-segment file interleaves
// the replicated payload and the raw local array sections; a restarted
// program restores the replicated variables at initialize() but can only
// load the array sections once it has re-declared and re-distributed the
// arrays. The cursor keeps each task's parsed segment between the phases.
#pragma once

#include <cstdint>

#include "support/byte_buffer.hpp"

namespace drms::core {

struct SpmdRestoreCursor {
  /// Validated segment body positioned at the first array record.
  support::ByteBuffer body;
  std::uint64_t arrays_remaining = 0;

  [[nodiscard]] bool pending() const noexcept { return arrays_remaining > 0; }
};

}  // namespace drms::core
