#include "core/array_fingerprint.hpp"

#include "rt/collectives.hpp"
#include "support/crc32.hpp"

namespace drms::core {

std::uint32_t array_fingerprint(rt::TaskContext& ctx,
                                const DistArray& array) {
  const Slice& assigned = array.distribution().assigned(ctx.rank());
  support::Crc32c local;
  std::uint64_t bytes = 0;
  if (!assigned.empty()) {
    bytes = static_cast<std::uint64_t>(assigned.element_count()) *
            array.elem_size();
    std::vector<std::byte> buf(static_cast<std::size_t>(bytes));
    array.local(ctx.rank()).extract(assigned, buf);
    local.update(buf);
  }

  support::ByteBuffer mine;
  mine.put_u32(local.value());
  mine.put_u64(bytes);
  const auto all = rt::gather(ctx, std::move(mine), 0);

  support::ByteBuffer result;
  if (ctx.rank() == 0) {
    support::Crc32c combined;
    for (const auto& contribution : all) {
      combined.update(contribution.bytes());
    }
    result.put_u32(combined.value());
  }
  rt::broadcast(ctx, result, 0);
  result.rewind();
  return result.get_u32();
}

}  // namespace drms::core
