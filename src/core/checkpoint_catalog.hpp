// Checkpoint catalog — enumerate the checkpointed states present on a
// storage. The paper allows an application to "maintain multiple
// checkpointed states concurrently" and to be "restarted from any of
// them"; the JSA and the UIC use this inventory to pick a restart
// candidate (normally the highest SOP).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint_format.hpp"

namespace drms::core {

struct CheckpointRecord {
  std::string prefix;
  /// True for conventional per-task (SPMD) states, false for DRMS states.
  bool spmd = false;
  CheckpointMeta meta;
  /// Total on-volume bytes of this state.
  std::uint64_t state_bytes = 0;
};

/// Commit status of one state under the two-phase protocol.
struct CommitCheck {
  /// Manifest present, parses, and every listed file exists with the
  /// listed size.
  bool committed = false;
  std::vector<std::string> problems;
  /// Valid only when the manifest parsed (problems may still flag files).
  CommitManifest manifest;
};

/// Cheap (no content reads) commit check of the state under `prefix` in
/// the given layout. `spmd` must match the manifest's recorded layout.
[[nodiscard]] CommitCheck commit_status(const store::StorageBackend& storage,
                                        const std::string& prefix, bool spmd);

/// All COMMITTED checkpointed states under `prefix_filter` (empty = whole
/// volume), sorted by SOP ascending. States whose meta is unreadable, and
/// states without a valid commit manifest (torn: the checkpoint crashed
/// before publication), are skipped — they are not restart candidates.
[[nodiscard]] std::vector<CheckpointRecord> list_checkpoints(
    const store::StorageBackend& storage, const std::string& prefix_filter = "");

/// Accept/reject hook for candidate selection. Given a committed record,
/// return true when the state's *contents* are sound (typically a
/// deep-verify: segment + per-array CRCs). Candidates the hook rejects
/// are skipped so selection falls back to the next-older generation.
using DeepVerifyHook = std::function<bool(const CheckpointRecord&)>;

/// Every committed restart candidate for an application name (all modes
/// considered), sorted by SOP DESCENDING — the order a supervisor walks
/// when the newest generation turns out torn or corrupt.
[[nodiscard]] std::vector<CheckpointRecord> restart_candidates(
    const store::StorageBackend& storage, const std::string& app_name,
    const std::string& prefix_filter = "");

/// The restart candidate with the highest SOP for an application name
/// (all modes considered), if any. When `deep_verify` is supplied,
/// committed-but-corrupt states are skipped instead of being returned
/// unconditionally: the newest candidate the hook accepts wins.
[[nodiscard]] std::optional<CheckpointRecord> latest_checkpoint(
    const store::StorageBackend& storage, const std::string& app_name,
    const std::string& prefix_filter = "",
    const DeepVerifyHook& deep_verify = nullptr);

/// Delete every file of one checkpointed state (retention management).
void remove_checkpoint(store::StorageBackend& storage,
                       const CheckpointRecord& record);

/// Outcome of an offline integrity check of one state.
struct VerifyResult {
  bool ok = true;
  std::vector<std::string> problems;
};

/// Offline integrity verification (no task group needed). With
/// `deep == false` only structural checks run: commit manifest valid,
/// every file present with the expected size, segment header sane. With
/// `deep == true` (the default) every byte is read back: the meta file's
/// manifest CRC, the segment's sized-CRC record, and each DRMS array
/// file's contents against the stream CRC recorded in the meta. SPMD
/// states check the per-task segment CRCs.
[[nodiscard]] VerifyResult verify_checkpoint(const store::StorageBackend& storage,
                                             const CheckpointRecord& record,
                                             bool deep = true);

/// One logical file's redundancy-fragment set ("<base>#f<k>" files from a
/// mirrored redundancy-encoded fast tier), as found by the offline scan.
/// `expected` comes from the fragment headers (0 when none was readable);
/// `present` counts fragments with a readable, untorn header. Both
/// in-tree schemes tolerate one missing fragment per set, so a set is
/// recoverable while `present >= expected - 1`.
struct FsckFragmentSet {
  std::string base;
  int present = 0;
  int expected = 0;
  bool recoverable = false;
};

/// One state as seen by the offline consistency scan (`drms_tool fsck`).
struct FsckState {
  std::string prefix;
  bool spmd = false;
  bool committed = false;
  /// Only redundancy fragments were found under this prefix (a mirrored
  /// encoded fast tier): commit status is not determinable offline, and
  /// the state is not "torn" in the crash sense.
  bool encoded_only = false;
  /// Why the state is torn (or, for a committed state, notes about stray
  /// files). Empty for a clean committed state.
  std::vector<std::string> problems;
  /// Files `gc` may reclaim: every grouped file of a torn state, stray
  /// files not listed in the manifest of a committed one. Redundancy
  /// fragments are never reclaimable — scavenge owns their lifecycle.
  std::vector<std::string> reclaimable;
  std::uint64_t reclaimable_bytes = 0;
  /// Per-logical-file fragment completeness under this state's prefix.
  std::vector<FsckFragmentSet> fragment_sets;
};

/// Group every state file on the storage by prefix and layout and evaluate
/// its commit status. Unlike list_checkpoints this also surfaces torn
/// states (no/invalid manifest, or manifest entries missing/short).
[[nodiscard]] std::vector<FsckState> fsck_scan(
    const store::StorageBackend& storage, const std::string& prefix_filter = "");

/// Reclaim everything fsck_scan marks reclaimable (torn states' files and
/// committed states' strays). Returns the number of files removed.
int gc_torn_states(store::StorageBackend& storage,
                   const std::string& prefix_filter = "");

/// Retention policy: keep only the `keep_last_k` newest (highest-SOP)
/// committed states of the application and remove every older one,
/// preserving bounded fallback depth without unbounded storage growth.
/// States other applications own are untouched. Returns the number of
/// states removed. `keep_last_k < 1` is clamped to 1 — the newest state
/// is never retired by retention. `pinned` prefixes (and, for deltas,
/// their chains) are NEVER reclaimed regardless of SOP rank — the
/// supervisor pins a generation from one selection to the next, so
/// retention cannot pull a generation out from under an in-flight
/// (possibly partial) restore, or retire a failed launch's fallback
/// target between attempts while newer-but-corrupt states hold the
/// keep-newest slots.
int gc_superseded_states(store::StorageBackend& storage,
                         const std::string& app_name,
                         const std::string& prefix_filter = "",
                         int keep_last_k = 2,
                         std::span<const std::string> pinned = {});

}  // namespace drms::core
