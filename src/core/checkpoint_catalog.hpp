// Checkpoint catalog — enumerate the checkpointed states present on a
// storage. The paper allows an application to "maintain multiple
// checkpointed states concurrently" and to be "restarted from any of
// them"; the JSA and the UIC use this inventory to pick a restart
// candidate (normally the highest SOP).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint_format.hpp"

namespace drms::core {

struct CheckpointRecord {
  std::string prefix;
  /// True for conventional per-task (SPMD) states, false for DRMS states.
  bool spmd = false;
  CheckpointMeta meta;
  /// Total on-volume bytes of this state.
  std::uint64_t state_bytes = 0;
};

/// All checkpointed states under `prefix_filter` (empty = whole volume),
/// sorted by SOP ascending. States whose meta is unreadable are skipped
/// (a torn meta is not a restart candidate).
[[nodiscard]] std::vector<CheckpointRecord> list_checkpoints(
    const store::StorageBackend& storage, const std::string& prefix_filter = "");

/// The restart candidate with the highest SOP for an application name
/// (all modes considered), if any.
[[nodiscard]] std::optional<CheckpointRecord> latest_checkpoint(
    const store::StorageBackend& storage, const std::string& app_name,
    const std::string& prefix_filter = "");

/// Delete every file of one checkpointed state (retention management).
void remove_checkpoint(store::StorageBackend& storage,
                       const CheckpointRecord& record);

/// Outcome of an offline integrity check of one state.
struct VerifyResult {
  bool ok = true;
  std::vector<std::string> problems;
};

/// Offline integrity verification (no task group needed): every file of
/// the state is present with the expected size, and each DRMS array file's
/// contents match the stream CRC recorded in the meta. SPMD states check
/// the per-task segment CRCs.
[[nodiscard]] VerifyResult verify_checkpoint(const store::StorageBackend& storage,
                                             const CheckpointRecord& record);

}  // namespace drms::core
