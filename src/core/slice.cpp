#include "core/slice.hpp"

#include <sstream>

#include "support/error.hpp"

namespace drms::core {

Slice Slice::empty_of_rank(int rank) {
  DRMS_EXPECTS(rank >= 1);
  return Slice(std::vector<Range>(static_cast<std::size_t>(rank), Range()));
}

Slice Slice::box(std::span<const Index> lower, std::span<const Index> upper) {
  DRMS_EXPECTS(lower.size() == upper.size());
  DRMS_EXPECTS(!lower.empty());
  std::vector<Range> ranges;
  ranges.reserve(lower.size());
  for (std::size_t k = 0; k < lower.size(); ++k) {
    ranges.push_back(Range::contiguous(lower[k], upper[k]));
  }
  return Slice(std::move(ranges));
}

Index Slice::element_count() const noexcept {
  if (ranges_.empty()) {
    return 0;
  }
  Index n = 1;
  for (const auto& r : ranges_) {
    n *= r.size();
  }
  return n;
}

const Range& Slice::range(int axis) const {
  DRMS_EXPECTS(axis >= 0 && axis < rank());
  return ranges_[static_cast<std::size_t>(axis)];
}

Slice Slice::with_range(int axis, Range r) const {
  DRMS_EXPECTS(axis >= 0 && axis < rank());
  std::vector<Range> ranges = ranges_;
  ranges[static_cast<std::size_t>(axis)] = std::move(r);
  return Slice(std::move(ranges));
}

Slice Slice::intersect(const Slice& other) const {
  DRMS_EXPECTS_MSG(rank() == other.rank(),
                   "slice intersection requires equal ranks");
  std::vector<Range> out;
  out.reserve(ranges_.size());
  for (std::size_t k = 0; k < ranges_.size(); ++k) {
    out.push_back(ranges_[k].intersect(other.ranges_[k]));
  }
  return Slice(std::move(out));
}

bool Slice::contains(std::span<const Index> point) const {
  DRMS_EXPECTS(static_cast<int>(point.size()) == rank());
  for (std::size_t k = 0; k < ranges_.size(); ++k) {
    if (!ranges_[k].contains(point[k])) {
      return false;
    }
  }
  return true;
}

bool Slice::covers(const Slice& other) const {
  DRMS_EXPECTS(rank() == other.rank());
  if (other.empty()) {
    return true;
  }
  // Every axis of `other` must be a subset of the corresponding axis.
  for (int k = 0; k < rank(); ++k) {
    const Range& sub = other.range(k);
    const Index n = sub.size();
    for (Index i = 0; i < n; ++i) {
      if (!range(k).contains(sub.at(i))) {
        return false;
      }
    }
  }
  return true;
}

std::pair<Slice, Slice> Slice::split_stream_half() const {
  DRMS_EXPECTS_MSG(element_count() > 1,
                   "cannot split a slice with fewer than two elements");
  // Column-major: axis 0 varies fastest, so contiguous stream halves come
  // from halving the slowest-varying axis that still has >1 element.
  for (int axis = rank() - 1; axis >= 0; --axis) {
    const Range& r = ranges_[static_cast<std::size_t>(axis)];
    if (r.size() > 1) {
      auto [lo, hi] = r.split_half();
      return {with_range(axis, std::move(lo)),
              with_range(axis, std::move(hi))};
    }
  }
  DRMS_ENSURES(false);  // unreachable: element_count() > 1 implies an axis
  return {};
}

void Slice::for_each_column_major(
    const std::function<void(std::span<const Index>)>& fn) const {
  if (empty()) {
    return;
  }
  const int d = rank();
  std::vector<Index> pos(static_cast<std::size_t>(d), 0);  // per-axis index
  std::vector<Index> point(static_cast<std::size_t>(d));
  for (int k = 0; k < d; ++k) {
    point[static_cast<std::size_t>(k)] =
        ranges_[static_cast<std::size_t>(k)].at(0);
  }
  for (;;) {
    fn(point);
    int axis = 0;
    while (axis < d) {
      auto& p = pos[static_cast<std::size_t>(axis)];
      const Range& r = ranges_[static_cast<std::size_t>(axis)];
      if (++p < r.size()) {
        point[static_cast<std::size_t>(axis)] = r.at(p);
        break;
      }
      p = 0;
      point[static_cast<std::size_t>(axis)] = r.at(0);
      ++axis;
    }
    if (axis == d) {
      return;
    }
  }
}

std::string Slice::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t k = 0; k < ranges_.size(); ++k) {
    os << (k > 0 ? ", " : "") << ranges_[k].to_string();
  }
  os << ")";
  return os.str();
}

void Slice::serialize(support::ByteBuffer& out) const {
  out.put_u64(ranges_.size());
  for (const auto& r : ranges_) {
    r.serialize(out);
  }
}

Slice Slice::deserialize(support::ByteBuffer& in) {
  const std::uint64_t d = in.get_u64();
  DRMS_EXPECTS_MSG(d >= 1 && d <= 64, "malformed serialized slice rank");
  std::vector<Range> ranges;
  ranges.reserve(d);
  for (std::uint64_t k = 0; k < d; ++k) {
    ranges.push_back(Range::deserialize(in));
  }
  return Slice(std::move(ranges));
}

namespace {

void partition_rec(const Slice& x, Index min_parts, Index max_elements,
                   std::vector<Slice>& out) {
  const Index n = x.element_count();
  if (n == 0) {
    return;
  }
  if (n <= 1 || (min_parts <= 1 && n <= max_elements)) {
    out.push_back(x);
    return;
  }
  auto [lo, hi] = x.split_stream_half();
  const Index lo_parts = std::max<Index>(1, (min_parts + 1) / 2);
  const Index hi_parts = std::max<Index>(1, min_parts / 2);
  partition_rec(lo, lo_parts, max_elements, out);
  partition_rec(hi, hi_parts, max_elements, out);
}

}  // namespace

std::vector<Slice> partition_for_stream(const Slice& x, Index min_parts,
                                        Index max_elements) {
  DRMS_EXPECTS(min_parts >= 1);
  DRMS_EXPECTS(max_elements >= 1);
  std::vector<Slice> out;
  partition_rec(x, min_parts, max_elements, out);
  return out;
}

}  // namespace drms::core
