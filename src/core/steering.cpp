#include "core/steering.hpp"

namespace drms::core {

std::future<std::vector<std::byte>> SteeringChannel::fetch(
    const std::string& array, Slice section) {
  auto request = std::make_unique<SteeringRequest>();
  request->kind = SteeringRequest::Kind::kFetch;
  request->array = array;
  request->section = std::move(section);
  auto future = request->reply.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(request));
  }
  return future;
}

std::future<std::vector<std::byte>> SteeringChannel::store(
    const std::string& array, Slice section, std::vector<std::byte> data) {
  auto request = std::make_unique<SteeringRequest>();
  request->kind = SteeringRequest::Kind::kStore;
  request->array = array;
  request->section = std::move(section);
  request->data = std::move(data);
  auto future = request->reply.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(request));
  }
  return future;
}

std::size_t SteeringChannel::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<std::unique_ptr<SteeringRequest>> SteeringChannel::drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::unique_ptr<SteeringRequest>> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return out;
}

}  // namespace drms::core
