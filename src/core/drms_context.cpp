#include "core/drms_context.hpp"

#include <algorithm>
#include <utility>

#include "core/exchange.hpp"
#include "core/streamer.hpp"
#include "rt/collectives.hpp"
#include "support/error.hpp"

namespace drms::core {

DrmsProgram::DrmsProgram(std::string app_name, DrmsEnv env,
                         AppSegmentModel segment_model, int task_count)
    : app_name_(std::move(app_name)),
      env_(env),
      segment_model_(segment_model),
      task_count_(task_count) {
  DRMS_EXPECTS(env_.storage != nullptr);
  DRMS_EXPECTS(task_count_ >= 1);
}

CheckpointTiming DrmsProgram::last_checkpoint_timing() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_checkpoint_;
}

RestartTiming DrmsProgram::last_restart_timing() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_restart_;
}

IncrementalState DrmsProgram::incremental_state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return incremental_state_;
}

DeltaChainState DrmsProgram::delta_chain_state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return delta_chain_;
}

DrmsContext::DrmsContext(DrmsProgram& program, rt::TaskContext& ctx)
    : program_(program), ctx_(ctx) {
  DRMS_EXPECTS_MSG(ctx.size() == program.task_count_,
                   "DrmsProgram was created for a different group size");
  // The SOP counter is part of the execution context and rides along in
  // the data segment, so a restarted program resumes its numbering.
  store_.register_i64("drms.sop", &sop_counter_);
}

sim::LoadContext DrmsContext::make_load_context() const {
  sim::LoadContext load;
  const sim::Placement& placement = ctx_.placement();
  load.busy_server_fraction = placement.busy_server_fraction();
  load.per_task_resident_bytes = program_.segment_model_.total();
  load.max_tasks_per_node = placement.max_tasks_per_node();
  load.node_memory_bytes = placement.machine().node_memory_bytes;
  load.server_count = program_.env_.storage->server_count();
  return load;
}

std::vector<DistArray*> DrmsContext::array_list() const {
  const std::lock_guard<std::mutex> lock(program_.mutex_);
  std::vector<DistArray*> out;
  out.reserve(program_.arrays_.size());
  for (const auto& a : program_.arrays_) {
    out.push_back(a.get());
  }
  return out;
}

void DrmsContext::initialize() {
  DRMS_EXPECTS_MSG(!initialized_, "drms_initialize called twice");
  initialized_ = true;
  const DrmsEnv& env = program_.env_;
  if (env.restart_prefix.empty()) {
    ctx_.barrier();
    return;
  }

  restarted_ = true;
  just_restarted_ = true;
  RestartTiming timing;
  if (env.mode == CheckpointMode::kDrms) {
    DrmsCheckpoint engine(*env.storage, make_load_context(), env.io_tasks,
                          env.target_chunk_bytes, env.jitter, env.recorder);
    restart_meta_ = engine.restore_segment(ctx_, env.restart_prefix, store_,
                                           program_.segment_model_, timing);
  } else {
    SpmdCheckpoint engine(*env.storage, make_load_context(), env.jitter,
                          env.recorder);
    restart_meta_ = engine.restore_begin(ctx_, env.restart_prefix, store_,
                                         program_.segment_model_, timing,
                                         spmd_cursor_);
  }
  if (ctx_.rank() == 0) {
    const std::lock_guard<std::mutex> lock(program_.mutex_);
    program_.last_restart_ = timing;
    program_.restart_meta_ = restart_meta_;
  }
  restart_timing_ = timing;
  ctx_.barrier();
}

int DrmsContext::checkpoint_task_count() const noexcept {
  return restart_meta_.has_value() ? restart_meta_->task_count : 0;
}

int DrmsContext::delta() const noexcept {
  return restarted_ ? ctx_.size() - checkpoint_task_count() : 0;
}

DistArray& DrmsContext::create_array(const std::string& name,
                                     std::span<const Index> lower,
                                     std::span<const Index> upper,
                                     std::size_t elem_size) {
  const Slice box = Slice::box(lower, upper);
  const std::lock_guard<std::mutex> lock(program_.mutex_);
  for (const auto& a : program_.arrays_) {
    if (a->name() == name) {
      DRMS_EXPECTS_MSG(a->global_box() == box &&
                           a->elem_size() == elem_size,
                       "array '" + name +
                           "' re-declared with a different shape");
      return *a;
    }
  }
  program_.arrays_.push_back(std::make_unique<DistArray>(
      name, box, elem_size, program_.task_count_));
  if (program_.env_.delta && program_.env_.mode == CheckpointMode::kDrms) {
    // Delta generations need the runtime write paths logging from the
    // first mutation on; a freshly attached log starts all-dirty anyway.
    program_.arrays_.back()->enable_dirty_tracking();
  }
  return *program_.arrays_.back();
}

DistArray& DrmsContext::array(const std::string& name) {
  const std::lock_guard<std::mutex> lock(program_.mutex_);
  for (const auto& a : program_.arrays_) {
    if (a->name() == name) {
      return *a;
    }
  }
  throw support::Error("no distributed array named '" + name + "'");
}

void DrmsContext::distribute(DistArray& array, const DistSpec& spec) {
  DRMS_EXPECTS_MSG(initialized_, "call initialize() before distribute()");
  ctx_.barrier();
  if (ctx_.rank() == 0) {
    array.install_distribution(spec);
  }
  ctx_.barrier();

  if (!restarted_) {
    return;
  }
  const DrmsEnv& env = program_.env_;
  // A restarting program loads the checkpointed contents as soon as the
  // distribution is known ("array loading is delayed until the new
  // distribution is specified"). Load-once per task-local context; every
  // task evaluates the same branch, keeping the collective aligned.
  if (!loaded_arrays_.insert(array.name()).second) {
    return;
  }
  RestartTiming timing;
  if (env.mode == CheckpointMode::kDrms) {
    DrmsCheckpoint engine(*env.storage, make_load_context(), env.io_tasks,
                          env.target_chunk_bytes, env.jitter, env.recorder);
    const RetainedArray* ra =
        env.partial != nullptr && env.partial->retained != nullptr
            ? env.partial->retained->find(array.name())
            : nullptr;
    if (ra != nullptr) {
      engine.attach_io_session(env.partial->io, env.partial->io_job);
      partial_restore_array(engine, *env.partial, *ra, array, timing);
      partial_restored_ = true;
    } else {
      engine.restore_array(ctx_, env.restart_prefix, *restart_meta_, array,
                           timing);
    }
  } else {
    SpmdCheckpoint engine(*env.storage, make_load_context(), env.jitter,
                          env.recorder);
    engine.restore_array_from(spmd_cursor_, array, ctx_.rank());
    ctx_.barrier();
  }
  restart_timing_.arrays_seconds += timing.arrays_seconds;
  if (ctx_.rank() == 0) {
    const std::lock_guard<std::mutex> lock(program_.mutex_);
    program_.last_restart_.arrays_seconds += timing.arrays_seconds;
  }
}

void DrmsContext::partial_restore_array(DrmsCheckpoint& engine,
                                        const PartialRestorePlan& plan,
                                        const RetainedArray& ra,
                                        DistArray& array,
                                        RestartTiming& timing) {
  const DrmsEnv& env = program_.env_;
  const RetainedJobState& retained = *plan.retained;
  DRMS_EXPECTS_MSG(retained.valid && retained.prefix == env.restart_prefix,
                   "partial restore: retained snapshot does not match the "
                   "restart generation");
  DRMS_EXPECTS_MSG(static_cast<int>(ra.assigned.size()) == retained.t1 &&
                       static_cast<int>(ra.retained.size()) == retained.t1 &&
                       static_cast<int>(plan.slot_lost.size()) == retained.t1,
                   "partial restore: slot tables disagree");
  ctx_.barrier();
  const double t0 = ctx_.sim_time();
  obs::ScopedSpan op_span(env.recorder, "recover", "partial_restore",
                          ctx_.rank(), t0,
                          {obs::Attr::str("array", array.name()),
                           obs::Attr::num("lost_slots", plan.lost_count())});

  // (A) Lost cover: the replaced slots' assigned sections stream in from
  // the generation on storage (chain-aware per-section reads).
  std::vector<Slice> lost;
  for (int s = 0; s < retained.t1; ++s) {
    const auto us = static_cast<std::size_t>(s);
    if (plan.slot_lost[us] != 0 && !ra.assigned[us].empty()) {
      lost.push_back(ra.assigned[us]);
    }
  }
  const std::uint64_t read_bytes = engine.restore_array_sections(
      ctx_, env.restart_prefix, *restart_meta_, array, lost, timing);

  // (B) Survivor adoption: each surviving slot's retained section is
  // scattered into the new distribution's mapped slices, one adopter
  // rank per slot per round. Pure message passing — zero storage reads
  // and zero simulated I/O time; together with (A) the scattered
  // sections cover the whole box (the capture requires a fully assigned
  // distribution), so shadows come out consistent without a refresh.
  std::vector<int> survivors;
  for (int s = 0; s < retained.t1; ++s) {
    const auto us = static_cast<std::size_t>(s);
    if (plan.slot_lost[us] == 0 && !ra.assigned[us].empty()) {
      DRMS_EXPECTS_MSG(
          ra.retained[us].byte_size() ==
              static_cast<std::uint64_t>(ra.assigned[us].element_count()) *
                  array.elem_size(),
          "partial restore: surviving slot has no retained data");
      survivors.push_back(s);
    }
  }
  const int t2 = ctx_.size();
  const int me = ctx_.rank();
  const std::vector<Slice> dst_mapped = array.distribution().mapped_slices();
  const int d = array.global_box().rank();
  for (std::size_t r0 = 0; r0 < survivors.size();
       r0 += static_cast<std::size_t>(t2)) {
    const int active = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(t2), survivors.size() - r0));
    std::vector<Slice> src(static_cast<std::size_t>(t2),
                           Slice::empty_of_rank(d));
    const LocalArray* my_src = nullptr;
    for (int q = 0; q < active; ++q) {
      const auto slot =
          static_cast<std::size_t>(survivors[r0 + static_cast<std::size_t>(q)]);
      src[static_cast<std::size_t>(q)] = ra.assigned[slot];
      if (q == me) {
        my_src = &ra.retained[slot];
      }
    }
    exchange_sections(ctx_, src, my_src, dst_mapped, &array.local(me),
                      array.elem_size(), env.recorder);
  }
  ctx_.barrier();
  if (me == 0 && env.recorder != nullptr) {
    env.recorder->count("recover.partial.restore_read_bytes",
                        static_cast<std::int64_t>(read_bytes));
    env.recorder->count("recover.partial.survivor_read_bytes", 0);
    env.recorder->count("recover.partial.lost_sections",
                        static_cast<std::int64_t>(lost.size()));
    env.recorder->count("recover.partial.adopted_sections",
                        static_cast<std::int64_t>(survivors.size()));
  }
  op_span.end(ctx_.sim_time());
}

void DrmsContext::capture_retained(RetainedJobState& retain,
                                   const std::string& prefix,
                                   std::span<DistArray* const> arrays) {
  // SPMD discipline matching IncrementalState/DeltaChainState: rank 0
  // lays out the slot tables between barriers, then every task fills its
  // OWN slot (slot-private, so no write overlaps), and `valid` flips true
  // only after every slot landed. The copies are taken inside the same
  // collective that wrote the generation, so they are bit-identical to
  // the bytes on the volume.
  ctx_.barrier();
  if (ctx_.rank() == 0) {
    retain.valid = false;
    retain.prefix = prefix;
    retain.sop = sop_counter_;
    retain.t1 = ctx_.size();
    retain.arrays.clear();
    bool ok = true;
    for (const DistArray* a : arrays) {
      if (!a->distributed() || !a->distribution().fully_assigned()) {
        // Holes in the assignment would leave unowned cells with nothing
        // to adopt them on a partial restart; such jobs get full scope.
        ok = false;
        break;
      }
      RetainedArray ra;
      ra.name = a->name();
      ra.assigned = a->distribution().assigned_slices();
      ra.retained.resize(static_cast<std::size_t>(ctx_.size()));
      retain.arrays.push_back(std::move(ra));
    }
    if (!ok) {
      retain.invalidate();
    }
  }
  ctx_.barrier();
  if (retain.arrays.size() == arrays.size() && !arrays.empty()) {
    const int me = ctx_.rank();
    for (std::size_t i = 0; i < arrays.size(); ++i) {
      RetainedArray& ra = retain.arrays[i];
      const Slice& mine = ra.assigned[static_cast<std::size_t>(me)];
      if (mine.empty()) {
        continue;
      }
      LocalArray copy(mine, arrays[i]->elem_size());
      std::as_const(*arrays[i]).local(me).extract(mine, copy.bytes());
      ra.retained[static_cast<std::size_t>(me)] = std::move(copy);
    }
  }
  ctx_.barrier();
  if (ctx_.rank() == 0 && retain.arrays.size() == arrays.size() &&
      !arrays.empty()) {
    retain.valid = true;
  }
}

int DrmsContext::service_steering(SteeringChannel& channel) {
  DRMS_EXPECTS_MSG(initialized_,
                   "call initialize() before service_steering()");
  // Rank 0 drains the channel and broadcasts the request DESCRIPTORS
  // (kind, array, section, payload size); store payloads stay on rank 0,
  // which is the single sequential-channel endpoint.
  ctx_.barrier();
  std::vector<std::unique_ptr<SteeringRequest>> requests;
  support::ByteBuffer descriptors;
  if (ctx_.rank() == 0) {
    requests = channel.drain();
    descriptors.put_u64(requests.size());
    for (const auto& r : requests) {
      descriptors.put_u8(r->kind == SteeringRequest::Kind::kFetch ? 0 : 1);
      descriptors.put_string(r->array);
      r->section.serialize(descriptors);
      descriptors.put_u64(r->data.size());
    }
  }
  rt::broadcast(ctx_, descriptors, 0);
  descriptors.rewind();

  const std::uint64_t count = descriptors.get_u64();
  const ArrayStreamer streamer(nullptr, {},
                               program_.env_.target_chunk_bytes,
                               /*jitter=*/false, program_.env_.recorder);
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool is_store = descriptors.get_u8() == 1;
    const std::string name = descriptors.get_string();
    const Slice section = Slice::deserialize(descriptors);
    const std::uint64_t payload_size = descriptors.get_u64();

    // Validate on EVERY task from the broadcast descriptor, so all tasks
    // agree on whether to run the collective streaming operation.
    DistArray* array = nullptr;
    {
      const std::lock_guard<std::mutex> lock(program_.mutex_);
      for (const auto& a : program_.arrays_) {
        if (a->name() == name) {
          array = a.get();
          break;
        }
      }
    }
    std::string error;
    if (array == nullptr) {
      error = "no distributed array named '" + name + "'";
    } else if (!array->distributed()) {
      error = "array '" + name + "' has no distribution";
    } else if (section.rank() != array->global_box().rank() ||
               !array->global_box().covers(section)) {
      error = "section outside the index space of '" + name + "'";
    } else if (is_store &&
               payload_size !=
                   static_cast<std::uint64_t>(section.element_count()) *
                       array->elem_size()) {
      error = "store payload size does not match the section";
    }

    if (!error.empty()) {
      if (ctx_.rank() == 0) {
        requests[i]->reply.set_exception(std::make_exception_ptr(
            support::Error("steering: " + error)));
      }
      continue;
    }
    if (is_store) {
      // Rank 0 feeds the payload; everyone scatters.
      VectorSource source(ctx_.rank() == 0
                              ? std::span<const std::byte>(requests[i]->data)
                              : std::span<const std::byte>{});
      streamer.read_section_sequential(ctx_, *array, section, source);
      if (ctx_.rank() == 0) {
        requests[i]->reply.set_value({});
      }
    } else {
      std::vector<std::byte> snapshot;
      VectorSink sink(snapshot);
      streamer.write_section_sequential(ctx_, *array, section, sink);
      if (ctx_.rank() == 0) {
        requests[i]->reply.set_value(std::move(snapshot));
      }
    }
  }
  ctx_.barrier();
  return static_cast<int>(count);
}

ReconfigResult DrmsContext::reconfig_checkpoint(const std::string& prefix) {
  DRMS_EXPECTS_MSG(initialized_,
                   "call initialize() before reconfig_checkpoint()");
  if (just_restarted_) {
    just_restarted_ = false;
    return ReconfigResult{CheckpointStatus::kRestarted, delta(), false};
  }
  return do_checkpoint(prefix);
}

ReconfigResult DrmsContext::reconfig_chkenable(const std::string& prefix) {
  DRMS_EXPECTS_MSG(initialized_,
                   "call initialize() before reconfig_chkenable()");
  if (just_restarted_) {
    just_restarted_ = false;
    return ReconfigResult{CheckpointStatus::kRestarted, delta(), false};
  }
  // Collective decision: rank 0 samples-and-clears the enabling signal and
  // broadcasts it, so either every task checkpoints or none does.
  ctx_.barrier();
  support::ByteBuffer decision;
  if (ctx_.rank() == 0) {
    const bool enabled = program_.checkpoint_enabled_.exchange(false);
    decision.put_bool(enabled);
  }
  rt::broadcast(ctx_, decision, 0);
  decision.rewind();
  if (!decision.get_bool()) {
    return ReconfigResult{CheckpointStatus::kContinued, 0, false};
  }
  return do_checkpoint(prefix);
}

ReconfigResult DrmsContext::do_checkpoint(const std::string& prefix) {
  ++sop_counter_;
  const DrmsEnv& env = program_.env_;
  const std::vector<DistArray*> arrays = array_list();
  CheckpointTiming timing;
  if (env.mode == CheckpointMode::kDrms) {
    DrmsCheckpoint engine(*env.storage, make_load_context(), env.io_tasks,
                          env.target_chunk_bytes, env.jitter, env.recorder);
    DeltaOptions delta_opts;
    delta_opts.enabled = env.delta;
    delta_opts.full_every_k = env.delta_full_every_k;
    delta_opts.block_bytes = env.delta_block_bytes;
    delta_opts.codec = env.delta_codec;
    timing = engine.write(
        ctx_, prefix, program_.app_name_, sop_counter_, store_, arrays,
        program_.segment_model_,
        env.incremental ? &program_.incremental_state_ : nullptr,
        env.delta ? &delta_opts : nullptr,
        env.delta ? &program_.delta_chain_ : nullptr);
    if (env.retain != nullptr) {
      capture_retained(*env.retain, prefix, arrays);
    }
  } else {
    SpmdCheckpoint engine(*env.storage, make_load_context(), env.jitter,
                          env.recorder);
    timing = engine.write(ctx_, prefix, program_.app_name_, sop_counter_,
                          store_, arrays, program_.segment_model_);
  }
  if (ctx_.rank() == 0) {
    const std::lock_guard<std::mutex> lock(program_.mutex_);
    program_.last_checkpoint_ = timing;
    program_.checkpoints_written_.fetch_add(1);
  }
  return ReconfigResult{CheckpointStatus::kContinued, 0, true};
}

}  // namespace drms::core
