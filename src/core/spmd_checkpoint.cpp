#include "core/spmd_checkpoint.hpp"

#include <algorithm>

#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/retry.hpp"

namespace drms::core {

namespace {

constexpr std::uint32_t kTaskSegMagic = wire::kSpmdSegmentMagic;
constexpr std::uint32_t kTaskSegVersion = wire::kSpmdSegmentVersion;

}  // namespace

SpmdCheckpoint::SpmdCheckpoint(store::StorageBackend& storage,
                               sim::LoadContext load, bool jitter,
                               obs::Recorder* recorder)
    : storage_(storage), load_(load), jitter_(jitter), recorder_(recorder) {}

support::RetryPolicy SpmdCheckpoint::retry_policy(const char* what) const {
  support::RetryPolicy policy;
  policy.observer = recorder_;
  policy.what = what;
  if (io_session_active()) {
    policy.jitter_seed = io_job_->id();
  }
  return policy;
}

void SpmdCheckpoint::submit_io(const std::string& file, std::uint64_t bytes,
                               std::function<void()> fn) {
  if (!io_session_active()) {
    fn();
    return;
  }
  const double sim_seconds =
      storage_.charges_time()
          ? storage_.single_write_seconds(bytes, load_, nullptr)
          : 0.0;
  (void)io_->submit(*io_job_, svc::Priority::kForeground, file, bytes,
                    sim_seconds, std::move(fn));
}

void SpmdCheckpoint::io_barrier() {
  if (io_session_active()) {
    io_->barrier(*io_job_);
  }
}

CheckpointTiming SpmdCheckpoint::write(rt::TaskContext& ctx,
                                       const std::string& prefix,
                                       const std::string& app_name,
                                       std::int64_t sop,
                                       const ReplicatedStore& store,
                                       std::span<DistArray* const> arrays,
                                       const AppSegmentModel& segment_model) {
  for (DistArray* const a : arrays) {
    DRMS_EXPECTS_MSG(a != nullptr && a->distributed(),
                     "every array must be distributed before checkpointing");
  }
  CheckpointTiming timing;
  ctx.barrier();
  const double t0 = ctx.sim_time();
  obs::ScopedSpan op_span(
      recorder_, "spmd", "write", ctx.rank(), t0,
      {obs::Attr::str("prefix", prefix),
       obs::Attr::num("arrays", static_cast<std::int64_t>(arrays.size()))});

  // Decommit before anyone overwrites a file under this prefix, and hold
  // the other tasks back until the old manifest is gone. The barrier is
  // timing-neutral: no simulated time is charged before it, so every
  // task's clock is still t0.
  struct DrainOnUnwind {
    SpmdCheckpoint* self;
    ~DrainOnUnwind() {
      try {
        self->io_barrier();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
    }
  } drain_on_unwind{this};

  if (ctx.rank() == 0) {
    obs::ScopedSpan decommit_span(recorder_, "spmd", "decommit", 0, t0);
    submit_io(commit_file_name(prefix), 0, [this, &prefix] {
      support::retry_io([&] { decommit_checkpoint(storage_, prefix); },
                        retry_policy("decommit"));
    });
    io_barrier();  // the old manifest must be gone before anyone writes
    decommit_span.end(ctx.sim_time());
  }
  ctx.barrier();

  // Serialize this task's full segment: replicated payload, then the real
  // bytes of every local array section, then padding to the static size.
  support::ByteBuffer body;
  body.put_u32(kTaskSegMagic);
  body.put_u32(kTaskSegVersion);
  body.put_i64(ctx.rank());
  store.serialize(body);
  body.put_u64(arrays.size());
  for (DistArray* const a : arrays) {
    body.put_string(a->name());
    const LocalArray& local = a->local(ctx.rank());
    body.put_u64(local.byte_size());
    body.append(local.bytes());
  }
  const std::uint32_t crc = support::crc32c(body.bytes());

  const std::uint64_t payload_end = 8 + 4 + body.size();  // size+crc prefix
  const std::uint64_t total_bytes =
      std::max(segment_model.total(), payload_end);

  obs::ScopedSpan segment_span(
      recorder_, "spmd", "segment", ctx.rank(), ctx.sim_time(),
      {obs::Attr::num("bytes", static_cast<std::int64_t>(total_bytes))});
  // This rank's whole task-segment sequence is ONE queued item, sharded
  // by its private file name: with a session attached, independent ranks'
  // segments land on independent shard queues and overlap.
  const std::string task_file_name = spmd_task_file_name(prefix, ctx.rank());
  support::ByteBuffer head;
  head.put_u64(body.size());
  head.put_u32(crc);
  submit_io(task_file_name, total_bytes,
            [this, task_file_name, &head, &body, total_bytes, payload_end] {
              store::FileHandle file = support::retry_io(
                  [&] { return storage_.create(task_file_name); },
                  retry_policy("segment.create"));
              support::retry_io([&] { file.write_at(0, head.bytes()); },
                                retry_policy("segment.write"));
              support::retry_io(
                  [&] { file.write_at(head.size(), body.bytes()); },
                  retry_policy("segment.write"));
              if (total_bytes > payload_end) {
                support::retry_io(
                    [&] {
                      file.write_zeros_at(payload_end,
                                          total_bytes - payload_end);
                    },
                    retry_policy("segment.write"));
              }
            });
  // Explicit completion barrier: the publication below reads every task
  // file's size, so each rank drains the job before the collective
  // barrier — once all ranks pass it, every queued segment is durable.
  io_barrier();
  segment_span.end(ctx.sim_time());

  // Every task file must be durable before task 0 publishes the state;
  // timing-neutral (no charges since the previous barrier).
  ctx.barrier();

  // Publication: meta record, then the commit manifest as the LAST write.
  // Built on every task so the modeled commit overhead is identical
  // everywhere; written by task 0.
  CheckpointMeta meta;
  meta.app_name = app_name;
  meta.task_count = ctx.size();
  meta.sop = sop;
  meta.segment_bytes = total_bytes;
  const support::ByteBuffer meta_buf = encode_checkpoint_meta(meta);
  CommitManifest manifest;
  manifest.spmd = true;
  manifest.entries.push_back(CommitEntry{spmd_meta_file_name(prefix),
                                         meta_buf.size(),
                                         support::crc32c(meta_buf.bytes()),
                                         true});
  for (int r = 0; r < ctx.size(); ++r) {
    // Actual on-volume size: a task whose payload exceeds the static
    // segment model writes a larger file than total_bytes says.
    const std::string task_file = spmd_task_file_name(prefix, r);
    manifest.entries.push_back(
        CommitEntry{task_file, storage_.file_size(task_file), 0, false});
  }
  const support::ByteBuffer manifest_buf = encode_commit_manifest(manifest);

  if (ctx.rank() == 0) {
    {
      obs::ScopedSpan meta_span(recorder_, "spmd", "meta", 0,
                                ctx.sim_time());
      submit_io(spmd_meta_file_name(prefix), meta_buf.size(),
                [this, &prefix, &meta_buf] {
                  support::retry_io(
                      [&] {
                        storage_.create(spmd_meta_file_name(prefix))
                            .write_at(0, meta_buf.bytes());
                      },
                      retry_policy("meta.write"));
                });
      meta_span.end(ctx.sim_time());
    }
    obs::ScopedSpan commit_span(recorder_, "spmd", "commit", 0,
                                ctx.sim_time());
    // Manifest-last: every queued write (meta included) completes before
    // the commit manifest is even submitted.
    io_barrier();
    submit_io(commit_file_name(prefix), manifest_buf.size(),
              [this, &prefix, &manifest_buf] {
                support::retry_io(
                    [&] {
                      storage_.create(commit_file_name(prefix))
                          .write_at(0, manifest_buf.bytes());
                    },
                    retry_policy("commit.write"));
              });
    io_barrier();
    commit_span.end(ctx.sim_time());
  }
  // Modeled (not charged) publication cost; see CheckpointTiming — kept
  // out of the phase clocks and drawn without jitter so the paper tables
  // are unchanged by the commit protocol.
  if (storage_.charges_time()) {
    timing.commit_seconds = storage_.single_write_seconds(
        meta_buf.size() + manifest_buf.size(), load_, nullptr);
  }

  if (storage_.charges_time()) {
    ctx.charge(storage_.concurrent_write_seconds(
        total_bytes, ctx.size(), load_,
        jitter_ ? &ctx.shared_rng() : nullptr));
  }
  ctx.barrier();
  timing.segment_seconds = ctx.sim_time() - t0;
  op_span.end(ctx.sim_time());
  return timing;
}

CheckpointMeta SpmdCheckpoint::restore_begin(
    rt::TaskContext& ctx, const std::string& prefix, ReplicatedStore& store,
    const AppSegmentModel& segment_model, RestartTiming& timing,
    SpmdRestoreCursor& cursor) {
  ctx.barrier();
  const double t0 = ctx.sim_time();
  obs::ScopedSpan op_span(recorder_, "spmd", "restore", ctx.rank(), t0,
                          {obs::Attr::str("prefix", prefix)});
  if (storage_.charges_time()) {
    ctx.charge(storage_.cost_model()->restart_init_seconds(
        segment_model.text_bytes, jitter_ ? &ctx.shared_rng() : nullptr));
  }
  ctx.barrier();
  const double t1 = ctx.sim_time();
  timing.init_seconds += t1 - t0;

  const CheckpointMeta meta = read_spmd_meta(storage_, prefix);
  if (meta.task_count != ctx.size()) {
    throw support::Error(
        "SPMD checkpoint was taken with " +
        std::to_string(meta.task_count) + " tasks; restart with " +
        std::to_string(ctx.size()) +
        " is impossible without the DRMS programming model");
  }

  const store::FileHandle file =
      storage_.open(spmd_task_file_name(prefix, ctx.rank()));
  support::ByteBuffer head = store::read_to_buffer(file, 0, 12);
  const std::uint64_t body_size = head.get_u64();
  const std::uint32_t crc = head.get_u32();
  support::ByteBuffer body = store::read_to_buffer(file, 12, body_size);
  if (support::crc32c(body.bytes()) != crc) {
    throw support::CorruptCheckpoint("SPMD task segment: CRC mismatch");
  }
  if (body.get_u32() != kTaskSegMagic) {
    throw support::CorruptCheckpoint("SPMD task segment: bad magic");
  }
  if (body.get_u32() != kTaskSegVersion) {
    throw support::CorruptCheckpoint(
        "SPMD task segment: unsupported version");
  }
  if (body.get_i64() != ctx.rank()) {
    throw support::CorruptCheckpoint(
        "SPMD task segment: file belongs to a different rank");
  }
  store.deserialize(body);
  cursor.arrays_remaining = body.get_u64();
  cursor.body = std::move(body);

  if (storage_.charges_time()) {
    ctx.charge(storage_.private_read_seconds(
        std::max(segment_model.total(), file.size()), ctx.size(), load_,
        jitter_ ? &ctx.shared_rng() : nullptr));
  }
  ctx.barrier();
  timing.segment_seconds += ctx.sim_time() - t1;
  op_span.end(ctx.sim_time());
  return meta;
}

void SpmdCheckpoint::restore_array_from(SpmdRestoreCursor& cursor,
                                        DistArray& array, int rank) const {
  DRMS_EXPECTS_MSG(array.distributed(),
                   "arrays must be distributed before an SPMD restore");
  if (cursor.arrays_remaining == 0) {
    throw support::CorruptCheckpoint(
        "SPMD task segment: more arrays requested than checkpointed");
  }
  auto& body = cursor.body;
  const std::string name = body.get_string();
  if (name != array.name()) {
    throw support::CorruptCheckpoint(
        "SPMD task segment: array order mismatch: expected '" +
        array.name() + "', found '" + name + "'");
  }
  const std::uint64_t bytes = body.get_u64();
  LocalArray& local = array.local(rank);
  if (bytes != local.byte_size()) {
    throw support::CorruptCheckpoint(
        "SPMD task segment: local section size mismatch for array '" +
        name + "' (distribution differs from checkpoint time)");
  }
  body.read_raw(local.bytes().data(), static_cast<std::size_t>(bytes));
  --cursor.arrays_remaining;
}

CheckpointMeta SpmdCheckpoint::restore(rt::TaskContext& ctx,
                                       const std::string& prefix,
                                       ReplicatedStore& store,
                                       std::span<DistArray* const> arrays,
                                       const AppSegmentModel& segment_model,
                                       RestartTiming& timing) {
  SpmdRestoreCursor cursor;
  const CheckpointMeta meta =
      restore_begin(ctx, prefix, store, segment_model, timing, cursor);
  if (cursor.arrays_remaining != arrays.size()) {
    throw support::CorruptCheckpoint(
        "SPMD task segment: array count mismatch");
  }
  for (DistArray* const a : arrays) {
    DRMS_EXPECTS(a != nullptr);
    restore_array_from(cursor, *a, ctx.rank());
  }
  return meta;
}

}  // namespace drms::core
