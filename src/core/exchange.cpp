#include "core/exchange.hpp"

#include "rt/collectives.hpp"
#include "support/error.hpp"

namespace drms::core {

void exchange_sections(rt::TaskContext& ctx,
                       const std::vector<Slice>& src_assigned,
                       const LocalArray* my_src,
                       const std::vector<Slice>& dst_mapped,
                       LocalArray* my_dst, std::size_t elem_size,
                       obs::Recorder* recorder) {
  const int p = ctx.size();
  const int me = ctx.rank();
  DRMS_EXPECTS_MSG(static_cast<int>(src_assigned.size()) == p &&
                       static_cast<int>(dst_mapped.size()) == p,
                   "exchange_sections needs one slice per task");
  obs::ScopedSpan span(recorder, "exchange", "sections", me,
                       ctx.sim_time());

  const Slice& my_assigned = src_assigned[static_cast<std::size_t>(me)];
  const Slice& my_mapped = dst_mapped[static_cast<std::size_t>(me)];

  // Outgoing: the piece of my assigned source data needed by each task's
  // mapped destination. Both sides compute the same intersection slice, so
  // messages carry only raw element bytes in stream order.
  std::vector<support::ByteBuffer> outgoing(static_cast<std::size_t>(p));
  if (my_src != nullptr && !my_assigned.empty()) {
    for (int dst = 0; dst < p; ++dst) {
      const Slice piece =
          my_assigned.intersect(dst_mapped[static_cast<std::size_t>(dst)]);
      if (piece.empty()) {
        continue;
      }
      // Gather straight into the outgoing mailbox buffer: the buffer grows
      // by exactly the piece size in one allocation and extract() writes
      // the element runs in place (no intermediate vector).
      auto& buf = outgoing[static_cast<std::size_t>(dst)];
      my_src->extract(
          piece,
          buf.append_uninitialized(
              static_cast<std::size_t>(piece.element_count()) * elem_size));
    }
  }

  if (recorder != nullptr) {
    std::uint64_t bytes_out = 0;
    for (const auto& buf : outgoing) {
      bytes_out += buf.size();
    }
    recorder->count("exchange.bytes_sent", bytes_out);
  }

  std::vector<support::ByteBuffer> incoming =
      rt::all_to_all(ctx, std::move(outgoing));

  if (recorder != nullptr) {
    std::uint64_t bytes_in = 0;
    for (const auto& buf : incoming) {
      bytes_in += buf.size();
    }
    recorder->count("exchange.bytes_received", bytes_in);
  }

  if (my_dst != nullptr && !my_mapped.empty()) {
    for (int src = 0; src < p; ++src) {
      const Slice piece =
          src_assigned[static_cast<std::size_t>(src)].intersect(my_mapped);
      if (piece.empty()) {
        continue;
      }
      const auto& buf = incoming[static_cast<std::size_t>(src)];
      const std::uint64_t expected =
          static_cast<std::uint64_t>(piece.element_count()) * elem_size;
      DRMS_EXPECTS_MSG(buf.size() == expected,
                       "exchange payload size mismatch");
      my_dst->insert(piece, buf.bytes());
    }
  }
  span.end(ctx.sim_time());
}

}  // namespace drms::core
