#include "core/mpmd.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "rt/collectives.hpp"
#include "support/error.hpp"

namespace drms::core {

MpmdCoordinator::MpmdCoordinator(std::vector<std::string> component_names)
    : components_(std::move(component_names)) {
  DRMS_EXPECTS(!components_.empty());
  for (const auto& name : components_) {
    DRMS_EXPECTS_MSG(component_epoch_.emplace(name, 0).second,
                     "duplicate MPMD component name: " + name);
  }
}

std::int64_t MpmdCoordinator::arrive(const std::string& component,
                                     rt::TaskContext& ctx) {
  // Rank 0 of the component represents it at the cross-component latch
  // and then broadcasts the completed epoch to its group — the broadcast
  // doubles as the release, so no task of any component proceeds before
  // every component arrived, and the reported epoch cannot race with the
  // next one.
  support::ByteBuffer epoch_msg;
  if (ctx.rank() == 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = component_epoch_.find(component);
    DRMS_EXPECTS_MSG(it != component_epoch_.end(),
                     "unknown MPMD component: " + component);
    const std::int64_t my_epoch = it->second;
    DRMS_EXPECTS_MSG(my_epoch == epoch_,
                     "component '" + component +
                         "' is out of step with the MPMD epoch");
    ++it->second;
    if (++arrived_ == component_count()) {
      arrived_ = 0;
      ++epoch_;
      cv_.notify_all();
    } else {
      // Kill-aware wait: poll the group's kill switch while blocked so a
      // failed sibling component cannot wedge this one forever once the
      // RC tears the application down.
      while (epoch_ == my_epoch) {
        cv_.wait_for(lock, std::chrono::milliseconds(20));
        if (epoch_ != my_epoch) {
          break;
        }
        lock.unlock();
        ctx.check_killed();
        lock.lock();
      }
    }
    epoch_msg.put_i64(my_epoch);
  }
  rt::broadcast(ctx, epoch_msg, 0);
  epoch_msg.rewind();
  const std::int64_t completed_epoch = epoch_msg.get_i64();
  ctx.barrier();
  return completed_epoch;
}

std::int64_t MpmdCoordinator::epochs_completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

MpmdResult run_mpmd(std::vector<MpmdComponent> components,
                    MpmdCoordinator& coordinator, std::uint64_t seed) {
  DRMS_EXPECTS(!components.empty());
  MpmdResult result;
  std::vector<std::unique_ptr<rt::TaskGroup>> groups;
  groups.reserve(components.size());
  for (std::size_t i = 0; i < components.size(); ++i) {
    groups.push_back(std::make_unique<rt::TaskGroup>(
        components[i].placement,
        seed + static_cast<std::uint64_t>(i) * 0x9e3779b9ull));
  }

  std::vector<std::thread> runners;
  std::mutex result_mutex;
  for (std::size_t i = 0; i < components.size(); ++i) {
    runners.emplace_back([&, i] {
      const auto outcome = groups[i]->run([&](rt::TaskContext& ctx) {
        components[i].body(ctx, coordinator);
      });
      const std::lock_guard<std::mutex> lock(result_mutex);
      result.components[components[i].name] = outcome;
    });
  }
  for (auto& t : runners) {
    t.join();
  }
  result.completed = std::all_of(
      result.components.begin(), result.components.end(),
      [](const auto& kv) { return kv.second.completed; });
  return result;
}

std::string mpmd_component_prefix(const std::string& prefix,
                                  const std::string& name) {
  return prefix + "." + name;
}

}  // namespace drms::core
