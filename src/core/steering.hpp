// Computational steering (§3, [12]): the array-section streaming
// machinery lets an EXTERNAL agent — a visualization front end, a
// researcher's console, the UIC — read and write sections of a running
// application's distributed arrays at well-defined points.
//
// A SteeringChannel carries requests from the steering client (any
// thread) to the application; the application services them collectively
// at its steering points (typically its SOPs):
//
//   client:  auto f = channel.fetch("u", slice);        // async
//            channel.store("u", slice, bytes);          // async
//   app:     drms.service_steering(channel);            // at the SOP
//   client:  f.wait() -> the section's stream bytes
//
// Fetches return the distribution-independent (column-major) stream of
// the section; stores accept the same representation — exactly the
// checkpoint encoding, so steering clients and checkpoint files speak one
// format.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/slice.hpp"
#include "support/byte_buffer.hpp"

namespace drms::core {

/// One pending steering operation.
struct SteeringRequest {
  enum class Kind { kFetch, kStore };
  Kind kind = Kind::kFetch;
  std::string array;
  Slice section;
  /// Store payload (stream order); empty for fetches.
  std::vector<std::byte> data;
  /// Fulfilled by the application: fetched bytes, or an empty vector ack
  /// for stores. On error the promise carries the exception.
  std::promise<std::vector<std::byte>> reply;
};

class SteeringChannel {
 public:
  /// Client side: request a section snapshot. Resolves at the next
  /// steering point the application services.
  [[nodiscard]] std::future<std::vector<std::byte>> fetch(
      const std::string& array, Slice section);

  /// Client side: overwrite a section with stream-ordered bytes.
  [[nodiscard]] std::future<std::vector<std::byte>> store(
      const std::string& array, Slice section,
      std::vector<std::byte> data);

  /// Number of requests waiting (diagnostics).
  [[nodiscard]] std::size_t pending() const;

  /// Application side (used by DrmsContext::service_steering): drain all
  /// currently queued requests. Single consumer.
  [[nodiscard]] std::vector<std::unique_ptr<SteeringRequest>> drain();

 private:
  mutable std::mutex mutex_;
  std::deque<std::unique_ptr<SteeringRequest>> queue_;
};

}  // namespace drms::core
