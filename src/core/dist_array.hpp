// Distributed arrays (§3.1): an abstract global Cartesian index space
// whose sections are concretely present in the tasks. The DistArray
// object holds the global metadata and one LocalArray slot per task;
// since tasks are threads of one process, the object is shared, with the
// SPMD discipline that task t only touches slot t (redistribution moves
// data through the message-passing runtime, never through shared memory).
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/dist_spec.hpp"
#include "core/local_array.hpp"

namespace drms::core {

class DistArray {
 public:
  /// Declare a distributed array over `global_box` with `elem_size`-byte
  /// elements, to be distributed among `task_count` tasks. No storage is
  /// allocated until a distribution is installed.
  DistArray(std::string name, Slice global_box, std::size_t elem_size,
            int task_count);

  DistArray(const DistArray&) = delete;
  DistArray& operator=(const DistArray&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Slice& global_box() const noexcept { return box_; }
  [[nodiscard]] std::size_t elem_size() const noexcept { return elem_size_; }
  [[nodiscard]] int task_count() const noexcept {
    return static_cast<int>(locals_.size());
  }
  [[nodiscard]] Index global_element_count() const noexcept {
    return box_.element_count();
  }
  [[nodiscard]] std::uint64_t global_byte_count() const noexcept {
    return static_cast<std::uint64_t>(global_element_count()) * elem_size_;
  }

  /// Install a distribution, (re)allocating every task's local section
  /// with zero-initialized contents (the paper's drms_distribute on a
  /// fresh array). Data-preserving redistribution is redistribute() in
  /// redistribute.hpp. Called by ONE task per group, between barriers; an
  /// SPMD helper that does exactly that is provided by DrmsContext.
  void install_distribution(const DistSpec& spec);

  [[nodiscard]] bool distributed() const noexcept;
  /// Current distribution; throws if none installed.
  [[nodiscard]] const DistSpec& distribution() const;

  /// Task t's local section (only task t may write it).
  [[nodiscard]] LocalArray& local(int task);
  [[nodiscard]] const LocalArray& local(int task) const;

  /// Read an element through the distribution (first task whose assigned
  /// section contains the point; the copies are consistent by invariant).
  /// For tests and examples; solvers use LocalArray access.
  [[nodiscard]] double get_f64(std::span<const Index> point) const;

  /// ---- dirty tracking (delta checkpoints) ---------------------------------
  /// One MutationLog per task slot, attached to the LocalArrays so the
  /// runtime write paths record what they touch. Enabling starts
  /// conservatively dirty (everything must land in the next generation);
  /// install_distribution re-attaches and re-marks, since redistribution
  /// invalidates any per-slice history. Logs follow the SPMD discipline:
  /// task t mutates log t between barriers, readers scan all logs only at
  /// a barrier (the checkpoint engines do).
  void enable_dirty_tracking();
  [[nodiscard]] bool dirty_tracking() const noexcept { return tracking_; }
  [[nodiscard]] const MutationLog& mutation_log(int task) const;
  /// Clears every task's log — called by the engines once a generation
  /// holding those mutations has committed.
  void clear_mutation_logs() noexcept;
  /// Conservatively marks every task's log dirty.
  void mark_all_dirty() noexcept;

 private:
  /// (Re)create the per-task logs, mark them all-dirty, and attach them
  /// to the current LocalArrays.
  void attach_logs();

  std::string name_;
  Slice box_;
  std::size_t elem_size_;
  std::optional<DistSpec> spec_;
  std::vector<LocalArray> locals_;
  bool tracking_ = false;
  /// Per-task logs; deque-free stable storage is unnecessary — the
  /// vector is sized once per (re)distribution while logs are attached.
  std::vector<MutationLog> logs_;
};

}  // namespace drms::core
