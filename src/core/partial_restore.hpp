// Localized recovery (partial restore) — the paper's task-count-
// independent checkpoints taken to their payoff: when a failure removes
// only some of a job's tasks, the replacement tasks read ONLY the lost
// sections from the newest committed generation while the survivors keep
// the array contents they already hold in memory and merely redistribute
// them in place. Restart cost then scales with the FAILED fraction of the
// job, not its size.
//
// Mechanics in this simulated runtime: tasks are threads and a failed
// launch unwinds the whole group, so "survivors keep their arrays" is
// modeled by a RetainedJobState snapshot the supervisor owns across the
// reconfigure boundary. Each task captures its own assigned sections at
// every successful DRMS checkpoint (between barriers, so the copy is
// bit-identical to what landed on the volume); on a partial restart the
// surviving slots' retained sections are scattered into the new
// distribution through exchange_sections while the lost slots' sections
// stream in from storage via per-section reads. The checkpoint file IS
// the column-major element stream of the global box, so any
// stream-contiguous run of a lost section can be read at a computed byte
// offset with the existing streamer — no new on-volume format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dist_array.hpp"
#include "core/local_array.hpp"
#include "core/slice.hpp"
#include "svc/io_scheduler.hpp"

namespace drms::core {

/// One stream-contiguous run of a section within an enclosing box: the
/// run's elements occupy the consecutive byte range
/// [byte_offset, byte_offset + bytes) of the box's column-major element
/// stream (i.e. of the checkpoint array file).
struct StreamRun {
  Slice slice;
  std::uint64_t byte_offset = 0;
  std::uint64_t bytes = 0;
};

/// Decompose `section` into maximal stream-contiguous runs of `box`'s
/// column-major element stream. The classic case — a block distribution
/// splitting only the outermost axis — yields exactly one run; splitting
/// inner axes yields one run per outer-coordinate combination. Requires
/// `box` to cover `section` with matching rank, every range contiguous in
/// position (regular sections; throws ContractViolation otherwise).
[[nodiscard]] std::vector<StreamRun> stream_runs(const Slice& box,
                                                 const Slice& section,
                                                 std::size_t elem_size);

/// Snapshot of one array at the moment a checkpoint generation committed:
/// the per-slot assigned sections of the distribution that wrote it, plus
/// each slot's section contents (bit-identical to the generation's data
/// by construction — captured between the same barriers).
struct RetainedArray {
  std::string name;
  /// Assigned section of every slot — retained even for slots whose data was
  /// dropped (the old distribution is metadata the job keeps, exactly as
  /// a full restart keeps the checkpoint meta).
  std::vector<Slice> assigned;
  /// Slot-indexed copies of the assigned sections' bytes, in column-major
  /// stream order. A cleared (rank-0/empty) entry means the slot's memory
  /// is gone (its node died) and the data must come from storage.
  std::vector<LocalArray> retained;
};

/// Job-wide retained state, owned by the recovery supervisor and written
/// by the checkpoint path (DrmsContext::do_checkpoint) under the SPMD
/// discipline: rank 0 resizes between barriers, then each task fills its
/// own slot. `valid` flips true only once a generation fully committed.
struct RetainedJobState {
  bool valid = false;
  /// Generation prefix the snapshot mirrors.
  std::string prefix;
  std::int64_t sop = 0;
  /// Task count of the capturing group (slot space of the vectors).
  int t1 = 0;
  std::vector<RetainedArray> arrays;

  void invalidate() {
    valid = false;
    prefix.clear();
    sop = 0;
    t1 = 0;
    arrays.clear();
  }
  /// Drop one slot's retained DATA (its node is gone) while keeping the
  /// assigned-section metadata. No-op for out-of-range slots.
  void drop_slot(int slot);
  [[nodiscard]] const RetainedArray* find(const std::string& name) const;
  [[nodiscard]] std::uint64_t retained_bytes() const;
};

/// Per-restart plan handed to the restore path through DrmsEnv::partial.
/// Present (non-null) only when the supervisor decided on a partial-scope
/// restart: the retained snapshot matches the chosen generation and at
/// least one capturing slot survived.
struct PartialRestorePlan {
  const RetainedJobState* retained = nullptr;
  /// slot_lost[s] != 0: slot s of the capturing group lost its memory and
  /// its assigned sections must be read from the generation on storage.
  std::vector<char> slot_lost;
  /// Optional checkpoint-service session: partial reads are submitted at
  /// kRestore class (under the supervisor's RestoreGuard) instead of
  /// running inline. Borrowed; must outlive the restore.
  svc::IoScheduler* io = nullptr;
  const svc::JobToken* io_job = nullptr;

  [[nodiscard]] int lost_count() const {
    int n = 0;
    for (const char c : slot_lost) {
      n += c != 0 ? 1 : 0;
    }
    return n;
  }
};

}  // namespace drms::core
