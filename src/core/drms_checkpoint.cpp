#include "core/drms_checkpoint.hpp"

#include <algorithm>

#include "core/array_fingerprint.hpp"
#include "core/exchange.hpp"
#include "core/partial_restore.hpp"
#include "core/streamer.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/retry.hpp"

namespace drms::core {

namespace {

constexpr std::uint32_t kSegMagic = wire::kSegmentMagic;
constexpr std::uint32_t kSegVersion = wire::kSegmentVersion;

/// Fixed-size segment header preceding the replicated payload.
struct SegHeaderFields {
  std::uint64_t replicated_size = 0;
  std::uint64_t total_bytes = 0;
};

constexpr std::uint64_t kSegHeaderBytes = wire::kSegmentHeaderBytes;

support::ByteBuffer make_segment_header(const SegHeaderFields& h) {
  support::ByteBuffer buf;
  buf.put_u32(kSegMagic);
  buf.put_u32(kSegVersion);
  buf.put_u64(h.replicated_size);
  buf.put_u64(h.total_bytes);
  return buf;
}

SegHeaderFields parse_segment_header(support::ByteBuffer& buf) {
  if (buf.get_u32() != kSegMagic) {
    throw support::CorruptCheckpoint("segment file: bad magic");
  }
  if (buf.get_u32() != kSegVersion) {
    throw support::CorruptCheckpoint("segment file: unsupported version");
  }
  SegHeaderFields h;
  h.replicated_size = buf.get_u64();
  h.total_bytes = buf.get_u64();
  return h;
}

}  // namespace

DrmsCheckpoint::DrmsCheckpoint(store::StorageBackend& storage,
                               sim::LoadContext load, int io_tasks,
                               std::uint64_t target_chunk_bytes, bool jitter,
                               obs::Recorder* recorder)
    : storage_(storage),
      load_(load),
      io_tasks_(io_tasks),
      target_chunk_bytes_(target_chunk_bytes),
      jitter_(jitter),
      recorder_(recorder) {}

int DrmsCheckpoint::effective_io_tasks(const rt::TaskContext& ctx) const {
  if (io_tasks_ <= 0) {
    return ctx.size();
  }
  return std::min(io_tasks_, ctx.size());
}

support::RetryPolicy DrmsCheckpoint::retry_policy(const char* what) const {
  support::RetryPolicy policy;
  policy.observer = recorder_;
  policy.what = what;
  if (io_session_active()) {
    // Contending jobs desynchronize their retries: the per-job token id
    // seeds deterministic backoff jitter (see support::retry_backoff).
    policy.jitter_seed = io_job_->id();
  }
  return policy;
}

void DrmsCheckpoint::submit_io(const std::string& file, std::uint64_t bytes,
                               std::function<void()> fn) {
  if (!io_session_active()) {
    fn();
    return;
  }
  // The queueing model prices the item at the backend's modeled write
  // time (jitter-free: the shared RNG stream must not move).
  const double sim_seconds =
      storage_.charges_time()
          ? storage_.single_write_seconds(bytes, load_, nullptr)
          : 0.0;
  (void)io_->submit(*io_job_, svc::Priority::kForeground, file, bytes,
                    sim_seconds, std::move(fn));
}

void DrmsCheckpoint::io_barrier() {
  if (io_session_active()) {
    io_->barrier(*io_job_);
  }
}

CheckpointTiming DrmsCheckpoint::write(rt::TaskContext& ctx,
                                       const std::string& prefix,
                                       const std::string& app_name,
                                       std::int64_t sop,
                                       const ReplicatedStore& store,
                                       std::span<DistArray* const> arrays,
                                       const AppSegmentModel& segment_model,
                                       IncrementalState* incremental,
                                       const DeltaOptions* delta,
                                       DeltaChainState* chain) {
  for (DistArray* const a : arrays) {
    DRMS_EXPECTS_MSG(a != nullptr && a->distributed(),
                     "every array must be distributed before checkpointing");
  }
  CheckpointTiming timing;
  ctx.barrier();

  // --- Generation decision (collective-identical: derived from shared
  // state read at the entry barrier). A delta rides on the live chain
  // only while the chain is short enough, still committed, and does not
  // contain this prefix — overwriting a chain member starts with a
  // decommit, which would pull the base out from under its dependents.
  const bool delta_mode = delta != nullptr && delta->enabled && chain != nullptr;
  bool write_delta = false;
  if (delta_mode) {
    incremental = nullptr;  // chain replay subsumes whole-array skipping
    write_delta =
        !chain->chain.empty() &&
        static_cast<int>(chain->chain.size()) < std::max(delta->full_every_k, 1) &&
        std::find(chain->chain.begin(), chain->chain.end(), prefix) ==
            chain->chain.end() &&
        commit_manifest_exists(storage_, chain->chain.back());
  }
  // Dirty-block collection reads every task's mutation log, so it happens
  // here, at the entry barrier, while the logs are quiescent.
  std::vector<StreamPlan> plans;
  std::vector<std::vector<std::uint64_t>> dirty;
  if (write_delta) {
    plans.reserve(arrays.size());
    dirty.reserve(arrays.size());
    for (DistArray* const a : arrays) {
      plans.push_back(make_stream_plan(a->global_box(), a->elem_size(), 1,
                                       delta->block_bytes));
      dirty.push_back(collect_dirty_blocks(*a, plans.back().chunks));
    }
  }

  const double t0 = ctx.sim_time();
  obs::ScopedSpan op_span(
      recorder_, "ckpt", "write", ctx.rank(), t0,
      {obs::Attr::str("prefix", prefix),
       obs::Attr::num("arrays", static_cast<std::int64_t>(arrays.size()))});

  // --- Phase 1: one representative task writes the shared data segment.
  support::ByteBuffer replicated;
  store.serialize(replicated);
  const std::uint64_t payload_end = kSegHeaderBytes + replicated.size();
  // A delta generation's segment is compact: the padding components
  // (Table 4's local/private/system sections) are identical to the base's
  // and are not re-dumped — only the replicated payload moves.
  const std::uint64_t total_bytes =
      write_delta ? payload_end : std::max(segment_model.total(), payload_end);

  obs::ScopedSpan segment_span(recorder_, "ckpt", "segment", ctx.rank(), t0,
                               {obs::Attr::num("bytes", static_cast<std::int64_t>(
                                                            total_bytes))});
  // With an attached session, queued items may still be in flight when an
  // exception unwinds write() — drain them before locals they reference
  // go out of scope (queued errors are dropped; the original propagates).
  struct DrainOnUnwind {
    DrmsCheckpoint* self;
    ~DrainOnUnwind() {
      try {
        self->io_barrier();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
    }
  } drain_on_unwind{this};

  if (ctx.rank() == 0) {
    // Decommit before the first overwrite: once any file under this
    // prefix is touched, the previous state here must not look committed.
    {
      obs::ScopedSpan decommit_span(recorder_, "ckpt", "decommit", 0,
                                    ctx.sim_time());
      submit_io(commit_file_name(prefix), 0, [this, &prefix] {
        support::retry_io([&] { decommit_checkpoint(storage_, prefix); },
                          retry_policy("decommit"));
      });
      io_barrier();  // prefix files are untouchable until this completes
      decommit_span.end(ctx.sim_time());
    }
    // The whole segment-file sequence is ONE queued item: its steps are
    // internally ordered, and sharding by file name lets it overlap the
    // array creates below on another shard.
    submit_io(
        segment_file_name(prefix), total_bytes,
        [this, &prefix, &replicated, total_bytes, payload_end,
         header = make_segment_header(
             SegHeaderFields{replicated.size(), total_bytes})] {
          store::FileHandle seg = support::retry_io(
              [&] { return storage_.create(segment_file_name(prefix)); },
              retry_policy("segment.create"));
          support::retry_io([&] { seg.write_at(0, header.bytes()); },
                            retry_policy("segment.write"));
          support::retry_io(
              [&] { seg.write_at(kSegHeaderBytes, replicated.bytes()); },
              retry_policy("segment.write"));
          if (total_bytes > payload_end) {
            // The private/system/local-section components of the data
            // segment: logically written (time and size accounted),
            // stored sparsely.
            support::retry_io(
                [&] {
                  seg.write_zeros_at(payload_end, total_bytes - payload_end);
                },
                retry_policy("segment.write"));
          }
        });
  }
  if (storage_.charges_time()) {
    ctx.charge(storage_.single_write_seconds(
        total_bytes, load_, jitter_ ? &ctx.shared_rng() : nullptr));
  }
  ctx.barrier();
  timing.segment_seconds = ctx.sim_time() - t0;
  segment_span.end(ctx.sim_time());

  // --- Phase 2: stream every distributed array, in sequence.
  const double t1 = ctx.sim_time();

  // Incremental dirty detection: an array keeps its existing file when
  // its fingerprint matches the one recorded at the previous checkpoint
  // under this prefix AND that file is present with the expected size.
  // The decision is derived from collective-identical values, so every
  // task takes the same branch.
  std::vector<bool> skip(arrays.size(), false);
  std::vector<std::uint32_t> fingerprints(arrays.size(), 0);
  std::vector<std::uint32_t> previous_crcs(arrays.size(), 0);
  if (incremental != nullptr) {
    const bool same_prefix = incremental->prefix == prefix;
    // Stream CRCs of the previous checkpoint, for arrays we may keep.
    if (same_prefix && checkpoint_exists(storage_, prefix)) {
      const CheckpointMeta previous = read_checkpoint_meta(storage_, prefix);
      for (std::size_t i = 0; i < arrays.size(); ++i) {
        for (const auto& am : previous.arrays) {
          if (am.name == arrays[i]->name()) {
            previous_crcs[i] = am.stream_crc;
          }
        }
      }
    }
    for (std::size_t i = 0; i < arrays.size(); ++i) {
      fingerprints[i] = array_fingerprint(ctx, *arrays[i]);
      if (!same_prefix) {
        continue;
      }
      const auto it = incremental->fingerprints.find(arrays[i]->name());
      if (it == incremental->fingerprints.end() ||
          it->second != fingerprints[i]) {
        continue;
      }
      const std::string file_name =
          array_file_name(prefix, arrays[i]->name());
      skip[i] = storage_.exists(file_name) &&
                storage_.file_size(file_name) ==
                    arrays[i]->global_byte_count();
    }
  }

  if (ctx.rank() == 0) {
    for (std::size_t i = 0; i < arrays.size(); ++i) {
      if (!skip[i]) {
        const std::string file_name =
            write_delta ? delta_array_file_name(prefix, arrays[i]->name())
                        : array_file_name(prefix, arrays[i]->name());
        submit_io(file_name, 0, [this, file_name] {
          support::retry_io([&] { storage_.create(file_name); },
                            retry_policy("array.create"));
        });
      }
    }
    // Everything queued so far — the segment sequence and the array
    // creates — must be durable before any rank opens these files.
    io_barrier();
  }
  ctx.barrier();

  const ArrayStreamer streamer(&storage_, load_, target_chunk_bytes_,
                               jitter_, recorder_);
  const int writers = effective_io_tasks(ctx);
  CheckpointMeta meta;
  meta.app_name = app_name;
  meta.task_count = ctx.size();
  meta.sop = sop;
  meta.segment_bytes = total_bytes;
  int skipped = 0;
  std::uint64_t skipped_bytes = 0;
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    DistArray* const a = arrays[i];
    std::uint64_t bytes = a->global_byte_count();
    std::uint32_t crc = 0;
    ArrayMeta am;
    if (write_delta) {
      obs::ScopedSpan array_span(
          recorder_, "ckpt", "array.delta", ctx.rank(), ctx.sim_time(),
          {obs::Attr::str("array", a->name()),
           obs::Attr::num("blocks",
                          static_cast<std::int64_t>(dirty[i].size()))});
      const std::string file_name = delta_array_file_name(prefix, a->name());
      store::FileHandle file = storage_.open(file_name);
      const ArrayStreamer::DeltaWriteResult res = streamer.write_delta_blocks(
          ctx, *a, plans[i], dirty[i], file, writers, delta->codec);
      // Rank 0 publishes the framed index and then the header — the
      // header lands LAST, so a torn delta file has no valid header and
      // the reader rejects it outright.
      DeltaFileHeader h;
      h.block_bytes = delta->block_bytes;
      h.total_blocks = plans[i].chunk_count();
      h.record_count = res.records.size();
      h.payload_bytes = res.stored_bytes;
      h.raw_bytes = res.raw_bytes;
      h.index_offset = wire::kDeltaHeaderBytes + res.stored_bytes;
      support::ByteBuffer index_buf = encode_delta_index(res.records);
      const std::uint64_t tail_bytes =
          wire::kDeltaHeaderBytes + index_buf.size();
      bytes = h.index_offset + index_buf.size();
      if (ctx.rank() == 0) {
        submit_io(file_name, tail_bytes,
                  [this, file_name, index = std::move(index_buf),
                   header = encode_delta_header(h),
                   index_offset = h.index_offset] {
                    store::FileHandle f = support::retry_io(
                        [&] { return storage_.open(file_name); },
                        retry_policy("delta.open"));
                    support::retry_io(
                        [&] { f.write_at(index_offset, index.bytes()); },
                        retry_policy("delta.index"));
                    support::retry_io([&] { f.write_at(0, header.bytes()); },
                                      retry_policy("delta.header"));
                  });
      }
      if (storage_.charges_time()) {
        ctx.charge(storage_.single_write_seconds(tail_bytes, load_, nullptr));
      }
      am.raw_bytes = res.raw_bytes;
      am.stored_bytes = res.stored_bytes;
      am.dirty_blocks = res.records.size();
      am.total_blocks = plans[i].chunk_count();
      array_span.end(ctx.sim_time());
    } else if (skip[i]) {
      ++skipped;
      skipped_bytes += bytes;
      // The file is untouched; carry the CRC it was written with.
      crc = previous_crcs[i];
      if (recorder_ != nullptr) {
        recorder_->instant("ckpt", "array.skip", ctx.rank(), ctx.sim_time(),
                           {obs::Attr::str("array", a->name()),
                            obs::Attr::num("bytes",
                                           static_cast<std::int64_t>(bytes))});
      }
    } else {
      obs::ScopedSpan array_span(
          recorder_, "ckpt", "array", ctx.rank(), ctx.sim_time(),
          {obs::Attr::str("array", a->name()),
           obs::Attr::num("bytes", static_cast<std::int64_t>(bytes))});
      store::FileHandle file =
          storage_.open(array_file_name(prefix, a->name()));
      bytes = streamer.write_section(ctx, *a, a->global_box(), file, 0,
                                     writers, &crc);
      array_span.end(ctx.sim_time());
    }
    am.name = a->name();
    for (int k = 0; k < a->global_box().rank(); ++k) {
      am.lower.push_back(a->global_box().range(k).first());
      am.upper.push_back(a->global_box().range(k).last());
    }
    am.elem_size = a->elem_size();
    am.stream_bytes = bytes;
    am.stream_crc = crc;
    meta.arrays.push_back(std::move(am));
  }
  if (write_delta) {
    meta.kind = GenerationKind::kDelta;
    meta.base_prefix = chain->chain.back();
    meta.chain_depth = static_cast<std::int64_t>(chain->chain.size());
    meta.delta_block_bytes = delta->block_bytes;
  }

  // --- Publication: meta record, then the commit manifest as the LAST
  // write. Built on every task (from collective-identical values) so the
  // modeled commit overhead is identical everywhere; written by task 0.
  const support::ByteBuffer meta_buf = encode_checkpoint_meta(meta);
  CommitManifest manifest;
  manifest.spmd = false;
  manifest.base_prefix = meta.base_prefix;
  manifest.entries.push_back(CommitEntry{meta_file_name(prefix),
                                         meta_buf.size(),
                                         support::crc32c(meta_buf.bytes()),
                                         true});
  manifest.entries.push_back(
      CommitEntry{segment_file_name(prefix), total_bytes, 0, false});
  for (const auto& am : meta.arrays) {
    if (write_delta) {
      // Delta files carry their integrity inside (framed index + per-block
      // CRCs); the manifest records presence and size only.
      manifest.entries.push_back(CommitEntry{
          delta_array_file_name(prefix, am.name), am.stream_bytes, 0, false});
    } else {
      manifest.entries.push_back(CommitEntry{array_file_name(prefix, am.name),
                                             am.stream_bytes, am.stream_crc,
                                             true});
    }
  }
  const support::ByteBuffer manifest_buf = encode_commit_manifest(manifest);

  if (ctx.rank() == 0) {
    {
      obs::ScopedSpan meta_span(recorder_, "ckpt", "meta", 0,
                                ctx.sim_time());
      submit_io(meta_file_name(prefix), meta_buf.size(),
                [this, &prefix, &meta_buf] {
                  support::retry_io(
                      [&] {
                        storage_.create(meta_file_name(prefix))
                            .write_at(0, meta_buf.bytes());
                      },
                      retry_policy("meta.write"));
                });
      meta_span.end(ctx.sim_time());
    }
    if (incremental != nullptr) {
      incremental->prefix = prefix;
      for (std::size_t i = 0; i < arrays.size(); ++i) {
        incremental->fingerprints[arrays[i]->name()] = fingerprints[i];
      }
      incremental->arrays_skipped = skipped;
      incremental->bytes_skipped = skipped_bytes;
    }
    obs::ScopedSpan commit_span(recorder_, "ckpt", "commit", 0,
                                ctx.sim_time());
    // Explicit completion barrier: the commit manifest is the LAST write
    // of the checkpoint, so every queued item (meta included) must be
    // durable before it is even submitted.
    io_barrier();
    submit_io(commit_file_name(prefix), manifest_buf.size(),
              [this, &prefix, &manifest_buf] {
                support::retry_io(
                    [&] {
                      storage_.create(commit_file_name(prefix))
                          .write_at(0, manifest_buf.bytes());
                    },
                    retry_policy("commit.write"));
              });
    io_barrier();
    commit_span.end(ctx.sim_time());
    if (delta_mode) {
      // The generation is durable: advance the chain and retire the
      // mutations it captured. Task 0 only, between barriers — the other
      // tasks are already headed to the exit barrier and touch neither
      // the chain state nor the logs.
      if (write_delta) {
        chain->chain.push_back(prefix);
      } else {
        chain->chain.assign(1, prefix);
      }
      chain->last_kind = write_delta ? GenerationKind::kDelta
                                     : GenerationKind::kFull;
      chain->last_raw_bytes = 0;
      chain->last_stored_bytes = 0;
      chain->last_dirty_blocks = 0;
      chain->last_total_blocks = 0;
      for (const auto& am : meta.arrays) {
        chain->last_raw_bytes += write_delta ? am.raw_bytes : am.stream_bytes;
        chain->last_stored_bytes +=
            write_delta ? am.stored_bytes : am.stream_bytes;
        chain->last_dirty_blocks += am.dirty_blocks;
        chain->last_total_blocks += am.total_blocks;
      }
      for (DistArray* const a : arrays) {
        a->clear_mutation_logs();
      }
    }
  }
  // Modeled (not charged) publication cost: meta + manifest land in one
  // small write burst. Kept out of the phase clocks so the paper's
  // Table 5/6 numbers are unchanged; no jitter draw either (the shared
  // RNG stream must stay identical with commit enabled).
  if (storage_.charges_time()) {
    timing.commit_seconds = storage_.single_write_seconds(
        meta_buf.size() + manifest_buf.size(), load_, nullptr);
  }
  ctx.barrier();
  timing.arrays_seconds = ctx.sim_time() - t1;
  op_span.end(ctx.sim_time());
  return timing;
}

CheckpointMeta DrmsCheckpoint::restore_segment(
    rt::TaskContext& ctx, const std::string& prefix, ReplicatedStore& store,
    const AppSegmentModel& segment_model, RestartTiming& timing) {
  ctx.barrier();
  const double t0 = ctx.sim_time();
  obs::ScopedSpan op_span(recorder_, "restore", "segment", ctx.rank(), t0,
                          {obs::Attr::str("prefix", prefix)});

  // Application text load (the paper's residual "other" restart component).
  // This is machine cost, not storage cost, so it comes straight from the
  // backend's cost model.
  if (storage_.charges_time()) {
    ctx.charge(storage_.cost_model()->restart_init_seconds(
        segment_model.text_bytes, jitter_ ? &ctx.shared_rng() : nullptr));
  }
  ctx.barrier();
  const double t1 = ctx.sim_time();
  timing.init_seconds += t1 - t0;

  const CheckpointMeta meta = read_checkpoint_meta(storage_, prefix);

  // Every task loads the single shared segment file.
  const store::FileHandle seg = storage_.open(segment_file_name(prefix));
  support::ByteBuffer header =
      store::read_to_buffer(seg, 0, kSegHeaderBytes);
  const SegHeaderFields h = parse_segment_header(header);
  if (h.total_bytes != seg.size()) {
    throw support::CorruptCheckpoint("segment file: size mismatch");
  }
  support::ByteBuffer payload =
      store::read_to_buffer(seg, kSegHeaderBytes, h.replicated_size);
  store.deserialize(payload);

  if (storage_.charges_time()) {
    ctx.charge(storage_.shared_read_seconds(
        h.total_bytes, ctx.size(), load_,
        jitter_ ? &ctx.shared_rng() : nullptr));
  }
  ctx.barrier();
  timing.segment_seconds += ctx.sim_time() - t1;
  op_span.end(ctx.sim_time());
  return meta;
}

void DrmsCheckpoint::restore_array(rt::TaskContext& ctx,
                                   const std::string& prefix,
                                   const CheckpointMeta& meta,
                                   DistArray& array, RestartTiming& timing) {
  DRMS_EXPECTS_MSG(array.distributed(),
                   "specify a distribution before loading an array");
  const ArrayMeta& am = meta.array(array.name());
  DRMS_EXPECTS_MSG(am.box() == array.global_box() &&
                       am.elem_size == array.elem_size(),
                   "checkpointed array shape does not match declaration");
  ctx.barrier();
  const double t0 = ctx.sim_time();
  obs::ScopedSpan op_span(
      recorder_, "restore", "array", ctx.rank(), t0,
      {obs::Attr::str("array", array.name()),
       obs::Attr::num("bytes", static_cast<std::int64_t>(
                                   array.global_byte_count()))});

  const ArrayStreamer streamer(&storage_, load_, target_chunk_bytes_,
                               jitter_, recorder_);
  const int readers = effective_io_tasks(ctx);
  if (meta.kind == GenerationKind::kFull) {
    const store::FileHandle file =
        storage_.open(array_file_name(prefix, array.name()));
    std::uint32_t crc = 0;
    streamer.read_section(ctx, array, array.global_box(), file, 0, readers,
                          &crc);
    if (crc != am.stream_crc) {
      throw support::CorruptCheckpoint(
          "array file for '" + array.name() +
          "' is corrupt or torn (stream CRC mismatch)");
    }
  } else {
    // Chain replay: the full base streams in first, then every delta's
    // stored blocks scatter on top, oldest first — the newest write of
    // each block wins. Every task resolves the chain and reads the delta
    // indexes itself (deterministic reads of shared metadata), keeping
    // the collective apply aligned.
    const std::vector<std::string> links =
        resolve_checkpoint_chain(storage_, prefix);
    const CheckpointMeta base_meta =
        read_checkpoint_meta(storage_, links.front());
    const ArrayMeta& base_am = base_meta.array(array.name());
    DRMS_EXPECTS_MSG(base_am.box() == array.global_box() &&
                         base_am.elem_size == array.elem_size(),
                     "chain base array shape does not match declaration");
    {
      const store::FileHandle base_file =
          storage_.open(array_file_name(links.front(), array.name()));
      std::uint32_t crc = 0;
      streamer.read_section(ctx, array, array.global_box(), base_file, 0,
                            readers, &crc);
      if (crc != base_am.stream_crc) {
        throw support::CorruptCheckpoint(
            "chain base array file for '" + array.name() +
            "' is corrupt or torn (stream CRC mismatch)");
      }
    }
    for (std::size_t g = 1; g < links.size(); ++g) {
      const std::string file_name =
          delta_array_file_name(links[g], array.name());
      const store::FileHandle file = storage_.open(file_name);
      const DeltaFileHeader header = read_delta_header(file, file_name);
      const std::vector<DeltaBlockRecord> records =
          read_delta_index(file, header, file_name);
      const StreamPlan blocks = make_stream_plan(
          array.global_box(), array.elem_size(), 1, header.block_bytes);
      if (blocks.chunk_count() != header.total_blocks) {
        throw support::CorruptCheckpoint(
            file_name + ": block plan disagrees with the array's shape");
      }
      streamer.apply_delta_blocks(ctx, array, blocks, records, file,
                                  readers);
    }
  }
  ctx.barrier();
  timing.arrays_seconds += ctx.sim_time() - t0;
  op_span.end(ctx.sim_time());
}

std::uint64_t DrmsCheckpoint::restore_array_sections(
    rt::TaskContext& ctx, const std::string& prefix,
    const CheckpointMeta& meta, DistArray& array,
    std::span<const Slice> sections, RestartTiming& timing) {
  DRMS_EXPECTS_MSG(array.distributed(),
                   "specify a distribution before loading an array");
  const ArrayMeta& am = meta.array(array.name());
  DRMS_EXPECTS_MSG(am.box() == array.global_box() &&
                       am.elem_size == array.elem_size(),
                   "checkpointed array shape does not match declaration");
  ctx.barrier();
  const double t0 = ctx.sim_time();

  // Decompose every requested section into stream-contiguous runs, then
  // split each run at the chunk target so several readers can share even
  // a single big run (the classic outermost-axis split yields exactly
  // one).
  const std::size_t elem = array.elem_size();
  std::vector<StreamRun> chunks;
  for (const Slice& s : sections) {
    if (s.empty()) {
      continue;
    }
    DRMS_EXPECTS_MSG(array.global_box().covers(s),
                     "restore_array_sections: section outside the array box");
    const Index max_elems =
        std::max<Index>(1, static_cast<Index>(target_chunk_bytes_ / elem));
    for (const StreamRun& run :
         stream_runs(array.global_box(), s, elem)) {
      std::uint64_t off = run.byte_offset;
      for (Slice& part : partition_for_stream(run.slice, 1, max_elems)) {
        StreamRun c;
        c.bytes = static_cast<std::uint64_t>(part.element_count()) * elem;
        c.byte_offset = off;
        off += c.bytes;
        c.slice = std::move(part);
        chunks.push_back(std::move(c));
      }
    }
  }
  std::uint64_t total_bytes = 0;
  for (const StreamRun& c : chunks) {
    total_bytes += c.bytes;
  }

  obs::ScopedSpan op_span(
      recorder_, "restore", "array_sections", ctx.rank(), t0,
      {obs::Attr::str("array", array.name()),
       obs::Attr::num("runs", static_cast<std::int64_t>(chunks.size())),
       obs::Attr::num("bytes", static_cast<std::int64_t>(total_bytes))});
  if (chunks.empty()) {
    ctx.barrier();
    op_span.end(ctx.sim_time());
    return 0;
  }

  // Delta generations read their chain base's stream, then replay blocks.
  std::vector<std::string> links{prefix};
  if (meta.kind != GenerationKind::kFull) {
    links = resolve_checkpoint_chain(storage_, prefix);
    const CheckpointMeta base_meta =
        read_checkpoint_meta(storage_, links.front());
    const ArrayMeta& base_am = base_meta.array(array.name());
    DRMS_EXPECTS_MSG(base_am.box() == array.global_box() &&
                         base_am.elem_size == array.elem_size(),
                     "chain base array shape does not match declaration");
  }

  const std::string base_name = array_file_name(links.front(), array.name());
  const store::FileHandle base_file = storage_.open(base_name);
  const std::vector<Slice> dst_mapped = array.distribution().mapped_slices();
  const int readers = effective_io_tasks(ctx);
  const int me = ctx.rank();
  const int d = array.global_box().rank();

  // Round-robin the runs over `readers` ranks, one exchange round per
  // group: each active reader pulls its run's raw bytes — as a queued
  // RESTORE-class item when a session is attached — and one collective
  // scatters all of the round's runs into the new distribution's mapped
  // slices at once.
  for (std::size_t r0 = 0; r0 < chunks.size();
       r0 += static_cast<std::size_t>(readers)) {
    const int active = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(readers), chunks.size() - r0));
    std::vector<Slice> src(static_cast<std::size_t>(ctx.size()),
                           Slice::empty_of_rank(d));
    for (int q = 0; q < active; ++q) {
      const StreamRun& run = chunks[r0 + static_cast<std::size_t>(q)];
      src[static_cast<std::size_t>(q)] = run.slice;
    }
    LocalArray staging;
    if (me < active) {
      const StreamRun& run = chunks[r0 + static_cast<std::size_t>(me)];
      // A run is a consecutive span of the box's element stream, and the
      // stream visits the run's own index space in its column-major
      // order, so the raw file bytes land in the staging array as-is.
      staging = LocalArray(run.slice, elem);
      const auto read_run = [&] {
        support::retry_io(
            [&] { base_file.read_at_into(run.byte_offset, staging.bytes()); },
            retry_policy("partial-restore read"));
      };
      if (io_session_active()) {
        const double sim_seconds =
            storage_.charges_time()
                ? storage_.stream_read_round_seconds(run.bytes, 1, load_,
                                                     nullptr)
                : 0.0;
        io_->submit(*io_job_, svc::Priority::kRestore, base_name, run.bytes,
                    sim_seconds, read_run)
            .wait();
      } else {
        read_run();
      }
    }
    exchange_sections(ctx, src, me < active ? &staging : nullptr, dst_mapped,
                      &array.local(me), elem, recorder_);
  }
  // One scatter-gather read phase per array: the runs are disjoint spans
  // of one file pulled by `readers` parallel clients, so the modeled cost
  // is bytes-proportional with a single per-phase latency — NOT a
  // latency charge per run, which would make a small partial restore of
  // many short runs cost more than one big sequential stream and break
  // the failed-fraction scaling the partial path exists for.
  if (storage_.charges_time()) {
    std::uint64_t base_bytes = 0;
    for (const StreamRun& c : chunks) {
      base_bytes += c.bytes;
    }
    const int width = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(readers),
                              chunks.size()));
    ctx.charge(storage_.stream_read_round_seconds(
        base_bytes, std::max(width, 1), load_,
        jitter_ ? &ctx.shared_rng() : nullptr));
  }

  // Delta links, oldest first: replay only the chain blocks that touch
  // the requested sections. A record whose block also overlaps survivor
  // regions scatters values identical to the survivors' retained memory
  // (same SOP), so over-coverage is harmless; blocks never dirtied stay
  // at the base values just read, exactly as in a full replay. Per-block
  // CRCs still verify inside apply_delta_blocks.
  for (std::size_t g = 1; g < links.size(); ++g) {
    const std::string file_name =
        delta_array_file_name(links[g], array.name());
    const store::FileHandle file = storage_.open(file_name);
    const DeltaFileHeader header = read_delta_header(file, file_name);
    const std::vector<DeltaBlockRecord> records =
        read_delta_index(file, header, file_name);
    const StreamPlan blocks = make_stream_plan(array.global_box(), elem, 1,
                                               header.block_bytes);
    if (blocks.chunk_count() != header.total_blocks) {
      throw support::CorruptCheckpoint(
          file_name + ": block plan disagrees with the array's shape");
    }
    std::vector<DeltaBlockRecord> touching;
    for (const DeltaBlockRecord& rec : records) {
      const Slice& block =
          blocks.chunks[static_cast<std::size_t>(rec.block_index)];
      for (const Slice& s : sections) {
        if (!block.intersect(s).empty()) {
          touching.push_back(rec);
          total_bytes += rec.stored_bytes;
          break;
        }
      }
    }
    const ArrayStreamer streamer(&storage_, load_, target_chunk_bytes_,
                                 jitter_, recorder_);
    streamer.apply_delta_blocks(ctx, array, blocks, touching, file, readers);
  }

  ctx.barrier();
  timing.arrays_seconds += ctx.sim_time() - t0;
  op_span.end(ctx.sim_time());
  return total_bytes;
}

}  // namespace drms::core
