// Sequential (no-seek) channels for serial array-section streaming.
//
// §3.2: "serial streaming does not require seek capability for the output
// stream, as each streaming operation can simply append to the previous
// one. Because of this characteristic, serial streaming can be performed
// through a sequential channel, such as a UNIX socket or tape drive."
//
// SequentialSink/SequentialSource model such channels; InMemoryPipe is a
// socket-like bounded buffer connecting two (groups of) tasks, and
// FileSink/FileSource adapt a storage-backend file. ArrayStreamer's sequential
// entry points drive them with P = 1 I/O tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "store/storage_backend.hpp"

namespace drms::core {

/// Write side of a sequential channel. Only appends; no positioning.
class SequentialSink {
 public:
  virtual ~SequentialSink() = default;
  virtual void write(std::span<const std::byte> data) = 0;
  /// Signal end of stream (readers past this point see eof).
  virtual void close() {}
};

/// Read side of a sequential channel. Only consumes in order.
class SequentialSource {
 public:
  virtual ~SequentialSource() = default;
  /// Read exactly `out.size()` bytes; throws IoError on premature eof.
  virtual void read(std::span<std::byte> out) = 0;
};

/// Appends to a PIOFS file (e.g. checkpointing to a tape-like store).
class FileSink final : public SequentialSink {
 public:
  explicit FileSink(store::FileHandle file) : file_(std::move(file)) {}
  void write(std::span<const std::byte> data) override {
    file_.append(data);
  }

 private:
  store::FileHandle file_;
};

/// Sequentially consumes a PIOFS file from the beginning.
class FileSource final : public SequentialSource {
 public:
  explicit FileSource(store::FileHandle file) : file_(std::move(file)) {}
  void read(std::span<std::byte> out) override;

 private:
  store::FileHandle file_;
  std::uint64_t cursor_ = 0;
};

/// Appends into a caller-owned byte vector (e.g. assembling a steering
/// snapshot in memory).
class VectorSink final : public SequentialSink {
 public:
  explicit VectorSink(std::vector<std::byte>& out) : out_(out) {}
  void write(std::span<const std::byte> data) override {
    out_.insert(out_.end(), data.begin(), data.end());
  }

 private:
  std::vector<std::byte>& out_;
};

/// Sequentially consumes a caller-owned byte vector.
class VectorSource final : public SequentialSource {
 public:
  explicit VectorSource(std::span<const std::byte> data) : data_(data) {}
  void read(std::span<std::byte> out) override;

 private:
  std::span<const std::byte> data_;
  std::size_t cursor_ = 0;
};

/// Socket-like bounded in-memory pipe: one writer side, one reader side,
/// possibly in different task groups (inter-application communication
/// and computational steering use this shape).
class InMemoryPipe {
 public:
  explicit InMemoryPipe(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  /// Blocks while the pipe is full.
  void write(std::span<const std::byte> data);
  /// Blocks until `out.size()` bytes are available or the writer closed
  /// (premature close -> IoError).
  void read(std::span<std::byte> out);
  void close();

  [[nodiscard]] SequentialSink& sink() noexcept { return sink_; }
  [[nodiscard]] SequentialSource& source() noexcept { return source_; }

  /// Total bytes that have passed through (diagnostics).
  [[nodiscard]] std::uint64_t bytes_transferred() const;

 private:
  class PipeSink final : public SequentialSink {
   public:
    explicit PipeSink(InMemoryPipe& pipe) : pipe_(pipe) {}
    void write(std::span<const std::byte> data) override {
      pipe_.write(data);
    }
    void close() override { pipe_.close(); }

   private:
    InMemoryPipe& pipe_;
  };
  class PipeSource final : public SequentialSource {
   public:
    explicit PipeSource(InMemoryPipe& pipe) : pipe_(pipe) {}
    void read(std::span<std::byte> out) override { pipe_.read(out); }

   private:
    InMemoryPipe& pipe_;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::byte> buffer_;
  bool closed_ = false;
  std::uint64_t transferred_ = 0;
  PipeSink sink_{*this};
  PipeSource source_{*this};
};

}  // namespace drms::core
