#include "core/dist_array.hpp"

#include "support/error.hpp"

namespace drms::core {

DistArray::DistArray(std::string name, Slice global_box,
                     std::size_t elem_size, int task_count)
    : name_(std::move(name)),
      box_(std::move(global_box)),
      elem_size_(elem_size) {
  DRMS_EXPECTS(!name_.empty());
  DRMS_EXPECTS(box_.rank() >= 1);
  DRMS_EXPECTS(elem_size_ > 0);
  DRMS_EXPECTS(task_count >= 1);
  locals_.resize(static_cast<std::size_t>(task_count));
}

void DistArray::install_distribution(const DistSpec& spec) {
  DRMS_EXPECTS_MSG(spec.task_count() == task_count(),
                   "distribution task count must match the array's group");
  DRMS_EXPECTS_MSG(spec.global_box() == box_,
                   "distribution box must match the array's index space");
  spec_ = spec;
  for (int t = 0; t < task_count(); ++t) {
    const Slice& mapped = spec.mapped(t);
    if (mapped.empty()) {
      locals_[static_cast<std::size_t>(t)] = LocalArray();
    } else {
      locals_[static_cast<std::size_t>(t)] = LocalArray(mapped, elem_size_);
    }
  }
  if (tracking_) {
    attach_logs();
  }
}

void DistArray::attach_logs() {
  logs_.assign(static_cast<std::size_t>(task_count()), MutationLog{});
  for (int t = 0; t < task_count(); ++t) {
    auto& log = logs_[static_cast<std::size_t>(t)];
    // A fresh attachment knows nothing about prior content: start dirty
    // so the next generation captures everything.
    log.mark_all();
    locals_[static_cast<std::size_t>(t)].attach_mutation_log(&log);
  }
}

void DistArray::enable_dirty_tracking() {
  if (tracking_) {
    return;
  }
  tracking_ = true;
  attach_logs();
}

const MutationLog& DistArray::mutation_log(int task) const {
  DRMS_EXPECTS(tracking_);
  DRMS_EXPECTS(task >= 0 && task < task_count());
  return logs_[static_cast<std::size_t>(task)];
}

void DistArray::clear_mutation_logs() noexcept {
  for (auto& log : logs_) {
    log.clear();
  }
}

void DistArray::mark_all_dirty() noexcept {
  for (auto& log : logs_) {
    log.mark_all();
  }
}

bool DistArray::distributed() const noexcept { return spec_.has_value(); }

const DistSpec& DistArray::distribution() const {
  DRMS_EXPECTS_MSG(spec_.has_value(),
                   "array has no distribution installed yet");
  return *spec_;
}

LocalArray& DistArray::local(int task) {
  DRMS_EXPECTS(task >= 0 && task < task_count());
  return locals_[static_cast<std::size_t>(task)];
}

const LocalArray& DistArray::local(int task) const {
  DRMS_EXPECTS(task >= 0 && task < task_count());
  return locals_[static_cast<std::size_t>(task)];
}

double DistArray::get_f64(std::span<const Index> point) const {
  const DistSpec& spec = distribution();
  for (int t = 0; t < task_count(); ++t) {
    if (spec.assigned(t).contains(point)) {
      return locals_[static_cast<std::size_t>(t)].get_f64(point);
    }
  }
  throw support::Error("element " + std::string("not assigned to any task") +
                       " in array '" + name_ + "'");
}

}  // namespace drms::core
