#include "core/redistribute.hpp"

#include "core/exchange.hpp"
#include "support/error.hpp"

namespace drms::core {

void redistribute(rt::TaskContext& ctx, DistArray& array,
                  const DistSpec& new_spec) {
  DRMS_EXPECTS_MSG(array.task_count() == ctx.size(),
                   "array group size must match the task group");
  DRMS_EXPECTS_MSG(new_spec.task_count() == ctx.size(),
                   "new distribution must target this task group");
  const DistSpec old_spec = array.distribution();  // copy: we swap below

  // Extract every outgoing piece from the old locals *before* any task
  // reallocates (the exchange is pairwise-complete, so once it returns,
  // all data this task must contribute has left its local array).
  const std::vector<Slice> src_assigned = old_spec.assigned_slices();
  const std::vector<Slice> dst_mapped = new_spec.mapped_slices();

  // Each task needs both its old local (source) and its new local
  // (destination) alive at once; stage the new local separately.
  const Slice& my_new_mapped = dst_mapped[static_cast<std::size_t>(
      ctx.rank())];
  LocalArray staging = my_new_mapped.empty()
                           ? LocalArray()
                           : LocalArray(my_new_mapped, array.elem_size());

  exchange_sections(ctx, src_assigned, &array.local(ctx.rank()), dst_mapped,
                    staging.element_count() > 0 ? &staging : nullptr,
                    array.elem_size());

  // Everyone has staged its new section; install the new distribution and
  // move the staged data in. Rank 0 swaps the shared metadata between two
  // barriers so no task observes a half-installed distribution.
  ctx.barrier();
  if (ctx.rank() == 0) {
    array.install_distribution(new_spec);
  }
  ctx.barrier();
  if (staging.element_count() > 0) {
    array.local(ctx.rank()) = std::move(staging);
  }
  ctx.barrier();
}

void refresh_shadows(rt::TaskContext& ctx, DistArray& array) {
  DRMS_EXPECTS_MSG(array.task_count() == ctx.size(),
                   "array group size must match the task group");
  const std::vector<Slice> src_assigned =
      array.distribution().assigned_slices();
  const std::vector<Slice> dst_mapped =
      array.distribution().mapped_slices();
  LocalArray& mine = array.local(ctx.rank());
  exchange_sections(ctx, src_assigned, &mine, dst_mapped,
                    mine.element_count() > 0 ? &mine : nullptr,
                    array.elem_size());
  ctx.barrier();
}

void array_assign(rt::TaskContext& ctx, const DistArray& source,
                  DistArray& dest) {
  DRMS_EXPECTS_MSG(source.global_box() == dest.global_box(),
                   "array assignment requires identical shapes");
  DRMS_EXPECTS_MSG(source.elem_size() == dest.elem_size(),
                   "array assignment requires identical element sizes");
  DRMS_EXPECTS_MSG(source.task_count() == ctx.size() &&
                       dest.task_count() == ctx.size(),
                   "both arrays must belong to this task group");

  const std::vector<Slice> src_assigned =
      source.distribution().assigned_slices();
  const std::vector<Slice> dst_mapped = dest.distribution().mapped_slices();

  LocalArray& my_dst = dest.local(ctx.rank());
  exchange_sections(ctx, src_assigned, &source.local(ctx.rank()), dst_mapped,
                    my_dst.element_count() > 0 ? &my_dst : nullptr,
                    dest.elem_size());
  ctx.barrier();
}

}  // namespace drms::core
