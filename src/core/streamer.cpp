#include "core/streamer.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <future>
#include <utility>

#include "core/exchange.hpp"
#include "rt/collectives.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"
#include "support/retry.hpp"

namespace drms::core {

namespace {

/// Combine per-chunk CRCs (held by whichever task streamed each chunk)
/// into the CRC-32C of the WHOLE byte stream via crc32c_combine — the
/// result is independent of the chunking, so a checkpoint written with
/// t1 I/O tasks verifies against a restore read with t2. Identical on
/// every task.
std::uint32_t combine_chunk_crcs(
    rt::TaskContext& ctx,
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& mine,
    const StreamPlan& plan, std::size_t elem_size) {
  const std::size_t total_chunks = plan.chunk_count();
  support::ByteBuffer contribution;
  contribution.reserve(8 + mine.size() * 12);  // u64 count + (u64, u32) each
  contribution.put_u64(mine.size());
  for (const auto& [index, crc] : mine) {
    contribution.put_u64(index);
    contribution.put_u32(crc);
  }
  const auto all = rt::all_gather(ctx, std::move(contribution));

  std::vector<std::uint32_t> by_chunk(total_chunks, 0);
  std::vector<bool> seen(total_chunks, false);
  for (auto buf : all) {
    const std::uint64_t n = buf.get_u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t index = buf.get_u64();
      const std::uint32_t crc = buf.get_u32();
      DRMS_ENSURES(index < total_chunks && !seen[index]);
      by_chunk[index] = crc;
      seen[index] = true;
    }
  }
  DRMS_ENSURES(std::all_of(seen.begin(), seen.end(),
                           [](bool b) { return b; }));
  std::uint32_t combined = 0;  // CRC-32C of the empty stream
  for (std::size_t c = 0; c < total_chunks; ++c) {
    const std::uint64_t len =
        static_cast<std::uint64_t>(plan.chunks[c].element_count()) *
        elem_size;
    combined = support::crc32c_combine(combined, by_chunk[c], len);
  }
  return combined;
}

}  // namespace

StreamPlan make_stream_plan(const Slice& section, std::size_t elem_size,
                            int io_tasks,
                            std::uint64_t target_chunk_bytes) {
  DRMS_EXPECTS(io_tasks >= 1);
  DRMS_EXPECTS(elem_size > 0);
  DRMS_EXPECTS(target_chunk_bytes >= elem_size);

  StreamPlan plan;
  if (section.empty()) {
    return plan;
  }
  const Index max_elements =
      std::max<Index>(1, static_cast<Index>(target_chunk_bytes / elem_size));
  plan.chunks = partition_for_stream(section, io_tasks, max_elements);
  plan.offsets.reserve(plan.chunks.size());
  std::uint64_t offset = 0;
  for (const auto& chunk : plan.chunks) {
    plan.offsets.push_back(offset);
    offset += static_cast<std::uint64_t>(chunk.element_count()) * elem_size;
  }
  plan.total_bytes = offset;
  return plan;
}

std::uint64_t ArrayStreamer::write_section(rt::TaskContext& ctx,
                                           const DistArray& array,
                                           const Slice& x,
                                           store::FileHandle file,
                                           std::uint64_t file_offset,
                                           int io_tasks,
                                           std::uint32_t* stream_crc) const {
  DRMS_EXPECTS_MSG(io_tasks >= 1 && io_tasks <= ctx.size(),
                   "io_tasks must be within the task group size");
  DRMS_EXPECTS_MSG(array.global_box().covers(x),
                   "section must lie within the array index space");
  const std::size_t elem = array.elem_size();
  const StreamPlan plan = make_stream_plan(x, elem, io_tasks,
                                           target_chunk_bytes_);
  const std::vector<Slice> src_assigned =
      array.distribution().assigned_slices();
  const int p = ctx.size();
  const int me = ctx.rank();

  const std::size_t m = plan.chunk_count();
  const std::size_t rounds = (m + static_cast<std::size_t>(io_tasks) - 1) /
                             static_cast<std::size_t>(io_tasks);
  const Slice empty = Slice::empty_of_rank(x.rank());

  // One jitter draw per section: round-level noise would average out over
  // the dozens of rounds and understate the paper's run-to-run spread.
  const double jitter_factor =
      (jitter_ && storage_ != nullptr && storage_->charges_time())
          ? ctx.shared_rng().jitter(storage_->cost_model()->jitter_sigma)
          : 1.0;

  std::vector<std::pair<std::uint64_t, std::uint32_t>> my_chunk_crcs;
  const bool want_crc = stream_crc != nullptr;

  // Round pipeline: while round r's chunk is checksummed and written by a
  // background worker, the main thread already runs round r+1's
  // exchange_sections. Two staging buffers alternate; a buffer is reused
  // only after its in-flight write has been joined. Declaration order
  // matters: `staging` must outlive `inflight` (futures from std::async
  // block in their destructor), so staging is declared first.
  std::array<LocalArray, 2> staging;
  std::array<std::uint64_t, 2> inflight_chunk{};
  std::array<std::future<std::uint32_t>, 2> inflight;
  // Trace span covering a chunk's in-flight window. Opened at async
  // launch and closed at join — both on the main task thread, so the
  // recorded overlap (round r+1's exchange beginning before round r's
  // in-flight span ends) is program-order and therefore deterministic.
  std::array<std::size_t, 2> inflight_span{obs::kNoSpan, obs::kNoSpan};

  // Joining rethrows any worker exception (torn write, exhausted retries)
  // so errors propagate out of write_section exactly as before, at most
  // one round later.
  const auto join = [&](std::size_t b) {
    if (!inflight[b].valid()) {
      return;
    }
    const std::uint32_t crc = inflight[b].get();
    if (want_crc) {
      my_chunk_crcs.emplace_back(inflight_chunk[b], crc);
    }
    if (recorder_ != nullptr && inflight_span[b] != obs::kNoSpan) {
      recorder_->end_span(inflight_span[b], ctx.sim_time());
      inflight_span[b] = obs::kNoSpan;
    }
  };

  for (std::size_t r = 0; r < rounds; ++r) {
    // Canonical destination of this round: task q holds chunk r*P + q.
    std::vector<Slice> dst_mapped(static_cast<std::size_t>(p), empty);
    std::uint64_t round_bytes = 0;
    int writers = 0;
    for (int q = 0; q < io_tasks; ++q) {
      const std::size_t c = r * static_cast<std::size_t>(io_tasks) +
                            static_cast<std::size_t>(q);
      if (c >= m) {
        break;
      }
      dst_mapped[static_cast<std::size_t>(q)] = plan.chunks[c];
      round_bytes += static_cast<std::uint64_t>(
                         plan.chunks[c].element_count()) *
                     elem;
      ++writers;
    }

    const std::size_t b = r % 2;
    join(b);  // buffer b carried round r-2; it must land before reuse
    const Slice& my_chunk = dst_mapped[static_cast<std::size_t>(me)];
    staging[b] = my_chunk.empty() ? LocalArray()
                                  : LocalArray(my_chunk, elem);
    {
      obs::ScopedSpan exchange_span(
          recorder_, "stream", "exchange", me, ctx.sim_time(),
          {obs::Attr::num("round", static_cast<std::int64_t>(r)),
           obs::Attr::str("dir", "write"),
           obs::Attr::num("bytes",
                          static_cast<std::int64_t>(round_bytes))});
      exchange_sections(ctx, src_assigned, &array.local(me), dst_mapped,
                        staging[b].element_count() > 0 ? &staging[b]
                                                       : nullptr,
                        elem, recorder_);
      exchange_span.end(ctx.sim_time());
    }

    if (staging[b].element_count() > 0) {
      const std::size_t c = r * static_cast<std::size_t>(io_tasks) +
                            static_cast<std::size_t>(me);
      // The staging local is column-major over the chunk slice — already
      // in stream order. The worker folds the CRC into the write pass:
      // it checksums the buffer while it is cache-hot, immediately before
      // the single write_at (one write op per chunk, as before).
      inflight_chunk[b] = c;
      obs::Recorder* const rec = recorder_;
      if (rec != nullptr) {
        inflight_span[b] = rec->begin_span(
            "stream", "write_inflight", me, ctx.sim_time(),
            {obs::Attr::num("round", static_cast<std::int64_t>(r)),
             obs::Attr::num("chunk", static_cast<std::int64_t>(c)),
             obs::Attr::num("bytes", static_cast<std::int64_t>(
                                         staging[b].bytes().size()))});
      }
      inflight[b] = std::async(
          std::launch::async,
          [file, file_offset, c, &plan, &staging, b, want_crc, rec,
           me]() mutable -> std::uint32_t {
            std::uint32_t crc = 0;
            {
              obs::ScopedSpan crc_span(rec, "stream.worker", "crc", me,
                                       -1.0);
              crc = want_crc ? support::crc32c(staging[b].bytes()) : 0;
            }
            obs::ScopedSpan write_span(rec, "stream.worker", "write", me,
                                       -1.0);
            support::RetryPolicy policy;
            policy.observer = rec;
            policy.what = "stream.write";
            support::retry_io(
                [&] {
                  file.write_at(file_offset + plan.offsets[c],
                                staging[b].bytes());
                },
                policy);
            return crc;
          });
    }

    if (storage_ != nullptr && storage_->charges_time()) {
      ctx.charge(jitter_factor * storage_->stream_write_round_seconds(
                                     round_bytes, writers, load_, nullptr));
    }
    ctx.barrier();
  }
  // Join in round order so my_chunk_crcs stays in chunk-index order, then
  // barrier: after it, every task's data writes have landed, so a caller
  // (e.g. the commit protocol) may safely write its "data is complete"
  // record. The barrier charges no simulated time.
  join(rounds % 2);
  join((rounds % 2) ^ 1);
  ctx.barrier();
  if (stream_crc != nullptr) {
    *stream_crc = combine_chunk_crcs(ctx, my_chunk_crcs, plan, elem);
  }
  return plan.total_bytes;
}

std::uint64_t ArrayStreamer::read_section(rt::TaskContext& ctx,
                                          DistArray& array, const Slice& x,
                                          store::FileHandle file,
                                          std::uint64_t file_offset,
                                          int io_tasks,
                                          std::uint32_t* stream_crc) const {
  DRMS_EXPECTS_MSG(io_tasks >= 1 && io_tasks <= ctx.size(),
                   "io_tasks must be within the task group size");
  DRMS_EXPECTS_MSG(array.global_box().covers(x),
                   "section must lie within the array index space");
  const std::size_t elem = array.elem_size();
  const StreamPlan plan = make_stream_plan(x, elem, io_tasks,
                                           target_chunk_bytes_);
  const std::vector<Slice> dst_mapped =
      array.distribution().mapped_slices();
  const int p = ctx.size();
  const int me = ctx.rank();

  const std::size_t m = plan.chunk_count();
  const std::size_t rounds = (m + static_cast<std::size_t>(io_tasks) - 1) /
                             static_cast<std::size_t>(io_tasks);
  const Slice empty = Slice::empty_of_rank(x.rank());

  LocalArray& my_local = array.local(me);

  const double jitter_factor =
      (jitter_ && storage_ != nullptr && storage_->charges_time())
          ? ctx.shared_rng().jitter(storage_->cost_model()->jitter_sigma)
          : 1.0;

  std::vector<std::pair<std::uint64_t, std::uint32_t>> my_chunk_crcs;
  const bool want_crc = stream_crc != nullptr;

  // Round pipeline, read direction: while round r's bytes scatter through
  // exchange_sections, a background worker already reads (and checksums)
  // round r+1's chunk straight into the other staging buffer. `staging`
  // must outlive `inflight` (async futures block in their destructor on
  // early exit), so it is declared first.
  std::array<LocalArray, 2> staging;
  std::array<std::future<std::uint32_t>, 2> inflight;
  // In-flight read window, opened at launch / closed at the get() —
  // both on the main task thread (see write_section).
  std::array<std::size_t, 2> inflight_span{obs::kNoSpan, obs::kNoSpan};

  // Kick off the read of round r's chunk into staging[r % 2]. The worker
  // lands the bytes directly in the staging buffer (read_at_into, no
  // intermediate vector) and checksums them while cache-hot.
  const auto start_read = [&](std::size_t r) {
    const std::size_t b = r % 2;
    const std::size_t c = r * static_cast<std::size_t>(io_tasks) +
                          static_cast<std::size_t>(me);
    if (me >= io_tasks || c >= m) {
      staging[b] = LocalArray();
      return;
    }
    staging[b] = LocalArray(plan.chunks[c], elem);
    obs::Recorder* const rec = recorder_;
    if (rec != nullptr) {
      inflight_span[b] = rec->begin_span(
          "stream", "read_inflight", me, ctx.sim_time(),
          {obs::Attr::num("round", static_cast<std::int64_t>(r)),
           obs::Attr::num("chunk", static_cast<std::int64_t>(c)),
           obs::Attr::num("bytes", static_cast<std::int64_t>(
                                       staging[b].bytes().size()))});
    }
    inflight[b] = std::async(
        std::launch::async,
        [&file, file_offset, c, &plan, &staging, b, want_crc, rec,
         me]() -> std::uint32_t {
          {
            obs::ScopedSpan read_span(rec, "stream.worker", "read", me,
                                      -1.0);
            file.read_at_into(file_offset + plan.offsets[c],
                              staging[b].bytes());
          }
          obs::ScopedSpan crc_span(rec, "stream.worker", "crc", me, -1.0);
          return want_crc ? support::crc32c(staging[b].bytes()) : 0;
        });
  };

  start_read(0);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Slice> src_chunks(static_cast<std::size_t>(p), empty);
    std::uint64_t round_bytes = 0;
    int readers = 0;
    for (int q = 0; q < io_tasks; ++q) {
      const std::size_t c = r * static_cast<std::size_t>(io_tasks) +
                            static_cast<std::size_t>(q);
      if (c >= m) {
        break;
      }
      src_chunks[static_cast<std::size_t>(q)] = plan.chunks[c];
      round_bytes += static_cast<std::uint64_t>(
                         plan.chunks[c].element_count()) *
                     elem;
      ++readers;
    }

    const std::size_t b = r % 2;
    if (inflight[b].valid()) {
      const std::uint32_t crc = inflight[b].get();  // rethrows read errors
      if (want_crc) {
        my_chunk_crcs.emplace_back(
            r * static_cast<std::size_t>(io_tasks) +
                static_cast<std::size_t>(me),
            crc);
      }
      if (recorder_ != nullptr && inflight_span[b] != obs::kNoSpan) {
        recorder_->end_span(inflight_span[b], ctx.sim_time());
        inflight_span[b] = obs::kNoSpan;
      }
    }
    if (r + 1 < rounds) {
      start_read(r + 1);  // overlaps this round's exchange below
    }

    obs::ScopedSpan exchange_span(
        recorder_, "stream", "exchange", me, ctx.sim_time(),
        {obs::Attr::num("round", static_cast<std::int64_t>(r)),
         obs::Attr::str("dir", "read"),
         obs::Attr::num("bytes", static_cast<std::int64_t>(round_bytes))});
    exchange_sections(ctx, src_chunks,
                      staging[b].element_count() > 0 ? &staging[b] : nullptr,
                      dst_mapped,
                      my_local.element_count() > 0 ? &my_local : nullptr,
                      elem, recorder_);
    exchange_span.end(ctx.sim_time());

    if (storage_ != nullptr && storage_->charges_time()) {
      ctx.charge(jitter_factor * storage_->stream_read_round_seconds(
                                     round_bytes, readers, load_, nullptr));
    }
    ctx.barrier();
  }
  if (stream_crc != nullptr) {
    *stream_crc = combine_chunk_crcs(ctx, my_chunk_crcs, plan, elem);
  }
  return plan.total_bytes;
}

ArrayStreamer::DeltaWriteResult ArrayStreamer::write_delta_blocks(
    rt::TaskContext& ctx, const DistArray& array, const StreamPlan& blocks,
    const std::vector<std::uint64_t>& dirty, store::FileHandle file,
    int io_tasks, support::BlockCodec codec) const {
  DRMS_EXPECTS_MSG(io_tasks >= 1 && io_tasks <= ctx.size(),
                   "io_tasks must be within the task group size");
  const std::size_t elem = array.elem_size();
  const std::vector<Slice> src_assigned =
      array.distribution().assigned_slices();
  const int p = ctx.size();
  const int me = ctx.rank();

  const std::size_t m = dirty.size();
  const std::size_t rounds = (m + static_cast<std::size_t>(io_tasks) - 1) /
                             static_cast<std::size_t>(io_tasks);
  const Slice empty = Slice::empty_of_rank(array.global_box().rank());

  const double jitter_factor =
      (jitter_ && storage_ != nullptr && storage_->charges_time())
          ? ctx.shared_rng().jitter(storage_->cost_model()->jitter_sigma)
          : 1.0;

  DeltaWriteResult result;

  /// Worker output of the codec stage (the encoded bytes land in the
  /// buffer slot's ByteBuffer).
  struct Compressed {
    std::uint32_t raw_crc = 0;
    std::uint32_t stored_crc = 0;
    support::BlockCodec used = support::BlockCodec::kRaw;
  };

  // Two-slot pipeline over (staging, encoded) pairs. A slot's write from
  // round r-2 must land before round r reuses it; its compression from
  // round r-1 is joined when that round's stored sizes are agreed.
  // Declaration order: buffers before futures (future destructors block).
  std::array<LocalArray, 2> staging;
  std::array<support::ByteBuffer, 2> encoded;
  std::array<std::future<Compressed>, 2> compressing;
  std::array<std::future<void>, 2> writing;
  std::uint64_t payload_cursor = 0;

  // Close out the round whose compression was launched in iteration r:
  // join the codec worker, agree on this round's stored sizes (an
  // all_gather in rank order == block order, since compressed sizes are
  // data-dependent and offsets cannot be precomputed), record the index
  // entries, and launch the pipelined payload write.
  const auto finalize_round = [&](std::size_t r) {
    const std::size_t b = r % 2;
    Compressed mine{};
    const bool have = compressing[b].valid();
    if (have) {
      mine = compressing[b].get();  // rethrows codec-worker errors
    }
    support::ByteBuffer contribution;
    contribution.put_bool(have);
    if (have) {
      contribution.put_u64(staging[b].byte_size());
      contribution.put_u64(encoded[b].size());
      contribution.put_u32(static_cast<std::uint32_t>(mine.used));
      contribution.put_u32(mine.raw_crc);
      contribution.put_u32(mine.stored_crc);
    }
    auto all = rt::all_gather(ctx, std::move(contribution));
    std::uint64_t my_offset = 0;
    std::uint64_t round_stored = 0;
    int writers = 0;
    for (int q = 0; q < p; ++q) {
      auto& buf = all[static_cast<std::size_t>(q)];
      if (!buf.get_bool()) {
        continue;
      }
      DeltaBlockRecord rec;
      rec.block_index = dirty[r * static_cast<std::size_t>(io_tasks) +
                              static_cast<std::size_t>(q)];
      rec.raw_bytes = buf.get_u64();
      rec.stored_bytes = buf.get_u64();
      rec.codec = static_cast<support::BlockCodec>(buf.get_u32());
      rec.raw_crc = buf.get_u32();
      rec.stored_crc = buf.get_u32();
      rec.payload_offset = payload_cursor;
      if (q == me) {
        my_offset = payload_cursor;
      }
      payload_cursor += rec.stored_bytes;
      round_stored += rec.stored_bytes;
      ++writers;
      result.raw_bytes += rec.raw_bytes;
      result.stored_bytes += rec.stored_bytes;
      result.records.push_back(rec);
    }
    if (have) {
      obs::Recorder* const rec = recorder_;
      writing[b] = std::async(
          std::launch::async,
          [file, off = wire::kDeltaHeaderBytes + my_offset, &encoded, b,
           rec, me]() mutable {
            obs::ScopedSpan write_span(rec, "delta.worker", "write", me, -1.0);
            support::RetryPolicy policy;
            policy.observer = rec;
            policy.what = "delta.write";
            support::retry_io([&] { file.write_at(off, encoded[b].bytes()); },
                              policy);
          });
    }
    if (storage_ != nullptr && storage_->charges_time()) {
      ctx.charge(jitter_factor * storage_->stream_write_round_seconds(
                                     round_stored, std::max(writers, 1),
                                     load_, nullptr));
    }
    ctx.barrier();
  };

  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t b = r % 2;
    if (writing[b].valid()) {
      writing[b].get();  // slot b carried round r-2; land before reuse
    }
    std::vector<Slice> dst_mapped(static_cast<std::size_t>(p), empty);
    for (int q = 0; q < io_tasks; ++q) {
      const std::size_t i = r * static_cast<std::size_t>(io_tasks) +
                            static_cast<std::size_t>(q);
      if (i >= m) {
        break;
      }
      dst_mapped[static_cast<std::size_t>(q)] =
          blocks.chunks[static_cast<std::size_t>(dirty[i])];
    }
    const Slice& my_block = dst_mapped[static_cast<std::size_t>(me)];
    staging[b] = my_block.empty() ? LocalArray() : LocalArray(my_block, elem);
    {
      obs::ScopedSpan exchange_span(
          recorder_, "delta", "exchange", me, ctx.sim_time(),
          {obs::Attr::num("round", static_cast<std::int64_t>(r)),
           obs::Attr::str("dir", "write")});
      exchange_sections(ctx, src_assigned, &array.local(me), dst_mapped,
                        staging[b].element_count() > 0 ? &staging[b]
                                                       : nullptr,
                        elem, recorder_);
      exchange_span.end(ctx.sim_time());
    }
    if (staging[b].element_count() > 0) {
      encoded[b].clear();
      obs::Recorder* const rec = recorder_;
      compressing[b] = std::async(
          std::launch::async,
          [&staging, &encoded, b, codec, rec, me]() -> Compressed {
            Compressed out;
            {
              obs::ScopedSpan crc_span(rec, "delta.worker", "crc", me, -1.0);
              out.raw_crc = support::crc32c(
                  std::as_const(staging[b]).bytes());
            }
            obs::ScopedSpan encode_span(rec, "delta.worker", "encode", me,
                                        -1.0);
            out.used = support::block_encode(
                codec, std::as_const(staging[b]).bytes(), encoded[b]);
            out.stored_crc = support::crc32c(encoded[b].bytes());
            return out;
          });
    }
    if (r >= 1) {
      finalize_round(r - 1);  // overlaps round r's codec worker
    }
  }
  if (rounds >= 1) {
    finalize_round(rounds - 1);
  }
  if (writing[0].valid()) {
    writing[0].get();
  }
  if (writing[1].valid()) {
    writing[1].get();
  }
  // After this barrier every task's payload writes have landed; the
  // engine may write the index and (last) the header.
  ctx.barrier();
  return result;
}

void ArrayStreamer::apply_delta_blocks(
    rt::TaskContext& ctx, DistArray& array, const StreamPlan& blocks,
    const std::vector<DeltaBlockRecord>& records, store::FileHandle file,
    int io_tasks) const {
  DRMS_EXPECTS_MSG(io_tasks >= 1 && io_tasks <= ctx.size(),
                   "io_tasks must be within the task group size");
  const std::size_t elem = array.elem_size();
  for (const auto& rec : records) {
    if (rec.block_index >= blocks.chunks.size() ||
        rec.raw_bytes !=
            static_cast<std::uint64_t>(
                blocks.chunks[static_cast<std::size_t>(rec.block_index)]
                    .element_count()) *
                elem) {
      throw support::CorruptCheckpoint(
          "delta record does not match the array's block plan");
    }
  }
  const std::vector<Slice> dst_mapped =
      array.distribution().mapped_slices();
  const int p = ctx.size();
  const int me = ctx.rank();
  const std::size_t m = records.size();
  const std::size_t rounds = (m + static_cast<std::size_t>(io_tasks) - 1) /
                             static_cast<std::size_t>(io_tasks);
  const Slice empty = Slice::empty_of_rank(array.global_box().rank());
  LocalArray& my_local = array.local(me);

  const double jitter_factor =
      (jitter_ && storage_ != nullptr && storage_->charges_time())
          ? ctx.shared_rng().jitter(storage_->cost_model()->jitter_sigma)
          : 1.0;

  std::array<LocalArray, 2> staging;
  std::array<std::future<void>, 2> inflight;

  // Read + verify + decode round r's block on a background worker, landing
  // the raw bytes in the staging buffer — the decode overlaps the
  // previous round's scatter exchange, mirroring read_section.
  const auto start_read = [&](std::size_t r) {
    const std::size_t b = r % 2;
    const std::size_t i = r * static_cast<std::size_t>(io_tasks) +
                          static_cast<std::size_t>(me);
    if (me >= io_tasks || i >= m) {
      staging[b] = LocalArray();
      return;
    }
    const DeltaBlockRecord& rec = records[i];
    staging[b] = LocalArray(
        blocks.chunks[static_cast<std::size_t>(rec.block_index)], elem);
    obs::Recorder* const obsrec = recorder_;
    inflight[b] = std::async(
        std::launch::async, [&file, rec, &staging, b, obsrec, me]() {
          support::ByteBuffer stored;
          {
            obs::ScopedSpan read_span(obsrec, "delta.worker", "read", me,
                                      -1.0);
            file.read_at_into(
                wire::kDeltaHeaderBytes + rec.payload_offset,
                stored.append_uninitialized(
                    static_cast<std::size_t>(rec.stored_bytes)));
          }
          obs::ScopedSpan decode_span(obsrec, "delta.worker", "decode", me,
                                      -1.0);
          if (support::crc32c(stored.bytes()) != rec.stored_crc) {
            throw support::CorruptCheckpoint(
                "delta block " + std::to_string(rec.block_index) +
                ": stored CRC mismatch");
          }
          support::ByteBuffer raw;
          support::block_decode(rec.codec, stored.bytes(), rec.raw_bytes,
                                raw);
          if (support::crc32c(raw.bytes()) != rec.raw_crc) {
            throw support::CorruptCheckpoint(
                "delta block " + std::to_string(rec.block_index) +
                ": raw CRC mismatch");
          }
          std::memcpy(staging[b].bytes().data(), raw.data(), raw.size());
        });
  };

  start_read(0);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Slice> src_chunks(static_cast<std::size_t>(p), empty);
    std::uint64_t round_stored = 0;
    int readers = 0;
    for (int q = 0; q < io_tasks; ++q) {
      const std::size_t i = r * static_cast<std::size_t>(io_tasks) +
                            static_cast<std::size_t>(q);
      if (i >= m) {
        break;
      }
      src_chunks[static_cast<std::size_t>(q)] =
          blocks.chunks[static_cast<std::size_t>(records[i].block_index)];
      round_stored += records[i].stored_bytes;
      ++readers;
    }

    const std::size_t b = r % 2;
    if (inflight[b].valid()) {
      inflight[b].get();  // rethrows read/verify/decode errors
    }
    if (r + 1 < rounds) {
      start_read(r + 1);  // overlaps this round's exchange below
    }

    obs::ScopedSpan exchange_span(
        recorder_, "delta", "exchange", me, ctx.sim_time(),
        {obs::Attr::num("round", static_cast<std::int64_t>(r)),
         obs::Attr::str("dir", "read")});
    exchange_sections(ctx, src_chunks,
                      staging[b].element_count() > 0 ? &staging[b] : nullptr,
                      dst_mapped,
                      my_local.element_count() > 0 ? &my_local : nullptr,
                      elem, recorder_);
    exchange_span.end(ctx.sim_time());

    if (storage_ != nullptr && storage_->charges_time()) {
      ctx.charge(jitter_factor * storage_->stream_read_round_seconds(
                                     round_stored, std::max(readers, 1),
                                     load_, nullptr));
    }
    ctx.barrier();
  }
}

std::uint64_t ArrayStreamer::write_section_sequential(
    rt::TaskContext& ctx, const DistArray& array, const Slice& x,
    SequentialSink& sink) const {
  DRMS_EXPECTS_MSG(array.global_box().covers(x),
                   "section must lie within the array index space");
  const std::size_t elem = array.elem_size();
  const StreamPlan plan = make_stream_plan(x, elem, 1,
                                           target_chunk_bytes_);
  const std::vector<Slice> src_assigned =
      array.distribution().assigned_slices();
  const int me = ctx.rank();
  const Slice empty = Slice::empty_of_rank(x.rank());

  const double jitter_factor =
      (jitter_ && storage_ != nullptr && storage_->charges_time())
          ? ctx.shared_rng().jitter(storage_->cost_model()->jitter_sigma)
          : 1.0;

  for (const Slice& chunk : plan.chunks) {
    std::vector<Slice> dst_mapped(static_cast<std::size_t>(ctx.size()),
                                  empty);
    dst_mapped[0] = chunk;
    LocalArray staging =
        me == 0 ? LocalArray(chunk, elem) : LocalArray();
    exchange_sections(ctx, src_assigned, &array.local(me), dst_mapped,
                      me == 0 ? &staging : nullptr, elem);
    if (me == 0) {
      sink.write(staging.bytes());  // append-only: no seek ever issued
    }
    if (storage_ != nullptr && storage_->charges_time()) {
      ctx.charge(jitter_factor *
                 storage_->stream_write_round_seconds(
                     static_cast<std::uint64_t>(chunk.element_count()) *
                         elem,
                     1, load_, nullptr));
    }
    ctx.barrier();
  }
  return plan.total_bytes;
}

std::uint64_t ArrayStreamer::read_section_sequential(
    rt::TaskContext& ctx, DistArray& array, const Slice& x,
    SequentialSource& source) const {
  DRMS_EXPECTS_MSG(array.global_box().covers(x),
                   "section must lie within the array index space");
  const std::size_t elem = array.elem_size();
  const StreamPlan plan = make_stream_plan(x, elem, 1,
                                           target_chunk_bytes_);
  const std::vector<Slice> dst_mapped =
      array.distribution().mapped_slices();
  const int me = ctx.rank();
  const Slice empty = Slice::empty_of_rank(x.rank());
  LocalArray& my_local = array.local(me);

  const double jitter_factor =
      (jitter_ && storage_ != nullptr && storage_->charges_time())
          ? ctx.shared_rng().jitter(storage_->cost_model()->jitter_sigma)
          : 1.0;

  for (const Slice& chunk : plan.chunks) {
    std::vector<Slice> src_chunks(static_cast<std::size_t>(ctx.size()),
                                  empty);
    src_chunks[0] = chunk;
    LocalArray staging;
    if (me == 0) {
      staging = LocalArray(chunk, elem);
      source.read(staging.bytes());
    }
    exchange_sections(ctx, src_chunks, me == 0 ? &staging : nullptr,
                      dst_mapped,
                      my_local.element_count() > 0 ? &my_local : nullptr,
                      elem);
    if (storage_ != nullptr && storage_->charges_time()) {
      ctx.charge(jitter_factor *
                 storage_->stream_read_round_seconds(
                     static_cast<std::uint64_t>(chunk.element_count()) *
                         elem,
                     1, load_, nullptr));
    }
    ctx.barrier();
  }
  return plan.total_bytes;
}

}  // namespace drms::core
