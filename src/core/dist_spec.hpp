// Distribution specifications (§3.1): for every task, the MAPPED array
// section (present in the task's address space) and the ASSIGNED section
// (the subset whose elements the task's local copy defines). Assigned
// sections are pairwise disjoint; mapped sections may overlap — that is
// how shadow (ghost) regions are expressed.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/slice.hpp"

namespace drms::core {

struct TaskSection {
  Slice assigned;
  Slice mapped;
};

/// Near-cubic factorization of `tasks` into `dims` factors (largest factor
/// in the last axis), in the spirit of MPI_Dims_create. Product == tasks.
[[nodiscard]] std::vector<int> factor_grid(int tasks, int dims);

class DistSpec {
 public:
  /// Explicit construction from per-task sections over a global box.
  /// Validates the invariants (throws ContractViolation on violation):
  ///   - every assigned/mapped slice has the box's rank,
  ///   - assigned[i] * assigned[j] is empty for i != j,
  ///   - assigned[i] is a subset of mapped[i],
  ///   - mapped[i] is a subset of the global box.
  DistSpec(Slice global_box, std::vector<TaskSection> sections);

  /// Block distribution over a `task_grid` of processes (product ==
  /// tasks), with a per-axis shadow width added to the mapped sections
  /// (clamped at the global bounds). The paper's drms_create_distribution
  /// with block distributions along all axes.
  [[nodiscard]] static DistSpec block(const Slice& global_box,
                                      std::span<const int> task_grid,
                                      std::span<const Index> shadow);

  /// Block distribution with an automatically factored task grid.
  [[nodiscard]] static DistSpec block_auto(const Slice& global_box,
                                           int tasks,
                                           std::span<const Index> shadow);

  [[nodiscard]] int task_count() const noexcept {
    return static_cast<int>(sections_.size());
  }
  [[nodiscard]] const Slice& global_box() const noexcept { return box_; }
  [[nodiscard]] const TaskSection& section(int task) const;
  [[nodiscard]] const Slice& assigned(int task) const {
    return section(task).assigned;
  }
  [[nodiscard]] const Slice& mapped(int task) const {
    return section(task).mapped;
  }

  /// All assigned (resp. mapped) slices, indexed by task.
  [[nodiscard]] std::vector<Slice> assigned_slices() const;
  [[nodiscard]] std::vector<Slice> mapped_slices() const;

  /// Total elements across mapped sections (>= box elements when shadows
  /// overlap) — the paper's Table 4 "local sections" accounting.
  [[nodiscard]] Index mapped_element_total() const noexcept;
  /// Total elements across assigned sections.
  [[nodiscard]] Index assigned_element_total() const noexcept;

  /// True when the union of assigned sections covers the whole box (every
  /// element has a defined value).
  [[nodiscard]] bool fully_assigned() const;

  /// The paper's drms_adjust: recompute this distribution for a new task
  /// count. Only available for distributions built by block()/block_auto()
  /// (the recipe is remembered); throws Error otherwise.
  [[nodiscard]] DistSpec adjust(int new_tasks) const;

  [[nodiscard]] std::string to_string() const;

 private:
  struct BlockRecipe {
    std::vector<int> task_grid;
    std::vector<Index> shadow;
  };

  void validate() const;

  Slice box_;
  std::vector<TaskSection> sections_;
  std::optional<BlockRecipe> recipe_;
};

}  // namespace drms::core
