// MPMD applications (§2.2): "the computation is viewed as a collection of
// multiple SPMD structures each with its own distributed data set. The
// collection of SPMD computations can then be reconfigured individually
// or collectively. ... In an MPMD application, the states of the
// individual SPMD structures need to be captured to completely define the
// state of the application. ... reconfigurations can take place only at
// globally consistent points ... defined by a set of SOPs in the
// individual SPMD components."
//
// Each SPMD component runs as its own task group with its own
// DrmsProgram and checkpoint prefix ("<prefix>.<component>"); the
// MpmdCoordinator aligns one SOP per component into a globally consistent
// checkpoint epoch. Components may later be restarted with individually
// different task counts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "rt/task_context.hpp"
#include "rt/task_group.hpp"
#include "sim/machine.hpp"

namespace drms::core {

/// Cross-component synchronization point. One instance is shared by all
/// components of the MPMD application; every component must arrive at
/// epoch k before any component proceeds past it.
class MpmdCoordinator {
 public:
  explicit MpmdCoordinator(std::vector<std::string> component_names);

  /// COLLECTIVE within the component AND across components: called by
  /// every task of `component` at its SOP. Returns the epoch number just
  /// completed (0-based). Kill-aware: throws TaskKilled if this task's
  /// group dies while waiting.
  std::int64_t arrive(const std::string& component, rt::TaskContext& ctx);

  [[nodiscard]] int component_count() const noexcept {
    return static_cast<int>(components_.size());
  }
  /// Epochs completed so far.
  [[nodiscard]] std::int64_t epochs_completed() const;

 private:
  std::vector<std::string> components_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::int64_t epoch_ = 0;
  int arrived_ = 0;
  std::map<std::string, std::int64_t> component_epoch_;
};

/// One SPMD component of an MPMD application.
struct MpmdComponent {
  std::string name;
  sim::Placement placement;
  /// SPMD body; receives the component's task context and the shared
  /// coordinator.
  std::function<void(rt::TaskContext&, MpmdCoordinator&)> body;
};

struct MpmdResult {
  bool completed = false;
  std::map<std::string, rt::TaskGroupResult> components;
};

/// Run all components concurrently (each as its own task group) until
/// every one finishes. Blocking.
MpmdResult run_mpmd(std::vector<MpmdComponent> components,
                    MpmdCoordinator& coordinator, std::uint64_t seed = 1);

/// Checkpoint prefix of one component of an MPMD state.
[[nodiscard]] std::string mpmd_component_prefix(const std::string& prefix,
                                                const std::string& name);

}  // namespace drms::core
