#include "core/replicated_store.hpp"

#include "support/crc32.hpp"
#include "support/error.hpp"

namespace drms::core {

namespace {

constexpr std::uint32_t kStoreMagic = 0x44524d53;  // "DRMS"

}  // namespace

void ReplicatedStore::add(const std::string& name,
                          std::function<void(support::ByteBuffer&)> save,
                          std::function<void(support::ByteBuffer&)> load) {
  DRMS_EXPECTS(!name.empty());
  for (const auto& r : records_) {
    DRMS_EXPECTS_MSG(r.name != name,
                     "replicated variable registered twice: " + name);
  }
  records_.push_back(Record{name, std::move(save), std::move(load)});
}

void ReplicatedStore::register_i64(const std::string& name,
                                   std::int64_t* var) {
  DRMS_EXPECTS(var != nullptr);
  add(
      name, [var](support::ByteBuffer& b) { b.put_i64(*var); },
      [var](support::ByteBuffer& b) { *var = b.get_i64(); });
}

void ReplicatedStore::register_u64(const std::string& name,
                                   std::uint64_t* var) {
  DRMS_EXPECTS(var != nullptr);
  add(
      name, [var](support::ByteBuffer& b) { b.put_u64(*var); },
      [var](support::ByteBuffer& b) { *var = b.get_u64(); });
}

void ReplicatedStore::register_f64(const std::string& name, double* var) {
  DRMS_EXPECTS(var != nullptr);
  add(
      name, [var](support::ByteBuffer& b) { b.put_f64(*var); },
      [var](support::ByteBuffer& b) { *var = b.get_f64(); });
}

void ReplicatedStore::register_string(const std::string& name,
                                      std::string* var) {
  DRMS_EXPECTS(var != nullptr);
  add(
      name, [var](support::ByteBuffer& b) { b.put_string(*var); },
      [var](support::ByteBuffer& b) { *var = b.get_string(); });
}

void ReplicatedStore::register_f64_vector(const std::string& name,
                                          std::vector<double>* var) {
  DRMS_EXPECTS(var != nullptr);
  add(
      name,
      [var](support::ByteBuffer& b) {
        b.put_u64(var->size());
        for (const double v : *var) {
          b.put_f64(v);
        }
      },
      [var](support::ByteBuffer& b) {
        var->resize(b.get_u64());
        for (double& v : *var) {
          v = b.get_f64();
        }
      });
}

void ReplicatedStore::register_custom(
    const std::string& name,
    std::function<void(support::ByteBuffer&)> save,
    std::function<void(support::ByteBuffer&)> load) {
  DRMS_EXPECTS(save != nullptr && load != nullptr);
  add(name, std::move(save), std::move(load));
}

void ReplicatedStore::serialize(support::ByteBuffer& out) const {
  support::ByteBuffer body;
  body.put_u32(kStoreMagic);
  body.put_u64(records_.size());
  for (const auto& r : records_) {
    body.put_string(r.name);
    support::ByteBuffer payload;
    r.save(payload);
    body.put_bytes(payload.bytes());
  }
  out.put_u64(body.size());
  out.put_u32(support::crc32c(body.bytes()));
  out.append(body.bytes());
}

void ReplicatedStore::deserialize(support::ByteBuffer& in) {
  const std::uint64_t body_size = in.get_u64();
  const std::uint32_t expected_crc = in.get_u32();
  if (in.remaining() < body_size) {
    throw support::CorruptCheckpoint(
        "replicated store: truncated segment payload");
  }
  support::ByteBuffer body(
      std::vector<std::byte>(in.data() + in.cursor(),
                             in.data() + in.cursor() + body_size));
  // Advance the outer cursor past the body we just copied.
  std::vector<std::byte> skip(static_cast<std::size_t>(body_size));
  in.read_raw(skip.data(), skip.size());

  if (support::crc32c(body.bytes()) != expected_crc) {
    throw support::CorruptCheckpoint("replicated store: CRC mismatch");
  }
  if (body.get_u32() != kStoreMagic) {
    throw support::CorruptCheckpoint("replicated store: bad magic");
  }
  const std::uint64_t n = body.get_u64();
  if (n != records_.size()) {
    throw support::CorruptCheckpoint(
        "replicated store: record count mismatch (checkpoint has " +
        std::to_string(n) + ", program registered " +
        std::to_string(records_.size()) + ")");
  }
  for (auto& r : records_) {
    const std::string name = body.get_string();
    if (name != r.name) {
      throw support::CorruptCheckpoint(
          "replicated store: record order mismatch: expected '" + r.name +
          "', found '" + name + "'");
    }
    const std::vector<std::byte> payload = body.get_bytes();
    support::ByteBuffer pb{std::vector<std::byte>(payload)};
    r.load(pb);
  }
}

std::uint64_t ReplicatedStore::serialized_size() const {
  support::ByteBuffer out;
  serialize(out);
  return out.size();
}

}  // namespace drms::core
