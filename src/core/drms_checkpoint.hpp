// DRMS (reconfigurable) checkpoint engine.
//
// Checkpoint: one representative task writes its data segment (the
// replicated store plus the Table-4 padding components), then all tasks
// cooperatively stream every distributed array to its own
// distribution-independent file. Blocking semantics: the application does
// not continue until the whole state is on the volume.
//
// Restart: every task reads the single segment file (restoring replicated
// variables and the execution context), then — once the new distribution
// is specified — loads its sections of each array. The state is
// independent of the task count, so the restart group may be any size.
#pragma once

#include <map>
#include <span>
#include <string>

#include "core/checkpoint_format.hpp"
#include "core/dist_array.hpp"
#include "core/replicated_store.hpp"
#include "obs/recorder.hpp"
#include "rt/task_context.hpp"
#include "sim/cost_model.hpp"
#include "support/block_codec.hpp"
#include "support/units.hpp"
#include "svc/io_scheduler.hpp"

namespace drms::core {

/// Simulated-time components of one checkpoint (Table 6's columns).
struct CheckpointTiming {
  double segment_seconds = 0.0;
  double arrays_seconds = 0.0;
  /// Modeled cost of publishing the meta record + commit manifest (the
  /// two-phase-commit overhead). Reported separately — meta writes have
  /// never been part of the paper's Table 5/6 phase times, so it is NOT
  /// included in total_seconds().
  double commit_seconds = 0.0;
  [[nodiscard]] double total_seconds() const noexcept {
    return segment_seconds + arrays_seconds;
  }
};

/// State carried between successive checkpoints under the SAME prefix to
/// support incremental checkpointing: arrays whose content fingerprint is
/// unchanged are not rewritten (the §6 memory-exclusion optimization at
/// whole-array granularity). Owned by the caller (DrmsProgram); the
/// engine reads it on every task and updates it on task 0 only, between
/// barriers.
struct IncrementalState {
  /// Prefix the fingerprints belong to; a different prefix invalidates.
  std::string prefix;
  std::map<std::string, std::uint32_t> fingerprints;
  /// Statistics of the most recent write().
  int arrays_skipped = 0;
  std::uint64_t bytes_skipped = 0;
};

/// Policy knobs for block-level delta generations. Off by default: every
/// generation is a full dump and the on-volume formats are byte-identical
/// to the pre-delta layout.
struct DeltaOptions {
  bool enabled = false;
  /// One full generation per `full_every_k` generations (<= 1: always
  /// full). A chain never grows past k - 1 deltas.
  int full_every_k = 4;
  /// Dirty-tracking and storage granularity (stream-order blocks of the
  /// array's element stream).
  std::uint64_t block_bytes = 256 * support::kKiB;
  /// Codec for the dirty blocks' payload; raw fallback per block keeps
  /// stored blocks from ever expanding.
  support::BlockCodec codec = support::BlockCodec::kLz;
};

/// Chain state carried between checkpoints (same ownership discipline as
/// IncrementalState: owned by DrmsProgram, read on every task, mutated on
/// task 0 only, between barriers). `chain` holds the committed prefixes
/// of the live chain, full base first; empty until the first full
/// generation commits.
struct DeltaChainState {
  std::vector<std::string> chain;
  /// Statistics of the most recent write().
  GenerationKind last_kind = GenerationKind::kFull;
  std::uint64_t last_raw_bytes = 0;
  std::uint64_t last_stored_bytes = 0;
  std::uint64_t last_dirty_blocks = 0;
  std::uint64_t last_total_blocks = 0;
};

/// Simulated-time components of one restart.
struct RestartTiming {
  double init_seconds = 0.0;  // application text load ("other")
  double segment_seconds = 0.0;
  double arrays_seconds = 0.0;
  [[nodiscard]] double total_seconds() const noexcept {
    return init_seconds + segment_seconds + arrays_seconds;
  }
};

class DrmsCheckpoint {
 public:
  /// Timing is charged through `storage`'s primitives; a backend with no
  /// cost model charges nothing (pure-correctness tests).
  /// `io_tasks` bounds the parallel-streaming width (0 = all tasks).
  /// A non-null `recorder` receives per-phase trace spans and retry
  /// counters; recording never charges simulated time.
  DrmsCheckpoint(store::StorageBackend& storage, sim::LoadContext load,
                 int io_tasks = 0,
                 std::uint64_t target_chunk_bytes = support::kMiB,
                 bool jitter = false, obs::Recorder* recorder = nullptr);

  /// COLLECTIVE: write a full checkpoint under `prefix`. `store` is the
  /// calling task's replicated store (task 0's copy is the one saved);
  /// `arrays` are the application's distributed arrays, all distributed.
  /// With a non-null `incremental`, arrays whose fingerprint is unchanged
  /// since the previous checkpoint under the same prefix keep their
  /// existing file instead of being restreamed.
  ///
  /// With non-null `delta` (enabled) AND `chain`, the engine writes a
  /// DELTA generation — only the blocks dirtied since the chain's last
  /// generation, run through the codec stage — whenever the live chain is
  /// non-empty, shorter than full_every_k generations, still committed,
  /// and does not contain `prefix` (overwriting a chain member would pull
  /// the base out from under its dependents); otherwise it writes a full
  /// generation that starts a fresh chain. Delta mode ignores
  /// `incremental` (chain replay subsumes whole-array skipping).
  CheckpointTiming write(rt::TaskContext& ctx, const std::string& prefix,
                         const std::string& app_name, std::int64_t sop,
                         const ReplicatedStore& store,
                         std::span<DistArray* const> arrays,
                         const AppSegmentModel& segment_model,
                         IncrementalState* incremental = nullptr,
                         const DeltaOptions* delta = nullptr,
                         DeltaChainState* chain = nullptr);

  /// COLLECTIVE: restore the data segment — every task reads the shared
  /// segment file and refreshes its replicated variables. Returns the
  /// meta (identical on every task). Includes the restart-initialization
  /// (text load) charge.
  CheckpointMeta restore_segment(rt::TaskContext& ctx,
                                 const std::string& prefix,
                                 ReplicatedStore& store,
                                 const AppSegmentModel& segment_model,
                                 RestartTiming& timing);

  /// COLLECTIVE: load one array's data from the checkpoint into its
  /// (already installed) distribution. Adds to timing.arrays_seconds.
  /// When `meta` names a delta generation, the whole chain is replayed:
  /// the full base streams in first, then every delta's stored blocks are
  /// decoded and scattered oldest-first (newest wins per block).
  void restore_array(rt::TaskContext& ctx, const std::string& prefix,
                     const CheckpointMeta& meta, DistArray& array,
                     RestartTiming& timing);

  /// COLLECTIVE: load ONLY `sections` (disjoint sub-slices of the array's
  /// global box — a partial restart's lost sections) from the generation
  /// under `prefix` into the array's current distribution. The checkpoint
  /// file is the column-major element stream of the global box, so each
  /// section decomposes into stream-contiguous runs read at computed byte
  /// offsets; delta generations replay only the chain blocks that touch
  /// the sections. No whole-stream CRC is checkable on a subset read —
  /// callers deep-verify the generation first (the supervisor's verify
  /// phase does); delta blocks keep their per-block CRC checks. With an
  /// attached I/O session the reads are submitted as RESTORE-class items.
  /// Returns the bytes read from storage (identical on every task) and
  /// adds to timing.arrays_seconds.
  std::uint64_t restore_array_sections(rt::TaskContext& ctx,
                                       const std::string& prefix,
                                       const CheckpointMeta& meta,
                                       DistArray& array,
                                       std::span<const Slice> sections,
                                       RestartTiming& timing);

  /// Attach a checkpoint-service session: write()'s storage mutations are
  /// submitted to `scheduler` under `job` as FOREGROUND-class items, with
  /// explicit completion barriers preserving the commit ordering
  /// (decommit first, every data write before meta, manifest LAST). The
  /// retry policy also picks up the job id as its deterministic jitter
  /// seed. Both pointers are borrowed and must outlive the engine's use;
  /// pass nullptrs to detach (the default, fully synchronous path).
  void attach_io_session(svc::IoScheduler* scheduler,
                         const svc::JobToken* job) {
    io_ = scheduler;
    io_job_ = job;
  }

 private:
  [[nodiscard]] int effective_io_tasks(const rt::TaskContext& ctx) const;
  [[nodiscard]] support::RetryPolicy retry_policy(const char* what) const;
  [[nodiscard]] bool io_session_active() const {
    return io_ != nullptr && io_job_ != nullptr && io_job_->valid();
  }
  /// Run `fn` (which carries its own retry_io wrapping) — synchronously
  /// without a session, else as a queued FOREGROUND item sharded by
  /// `file`. Async errors surface at the next io_barrier().
  void submit_io(const std::string& file, std::uint64_t bytes,
                 std::function<void()> fn);
  /// Completion barrier over this engine's session job (no-op without a
  /// session); rethrows the first queued error.
  void io_barrier();

  store::StorageBackend& storage_;
  sim::LoadContext load_;
  int io_tasks_;
  std::uint64_t target_chunk_bytes_;
  bool jitter_;
  obs::Recorder* recorder_;
  svc::IoScheduler* io_ = nullptr;
  const svc::JobToken* io_job_ = nullptr;
};

}  // namespace drms::core
