// On-volume layout of a checkpointed state and the segment size model.
//
// DRMS checkpoint under prefix "ckpt":
//   ckpt.meta           — application name, task count, SOP counter, array
//                         table (name, index space, element size, bytes)
//   ckpt.segment        — data segment of ONE representative task:
//                         replicated-store payload + logically-sized
//                         padding for the local array sections, private
//                         data and system buffers (Table 4's components)
//   ckpt.array.<name>   — one distribution-independent file per
//                         distributed array (column-major element stream)
//
// SPMD (non-reconfigurable) checkpoint under prefix "ckpt":
//   ckpt.spmd.meta      — application name, task count, SOP counter
//   ckpt.spmd.task<r>   — task r's FULL data segment: replicated payload +
//                         real bytes of all its local array sections
//                         (including shadows) + padding to the static
//                         segment size
//
// Commit protocol (both layouts): the state files above are invisible to
// the checkpoint catalog until "ckpt.commit" — a manifest listing every
// state file with its size (and content CRC where the writer has one in
// hand) — lands as the very last write of the checkpoint. A crash at any
// earlier point leaves the state uncommitted (torn); restart falls back to
// the previous committed SOP and `drms_tool fsck`/`gc` report/reclaim the
// torn files. When a prefix is overwritten, the old manifest is removed
// FIRST (decommit) so no crash window can publish a state whose files are
// half old, half new.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/slice.hpp"
#include "store/storage_backend.hpp"
#include "support/byte_buffer.hpp"

namespace drms::core {

/// On-volume wire-format constants, shared by the writers (checkpoint
/// engines) and the offline verifier.
namespace wire {
inline constexpr std::uint32_t kSegmentMagic = 0x44534547;   // "DSEG"
inline constexpr std::uint32_t kSegmentVersion = 1;
inline constexpr std::uint64_t kSegmentHeaderBytes = 4 + 4 + 8 + 8;
inline constexpr std::uint32_t kSpmdSegmentMagic = 0x53534547;  // "SSEG"
inline constexpr std::uint32_t kSpmdSegmentVersion = 1;
}  // namespace wire

/// Size model of one task's data segment, mirroring the components of the
/// paper's Table 4. Sizes are "compiled-in": Fortran static allocation
/// means they do not shrink when the application runs on more tasks than
/// its compile-time minimum.
struct AppSegmentModel {
  /// Storage for the local sections of the distributed arrays at the
  /// compile-time minimum task count (shadows included).
  std::uint64_t static_local_bytes = 0;
  /// Private and replicated application data.
  std::uint64_t private_bytes = 0;
  /// System-library storage (message-passing buffers; ~33 MB on the SP).
  std::uint64_t system_bytes = 0;
  /// Application text segment (loaded at restart; not part of the saved
  /// state).
  std::uint64_t text_bytes = 0;

  /// Total data-segment size (Table 4's "Total data" column).
  [[nodiscard]] std::uint64_t total() const noexcept {
    return static_local_bytes + private_bytes + system_bytes;
  }
};

/// Whether a generation carries the full array state or only the blocks
/// dirtied since its base. Deltas chain through base_prefix to the most
/// recent full generation; restore replays base + deltas oldest-first.
enum class GenerationKind : std::uint8_t {
  kFull = 0,
  kDelta = 1,
};
[[nodiscard]] const char* to_string(GenerationKind kind) noexcept;

struct ArrayMeta {
  std::string name;
  std::vector<Index> lower;
  std::vector<Index> upper;
  std::uint64_t elem_size = 0;
  /// Full generations: the column-major element stream's byte count.
  /// Delta generations: the total size of the ".delta.<name>" file.
  std::uint64_t stream_bytes = 0;
  /// CRC-32C fingerprint of the stream contents, recorded at write time
  /// and verified when the array is restored. Zero for delta arrays —
  /// their integrity is per-block (raw + stored CRCs in the delta index).
  std::uint32_t stream_crc = 0;
  /// Delta-generation statistics (zero for full generations, which stay
  /// on the version-2 wire encoding): bytes of the dirty blocks before
  /// and after the codec stage, and the dirty/total block counts.
  std::uint64_t raw_bytes = 0;
  std::uint64_t stored_bytes = 0;
  std::uint64_t dirty_blocks = 0;
  std::uint64_t total_blocks = 0;

  [[nodiscard]] Slice box() const;
};

struct CheckpointMeta {
  std::string app_name;
  /// Tasks that took the checkpoint (restart computes delta against it).
  int task_count = 0;
  /// SOP counter at the checkpoint (the how-many-th reconfig_checkpoint
  /// call this was).
  std::int64_t sop = 0;
  std::uint64_t segment_bytes = 0;
  std::vector<ArrayMeta> arrays;
  /// Generation chaining (delta checkpoints). Full generations keep the
  /// defaults and serialize on the unchanged version-2 encoding; a delta
  /// names its base generation, its distance from the chain's full base
  /// (1 = first delta), and the dirty-tracking block granularity.
  GenerationKind kind = GenerationKind::kFull;
  std::string base_prefix;
  std::int64_t chain_depth = 0;
  std::uint64_t delta_block_bytes = 0;

  [[nodiscard]] const ArrayMeta& array(const std::string& name) const;
  [[nodiscard]] std::uint64_t arrays_total_bytes() const;
};

/// One file of a committed state as recorded in the commit manifest.
struct CommitEntry {
  std::string name;
  std::uint64_t size = 0;
  /// CRC-32C of the whole file; only meaningful when has_crc is set (the
  /// writer records CRCs it already has in hand — meta and array streams —
  /// and leaves files whose integrity is carried by an inner sized-CRC
  /// record, segment and SPMD task files, size-only).
  std::uint32_t crc = 0;
  bool has_crc = false;
};

/// The COMMIT manifest published as the LAST write of a checkpoint. A
/// state is committed iff its manifest parses and every listed file is
/// present with the listed size.
struct CommitManifest {
  bool spmd = false;
  std::vector<CommitEntry> entries;
  /// Non-empty for a delta generation: the prefix of the generation this
  /// one chains to. Mirrored from the meta so the catalog and fsck can
  /// walk chains without touching meta files. Full generations leave it
  /// empty and serialize on the unchanged version-1 encoding.
  std::string base_prefix;

  [[nodiscard]] const CommitEntry* entry(const std::string& name) const;
  [[nodiscard]] std::uint64_t listed_bytes() const;
};

/// ---- file-name helpers ------------------------------------------------------
[[nodiscard]] std::string commit_file_name(const std::string& prefix);
[[nodiscard]] std::string meta_file_name(const std::string& prefix);
[[nodiscard]] std::string segment_file_name(const std::string& prefix);
[[nodiscard]] std::string array_file_name(const std::string& prefix,
                                          const std::string& array_name);
[[nodiscard]] std::string delta_array_file_name(const std::string& prefix,
                                                const std::string& array_name);
[[nodiscard]] std::string spmd_meta_file_name(const std::string& prefix);
[[nodiscard]] std::string spmd_task_file_name(const std::string& prefix,
                                              int rank);

/// ---- meta record I/O ---------------------------------------------------------
/// Full on-volume image of a meta / manifest file ([crc][size][body]).
/// Exposed so the engines can derive manifest CRCs and publication sizes
/// from the exact bytes they are about to write.
[[nodiscard]] support::ByteBuffer encode_checkpoint_meta(const CheckpointMeta& meta);
[[nodiscard]] support::ByteBuffer encode_commit_manifest(const CommitManifest& manifest);

void write_commit_manifest(store::StorageBackend& storage, const std::string& prefix,
                           const CommitManifest& manifest);
[[nodiscard]] CommitManifest read_commit_manifest(const store::StorageBackend& storage,
                                                  const std::string& prefix);
[[nodiscard]] bool commit_manifest_exists(const store::StorageBackend& storage,
                                          const std::string& prefix);
/// Remove the commit manifest if present (the decommit step that precedes
/// overwriting a prefix). Returns true when a manifest was removed.
bool decommit_checkpoint(store::StorageBackend& storage, const std::string& prefix);

void write_checkpoint_meta(store::StorageBackend& storage, const std::string& prefix,
                           const CheckpointMeta& meta);
[[nodiscard]] CheckpointMeta read_checkpoint_meta(const store::StorageBackend& storage,
                                                  const std::string& prefix);
[[nodiscard]] bool checkpoint_exists(const store::StorageBackend& storage,
                                     const std::string& prefix);

void write_spmd_meta(store::StorageBackend& storage, const std::string& prefix,
                     const CheckpointMeta& meta);
[[nodiscard]] CheckpointMeta read_spmd_meta(const store::StorageBackend& storage,
                                            const std::string& prefix);
[[nodiscard]] bool spmd_checkpoint_exists(const store::StorageBackend& storage,
                                          const std::string& prefix);

/// Total on-volume size of a saved state (all files under the layout) —
/// the paper's "size of saved state" metric (Table 3).
[[nodiscard]] std::uint64_t drms_state_size(const store::StorageBackend& storage,
                                            const std::string& prefix);
[[nodiscard]] std::uint64_t spmd_state_size(const store::StorageBackend& storage,
                                            const std::string& prefix);

}  // namespace drms::core
