#include "core/delta_format.hpp"

#include <algorithm>
#include <set>

#include "core/checkpoint_format.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

namespace drms::core {

support::ByteBuffer encode_delta_header(const DeltaFileHeader& header) {
  support::ByteBuffer out;
  out.put_u32(wire::kDeltaMagic);
  out.put_u32(wire::kDeltaVersion);
  out.put_u64(header.block_bytes);
  out.put_u64(header.total_blocks);
  out.put_u64(header.record_count);
  out.put_u64(header.payload_bytes);
  out.put_u64(header.raw_bytes);
  out.put_u64(header.index_offset);
  out.put_u64(0);  // reserved
  DRMS_ENSURES(out.size() == wire::kDeltaHeaderBytes);
  return out;
}

support::ByteBuffer encode_delta_index(
    const std::vector<DeltaBlockRecord>& records) {
  support::ByteBuffer body;
  body.put_u64(records.size());
  for (const auto& r : records) {
    body.put_u64(r.block_index);
    body.put_u64(r.raw_bytes);
    body.put_u64(r.stored_bytes);
    body.put_u64(r.payload_offset);
    body.put_u32(static_cast<std::uint32_t>(r.codec));
    body.put_u32(r.raw_crc);
    body.put_u32(r.stored_crc);
  }
  support::ByteBuffer out;
  out.put_u32(support::crc32c(body.bytes()));
  out.put_u64(body.size());
  out.append(body.bytes());
  return out;
}

DeltaFileHeader read_delta_header(const store::FileHandle& file,
                                  const std::string& what) {
  if (file.size() < wire::kDeltaHeaderBytes) {
    throw support::CorruptCheckpoint(what + ": too small for a delta header");
  }
  support::ByteBuffer buf =
      store::read_to_buffer(file, 0, wire::kDeltaHeaderBytes);
  if (buf.get_u32() != wire::kDeltaMagic) {
    throw support::CorruptCheckpoint(what + ": bad delta magic");
  }
  if (buf.get_u32() != wire::kDeltaVersion) {
    throw support::CorruptCheckpoint(what + ": unsupported delta version");
  }
  DeltaFileHeader h;
  h.block_bytes = buf.get_u64();
  h.total_blocks = buf.get_u64();
  h.record_count = buf.get_u64();
  h.payload_bytes = buf.get_u64();
  h.raw_bytes = buf.get_u64();
  h.index_offset = buf.get_u64();
  if (h.block_bytes == 0 ||
      h.index_offset != wire::kDeltaHeaderBytes + h.payload_bytes ||
      h.index_offset > file.size()) {
    throw support::CorruptCheckpoint(what + ": inconsistent delta header");
  }
  return h;
}

std::vector<DeltaBlockRecord> read_delta_index(const store::FileHandle& file,
                                               const DeltaFileHeader& header,
                                               const std::string& what) {
  if (header.index_offset + 12 > file.size()) {
    throw support::CorruptCheckpoint(what + ": truncated delta index frame");
  }
  support::ByteBuffer frame = store::read_to_buffer(
      file, header.index_offset, file.size() - header.index_offset);
  const std::uint32_t crc = frame.get_u32();
  const std::uint64_t size = frame.get_u64();
  if (frame.remaining() < size) {
    throw support::CorruptCheckpoint(what + ": truncated delta index body");
  }
  support::ByteBuffer body(std::span<const std::byte>(
      frame.data() + frame.cursor(), static_cast<std::size_t>(size)));
  if (support::crc32c(body.bytes()) != crc) {
    throw support::CorruptCheckpoint(what + ": delta index CRC mismatch");
  }
  const std::uint64_t count = body.get_u64();
  if (count != header.record_count) {
    throw support::CorruptCheckpoint(what +
                                     ": delta index count disagrees with "
                                     "the header");
  }
  std::vector<DeltaBlockRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DeltaBlockRecord r;
    r.block_index = body.get_u64();
    r.raw_bytes = body.get_u64();
    r.stored_bytes = body.get_u64();
    r.payload_offset = body.get_u64();
    const std::uint32_t codec = body.get_u32();
    if (codec > static_cast<std::uint32_t>(support::BlockCodec::kLz)) {
      throw support::CorruptCheckpoint(what + ": unknown block codec id");
    }
    r.codec = static_cast<support::BlockCodec>(codec);
    r.raw_crc = body.get_u32();
    r.stored_crc = body.get_u32();
    if (r.block_index >= header.total_blocks ||
        r.payload_offset + r.stored_bytes > header.payload_bytes) {
      throw support::CorruptCheckpoint(what + ": delta record out of bounds");
    }
    records.push_back(r);
  }
  return records;
}

std::vector<std::uint64_t> collect_dirty_blocks(
    const DistArray& array, const std::vector<Slice>& blocks) {
  std::vector<std::uint64_t> out;
  if (!array.dirty_tracking() || !array.distributed()) {
    // No tracking: everything is conservatively dirty.
    out.resize(blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      out[b] = b;
    }
    return out;
  }
  const DistSpec& spec = array.distribution();
  const int tasks = array.task_count();
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    bool dirty = false;
    for (int t = 0; t < tasks && !dirty; ++t) {
      const MutationLog& log = array.mutation_log(t);
      if (log.clean()) {
        continue;
      }
      if (log.all) {
        // Mark-all means "this task's whole mapped section" — clip it.
        const Slice& mapped = spec.mapped(t);
        dirty = !mapped.empty() && !blocks[b].intersect(mapped).empty();
      } else {
        dirty = log.intersects(blocks[b]);
      }
    }
    if (dirty) {
      out.push_back(static_cast<std::uint64_t>(b));
    }
  }
  return out;
}

std::vector<std::string> resolve_checkpoint_chain(
    const store::StorageBackend& storage, const std::string& prefix) {
  std::vector<std::string> chain;
  std::set<std::string> seen;
  std::string cur = prefix;
  for (int depth = 0; depth < wire::kMaxChainDepth; ++depth) {
    if (!seen.insert(cur).second) {
      throw support::CorruptCheckpoint("checkpoint chain at '" + prefix +
                                       "' is cyclic");
    }
    if (!commit_manifest_exists(storage, cur)) {
      throw support::CorruptCheckpoint("chain member '" + cur +
                                       "' of checkpoint '" + prefix +
                                       "' is not committed");
    }
    const CheckpointMeta meta = read_checkpoint_meta(storage, cur);
    chain.push_back(cur);
    if (meta.kind == GenerationKind::kFull) {
      std::reverse(chain.begin(), chain.end());
      return chain;
    }
    cur = meta.base_prefix;
  }
  throw support::CorruptCheckpoint("checkpoint chain at '" + prefix +
                                   "' exceeds the depth bound");
}

bool verify_delta_file(const store::StorageBackend& storage,
                       const std::string& name, std::uint64_t expected_size,
                       bool deep, std::vector<std::string>& problems) {
  const std::size_t before = problems.size();
  if (!storage.exists(name)) {
    problems.push_back(name + ": missing");
    return false;
  }
  const store::FileHandle file = storage.open(name);
  if (file.size() != expected_size) {
    problems.push_back(name + ": unexpected size");
  }
  DeltaFileHeader header;
  std::vector<DeltaBlockRecord> records;
  try {
    header = read_delta_header(file, name);
    records = read_delta_index(file, header, name);
  } catch (const support::Error& e) {
    problems.push_back(e.what());
    return false;
  }
  if (deep) {
    for (const auto& r : records) {
      const support::ByteBuffer stored = store::read_to_buffer(
          file, wire::kDeltaHeaderBytes + r.payload_offset, r.stored_bytes);
      if (support::crc32c(stored.bytes()) != r.stored_crc) {
        problems.push_back(name + ": block " +
                           std::to_string(r.block_index) +
                           " stored CRC mismatch");
        continue;
      }
      try {
        support::ByteBuffer raw;
        support::block_decode(r.codec, stored.bytes(), r.raw_bytes, raw);
        if (support::crc32c(raw.bytes()) != r.raw_crc) {
          problems.push_back(name + ": block " +
                             std::to_string(r.block_index) +
                             " raw CRC mismatch");
        }
      } catch (const support::Error& e) {
        problems.push_back(e.what());
      }
    }
  }
  return problems.size() == before;
}

}  // namespace drms::core
