#include "core/checkpoint_format.hpp"

#include "support/byte_buffer.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

namespace drms::core {

namespace {

constexpr std::uint32_t kMetaMagic = 0x444d4554;  // "DMET"
constexpr std::uint32_t kMetaVersion = 2;
/// Version 3 extends version 2 with delta-generation fields: per-array
/// raw/stored/block statistics, and a trailing (kind, base_prefix,
/// chain_depth, delta_block_bytes) chain record. Full generations keep
/// writing version 2 so their byte encoding (and everything derived from
/// it — manifest CRCs, modeled commit time) is unchanged.
constexpr std::uint32_t kMetaVersionDelta = 3;
constexpr std::uint32_t kCommitMagic = 0x544d4344;  // "DCMT"
constexpr std::uint32_t kCommitVersion = 1;
/// Version 2 appends the chain base_prefix; only delta generations use it.
constexpr std::uint32_t kCommitVersionDelta = 2;

void serialize_meta(const CheckpointMeta& meta, support::ByteBuffer& out) {
  const bool delta = meta.kind != GenerationKind::kFull;
  support::ByteBuffer body;
  body.put_u32(kMetaMagic);
  body.put_u32(delta ? kMetaVersionDelta : kMetaVersion);
  body.put_string(meta.app_name);
  body.put_i64(meta.task_count);
  body.put_i64(meta.sop);
  body.put_u64(meta.segment_bytes);
  body.put_u64(meta.arrays.size());
  for (const auto& a : meta.arrays) {
    body.put_string(a.name);
    body.put_u64(a.lower.size());
    for (std::size_t k = 0; k < a.lower.size(); ++k) {
      body.put_i64(a.lower[k]);
      body.put_i64(a.upper[k]);
    }
    body.put_u64(a.elem_size);
    body.put_u64(a.stream_bytes);
    body.put_u32(a.stream_crc);
    if (delta) {
      body.put_u64(a.raw_bytes);
      body.put_u64(a.stored_bytes);
      body.put_u64(a.dirty_blocks);
      body.put_u64(a.total_blocks);
    }
  }
  if (delta) {
    body.put_u8(static_cast<std::uint8_t>(meta.kind));
    body.put_string(meta.base_prefix);
    body.put_i64(meta.chain_depth);
    body.put_u64(meta.delta_block_bytes);
  }
  out.put_u32(support::crc32c(body.bytes()));
  out.put_u64(body.size());
  out.append(body.bytes());
}

CheckpointMeta deserialize_meta(support::ByteBuffer& in,
                                const std::string& what) {
  const std::uint32_t crc = in.get_u32();
  const std::uint64_t size = in.get_u64();
  if (in.remaining() < size) {
    throw support::CorruptCheckpoint(what + ": truncated meta record");
  }
  support::ByteBuffer body(std::span<const std::byte>(
      in.data() + in.cursor(), static_cast<std::size_t>(size)));
  if (support::crc32c(body.bytes()) != crc) {
    throw support::CorruptCheckpoint(what + ": meta CRC mismatch");
  }
  if (body.get_u32() != kMetaMagic) {
    throw support::CorruptCheckpoint(what + ": bad meta magic");
  }
  const std::uint32_t version = body.get_u32();
  if (version != kMetaVersion && version != kMetaVersionDelta) {
    throw support::CorruptCheckpoint(what + ": unsupported meta version");
  }
  const bool delta = version == kMetaVersionDelta;
  CheckpointMeta meta;
  meta.app_name = body.get_string();
  meta.task_count = static_cast<int>(body.get_i64());
  meta.sop = body.get_i64();
  meta.segment_bytes = body.get_u64();
  const std::uint64_t n = body.get_u64();
  meta.arrays.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ArrayMeta a;
    a.name = body.get_string();
    const std::uint64_t rank = body.get_u64();
    a.lower.resize(rank);
    a.upper.resize(rank);
    for (std::uint64_t k = 0; k < rank; ++k) {
      a.lower[k] = body.get_i64();
      a.upper[k] = body.get_i64();
    }
    a.elem_size = body.get_u64();
    a.stream_bytes = body.get_u64();
    a.stream_crc = body.get_u32();
    if (delta) {
      a.raw_bytes = body.get_u64();
      a.stored_bytes = body.get_u64();
      a.dirty_blocks = body.get_u64();
      a.total_blocks = body.get_u64();
    }
    meta.arrays.push_back(std::move(a));
  }
  if (delta) {
    const std::uint8_t kind = body.get_u8();
    if (kind != static_cast<std::uint8_t>(GenerationKind::kDelta)) {
      throw support::CorruptCheckpoint(what + ": bad generation kind");
    }
    meta.kind = GenerationKind::kDelta;
    meta.base_prefix = body.get_string();
    meta.chain_depth = body.get_i64();
    meta.delta_block_bytes = body.get_u64();
    if (meta.base_prefix.empty()) {
      throw support::CorruptCheckpoint(what + ": delta meta without a base");
    }
  }
  return meta;
}

void serialize_manifest(const CommitManifest& manifest,
                        support::ByteBuffer& out) {
  support::ByteBuffer body;
  body.put_u32(kCommitMagic);
  body.put_u32(manifest.base_prefix.empty() ? kCommitVersion
                                            : kCommitVersionDelta);
  body.put_bool(manifest.spmd);
  if (!manifest.base_prefix.empty()) {
    body.put_string(manifest.base_prefix);
  }
  body.put_u64(manifest.entries.size());
  for (const auto& e : manifest.entries) {
    body.put_string(e.name);
    body.put_u64(e.size);
    body.put_bool(e.has_crc);
    body.put_u32(e.crc);
  }
  out.put_u32(support::crc32c(body.bytes()));
  out.put_u64(body.size());
  out.append(body.bytes());
}

CommitManifest deserialize_manifest(support::ByteBuffer& in,
                                    const std::string& what) {
  if (in.remaining() < 4 + 8) {
    throw support::CorruptCheckpoint(what + ": truncated commit manifest");
  }
  const std::uint32_t crc = in.get_u32();
  const std::uint64_t size = in.get_u64();
  if (in.remaining() < size) {
    throw support::CorruptCheckpoint(what + ": truncated commit manifest");
  }
  support::ByteBuffer body(std::span<const std::byte>(
      in.data() + in.cursor(), static_cast<std::size_t>(size)));
  if (support::crc32c(body.bytes()) != crc) {
    throw support::CorruptCheckpoint(what + ": commit manifest CRC mismatch");
  }
  if (body.get_u32() != kCommitMagic) {
    throw support::CorruptCheckpoint(what + ": bad commit manifest magic");
  }
  const std::uint32_t version = body.get_u32();
  if (version != kCommitVersion && version != kCommitVersionDelta) {
    throw support::CorruptCheckpoint(what +
                                     ": unsupported commit manifest version");
  }
  CommitManifest manifest;
  manifest.spmd = body.get_bool();
  if (version == kCommitVersionDelta) {
    manifest.base_prefix = body.get_string();
    if (manifest.base_prefix.empty()) {
      throw support::CorruptCheckpoint(what +
                                       ": delta manifest without a base");
    }
  }
  const std::uint64_t n = body.get_u64();
  manifest.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    CommitEntry e;
    e.name = body.get_string();
    e.size = body.get_u64();
    e.has_crc = body.get_bool();
    e.crc = body.get_u32();
    manifest.entries.push_back(std::move(e));
  }
  return manifest;
}

void write_meta_file(store::StorageBackend& storage, const std::string& file,
                     const CheckpointMeta& meta) {
  support::ByteBuffer buf;
  serialize_meta(meta, buf);
  storage.create(file).write_at(0, buf.bytes());
}

CheckpointMeta read_meta_file(const store::StorageBackend& storage,
                              const std::string& file) {
  const store::FileHandle handle = storage.open(file);
  support::ByteBuffer buf = store::read_to_buffer(handle, 0, handle.size());
  return deserialize_meta(buf, file);
}

}  // namespace

const char* to_string(GenerationKind kind) noexcept {
  return kind == GenerationKind::kDelta ? "delta" : "full";
}

Slice ArrayMeta::box() const { return Slice::box(lower, upper); }

const ArrayMeta& CheckpointMeta::array(const std::string& name) const {
  for (const auto& a : arrays) {
    if (a.name == name) {
      return a;
    }
  }
  throw support::CorruptCheckpoint("checkpoint has no array named '" +
                                   name + "'");
}

std::uint64_t CheckpointMeta::arrays_total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& a : arrays) {
    total += a.stream_bytes;
  }
  return total;
}

const CommitEntry* CommitManifest::entry(const std::string& name) const {
  for (const auto& e : entries) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

std::uint64_t CommitManifest::listed_bytes() const {
  std::uint64_t total = 0;
  for (const auto& e : entries) {
    total += e.size;
  }
  return total;
}

std::string commit_file_name(const std::string& prefix) {
  return prefix + ".commit";
}
std::string meta_file_name(const std::string& prefix) {
  return prefix + ".meta";
}
std::string segment_file_name(const std::string& prefix) {
  return prefix + ".segment";
}
std::string array_file_name(const std::string& prefix,
                            const std::string& array_name) {
  return prefix + ".array." + array_name;
}
std::string delta_array_file_name(const std::string& prefix,
                                  const std::string& array_name) {
  return prefix + ".delta." + array_name;
}
std::string spmd_meta_file_name(const std::string& prefix) {
  return prefix + ".spmd.meta";
}
std::string spmd_task_file_name(const std::string& prefix, int rank) {
  return prefix + ".spmd.task" + std::to_string(rank);
}

support::ByteBuffer encode_checkpoint_meta(const CheckpointMeta& meta) {
  support::ByteBuffer buf;
  serialize_meta(meta, buf);
  return buf;
}

support::ByteBuffer encode_commit_manifest(const CommitManifest& manifest) {
  support::ByteBuffer buf;
  serialize_manifest(manifest, buf);
  return buf;
}

void write_commit_manifest(store::StorageBackend& storage,
                           const std::string& prefix,
                           const CommitManifest& manifest) {
  const support::ByteBuffer buf = encode_commit_manifest(manifest);
  storage.create(commit_file_name(prefix)).write_at(0, buf.bytes());
}

CommitManifest read_commit_manifest(const store::StorageBackend& storage,
                                    const std::string& prefix) {
  const std::string file = commit_file_name(prefix);
  const store::FileHandle handle = storage.open(file);
  support::ByteBuffer buf = store::read_to_buffer(handle, 0, handle.size());
  return deserialize_manifest(buf, file);
}

bool commit_manifest_exists(const store::StorageBackend& storage,
                            const std::string& prefix) {
  return storage.exists(commit_file_name(prefix));
}

bool decommit_checkpoint(store::StorageBackend& storage,
                         const std::string& prefix) {
  const std::string file = commit_file_name(prefix);
  if (!storage.exists(file)) {
    return false;
  }
  storage.remove(file);
  return true;
}

void write_checkpoint_meta(store::StorageBackend& storage, const std::string& prefix,
                           const CheckpointMeta& meta) {
  write_meta_file(storage, meta_file_name(prefix), meta);
}

CheckpointMeta read_checkpoint_meta(const store::StorageBackend& storage,
                                    const std::string& prefix) {
  return read_meta_file(storage, meta_file_name(prefix));
}

bool checkpoint_exists(const store::StorageBackend& storage,
                       const std::string& prefix) {
  return storage.exists(meta_file_name(prefix));
}

void write_spmd_meta(store::StorageBackend& storage, const std::string& prefix,
                     const CheckpointMeta& meta) {
  write_meta_file(storage, spmd_meta_file_name(prefix), meta);
}

CheckpointMeta read_spmd_meta(const store::StorageBackend& storage,
                              const std::string& prefix) {
  return read_meta_file(storage, spmd_meta_file_name(prefix));
}

bool spmd_checkpoint_exists(const store::StorageBackend& storage,
                            const std::string& prefix) {
  return storage.exists(spmd_meta_file_name(prefix));
}

std::uint64_t drms_state_size(const store::StorageBackend& storage,
                              const std::string& prefix) {
  std::uint64_t total = storage.file_size(segment_file_name(prefix));
  const CheckpointMeta meta = read_checkpoint_meta(storage, prefix);
  const bool delta = meta.kind == GenerationKind::kDelta;
  for (const auto& a : meta.arrays) {
    total += storage.file_size(delta ? delta_array_file_name(prefix, a.name)
                                     : array_file_name(prefix, a.name));
  }
  return total;
}

std::uint64_t spmd_state_size(const store::StorageBackend& storage,
                              const std::string& prefix) {
  const CheckpointMeta meta = read_spmd_meta(storage, prefix);
  std::uint64_t total = 0;
  for (int r = 0; r < meta.task_count; ++r) {
    total += storage.file_size(spmd_task_file_name(prefix, r));
  }
  return total;
}

}  // namespace drms::core
