// Registry of an application's REPLICATED variables — the portion of a
// task's data segment that is identical in every task of an SPMD program
// (control scalars, global parameters, reduction results). In the paper
// the whole raw data segment of one representative task is dumped; a
// portable C++ library cannot dump its own stack and heap, so DRMS
// applications register their replicated state here and the checkpoint
// engine serializes it (plus logically-sized padding standing in for the
// private/system portions — see AppSegmentModel).
//
// Each task owns one store instance referring to its own task-local
// copies of the variables. Registration order must be identical across
// tasks (SPMD discipline); records are name-tagged and CRC-protected, so
// mismatched restores fail loudly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/byte_buffer.hpp"

namespace drms::core {

class ReplicatedStore {
 public:
  /// Register scalar variables by reference. The pointee must outlive the
  /// store.
  void register_i64(const std::string& name, std::int64_t* var);
  void register_u64(const std::string& name, std::uint64_t* var);
  void register_f64(const std::string& name, double* var);
  void register_string(const std::string& name, std::string* var);
  /// Register a vector of doubles (size is saved and restored too).
  void register_f64_vector(const std::string& name,
                           std::vector<double>* var);
  /// Fully custom record: save/load callbacks over a ByteBuffer.
  void register_custom(const std::string& name,
                       std::function<void(support::ByteBuffer&)> save,
                       std::function<void(support::ByteBuffer&)> load);

  [[nodiscard]] std::size_t record_count() const noexcept {
    return records_.size();
  }

  /// Serialize every record, in registration order, with a CRC-32C
  /// trailer.
  void serialize(support::ByteBuffer& out) const;

  /// Restore every registered variable from a buffer produced by
  /// serialize(). Throws CorruptCheckpoint on CRC or name/type mismatch.
  void deserialize(support::ByteBuffer& in);

  /// Size in bytes of the serialized form (for segment accounting).
  [[nodiscard]] std::uint64_t serialized_size() const;

 private:
  struct Record {
    std::string name;
    std::function<void(support::ByteBuffer&)> save;
    std::function<void(support::ByteBuffer&)> load;
  };

  void add(const std::string& name,
           std::function<void(support::ByteBuffer&)> save,
           std::function<void(support::ByteBuffer&)> load);

  std::vector<Record> records_;
};

}  // namespace drms::core
