// Section exchange — the communication core of the DRMS array assignment
// operation (§3.1): move element data from per-task SOURCE assigned
// sections into per-task DESTINATION mapped sections, updating every
// overlapping copy consistently. Used by data redistribution, by the
// canonical-distribution step of parallel streaming, and by
// inter-distribution array assignment.
//
// COLLECTIVE: every task of the group must call with identical
// `src_assigned` and `dst_mapped` vectors (they are global metadata);
// `my_src`/`my_dst` are the calling task's local sections (null when the
// task holds no source/destination data).
#pragma once

#include <vector>

#include "core/local_array.hpp"
#include "core/slice.hpp"
#include "obs/recorder.hpp"
#include "rt/task_context.hpp"

namespace drms::core {

/// `recorder`, when non-null, gets one "exchange"/"sections" span per
/// call (attrs: bytes sent/received) plus byte counters.
void exchange_sections(rt::TaskContext& ctx,
                       const std::vector<Slice>& src_assigned,
                       const LocalArray* my_src,
                       const std::vector<Slice>& dst_mapped,
                       LocalArray* my_dst, std::size_t elem_size,
                       obs::Recorder* recorder = nullptr);

}  // namespace drms::core
