// Parallel array section streaming (§3.2, Figure 5).
//
// Output streaming of a section A[x] produces the elements of x in
// column-major order — a distribution-independent representation. The
// section is recursively partitioned in stream order into m chunks
// (~1 MB each, m >= number of I/O tasks); each round redistributes P
// chunks into a canonical distribution (chunk c lives wholly in task
// c mod P) and the P tasks then write their chunks at precomputed stream
// offsets in parallel. Input streaming runs the two phases in reverse.
//
// P = 1 degenerates to serial streaming: chunk offsets are consecutive,
// so the writer only ever appends (no seek capability needed — the stream
// could be a socket or tape, as the paper notes).
#pragma once

#include <cstdint>
#include <vector>

#include "core/delta_format.hpp"
#include "core/dist_array.hpp"
#include "core/sequential_channel.hpp"
#include "obs/recorder.hpp"
#include "store/storage_backend.hpp"
#include "rt/task_context.hpp"
#include "sim/cost_model.hpp"
#include "support/units.hpp"

namespace drms::core {

/// Stream-order chunking of a section: chunk i occupies bytes
/// [offsets[i], offsets[i] + bytes(chunks[i])) of the element stream.
struct StreamPlan {
  std::vector<Slice> chunks;
  std::vector<std::uint64_t> offsets;  // byte offsets within the stream
  std::uint64_t total_bytes = 0;

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks.size();
  }
};

/// Build the chunking used by the streaming operations: at least
/// `io_tasks` chunks (to exploit parallelism), each at most
/// `target_chunk_bytes` (to bound intermediate buffer memory).
[[nodiscard]] StreamPlan make_stream_plan(const Slice& section,
                                          std::size_t elem_size,
                                          int io_tasks,
                                          std::uint64_t target_chunk_bytes);

/// Streaming engine bound to a storage backend (for timing) and load
/// context. The engine is stateless with respect to arrays; one instance
/// per checkpoint/restart operation is typical.
class ArrayStreamer {
 public:
  /// `jitter` enables per-round lognormal timing noise drawn from each
  /// task's deterministic RNG stream (used by the benchmark harness to
  /// reproduce the paper's run-to-run spread). `recorder`, when non-null,
  /// receives per-round trace spans (exchange, in-flight I/O, worker
  /// CRC/write) — recording never touches the simulated clock.
  ArrayStreamer(const store::StorageBackend* storage, sim::LoadContext load,
                std::uint64_t target_chunk_bytes = support::kMiB,
                bool jitter = false, obs::Recorder* recorder = nullptr)
      : storage_(storage),
        load_(load),
        target_chunk_bytes_(target_chunk_bytes),
        jitter_(jitter),
        recorder_(recorder) {}

  /// COLLECTIVE: stream section `x` of `array` out to `file` starting at
  /// byte `file_offset`, with `io_tasks` tasks performing I/O
  /// (1 <= io_tasks <= group size). Returns bytes written (on all tasks).
  /// When `stream_crc` is non-null it receives a CRC-32C over the
  /// chunk-ordered stream contents (identical on every task) — the
  /// integrity fingerprint recorded in checkpoint metadata.
  std::uint64_t write_section(rt::TaskContext& ctx, const DistArray& array,
                              const Slice& x, store::FileHandle file,
                              std::uint64_t file_offset, int io_tasks,
                              std::uint32_t* stream_crc = nullptr) const;

  /// COLLECTIVE: stream section `x` in from `file`, scattering into the
  /// array's current distribution (all mapped copies updated).
  /// `stream_crc` receives the CRC of the bytes as read, computed the
  /// same way as write_section's — comparing the two detects torn or
  /// corrupted checkpoint files.
  std::uint64_t read_section(rt::TaskContext& ctx, DistArray& array,
                             const Slice& x, store::FileHandle file,
                             std::uint64_t file_offset, int io_tasks,
                             std::uint32_t* stream_crc = nullptr) const;

  /// COLLECTIVE: serial streaming through a sequential (append-only)
  /// channel — a socket- or tape-like stream with no seek capability.
  /// Task 0 performs all channel I/O; the other tasks only participate in
  /// the canonical redistribution. The byte stream is identical to the
  /// parallel form's file contents.
  std::uint64_t write_section_sequential(rt::TaskContext& ctx,
                                         const DistArray& array,
                                         const Slice& x,
                                         SequentialSink& sink) const;
  std::uint64_t read_section_sequential(rt::TaskContext& ctx,
                                        DistArray& array, const Slice& x,
                                        SequentialSource& source) const;

  /// Totals of one delta-block write; identical on every task.
  struct DeltaWriteResult {
    /// One record per stored block, ascending block order — the delta
    /// file's index contents (payload offsets already assigned).
    std::vector<DeltaBlockRecord> records;
    std::uint64_t raw_bytes = 0;
    std::uint64_t stored_bytes = 0;
  };

  /// COLLECTIVE: stream the dirty blocks (`dirty` indexes into `blocks`,
  /// the array's stream-order block plan) out to `file`'s payload region
  /// (starting at wire::kDeltaHeaderBytes), passing each block through
  /// the codec stage where write_section folds in the CRC: round r's
  /// blocks compress on a background worker while round r+1's exchange
  /// runs, and land with a pipelined write once the round's stored sizes
  /// have been agreed collectively (compressed sizes are data-dependent,
  /// so offsets cannot be precomputed). The caller (engine) writes the
  /// index and header afterwards. Simulated time is charged on STORED
  /// bytes — the codec's win shows up in checkpoint time.
  DeltaWriteResult write_delta_blocks(rt::TaskContext& ctx,
                                      const DistArray& array,
                                      const StreamPlan& blocks,
                                      const std::vector<std::uint64_t>& dirty,
                                      store::FileHandle file, int io_tasks,
                                      support::BlockCodec codec) const;

  /// COLLECTIVE: the restore inverse — read each indexed block's stored
  /// bytes, verify + decode on a background worker (overlapping the
  /// previous round's scatter exchange), and scatter the raw block into
  /// the array's current distribution. Applying records newer than the
  /// base naturally overwrites older bytes (newest wins per block).
  void apply_delta_blocks(rt::TaskContext& ctx, DistArray& array,
                          const StreamPlan& blocks,
                          const std::vector<DeltaBlockRecord>& records,
                          store::FileHandle file, int io_tasks) const;

 private:
  /// May be null: no time accounting (pure data movement).
  const store::StorageBackend* storage_;
  sim::LoadContext load_;
  std::uint64_t target_chunk_bytes_;
  bool jitter_;
  /// May be null: no trace recording (the zero-overhead default).
  obs::Recorder* recorder_;
};

}  // namespace drms::core
