// Content fingerprint of a distributed array — the detection half of
// incremental checkpointing. The paper (§6, citing Plank et al.'s memory
// exclusion) notes that optimizations like "incremental checkpointing
// that saves only modified pages" apply equally to DRMS checkpointing;
// here the unit of exclusion is a whole distributed array: arrays whose
// fingerprint is unchanged since the last checkpoint under the same
// prefix are not rewritten.
//
// The fingerprint is the CRC-32C of the rank-ordered list of per-task
// (assigned-section CRC, byte count) pairs. It is deterministic for a
// fixed distribution and changes whenever any assigned element changes;
// it is NOT comparable across different distributions (irrelevant for
// dirty detection, which happens within one run).
#pragma once

#include <cstdint>

#include "core/dist_array.hpp"
#include "rt/task_context.hpp"

namespace drms::core {

/// COLLECTIVE: identical result on every task.
[[nodiscard]] std::uint32_t array_fingerprint(rt::TaskContext& ctx,
                                              const DistArray& array);

}  // namespace drms::core
