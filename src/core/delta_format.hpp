// On-volume layout of a delta generation's per-array block file, plus the
// chain and dirty-block helpers shared by the engines, the catalog and
// the offline tools.
//
// A delta generation under prefix "gen" stores, per array:
//   gen.delta.<name> — [64-byte header][payload blocks][framed index]
//     header   magic "DDLT", version, block_bytes, total_blocks,
//              record_count, payload_bytes, raw_bytes, index_offset.
//              Written LAST (the payload and index land first), so a
//              torn write leaves a file the reader rejects outright.
//     payload  the dirty blocks' bytes, each run through the block codec
//              stage (raw fallback keeps blocks from ever expanding).
//     index    [u32 crc][u64 size][u64 count][records…] — one 44-byte
//              record per stored block: block index in the array's
//              stream-order block plan, raw/stored byte counts, payload
//              offset, codec id, and CRC-32C of both the raw and the
//              stored bytes.
// The meta (version 3) and commit manifest (version 2) carry the chain
// link: base_prefix names the generation this delta applies on top of.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dist_array.hpp"
#include "store/storage_backend.hpp"
#include "support/block_codec.hpp"
#include "support/byte_buffer.hpp"

namespace drms::core {

namespace wire {
inline constexpr std::uint32_t kDeltaMagic = 0x44444c54;  // "DDLT"
inline constexpr std::uint32_t kDeltaVersion = 1;
inline constexpr std::uint64_t kDeltaHeaderBytes = 64;
/// Safety bound on base-link walks: a longer chain is corrupt (cyclic or
/// runaway), not a plausible retention policy.
inline constexpr int kMaxChainDepth = 1024;
}  // namespace wire

/// One stored block in a delta file's index.
struct DeltaBlockRecord {
  std::uint64_t block_index = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t stored_bytes = 0;
  /// Offset within the payload region (i.e. relative to byte
  /// kDeltaHeaderBytes of the file).
  std::uint64_t payload_offset = 0;
  support::BlockCodec codec = support::BlockCodec::kRaw;
  std::uint32_t raw_crc = 0;
  std::uint32_t stored_crc = 0;
};

struct DeltaFileHeader {
  std::uint64_t block_bytes = 0;
  std::uint64_t total_blocks = 0;
  std::uint64_t record_count = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t raw_bytes = 0;
  /// File offset of the framed index (== kDeltaHeaderBytes + payload).
  std::uint64_t index_offset = 0;
};

[[nodiscard]] support::ByteBuffer encode_delta_header(
    const DeltaFileHeader& header);
[[nodiscard]] support::ByteBuffer encode_delta_index(
    const std::vector<DeltaBlockRecord>& records);

/// Reads and validates the header/index of one delta file; throws
/// CorruptCheckpoint on a torn or malformed file. `what` names the file
/// in error messages.
[[nodiscard]] DeltaFileHeader read_delta_header(const store::FileHandle& file,
                                                const std::string& what);
[[nodiscard]] std::vector<DeltaBlockRecord> read_delta_index(
    const store::FileHandle& file, const DeltaFileHeader& header,
    const std::string& what);

/// Indices (ascending) of the blocks of `blocks` (the array's
/// stream-order block plan over its global box) that any task's mutation
/// log marks dirty. Reads every task's log, so it must run at a barrier
/// (the engines call it right after their entry barrier); the result is
/// identical on every task because the logs live in shared memory.
[[nodiscard]] std::vector<std::uint64_t> collect_dirty_blocks(
    const DistArray& array, const std::vector<Slice>& blocks);

/// The chain of generations ending at `prefix`, base first (so
/// chain.front() is the full generation and chain.back() == prefix).
/// Every member must be committed with a readable meta; throws
/// CorruptCheckpoint on a missing/uncommitted base, a cycle, or a chain
/// deeper than wire::kMaxChainDepth.
[[nodiscard]] std::vector<std::string> resolve_checkpoint_chain(
    const store::StorageBackend& storage, const std::string& prefix);

/// Offline integrity check of one delta file: header/index structure and
/// sizes always; with `deep`, every stored block is read back, checked
/// against its stored CRC, decoded, and checked against its raw CRC.
/// Appends problems to `problems`; returns true when none were found.
bool verify_delta_file(const store::StorageBackend& storage,
                       const std::string& name, std::uint64_t expected_size,
                       bool deep, std::vector<std::string>& problems);

}  // namespace drms::core
