// Slices — ordered tuples of ranges describing d-dimensional array
// sections (§3.1). Includes the stream-order split operations used by the
// recursive partitioning algorithm of Figure 5(a).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/range.hpp"

namespace drms::core {

class Slice {
 public:
  /// Rank-0 slice (invalid for most operations; use the factories).
  Slice() = default;
  explicit Slice(std::vector<Range> ranges) : ranges_(std::move(ranges)) {}

  /// d-dimensional empty slice.
  [[nodiscard]] static Slice empty_of_rank(int rank);
  /// Full box [lower[k], upper[k]] per axis.
  [[nodiscard]] static Slice box(std::span<const Index> lower,
                                 std::span<const Index> upper);

  /// Rank d of the slice (the paper's |s| notation counts ranges).
  [[nodiscard]] int rank() const noexcept {
    return static_cast<int>(ranges_.size());
  }
  /// Number of elements: product of the range sizes.
  [[nodiscard]] Index element_count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return element_count() == 0; }

  [[nodiscard]] const Range& range(int axis) const;
  [[nodiscard]] const std::vector<Range>& ranges() const noexcept {
    return ranges_;
  }
  /// Copy with one axis replaced.
  [[nodiscard]] Slice with_range(int axis, Range r) const;

  /// Per-axis intersection (the paper's s*t).
  [[nodiscard]] Slice intersect(const Slice& other) const;

  [[nodiscard]] bool contains(std::span<const Index> point) const;
  /// True when every element of `other` is an element of *this.
  [[nodiscard]] bool covers(const Slice& other) const;

  /// Split into (lower, upper) halves of the COLUMN-MAJOR element stream:
  /// the slowest-varying axis with more than one element is halved, so the
  /// concatenation stream(lower) + stream(upper) equals stream(*this).
  /// Requires element_count() > 1.
  [[nodiscard]] std::pair<Slice, Slice> split_stream_half() const;

  /// Visit every multi-index in column-major order (axis 0 fastest).
  void for_each_column_major(
      const std::function<void(std::span<const Index>)>& fn) const;

  [[nodiscard]] std::string to_string() const;

  /// Wire encoding (rank + each range).
  void serialize(support::ByteBuffer& out) const;
  [[nodiscard]] static Slice deserialize(support::ByteBuffer& in);

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.ranges_ == b.ranges_;
  }

 private:
  std::vector<Range> ranges_;
};

[[nodiscard]] inline Slice operator*(const Slice& a, const Slice& b) {
  return a.intersect(b);
}

/// Recursive stream-order partition of `x` into at least `min_parts`
/// pieces, none larger than `max_elements` (Fig. 5a generalized to
/// non-power-of-two sizes). The concatenation of the parts' streams in
/// order equals the stream of `x`; empty parts are never produced. An
/// unsplittable slice (element_count <= 1) is returned whole.
[[nodiscard]] std::vector<Slice> partition_for_stream(const Slice& x,
                                                      Index min_parts,
                                                      Index max_elements);

}  // namespace drms::core
