#include "core/dist_spec.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/error.hpp"

namespace drms::core {

std::vector<int> factor_grid(int tasks, int dims) {
  DRMS_EXPECTS(tasks >= 1);
  DRMS_EXPECTS(dims >= 1);
  std::vector<int> grid(static_cast<std::size_t>(dims), 1);
  // Greedy: peel prime factors from largest to smallest, always assigning
  // to the currently smallest grid axis — yields near-cubic grids.
  std::vector<int> primes;
  int n = tasks;
  for (int p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      primes.push_back(p);
      n /= p;
    }
  }
  if (n > 1) {
    primes.push_back(n);
  }
  std::sort(primes.rbegin(), primes.rend());
  for (const int p : primes) {
    auto smallest = std::min_element(grid.begin(), grid.end());
    *smallest *= p;
  }
  std::sort(grid.begin(), grid.end());
  return grid;
}

DistSpec::DistSpec(Slice global_box, std::vector<TaskSection> sections)
    : box_(std::move(global_box)), sections_(std::move(sections)) {
  validate();
}

void DistSpec::validate() const {
  DRMS_EXPECTS_MSG(!sections_.empty(), "a distribution needs >= 1 task");
  DRMS_EXPECTS_MSG(box_.rank() >= 1, "global box must have rank >= 1");
  for (const auto& s : sections_) {
    DRMS_EXPECTS_MSG(s.assigned.rank() == box_.rank() &&
                         s.mapped.rank() == box_.rank(),
                     "section rank must match the global box rank");
    DRMS_EXPECTS_MSG(s.mapped.covers(s.assigned),
                     "assigned section must be a subset of mapped section");
    DRMS_EXPECTS_MSG(box_.covers(s.mapped),
                     "mapped section must lie within the global box");
  }
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    for (std::size_t j = i + 1; j < sections_.size(); ++j) {
      DRMS_EXPECTS_MSG(
          sections_[i].assigned.intersect(sections_[j].assigned).empty(),
          "assigned sections must be pairwise disjoint");
    }
  }
}

DistSpec DistSpec::block(const Slice& global_box,
                         std::span<const int> task_grid,
                         std::span<const Index> shadow) {
  const int d = global_box.rank();
  DRMS_EXPECTS_MSG(static_cast<int>(task_grid.size()) == d,
                   "task grid rank must match array rank");
  DRMS_EXPECTS_MSG(static_cast<int>(shadow.size()) == d,
                   "shadow width rank must match array rank");
  for (int k = 0; k < d; ++k) {
    DRMS_EXPECTS(task_grid[static_cast<std::size_t>(k)] >= 1);
    DRMS_EXPECTS(shadow[static_cast<std::size_t>(k)] >= 0);
    DRMS_EXPECTS_MSG(global_box.range(k).is_contiguous(),
                     "block distribution requires a contiguous global box");
  }
  const int tasks = std::accumulate(task_grid.begin(), task_grid.end(), 1,
                                    std::multiplies<>());

  std::vector<TaskSection> sections;
  sections.reserve(static_cast<std::size_t>(tasks));
  std::vector<int> coord(static_cast<std::size_t>(d), 0);
  for (int t = 0; t < tasks; ++t) {
    // Task t's grid coordinate, axis 0 fastest.
    {
      int rem = t;
      for (int k = 0; k < d; ++k) {
        const int q = task_grid[static_cast<std::size_t>(k)];
        coord[static_cast<std::size_t>(k)] = rem % q;
        rem /= q;
      }
    }
    std::vector<Range> assigned;
    std::vector<Range> mapped;
    assigned.reserve(static_cast<std::size_t>(d));
    mapped.reserve(static_cast<std::size_t>(d));
    for (int k = 0; k < d; ++k) {
      const Range& axis = global_box.range(k);
      const Index l = axis.first();
      const Index n_axis = axis.size();
      const int q = task_grid[static_cast<std::size_t>(k)];
      const int c = coord[static_cast<std::size_t>(k)];
      const Index lo = l + (static_cast<Index>(c) * n_axis) / q;
      const Index hi = l + (static_cast<Index>(c + 1) * n_axis) / q - 1;
      assigned.push_back(Range::contiguous(lo, hi));
      const Index w = shadow[static_cast<std::size_t>(k)];
      mapped.push_back(Range::contiguous(std::max(l, lo - w),
                                         std::min(axis.last(), hi + w)));
    }
    sections.push_back(
        TaskSection{Slice(std::move(assigned)), Slice(std::move(mapped))});
  }
  DistSpec spec(global_box, std::move(sections));
  spec.recipe_ = BlockRecipe{std::vector<int>(task_grid.begin(),
                                              task_grid.end()),
                             std::vector<Index>(shadow.begin(),
                                                shadow.end())};
  return spec;
}

DistSpec DistSpec::block_auto(const Slice& global_box, int tasks,
                              std::span<const Index> shadow) {
  const std::vector<int> grid = factor_grid(tasks, global_box.rank());
  return block(global_box, grid, shadow);
}

const TaskSection& DistSpec::section(int task) const {
  DRMS_EXPECTS(task >= 0 && task < task_count());
  return sections_[static_cast<std::size_t>(task)];
}

std::vector<Slice> DistSpec::assigned_slices() const {
  std::vector<Slice> out;
  out.reserve(sections_.size());
  for (const auto& s : sections_) {
    out.push_back(s.assigned);
  }
  return out;
}

std::vector<Slice> DistSpec::mapped_slices() const {
  std::vector<Slice> out;
  out.reserve(sections_.size());
  for (const auto& s : sections_) {
    out.push_back(s.mapped);
  }
  return out;
}

Index DistSpec::mapped_element_total() const noexcept {
  Index total = 0;
  for (const auto& s : sections_) {
    total += s.mapped.element_count();
  }
  return total;
}

Index DistSpec::assigned_element_total() const noexcept {
  Index total = 0;
  for (const auto& s : sections_) {
    total += s.assigned.element_count();
  }
  return total;
}

bool DistSpec::fully_assigned() const {
  // Assigned sections are disjoint, so coverage holds iff the element
  // counts add up to the box volume.
  return assigned_element_total() == box_.element_count();
}

DistSpec DistSpec::adjust(int new_tasks) const {
  if (!recipe_.has_value()) {
    throw support::Error(
        "drms_adjust: only block distributions can be adjusted "
        "automatically");
  }
  DRMS_EXPECTS(new_tasks >= 1);
  return block_auto(box_, new_tasks, recipe_->shadow);
}

std::string DistSpec::to_string() const {
  std::ostringstream os;
  os << "dist over " << box_.to_string() << " on " << task_count()
     << " tasks";
  for (int t = 0; t < task_count(); ++t) {
    os << "\n  task " << t << ": assigned "
       << sections_[static_cast<std::size_t>(t)].assigned.to_string()
       << " mapped "
       << sections_[static_cast<std::size_t>(t)].mapped.to_string();
  }
  return os.str();
}

}  // namespace drms::core
