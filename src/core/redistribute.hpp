// Data-preserving redistribution and inter-array assignment (§3.1).
#pragma once

#include "core/dist_array.hpp"
#include "rt/task_context.hpp"

namespace drms::core {

/// Change the distribution of `array` to `new_spec`, preserving the value
/// of every assigned element (the paper's drms_adjust + drms_distribute
/// path after a reconfigured restart, and the redistribution step inside
/// array section streaming).
///
/// COLLECTIVE: every task calls with the same `new_spec`. The group sizes
/// of the array and the context must match.
void redistribute(rt::TaskContext& ctx, DistArray& array,
                  const DistSpec& new_spec);

/// Refresh every task's shadow (ghost) cells from the owning tasks'
/// assigned sections — the self-assignment A = A, which the solvers run
/// once per iteration before applying their stencils.
///
/// COLLECTIVE.
void refresh_shadows(rt::TaskContext& ctx, DistArray& array);

/// The DRMS array assignment B = A for arrays of identical shape and
/// element size but arbitrary distributions. Every copy of each element of
/// B present in any task (assigned or mapped section) is updated
/// consistently.
///
/// COLLECTIVE.
void array_assign(rt::TaskContext& ctx, const DistArray& source,
                  DistArray& dest);

}  // namespace drms::core
