#include "core/local_array.hpp"

#include <cstring>

#include "support/error.hpp"

namespace drms::core {

LocalArray::LocalArray(Slice mapped, std::size_t elem_size)
    : mapped_(std::move(mapped)), elem_size_(elem_size) {
  DRMS_EXPECTS(elem_size_ > 0);
  DRMS_EXPECTS(mapped_.rank() >= 1);
  const int d = mapped_.rank();
  stride_.resize(static_cast<std::size_t>(d));
  Index stride = 1;
  for (int k = 0; k < d; ++k) {
    stride_[static_cast<std::size_t>(k)] = stride;
    stride *= mapped_.range(k).size();
  }
  data_.assign(static_cast<std::size_t>(stride * static_cast<Index>(
                                            elem_size_)),
               std::byte{0});
}

std::optional<std::uint64_t> LocalArray::offset_of(
    std::span<const Index> point) const {
  if (mapped_.rank() == 0 ||
      static_cast<int>(point.size()) != mapped_.rank()) {
    return std::nullopt;
  }
  Index off = 0;
  for (int k = 0; k < mapped_.rank(); ++k) {
    const auto pos = mapped_.range(k).position_of(point[
        static_cast<std::size_t>(k)]);
    if (!pos.has_value()) {
      return std::nullopt;
    }
    off += *pos * stride_[static_cast<std::size_t>(k)];
  }
  return static_cast<std::uint64_t>(off) * elem_size_;
}

std::vector<std::vector<Index>> LocalArray::position_tables(
    const Slice& s) const {
  DRMS_EXPECTS_MSG(s.rank() == mapped_.rank(),
                   "sub-slice rank must match the mapped section");
  std::vector<std::vector<Index>> tables(
      static_cast<std::size_t>(s.rank()));
  for (int k = 0; k < s.rank(); ++k) {
    const Range& sub = s.range(k);
    const Range& map = mapped_.range(k);
    auto& table = tables[static_cast<std::size_t>(k)];
    const Index n = sub.size();
    table.reserve(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      const auto pos = map.position_of(sub.at(i));
      DRMS_EXPECTS_MSG(pos.has_value(),
                       "sub-slice not covered by the mapped section");
      table.push_back(*pos);
    }
  }
  return tables;
}

namespace {

/// True when the positions form the run p, p+1, ..., p+n-1.
bool is_consecutive(const std::vector<Index>& positions) {
  for (std::size_t i = 1; i < positions.size(); ++i) {
    if (positions[i] != positions[i - 1] + 1) {
      return false;
    }
  }
  return true;
}

}  // namespace

void LocalArray::extract(const Slice& s, std::span<std::byte> out) const {
  if (s.empty()) {
    return;
  }
  const auto tables = position_tables(s);
  const std::uint64_t needed =
      static_cast<std::uint64_t>(s.element_count()) * elem_size_;
  DRMS_EXPECTS_MSG(out.size() >= needed, "extract output buffer too small");

  const int d = s.rank();
  const auto& t0 = tables[0];
  const bool run0 = is_consecutive(t0);
  const std::size_t run_bytes = t0.size() * elem_size_;

  std::vector<Index> pos(static_cast<std::size_t>(d), 0);
  std::size_t cursor = 0;
  for (;;) {
    Index base = 0;
    for (int k = 1; k < d; ++k) {
      base += tables[static_cast<std::size_t>(k)]
                    [static_cast<std::size_t>(
                        pos[static_cast<std::size_t>(k)])] *
              stride_[static_cast<std::size_t>(k)];
    }
    if (run0) {
      std::memcpy(out.data() + cursor,
                  data_.data() + static_cast<std::size_t>(base + t0[0]) *
                                     elem_size_,
                  run_bytes);
      cursor += run_bytes;
    } else {
      for (const Index p0 : t0) {
        std::memcpy(out.data() + cursor,
                    data_.data() +
                        static_cast<std::size_t>(base + p0) * elem_size_,
                    elem_size_);
        cursor += elem_size_;
      }
    }
    // Odometer over axes 1..d-1.
    int axis = 1;
    while (axis < d) {
      auto& p = pos[static_cast<std::size_t>(axis)];
      if (++p < static_cast<Index>(tables[static_cast<std::size_t>(axis)]
                                       .size())) {
        break;
      }
      p = 0;
      ++axis;
    }
    if (axis == d) {
      break;
    }
  }
  DRMS_ENSURES(cursor == needed);
}

void LocalArray::insert(const Slice& s, std::span<const std::byte> in) {
  if (s.empty()) {
    return;
  }
  if (log_ != nullptr) {
    log_->mark(s);
  }
  const auto tables = position_tables(s);
  const std::uint64_t needed =
      static_cast<std::uint64_t>(s.element_count()) * elem_size_;
  DRMS_EXPECTS_MSG(in.size() >= needed, "insert input buffer too small");

  const int d = s.rank();
  const auto& t0 = tables[0];
  const bool run0 = is_consecutive(t0);
  const std::size_t run_bytes = t0.size() * elem_size_;

  std::vector<Index> pos(static_cast<std::size_t>(d), 0);
  std::size_t cursor = 0;
  for (;;) {
    Index base = 0;
    for (int k = 1; k < d; ++k) {
      base += tables[static_cast<std::size_t>(k)]
                    [static_cast<std::size_t>(
                        pos[static_cast<std::size_t>(k)])] *
              stride_[static_cast<std::size_t>(k)];
    }
    if (run0) {
      std::memcpy(data_.data() + static_cast<std::size_t>(base + t0[0]) *
                                     elem_size_,
                  in.data() + cursor, run_bytes);
      cursor += run_bytes;
    } else {
      for (const Index p0 : t0) {
        std::memcpy(data_.data() +
                        static_cast<std::size_t>(base + p0) * elem_size_,
                    in.data() + cursor, elem_size_);
        cursor += elem_size_;
      }
    }
    int axis = 1;
    while (axis < d) {
      auto& p = pos[static_cast<std::size_t>(axis)];
      if (++p < static_cast<Index>(tables[static_cast<std::size_t>(axis)]
                                       .size())) {
        break;
      }
      p = 0;
      ++axis;
    }
    if (axis == d) {
      break;
    }
  }
  DRMS_ENSURES(cursor == needed);
}

double LocalArray::get_f64(std::span<const Index> point) const {
  DRMS_EXPECTS(elem_size_ == sizeof(double));
  const auto off = offset_of(point);
  DRMS_EXPECTS_MSG(off.has_value(), "point not in the mapped section");
  double v = 0;
  std::memcpy(&v, data_.data() + *off, sizeof v);
  return v;
}

void LocalArray::set_f64(std::span<const Index> point, double value) {
  DRMS_EXPECTS(elem_size_ == sizeof(double));
  const auto off = offset_of(point);
  DRMS_EXPECTS_MSG(off.has_value(), "point not in the mapped section");
  if (log_ != nullptr && !log_->all) {
    std::vector<Range> point_ranges;
    point_ranges.reserve(point.size());
    for (const Index v : point) {
      point_ranges.push_back(Range::single(v));
    }
    log_->mark(Slice(std::move(point_ranges)));
  }
  std::memcpy(data_.data() + *off, &value, sizeof value);
}

std::span<double> LocalArray::as_f64() {
  DRMS_EXPECTS(elem_size_ == sizeof(double));
  if (log_ != nullptr) {
    log_->mark_all();
  }
  return {reinterpret_cast<double*>(data_.data()),
          data_.size() / sizeof(double)};
}

std::span<const double> LocalArray::as_f64() const {
  DRMS_EXPECTS(elem_size_ == sizeof(double));
  return {reinterpret_cast<const double*>(data_.data()),
          data_.size() / sizeof(double)};
}

}  // namespace drms::core
