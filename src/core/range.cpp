#include "core/range.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace drms::core {

Range Range::contiguous(Index lo, Index hi) { return strided(lo, hi, 1); }

Range Range::strided(Index lo, Index hi, Index stride) {
  DRMS_EXPECTS_MSG(stride >= 1, "range stride must be positive");
  if (hi < lo) {
    return Range();
  }
  return Range(Regular{lo, stride, (hi - lo) / stride + 1});
}

Range Range::of_indices(std::vector<Index> indices) {
  for (std::size_t i = 1; i < indices.size(); ++i) {
    DRMS_EXPECTS_MSG(indices[i - 1] < indices[i],
                     "index list must be strictly increasing");
  }
  if (indices.empty()) {
    return Range();
  }
  // Normalize to the regular representation when the list happens to be
  // an arithmetic progression — keeps intersections on the fast path.
  if (indices.size() == 1) {
    return Range(Regular{indices[0], 1, 1});
  }
  const Index step = indices[1] - indices[0];
  bool regular = true;
  for (std::size_t i = 2; i < indices.size(); ++i) {
    if (indices[i] - indices[i - 1] != step) {
      regular = false;
      break;
    }
  }
  if (regular) {
    return Range(Regular{indices[0], step,
                         static_cast<Index>(indices.size())});
  }
  return Range(std::move(indices));
}

Index Range::size() const noexcept {
  if (const auto* r = std::get_if<Regular>(&rep_)) {
    return r->count;
  }
  return static_cast<Index>(std::get<std::vector<Index>>(rep_).size());
}

Index Range::at(Index i) const {
  DRMS_EXPECTS_MSG(i >= 0 && i < size(), "range position out of bounds");
  if (const auto* r = std::get_if<Regular>(&rep_)) {
    return r->lo + i * r->stride;
  }
  return std::get<std::vector<Index>>(rep_)[static_cast<std::size_t>(i)];
}

bool Range::contains(Index v) const noexcept {
  if (const auto* r = std::get_if<Regular>(&rep_)) {
    if (r->count == 0 || v < r->lo) {
      return false;
    }
    const Index offset = v - r->lo;
    return offset % r->stride == 0 && offset / r->stride < r->count;
  }
  const auto& v_list = std::get<std::vector<Index>>(rep_);
  return std::binary_search(v_list.begin(), v_list.end(), v);
}

std::optional<Index> Range::position_of(Index v) const noexcept {
  if (const auto* r = std::get_if<Regular>(&rep_)) {
    if (r->count == 0 || v < r->lo) {
      return std::nullopt;
    }
    const Index offset = v - r->lo;
    if (offset % r->stride != 0) {
      return std::nullopt;
    }
    const Index pos = offset / r->stride;
    if (pos >= r->count) {
      return std::nullopt;
    }
    return pos;
  }
  const auto& v_list = std::get<std::vector<Index>>(rep_);
  const auto it = std::lower_bound(v_list.begin(), v_list.end(), v);
  if (it == v_list.end() || *it != v) {
    return std::nullopt;
  }
  return static_cast<Index>(it - v_list.begin());
}

Range Range::intersect(const Range& other) const {
  if (empty() || other.empty()) {
    return Range();
  }
  const auto* a = std::get_if<Regular>(&rep_);
  const auto* b = std::get_if<Regular>(&other.rep_);
  if (a != nullptr && b != nullptr && a->stride == 1 && b->stride == 1) {
    // Contiguous-contiguous fast path: a contiguous result.
    const Index lo = std::max(a->lo, b->lo);
    const Index hi = std::min(a->lo + a->count - 1, b->lo + b->count - 1);
    return contiguous(lo, hi);
  }
  // General case: walk the smaller set, membership-test against the other.
  const Range& walk = size() <= other.size() ? *this : other;
  const Range& test = size() <= other.size() ? other : *this;
  std::vector<Index> out;
  const Index n = walk.size();
  out.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    const Index v = walk.at(i);
    if (test.contains(v)) {
      out.push_back(v);
    }
  }
  return of_indices(std::move(out));
}

Range Range::take(Index n) const {
  DRMS_EXPECTS(n >= 0 && n <= size());
  if (const auto* r = std::get_if<Regular>(&rep_)) {
    if (n == 0) return Range();
    return Range(Regular{r->lo, r->stride, n});
  }
  const auto& v_list = std::get<std::vector<Index>>(rep_);
  return of_indices(std::vector<Index>(v_list.begin(),
                                       v_list.begin() + n));
}

Range Range::drop(Index n) const {
  DRMS_EXPECTS(n >= 0 && n <= size());
  if (const auto* r = std::get_if<Regular>(&rep_)) {
    if (n == r->count) return Range();
    return Range(Regular{r->lo + n * r->stride, r->stride, r->count - n});
  }
  const auto& v_list = std::get<std::vector<Index>>(rep_);
  return of_indices(std::vector<Index>(v_list.begin() + n, v_list.end()));
}

std::pair<Range, Range> Range::split_half() const {
  const Index lower = (size() + 1) / 2;
  return {take(lower), drop(lower)};
}

bool Range::is_contiguous() const noexcept {
  const auto* r = std::get_if<Regular>(&rep_);
  return r != nullptr && (r->stride == 1 || r->count <= 1);
}

bool Range::is_regular() const noexcept {
  return std::holds_alternative<Regular>(rep_);
}

Index Range::stride() const noexcept {
  if (const auto* r = std::get_if<Regular>(&rep_)) {
    return r->stride;
  }
  return 0;
}

std::vector<Index> Range::to_vector() const {
  std::vector<Index> out;
  const Index n = size();
  out.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    out.push_back(at(i));
  }
  return out;
}

std::string Range::to_string() const {
  if (empty()) {
    return "{}";
  }
  if (const auto* r = std::get_if<Regular>(&rep_)) {
    std::ostringstream os;
    os << r->lo << ":" << r->lo + (r->count - 1) * r->stride;
    if (r->stride != 1) {
      os << ":" << r->stride;
    }
    return os.str();
  }
  std::ostringstream os;
  os << "{";
  const auto& v_list = std::get<std::vector<Index>>(rep_);
  for (std::size_t i = 0; i < v_list.size(); ++i) {
    os << (i > 0 ? "," : "") << v_list[i];
  }
  os << "}";
  return os.str();
}

void Range::serialize(support::ByteBuffer& out) const {
  if (const auto* r = std::get_if<Regular>(&rep_)) {
    out.put_u8(0);
    out.put_i64(r->lo);
    out.put_i64(r->stride);
    out.put_i64(r->count);
    return;
  }
  const auto& v = std::get<std::vector<Index>>(rep_);
  out.put_u8(1);
  out.put_u64(v.size());
  for (const Index x : v) {
    out.put_i64(x);
  }
}

Range Range::deserialize(support::ByteBuffer& in) {
  const std::uint8_t kind = in.get_u8();
  if (kind == 0) {
    const Index lo = in.get_i64();
    const Index stride = in.get_i64();
    const Index count = in.get_i64();
    DRMS_EXPECTS_MSG(stride >= 1 && count >= 0,
                     "malformed serialized range");
    if (count == 0) {
      return Range();
    }
    return strided(lo, lo + (count - 1) * stride, stride);
  }
  DRMS_EXPECTS_MSG(kind == 1, "malformed serialized range tag");
  const std::uint64_t n = in.get_u64();
  std::vector<Index> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v.push_back(in.get_i64());
  }
  return of_indices(std::move(v));
}

bool operator==(const Range& a, const Range& b) {
  if (a.size() != b.size()) {
    return false;
  }
  const Index n = a.size();
  for (Index i = 0; i < n; ++i) {
    if (a.at(i) != b.at(i)) {
      return false;
    }
  }
  return true;
}

}  // namespace drms::core
