#include "core/partial_restore.hpp"

#include "support/error.hpp"

namespace drms::core {

namespace {

/// Position (0-based) of value `v` within box range `r`; throws when the
/// section leaves the box's index space.
Index position_in(const Range& r, Index v) {
  const auto pos = r.position_of(v);
  DRMS_EXPECTS_MSG(pos.has_value(),
                   "stream_runs: section leaves the enclosing box");
  return *pos;
}

}  // namespace

std::vector<StreamRun> stream_runs(const Slice& box, const Slice& section,
                                   std::size_t elem_size) {
  DRMS_EXPECTS_MSG(box.rank() == section.rank(),
                   "stream_runs: rank mismatch");
  std::vector<StreamRun> runs;
  if (section.empty()) {
    return runs;
  }
  const int d = box.rank();

  // Column-major strides of the box, in elements (axis 0 fastest).
  std::vector<Index> stride(static_cast<std::size_t>(d), 1);
  for (int k = 1; k < d; ++k) {
    stride[static_cast<std::size_t>(k)] =
        stride[static_cast<std::size_t>(k - 1)] *
        box.range(k - 1).size();
  }

  // Maximal prefix of axes the section covers fully: those axes vary
  // freely inside one run. The first partial axis (the "run axis") must
  // be position-contiguous within the box so the run stays one
  // consecutive span of the stream; every axis past it contributes one
  // fixed coordinate per run.
  int run_axis = 0;
  while (run_axis < d && section.range(run_axis) == box.range(run_axis)) {
    ++run_axis;
  }
  Index run_elems = 0;
  Index run_lo_pos = 0;
  if (run_axis < d) {
    const Range& br = box.range(run_axis);
    const Range& sr = section.range(run_axis);
    run_lo_pos = position_in(br, sr.first());
    const Index run_hi_pos = position_in(br, sr.last());
    DRMS_EXPECTS_MSG(run_hi_pos - run_lo_pos + 1 == sr.size(),
                     "stream_runs: section range not position-contiguous "
                     "in the box");
    run_elems = stride[static_cast<std::size_t>(run_axis)] * sr.size();
  } else {
    // The section IS the box: one run over everything.
    run_elems = stride[static_cast<std::size_t>(d - 1)] *
                box.range(d - 1).size();
  }

  // Odometer over the outer axes' section ranges (column-major order so
  // the runs come out sorted by stream offset).
  std::vector<Index> outer_pos;  // current position per outer axis
  for (int k = run_axis + 1; k < d; ++k) {
    outer_pos.push_back(0);
  }
  const std::uint64_t run_bytes =
      static_cast<std::uint64_t>(run_elems) * elem_size;
  while (true) {
    StreamRun run;
    Index elem_offset = run_axis < d
                            ? run_lo_pos *
                                  stride[static_cast<std::size_t>(run_axis)]
                            : 0;
    std::vector<Range> ranges;
    ranges.reserve(static_cast<std::size_t>(d));
    for (int k = 0; k < run_axis; ++k) {
      ranges.push_back(box.range(k));
    }
    if (run_axis < d) {
      ranges.push_back(section.range(run_axis));
    }
    for (int k = run_axis + 1; k < d; ++k) {
      const Index v = section.range(k).at(
          outer_pos[static_cast<std::size_t>(k - run_axis - 1)]);
      ranges.push_back(Range::single(v));
      elem_offset +=
          position_in(box.range(k), v) * stride[static_cast<std::size_t>(k)];
    }
    run.slice = Slice(std::move(ranges));
    run.byte_offset = static_cast<std::uint64_t>(elem_offset) * elem_size;
    run.bytes = run_bytes;
    runs.push_back(std::move(run));

    // Advance the odometer (axis closest to the run axis fastest).
    int k = 0;
    const int outer = run_axis < d ? d - run_axis - 1 : 0;
    while (k < outer) {
      Index& p = outer_pos[static_cast<std::size_t>(k)];
      if (++p < section.range(run_axis + 1 + k).size()) {
        break;
      }
      p = 0;
      ++k;
    }
    if (k == outer) {
      break;
    }
  }
  return runs;
}

void RetainedJobState::drop_slot(int slot) {
  for (RetainedArray& a : arrays) {
    if (slot >= 0 && slot < static_cast<int>(a.retained.size())) {
      a.retained[static_cast<std::size_t>(slot)] = LocalArray{};
    }
  }
}

const RetainedArray* RetainedJobState::find(const std::string& name) const {
  for (const RetainedArray& a : arrays) {
    if (a.name == name) {
      return &a;
    }
  }
  return nullptr;
}

std::uint64_t RetainedJobState::retained_bytes() const {
  std::uint64_t total = 0;
  for (const RetainedArray& a : arrays) {
    for (const LocalArray& l : a.retained) {
      total += l.byte_size();
    }
  }
  return total;
}

}  // namespace drms::core
