// Public DRMS application API — the C++ binding of the paper's
// programming interface (Table 2 and Figure 1):
//
//   drms_initialize            -> DrmsContext::initialize()
//   drms_create_distribution   -> DistSpec::block / block_auto
//   drms_distribute            -> DrmsContext::distribute()
//   drms_reconfig_checkpoint   -> DrmsContext::reconfig_checkpoint()
//   drms_reconfig_chkenable    -> DrmsContext::reconfig_chkenable()
//   drms_adjust                -> DistSpec::adjust()
//
// A DrmsProgram holds the state shared by all tasks of one application
// run (array registry, environment, accumulated timings, the
// system-initiated checkpoint-enable flag); each task wraps it in a
// DrmsContext together with its rt::TaskContext and its own
// ReplicatedStore.
//
// Restart model (the substitution for the paper's stack-restoring
// restart, documented in DESIGN.md): a restarted program re-executes its
// prologue — registering the same replicated variables and declaring the
// same arrays — and initialize() overwrites the replicated variables
// (including the application's loop counters) from the checkpoint.
// distribute() then loads each array's data for whatever distribution the
// program specifies, and the first reconfig_checkpoint() call reports
// status=Restarted with the task-count delta instead of writing a new
// checkpoint, exactly as in Figure 1's skeleton.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/drms_checkpoint.hpp"
#include "core/partial_restore.hpp"
#include "core/spmd_checkpoint.hpp"
#include "core/steering.hpp"
#include "store/storage_backend.hpp"
#include "rt/task_context.hpp"
#include "sim/cost_model.hpp"

namespace drms::core {

/// How checkpoints are taken: the reconfigurable DRMS scheme or the
/// conventional per-task SPMD baseline.
enum class CheckpointMode { kDrms, kSpmd };

/// Result of a reconfig_checkpoint call (the paper's status/delta output
/// arguments).
enum class CheckpointStatus {
  /// Execution continues after taking (or skipping) a checkpoint.
  kContinued,
  /// Execution is resuming from an archived state; no checkpoint was
  /// written by this call.
  kRestarted,
};

struct ReconfigResult {
  CheckpointStatus status = CheckpointStatus::kContinued;
  /// new task count - checkpoint task count; meaningful when restarted.
  int delta = 0;
  /// True when a checkpoint was actually written by this call.
  bool checkpoint_written = false;
};

/// Environment of one application run.
struct DrmsEnv {
  /// Checkpoint storage; timing is charged through its primitives.
  store::StorageBackend* storage = nullptr;
  /// Machine cost model for application compute accounting (the solvers'
  /// iteration time). Null: no compute accounting. Storage timing does
  /// NOT come from here — it comes from the backend.
  const sim::CostModel* cost = nullptr;
  bool jitter = false;
  /// Non-empty: restart from this checkpoint prefix at initialize().
  std::string restart_prefix;
  CheckpointMode mode = CheckpointMode::kDrms;
  /// Parallel-streaming width for DRMS array I/O (0 = every task).
  int io_tasks = 0;
  std::uint64_t target_chunk_bytes = support::kMiB;
  /// Incremental checkpointing (DRMS mode): arrays with an unchanged
  /// content fingerprint keep their file from the previous checkpoint
  /// under the same prefix instead of being restreamed.
  bool incremental = false;
  /// Block-level delta generations (DRMS mode): arrays get runtime dirty
  /// tracking, and checkpoints between periodic fulls store only the
  /// dirtied blocks (codec-compressed) chained to the latest full base.
  /// Default off — all on-volume formats stay byte-identical. Ignores
  /// `incremental` while on. See DeltaOptions for the knobs' semantics.
  bool delta = false;
  int delta_full_every_k = 4;
  std::uint64_t delta_block_bytes = 256 * support::kKiB;
  support::BlockCodec delta_codec = support::BlockCodec::kLz;
  /// Non-null: trace spans and metrics from every engine operation land
  /// here (see drms::obs). Null (the default) records nothing and adds
  /// no overhead; recording never perturbs simulated time.
  obs::Recorder* recorder = nullptr;
  /// Non-null (DRMS mode): every successful checkpoint additionally
  /// captures a RetainedJobState snapshot — each task's assigned array
  /// sections, bit-identical to what just committed — enabling a later
  /// partial restart. Owned by the recovery supervisor; null (the
  /// default) changes nothing.
  RetainedJobState* retain = nullptr;
  /// Non-null: this restart is PARTIAL-scope. distribute() then loads
  /// only the lost slots' sections from storage and fills the surviving
  /// slots' sections from the retained snapshot via exchange_sections
  /// (zero checkpoint reads for survivor data). Null (the default): full
  /// restore.
  const PartialRestorePlan* partial = nullptr;
};

class DrmsContext;

/// Shared per-run state. Construct once, before TaskGroup::run.
class DrmsProgram {
 public:
  DrmsProgram(std::string app_name, DrmsEnv env,
              AppSegmentModel segment_model, int task_count);

  DrmsProgram(const DrmsProgram&) = delete;
  DrmsProgram& operator=(const DrmsProgram&) = delete;

  [[nodiscard]] const std::string& app_name() const noexcept {
    return app_name_;
  }
  [[nodiscard]] const DrmsEnv& env() const noexcept { return env_; }
  [[nodiscard]] const AppSegmentModel& segment_model() const noexcept {
    return segment_model_;
  }

  /// System-initiated checkpointing: arm the enabling signal; the next
  /// reconfig_chkenable() call in the application will take a checkpoint
  /// and consume the signal. Thread-safe (called by the JSA/RC side).
  void enable_checkpoint() { checkpoint_enabled_.store(true); }

  /// Timings of the last checkpoint/restart (valid after the run; every
  /// task observed identical values thanks to barrier clock sync).
  [[nodiscard]] CheckpointTiming last_checkpoint_timing() const;
  [[nodiscard]] RestartTiming last_restart_timing() const;
  /// Incremental-checkpoint statistics of the last write (when
  /// env.incremental is on).
  [[nodiscard]] IncrementalState incremental_state() const;
  /// Delta-chain state after the last write (when env.delta is on).
  [[nodiscard]] DeltaChainState delta_chain_state() const;
  /// Number of checkpoints written during the run.
  [[nodiscard]] int checkpoints_written() const noexcept {
    return checkpoints_written_.load();
  }

 private:
  friend class DrmsContext;

  std::string app_name_;
  DrmsEnv env_;
  AppSegmentModel segment_model_;
  int task_count_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<DistArray>> arrays_;
  std::atomic<bool> checkpoint_enabled_{false};
  std::atomic<int> checkpoints_written_{0};
  CheckpointTiming last_checkpoint_;
  RestartTiming last_restart_;
  /// Meta of the checkpoint being restored (set during initialize()).
  std::optional<CheckpointMeta> restart_meta_;
  /// Fingerprints between incremental checkpoints. The engine reads it on
  /// every task concurrently and mutates it on task 0 between barriers,
  /// so no additional locking is required during a collective write.
  IncrementalState incremental_state_;
  /// Live delta chain between checkpoints (same ownership discipline).
  DeltaChainState delta_chain_;
};

class DrmsContext {
 public:
  DrmsContext(DrmsProgram& program, rt::TaskContext& ctx);

  /// This task's replicated-variable registry. Register every replicated
  /// variable BEFORE calling initialize().
  [[nodiscard]] ReplicatedStore& store() noexcept { return store_; }

  /// drms_initialize: set up the run time and, when the environment names
  /// a restart prefix, load the checkpointed data segment (restoring the
  /// registered replicated variables). COLLECTIVE.
  void initialize();

  /// True when this run resumed from a checkpoint.
  [[nodiscard]] bool restarted() const noexcept { return restarted_; }
  /// True when at least one array was restored through the partial-scope
  /// path (env.partial matched the retained snapshot).
  [[nodiscard]] bool partial_restored() const noexcept {
    return partial_restored_;
  }
  /// Task count that took the checkpoint (0 when not restarted).
  [[nodiscard]] int checkpoint_task_count() const noexcept;
  /// size() - checkpoint_task_count().
  [[nodiscard]] int delta() const noexcept;

  /// Declare a distributed array (idempotent across tasks: the first
  /// caller creates it, later callers validate and share it).
  DistArray& create_array(const std::string& name,
                          std::span<const Index> lower,
                          std::span<const Index> upper,
                          std::size_t elem_size = sizeof(double));
  [[nodiscard]] DistArray& array(const std::string& name);

  /// drms_distribute: install a distribution. When the program is
  /// restarting, additionally loads the array's checkpointed data under
  /// the new distribution (DRMS mode). COLLECTIVE.
  void distribute(DistArray& array, const DistSpec& spec);

  /// drms_reconfig_checkpoint: mandatory checkpoint (Figure 1 semantics —
  /// on the first call after a restart, reports Restarted instead of
  /// writing). COLLECTIVE.
  ReconfigResult reconfig_checkpoint(const std::string& prefix);

  /// drms_reconfig_chkenable: checkpoint only if the system has armed the
  /// enabling signal (DrmsProgram::enable_checkpoint). COLLECTIVE.
  ReconfigResult reconfig_chkenable(const std::string& prefix);

  /// Computational steering: COLLECTIVE — drain the channel's pending
  /// requests (fetches return the distribution-independent stream of the
  /// requested section; stores scatter stream-ordered bytes into it) and
  /// fulfil them. Call at steering points, typically next to the SOPs.
  /// Returns the number of requests serviced.
  int service_steering(SteeringChannel& channel);

  /// Account `seconds` of application compute time on this task.
  void charge_compute(double seconds) { ctx_.charge(seconds); }

  [[nodiscard]] rt::TaskContext& task() noexcept { return ctx_; }
  [[nodiscard]] int rank() const noexcept { return ctx_.rank(); }
  [[nodiscard]] int size() const noexcept { return ctx_.size(); }

 private:
  [[nodiscard]] sim::LoadContext make_load_context() const;
  [[nodiscard]] std::vector<DistArray*> array_list() const;
  ReconfigResult do_checkpoint(const std::string& prefix);
  /// COLLECTIVE: partial-scope restore of one array — lost slots' sections
  /// read from storage, surviving slots' sections adopted from the
  /// retained snapshot.
  void partial_restore_array(DrmsCheckpoint& engine,
                             const PartialRestorePlan& plan,
                             const RetainedArray& ra, DistArray& array,
                             RestartTiming& timing);
  /// COLLECTIVE: snapshot every array's assigned sections into `retain`
  /// right after a generation committed under `prefix`.
  void capture_retained(RetainedJobState& retain, const std::string& prefix,
                        std::span<DistArray* const> arrays);

  DrmsProgram& program_;
  rt::TaskContext& ctx_;
  ReplicatedStore store_;
  bool initialized_ = false;
  bool restarted_ = false;
  bool just_restarted_ = false;
  bool partial_restored_ = false;
  std::int64_t sop_counter_ = 0;
  std::optional<CheckpointMeta> restart_meta_;
  SpmdRestoreCursor spmd_cursor_;
  RestartTiming restart_timing_;
  /// Arrays whose checkpointed contents this task has loaded this run.
  /// Task-local on purpose: distribute() is collective, and every task
  /// must take the same load-or-skip branch (SPMD discipline) — a shared
  /// set would let only the first task enter the collective restore.
  std::set<std::string> loaded_arrays_;
};

}  // namespace drms::core
