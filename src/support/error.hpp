// Error and contract machinery shared by every DRMS subsystem.
//
// All recoverable failures are reported with exceptions derived from
// drms::support::Error; contract violations (programming errors) throw
// ContractViolation so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace drms::support {

/// Base class for every error raised by the DRMS library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Violation of a precondition/postcondition/invariant. Indicates a bug in
/// the caller (or the library), not an environmental failure.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// Failure in the simulated I/O layer (missing file, bad offset, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An I/O failure expected to succeed on retry (dropped request, brief
/// server hiccup). The checkpoint engines retry these with bounded
/// backoff; every other IoError propagates immediately.
class TransientIoError : public IoError {
 public:
  explicit TransientIoError(const std::string& what) : IoError(what) {}
};

/// Malformed or corrupted checkpoint data (bad magic, CRC mismatch, ...).
class CorruptCheckpoint : public Error {
 public:
  explicit CorruptCheckpoint(const std::string& what) : Error(what) {}
};

/// Raised inside application tasks when the runtime tears a task group
/// down (e.g. injected processor failure). Not derived from Error on
/// purpose: application-level catch(const Error&) blocks must not swallow
/// a kill request.
class TaskKilled {
 public:
  explicit TaskKilled(std::string reason) : reason_(std::move(reason)) {}
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

 private:
  std::string reason_;
};

namespace detail {
[[noreturn]] void raise_contract_violation(std::string_view kind,
                                           std::string_view condition,
                                           std::string_view file, int line,
                                           std::string_view message);
}  // namespace detail

}  // namespace drms::support

/// Precondition check. Always on (the library is a simulator; correctness
/// trumps the branch cost).
#define DRMS_EXPECTS(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::drms::support::detail::raise_contract_violation(                    \
          "precondition", #cond, __FILE__, __LINE__, "");                   \
    }                                                                       \
  } while (false)

/// Precondition check with an explanatory message.
#define DRMS_EXPECTS_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::drms::support::detail::raise_contract_violation(                    \
          "precondition", #cond, __FILE__, __LINE__, (msg));                \
    }                                                                       \
  } while (false)

/// Invariant / postcondition check.
#define DRMS_ENSURES(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::drms::support::detail::raise_contract_violation(                    \
          "invariant", #cond, __FILE__, __LINE__, "");                      \
    }                                                                       \
  } while (false)
