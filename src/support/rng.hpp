// Deterministic pseudo-random number generation. Everything that needs
// randomness (timing jitter in the cost model, synthetic workload data,
// property-test inputs) takes a seeded Rng so runs are reproducible.
#pragma once

#include <cstdint>

namespace drms::support {

/// xoshiro256** — fast, high-quality, and trivially seedable via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream stays position-independent).
  [[nodiscard]] double next_gaussian() noexcept;

  /// Lognormal multiplicative jitter centered on 1.0 with the given sigma
  /// (sigma = 0.1 gives ~10% run-to-run spread) — used for timing noise.
  [[nodiscard]] double jitter(double sigma) noexcept;

  /// Derive an independent child generator (e.g. one per task).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace drms::support
