// Block codecs for delta checkpoint generations — compress fixed-size
// dirty blocks inside the pipelined streamer pass, exactly where the CRC
// already folds in, so compression overlaps exchange/I/O.
//
// Three codecs share one wire contract (decode(encode(x)) == x):
//   kRaw      identity — the fallback every encoder degrades to when its
//             output would not be smaller than the input, so stored
//             blocks never expand.
//   kZeroRle  run-length encoding of zero bytes: solver state is full of
//             zero-initialized halo/padding regions, and a zero run
//             collapses to a 5-byte record.
//   kLz       byte-oriented LZSS: control byte carrying 8 literal/match
//             flags, matches are (u16 back-distance, u8 length-4) over a
//             64 KiB window — cheap, portable, deterministic.
// Like the CRC-32C kernels, codecs are runtime-dispatched by value and
// every codec is available on every host; the codec id is recorded per
// block in the delta index so readers never guess.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "support/byte_buffer.hpp"

namespace drms::support {

enum class BlockCodec : std::uint8_t {
  kRaw = 0,
  kZeroRle = 1,
  kLz = 2,
};

[[nodiscard]] const char* to_string(BlockCodec codec) noexcept;

/// Parses the names printed by to_string ("raw", "zero_rle", "lz").
[[nodiscard]] std::optional<BlockCodec> block_codec_from_name(
    std::string_view name) noexcept;

/// Encodes `raw` with the requested codec, appending to `out`, and
/// returns the codec actually used: when the requested codec would not
/// shrink the block it falls back to kRaw (a plain copy), so stored
/// blocks are never larger than their raw bytes.
[[nodiscard]] BlockCodec block_encode(BlockCodec requested,
                                      std::span<const std::byte> raw,
                                      ByteBuffer& out);

/// Decodes a block stored with `codec`, appending exactly `raw_bytes`
/// bytes to `out`. Throws CorruptCheckpoint when the stored bytes are
/// malformed or do not decode to `raw_bytes`.
void block_decode(BlockCodec codec, std::span<const std::byte> stored,
                  std::uint64_t raw_bytes, ByteBuffer& out);

}  // namespace drms::support
