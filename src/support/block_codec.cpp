#include "support/block_codec.hpp"

#include <cstring>
#include <vector>

#include "support/error.hpp"

namespace drms::support {

namespace {

// ---- zero-RLE ------------------------------------------------------------
//
// Record stream: [u8 kind][u32 len] (+ len literal bytes when kind==1).
// kind 0 is a run of `len` zero bytes. Runs shorter than the record
// overhead stay inside the surrounding literal.

constexpr std::size_t kZeroRunMin = 8;
constexpr std::uint8_t kRleZeros = 0;
constexpr std::uint8_t kRleLiteral = 1;

void rle_put_literal(std::span<const std::byte> lit, ByteBuffer& out) {
  if (lit.empty()) {
    return;
  }
  out.put_u8(kRleLiteral);
  out.put_u32(static_cast<std::uint32_t>(lit.size()));
  out.append(lit);
}

void zero_rle_encode(std::span<const std::byte> raw, ByteBuffer& out) {
  std::size_t lit_start = 0;
  std::size_t i = 0;
  while (i < raw.size()) {
    if (raw[i] != std::byte{0}) {
      ++i;
      continue;
    }
    std::size_t run_end = i;
    while (run_end < raw.size() && raw[run_end] == std::byte{0}) {
      ++run_end;
    }
    if (run_end - i >= kZeroRunMin) {
      rle_put_literal(raw.subspan(lit_start, i - lit_start), out);
      out.put_u8(kRleZeros);
      out.put_u32(static_cast<std::uint32_t>(run_end - i));
      lit_start = run_end;
    }
    i = run_end;
  }
  rle_put_literal(raw.subspan(lit_start), out);
}

void zero_rle_decode(std::span<const std::byte> stored,
                     std::uint64_t raw_bytes, ByteBuffer& out) {
  ByteBuffer in(stored);
  std::uint64_t produced = 0;
  while (in.remaining() > 0) {
    if (in.remaining() < 5) {
      throw CorruptCheckpoint("zero_rle block ends inside a record header");
    }
    const std::uint8_t kind = in.get_u8();
    const std::uint32_t len = in.get_u32();
    if (produced + len > raw_bytes) {
      throw CorruptCheckpoint("zero_rle block decodes past its raw size");
    }
    if (kind == kRleLiteral && in.remaining() < len) {
      throw CorruptCheckpoint("zero_rle block ends inside a literal run");
    }
    std::span<std::byte> dst = out.append_uninitialized(len);
    if (kind == kRleZeros) {
      std::memset(dst.data(), 0, dst.size());
    } else if (kind == kRleLiteral) {
      in.read_raw(dst.data(), dst.size());
    } else {
      throw CorruptCheckpoint("zero_rle block has an unknown record kind");
    }
    produced += len;
  }
  if (produced != raw_bytes) {
    throw CorruptCheckpoint("zero_rle block decodes short of its raw size");
  }
}

// ---- LZ (byte-oriented LZSS) ---------------------------------------------
//
// Token stream: a control byte carries flags for the next 8 tokens
// (LSB first). Flag 0: one literal byte. Flag 1: a match
// [u16 back-distance][u8 length-4], distance 1..65535 back into the
// already-decoded output, length 4..259. Matches are found with a
// single-probe hash head over 4-byte sequences — deterministic and cheap,
// which matters more here than ratio (the codec runs inside the
// checkpoint write pass).

constexpr std::size_t kLzMinMatch = 4;
constexpr std::size_t kLzMaxMatch = 259;
constexpr std::size_t kLzWindow = 65535;
constexpr std::size_t kLzHashBits = 15;

std::uint32_t lz_hash(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kLzHashBits);
}

void lz_encode(std::span<const std::byte> raw, ByteBuffer& out) {
  std::vector<std::size_t> head(std::size_t{1} << kLzHashBits, SIZE_MAX);
  std::size_t i = 0;
  while (i < raw.size()) {
    // Open a control byte; patch it after its 8 tokens are emitted.
    const std::size_t control_at = out.size();
    out.put_u8(0);
    std::uint8_t control = 0;
    for (int bit = 0; bit < 8 && i < raw.size(); ++bit) {
      std::size_t match_len = 0;
      std::size_t match_pos = 0;
      if (i + kLzMinMatch <= raw.size()) {
        const std::uint32_t h = lz_hash(raw.data() + i);
        const std::size_t cand = head[h];
        head[h] = i;
        if (cand != SIZE_MAX && i - cand <= kLzWindow) {
          const std::size_t limit = std::min(raw.size() - i, kLzMaxMatch);
          std::size_t len = 0;
          while (len < limit && raw[cand + len] == raw[i + len]) {
            ++len;
          }
          if (len >= kLzMinMatch) {
            match_len = len;
            match_pos = cand;
          }
        }
      }
      if (match_len > 0) {
        control |= static_cast<std::uint8_t>(1u << bit);
        const std::uint16_t dist = static_cast<std::uint16_t>(i - match_pos);
        out.put_u8(static_cast<std::uint8_t>(dist & 0xff));
        out.put_u8(static_cast<std::uint8_t>(dist >> 8));
        out.put_u8(static_cast<std::uint8_t>(match_len - kLzMinMatch));
        // Seed the hash head across the matched span so later matches can
        // reference into it (skip the last 3 bytes: no full 4-byte key).
        const std::size_t seed_end =
            std::min(i + match_len, raw.size() - std::min(raw.size(),
                                                          kLzMinMatch - 1));
        for (std::size_t p = i + 1; p < seed_end; ++p) {
          head[lz_hash(raw.data() + p)] = p;
        }
        i += match_len;
      } else {
        out.put_u8(static_cast<std::uint8_t>(raw[i]));
        ++i;
      }
    }
    out.writable_bytes()[control_at] = std::byte{control};
  }
}

void lz_decode(std::span<const std::byte> stored, std::uint64_t raw_bytes,
               ByteBuffer& out) {
  const std::size_t out_start = out.size();
  ByteBuffer in(stored);
  std::uint64_t produced = 0;
  while (produced < raw_bytes) {
    if (in.remaining() == 0) {
      throw CorruptCheckpoint("lz block ends before its raw size");
    }
    const std::uint8_t control = in.get_u8();
    for (int bit = 0; bit < 8 && produced < raw_bytes; ++bit) {
      if (in.remaining() < (((control >> bit) & 1u) != 0 ? 3u : 1u)) {
        throw CorruptCheckpoint("lz block ends inside a token");
      }
      if ((control >> bit) & 1u) {
        const std::uint16_t lo = in.get_u8();
        const std::uint16_t hi = in.get_u8();
        const std::size_t dist = static_cast<std::size_t>(lo | (hi << 8));
        const std::size_t len = kLzMinMatch + in.get_u8();
        if (dist == 0 || dist > produced) {
          throw CorruptCheckpoint("lz match reaches before the block start");
        }
        if (produced + len > raw_bytes) {
          throw CorruptCheckpoint("lz block decodes past its raw size");
        }
        // Byte-by-byte: matches may overlap their own output (dist < len).
        std::span<std::byte> dst = out.append_uninitialized(len);
        const std::byte* src =
            out.data() + out_start + produced - dist;
        for (std::size_t k = 0; k < len; ++k) {
          dst[k] = src[k];
        }
        produced += len;
      } else {
        out.append_uninitialized(1)[0] = std::byte{in.get_u8()};
        produced += 1;
      }
    }
  }
}

}  // namespace

const char* to_string(BlockCodec codec) noexcept {
  switch (codec) {
    case BlockCodec::kRaw:
      return "raw";
    case BlockCodec::kZeroRle:
      return "zero_rle";
    case BlockCodec::kLz:
      return "lz";
  }
  return "unknown";
}

std::optional<BlockCodec> block_codec_from_name(
    std::string_view name) noexcept {
  if (name == "raw") {
    return BlockCodec::kRaw;
  }
  if (name == "zero_rle") {
    return BlockCodec::kZeroRle;
  }
  if (name == "lz") {
    return BlockCodec::kLz;
  }
  return std::nullopt;
}

BlockCodec block_encode(BlockCodec requested, std::span<const std::byte> raw,
                        ByteBuffer& out) {
  if (requested != BlockCodec::kRaw) {
    const std::size_t mark = out.size();
    if (requested == BlockCodec::kZeroRle) {
      zero_rle_encode(raw, out);
    } else {
      lz_encode(raw, out);
    }
    if (out.size() - mark < raw.size()) {
      return requested;
    }
    // Not smaller: drop the attempt and store the raw bytes instead.
    out.resize_uninitialized(mark);
  }
  out.append(raw);
  return BlockCodec::kRaw;
}

void block_decode(BlockCodec codec, std::span<const std::byte> stored,
                  std::uint64_t raw_bytes, ByteBuffer& out) {
  switch (codec) {
    case BlockCodec::kRaw:
      if (stored.size() != raw_bytes) {
        throw CorruptCheckpoint("raw block size does not match its raw size");
      }
      out.append(stored);
      return;
    case BlockCodec::kZeroRle:
      zero_rle_decode(stored, raw_bytes, out);
      return;
    case BlockCodec::kLz:
      lz_decode(stored, raw_bytes, out);
      return;
  }
  throw CorruptCheckpoint("unknown block codec id");
}

}  // namespace drms::support
