#include "support/byte_buffer.hpp"

#include <bit>
#include <cstring>

#include "support/error.hpp"

namespace drms::support {

namespace {

// The simulator targets little-endian hosts (x86-64, AArch64 in LE mode);
// on a big-endian host the scalar codecs below would need byte swaps.
static_assert(std::endian::native == std::endian::little,
              "DRMS serialization assumes a little-endian host");

}  // namespace

void ByteBuffer::append_raw(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  data_.insert(data_.end(), b, b + n);
}

void ByteBuffer::put_u8(std::uint8_t v) { append_raw(&v, sizeof v); }
void ByteBuffer::put_u32(std::uint32_t v) { append_raw(&v, sizeof v); }
void ByteBuffer::put_u64(std::uint64_t v) { append_raw(&v, sizeof v); }
void ByteBuffer::put_i64(std::int64_t v) { append_raw(&v, sizeof v); }
void ByteBuffer::put_f64(double v) { append_raw(&v, sizeof v); }

void ByteBuffer::put_string(std::string_view s) {
  put_u64(s.size());
  append_raw(s.data(), s.size());
}

void ByteBuffer::put_bytes(std::span<const std::byte> bytes) {
  put_u64(bytes.size());
  append(bytes);
}

void ByteBuffer::raise_underflow(const char* what,
                                 std::uint64_t wanted) const {
  throw ContractViolation(
      "ByteBuffer underflow: " + std::string(what) + " of " +
      std::to_string(wanted) + " bytes at cursor " + std::to_string(cursor_) +
      " exceeds buffer size " + std::to_string(data_.size()) + " (" +
      std::to_string(data_.size() - cursor_) + " readable)");
}

void ByteBuffer::read_raw(void* p, std::size_t n) {
  require_readable("read_raw", n);
  std::memcpy(p, data_.data() + cursor_, n);
  cursor_ += n;
}

std::uint8_t ByteBuffer::get_u8() {
  std::uint8_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::uint32_t ByteBuffer::get_u32() {
  std::uint32_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::uint64_t ByteBuffer::get_u64() {
  std::uint64_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::int64_t ByteBuffer::get_i64() {
  std::int64_t v = 0;
  read_raw(&v, sizeof v);
  return v;
}

double ByteBuffer::get_f64() {
  double v = 0;
  read_raw(&v, sizeof v);
  return v;
}

std::string ByteBuffer::get_string() {
  const std::uint64_t n = get_u64();
  require_readable("get_string", n);
  std::string s(static_cast<std::size_t>(n), '\0');
  read_raw(s.data(), static_cast<std::size_t>(n));
  return s;
}

std::vector<std::byte> ByteBuffer::get_bytes() {
  const std::uint64_t n = get_u64();
  require_readable("get_bytes", n);
  std::vector<std::byte> out(static_cast<std::size_t>(n));
  if (n > 0) {
    read_raw(out.data(), static_cast<std::size_t>(n));
  }
  return out;
}

}  // namespace drms::support
