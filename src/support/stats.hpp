// Small running-statistics helpers used by the benchmark harnesses
// (the paper reports mean and standard deviation over 10 runs).
#pragma once

#include <cstddef>
#include <span>

namespace drms::support {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot helpers.
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev_of(std::span<const double> xs) noexcept;

}  // namespace drms::support
