#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace drms::support {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_io_mutex;

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, std::string_view subsystem,
              std::string_view message) {
  if (level > log_level()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::clog << "[" << level_name(level) << "] [" << subsystem << "] "
            << message << '\n';
}

}  // namespace drms::support
