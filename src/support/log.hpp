// Minimal leveled logger. Quiet by default (tests and benches produce
// their own structured output); raise the level to trace the runtime,
// the PIOFS simulator, or the recovery protocol.
#pragma once

#include <sstream>
#include <string_view>

namespace drms::support {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global threshold; messages above it are discarded. Thread-safe.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a line (subsystem tag + message) if `level` passes the threshold.
void log_line(LogLevel level, std::string_view subsystem,
              std::string_view message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string_view subsystem)
      : level_(level), subsystem_(subsystem) {}
  ~LogStream() { log_line(level_, subsystem_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view subsystem_;
  std::ostringstream os_;
};

}  // namespace detail

/// Usage: DRMS_LOG(kInfo, "rc") << "restarting pool " << pool_id;
#define DRMS_LOG(level, subsystem)                                    \
  if (::drms::support::LogLevel::level >                              \
      ::drms::support::log_level()) {                                 \
  } else                                                              \
    ::drms::support::detail::LogStream(                               \
        ::drms::support::LogLevel::level, (subsystem))

}  // namespace drms::support
