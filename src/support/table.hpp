// Fixed-width ASCII table printer. The benchmark binaries use it to emit
// the same rows the paper's tables report.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace drms::support {

/// Column alignment within a table cell.
enum class Align { kLeft, kRight };

class TextTable {
 public:
  /// Construct with column headers; every later row must have the same
  /// number of cells.
  explicit TextTable(std::vector<std::string> headers);

  void set_align(std::size_t column, Align a);
  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> align_;
  // Each entry: a row of cells, or empty vector meaning "rule".
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace drms::support
