// Growable byte buffer with a read cursor — the unit of exchange between
// the serialization layer, the task runtime mailboxes, and the PIOFS
// client. All multi-byte values are stored little-endian so checkpoint
// files are portable across hosts.
//
// Storage uses a default-initializing allocator so the bulk-data paths
// (section exchange, checkpoint reads) can grow the buffer WITHOUT
// zero-filling bytes that are about to be overwritten:
// append_uninitialized() hands out a writable span over freshly grown
// storage and the producer (LocalArray::extract, read_at_into) writes the
// payload straight into place — no temporary vector, no double copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace drms::support {

namespace detail {

/// std::allocator variant whose value-construction leaves trivial types
/// uninitialized (default-initialization), so vector::resize on bytes is
/// a pure size bump instead of a memset.
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };

  using std::allocator<T>::allocator;

  template <typename U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

}  // namespace detail

class ByteBuffer {
 public:
  using Storage =
      std::vector<std::byte, detail::DefaultInitAllocator<std::byte>>;

  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::byte> data)
      : data_(data.begin(), data.end()) {}
  /// Copies `bytes` (e.g. a sub-range of another buffer) into a fresh
  /// buffer with the cursor at 0.
  explicit ByteBuffer(std::span<const std::byte> bytes)
      : data_(bytes.begin(), bytes.end()) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] const std::byte* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::byte* data() noexcept { return data_.data(); }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<std::byte> writable_bytes() noexcept {
    return {data_.data(), data_.size()};
  }

  void clear() noexcept {
    data_.clear();
    cursor_ = 0;
  }
  void reserve(std::size_t n) { data_.reserve(n); }

  /// ---- writing -----------------------------------------------------------

  void append(std::span<const std::byte> bytes) {
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }
  void append_raw(const void* p, std::size_t n);

  /// Grow by `n` bytes WITHOUT initializing them and return a writable
  /// span over the new region. The caller must fill every byte before the
  /// buffer is read, sent or compared — this is the zero-copy entry point
  /// for producers that generate bytes in place (LocalArray::extract,
  /// StorageBackend read_at_into).
  [[nodiscard]] std::span<std::byte> append_uninitialized(std::size_t n) {
    const std::size_t old = data_.size();
    data_.resize(old + n);
    return {data_.data() + old, n};
  }

  /// Set the size without initializing grown bytes (same contract as
  /// append_uninitialized). Shrinking clamps the cursor.
  void resize_uninitialized(std::size_t n) {
    data_.resize(n);
    if (cursor_ > n) {
      cursor_ = n;
    }
  }

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(std::string_view s);
  void put_bytes(std::span<const std::byte> bytes);  // length-prefixed

  /// ---- reading (sequential, from the cursor) ------------------------------

  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - cursor_;
  }
  void rewind() noexcept { cursor_ = 0; }

  void read_raw(void* p, std::size_t n);
  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }
  [[nodiscard]] std::string get_string();
  [[nodiscard]] std::vector<std::byte> get_bytes();  // length-prefixed

  friend bool operator==(const ByteBuffer& a, const ByteBuffer& b) {
    return a.data_ == b.data_;
  }

 private:
  /// Raises a ContractViolation describing the underflow (cursor, request
  /// and buffer size) — readers must never rely on caller discipline.
  [[noreturn]] void raise_underflow(const char* what, std::uint64_t wanted)
      const;
  /// Checks that `wanted` more bytes are readable from the cursor.
  void require_readable(const char* what, std::uint64_t wanted) const {
    if (wanted > data_.size() - cursor_) {
      raise_underflow(what, wanted);
    }
  }

  Storage data_;
  std::size_t cursor_ = 0;
};

}  // namespace drms::support
