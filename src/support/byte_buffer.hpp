// Growable byte buffer with a read cursor — the unit of exchange between
// the serialization layer, the task runtime mailboxes, and the PIOFS
// client. All multi-byte values are stored little-endian so checkpoint
// files are portable across hosts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace drms::support {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::byte> data) : data_(std::move(data)) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] const std::byte* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::byte* data() noexcept { return data_.data(); }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data_.data(), data_.size()};
  }

  void clear() noexcept {
    data_.clear();
    cursor_ = 0;
  }
  void reserve(std::size_t n) { data_.reserve(n); }

  /// ---- writing -----------------------------------------------------------

  void append(std::span<const std::byte> bytes) {
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }
  void append_raw(const void* p, std::size_t n);

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(std::string_view s);
  void put_bytes(std::span<const std::byte> bytes);  // length-prefixed

  /// ---- reading (sequential, from the cursor) ------------------------------

  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - cursor_;
  }
  void rewind() noexcept { cursor_ = 0; }

  void read_raw(void* p, std::size_t n);
  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }
  [[nodiscard]] std::string get_string();
  [[nodiscard]] std::vector<std::byte> get_bytes();  // length-prefixed

  friend bool operator==(const ByteBuffer& a, const ByteBuffer& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<std::byte> data_;
  std::size_t cursor_ = 0;
};

}  // namespace drms::support
