#include "support/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace drms::support {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = next_double();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::jitter(double sigma) noexcept {
  if (sigma <= 0.0) {
    return 1.0;
  }
  return std::exp(sigma * next_gaussian());
}

Rng Rng::fork(std::uint64_t stream_id) noexcept {
  return Rng(next_u64() ^ (stream_id * 0x9e3779b97f4a7c15ull));
}

}  // namespace drms::support
