#include "support/units.hpp"

#include <array>
#include <cstdio>

namespace drms::support {

double to_mib(std::uint64_t bytes) noexcept {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

std::string format_fixed(double v, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, v);
  return std::string(buf.data());
}

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= kGiB) {
    return format_fixed(static_cast<double>(bytes) / kGiB, 2) + " GB";
  }
  if (bytes >= kMiB) {
    return format_fixed(static_cast<double>(bytes) / kMiB, 1) + " MB";
  }
  if (bytes >= kKiB) {
    return format_fixed(static_cast<double>(bytes) / kKiB, 1) + " KB";
  }
  return std::to_string(bytes) + " B";
}

}  // namespace drms::support
