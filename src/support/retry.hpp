// Bounded retry-with-backoff for transient I/O failures.
//
// The checkpoint engines wrap each idempotent storage mutation in
// retry_io(): a TransientIoError is retried up to the attempt budget with
// exponentially growing (real, microsecond-scale) backoff, while every
// other exception — including plain IoError — propagates immediately.
// Simulated time is never charged for retries; transients model request
// hiccups beneath the resolution of the paper's cost model.
//
// Two multi-tenant refinements, both off by default (the default policy
// is bit-for-bit the legacy behaviour):
//   * Deterministic seeded jitter. A nonzero jitter_seed draws each
//     attempt's backoff uniformly from [step/2, step] with an Rng seeded
//     from (jitter_seed, attempt), so N contending jobs with distinct
//     seeds desynchronize instead of retrying in lockstep against the
//     same saturated server.
//   * Bounded TOTAL backoff. The legacy policy bounds each attempt but
//     not their sum; total_backoff_budget caps the cumulative sleep, so
//     a retry storm cannot stall a checkpoint longer than the budget
//     regardless of the attempt count.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace drms::support {

/// Observer hook for transient-fault absorption: notified once per caught
/// TransientIoError (including the final one when the budget is spent), so
/// an observability layer can count retries against the exact fault
/// schedule a test injected. Implemented by obs::Recorder.
class RetryObserver {
 public:
  virtual ~RetryObserver() = default;
  virtual void on_transient_retry(const char* what, int attempt) = 0;
};

struct RetryPolicy {
  /// Total attempts, first try included.
  int attempts = 4;
  /// Real (wall-clock) backoff before attempt k is 2^(k-1) * base.
  std::chrono::microseconds backoff_base{50};
  /// Cap on the SUM of backoff sleeps across all attempts. 0 = unbounded
  /// (legacy: only each attempt's backoff is bounded). A backoff that
  /// would overshoot is clamped to the remainder; once the budget is
  /// spent, the next transient rethrows instead of sleeping again.
  std::chrono::microseconds total_backoff_budget{0};
  /// Nonzero: jitter each backoff deterministically (see file comment).
  /// Distinct seeds — e.g. per-job scheduler token ids — desynchronize
  /// contending retriers; 0 keeps the exact legacy backoff sequence.
  std::uint64_t jitter_seed = 0;
  /// Optional retry observer (null: no accounting, the zero-overhead
  /// default) and the operation label it sees.
  RetryObserver* observer = nullptr;
  const char* what = "io";
};

/// Backoff before retrying after failed attempt k (1-based): the
/// exponential step, jittered into [step/2, step] when the policy has a
/// jitter seed. Deterministic: a pure function of (policy, attempt).
[[nodiscard]] inline std::chrono::microseconds retry_backoff(
    const RetryPolicy& policy, int attempt) {
  // Saturate the exponent: a large attempt budget (total_backoff_budget
  // is what bounds the storm then) must not shift past the int width —
  // 2^30 * base is already hours of backoff for any sane base.
  const std::chrono::microseconds step =
      policy.backoff_base * (1 << std::min(attempt - 1, 30));
  if (policy.jitter_seed == 0) {
    return step;
  }
  Rng rng(policy.jitter_seed * 0x9e3779b97f4a7c15ull +
          static_cast<std::uint64_t>(attempt));
  const double factor = 0.5 + 0.5 * rng.next_double();  // [0.5, 1.0)
  return std::chrono::microseconds(static_cast<std::int64_t>(
      static_cast<double>(step.count()) * factor));
}

/// Run `op`, retrying on TransientIoError per `policy`. Returns op()'s
/// result; rethrows the last TransientIoError when the attempt budget —
/// or the total backoff budget — is spent.
template <typename Op>
decltype(auto) retry_io(Op&& op, const RetryPolicy& policy = {}) {
  std::chrono::microseconds slept{0};
  for (int attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (const TransientIoError&) {
      if (policy.observer != nullptr) {
        policy.observer->on_transient_retry(policy.what, attempt);
      }
      if (attempt >= policy.attempts) {
        throw;
      }
      std::chrono::microseconds backoff = retry_backoff(policy, attempt);
      if (policy.total_backoff_budget.count() > 0) {
        // Truncate the FINAL sleep to exactly the remaining budget rather
        // than overshooting it — and the retry that truncated sleep pays
        // for still runs. Only once the budget is spent to the last
        // microsecond does the next transient rethrow instead of
        // sleeping again (the budget bounds the sleeps, never the
        // attempt a completed sleep already bought).
        const std::chrono::microseconds remaining =
            policy.total_backoff_budget - slept;
        if (remaining.count() <= 0) {
          throw;  // total budget exactly exhausted
        }
        backoff = std::min(backoff, remaining);
      }
      std::this_thread::sleep_for(backoff);
      slept += backoff;
    }
  }
}

}  // namespace drms::support
