// Bounded retry-with-backoff for transient I/O failures.
//
// The checkpoint engines wrap each idempotent storage mutation in
// retry_io(): a TransientIoError is retried up to the attempt budget with
// exponentially growing (real, microsecond-scale) backoff, while every
// other exception — including plain IoError — propagates immediately.
// Simulated time is never charged for retries; transients model request
// hiccups beneath the resolution of the paper's cost model.
#pragma once

#include <chrono>
#include <thread>

#include "support/error.hpp"

namespace drms::support {

struct RetryPolicy {
  /// Total attempts, first try included.
  int attempts = 4;
  /// Real (wall-clock) backoff before attempt k is 2^(k-1) * base.
  std::chrono::microseconds backoff_base{50};
};

/// Run `op`, retrying on TransientIoError per `policy`. Returns op()'s
/// result; rethrows the last TransientIoError when the budget is spent.
template <typename Op>
decltype(auto) retry_io(Op&& op, const RetryPolicy& policy = {}) {
  for (int attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (const TransientIoError&) {
      if (attempt >= policy.attempts) {
        throw;
      }
      std::this_thread::sleep_for(policy.backoff_base * (1 << (attempt - 1)));
    }
  }
}

}  // namespace drms::support
