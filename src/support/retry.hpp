// Bounded retry-with-backoff for transient I/O failures.
//
// The checkpoint engines wrap each idempotent storage mutation in
// retry_io(): a TransientIoError is retried up to the attempt budget with
// exponentially growing (real, microsecond-scale) backoff, while every
// other exception — including plain IoError — propagates immediately.
// Simulated time is never charged for retries; transients model request
// hiccups beneath the resolution of the paper's cost model.
#pragma once

#include <chrono>
#include <thread>

#include "support/error.hpp"

namespace drms::support {

/// Observer hook for transient-fault absorption: notified once per caught
/// TransientIoError (including the final one when the budget is spent), so
/// an observability layer can count retries against the exact fault
/// schedule a test injected. Implemented by obs::Recorder.
class RetryObserver {
 public:
  virtual ~RetryObserver() = default;
  virtual void on_transient_retry(const char* what, int attempt) = 0;
};

struct RetryPolicy {
  /// Total attempts, first try included.
  int attempts = 4;
  /// Real (wall-clock) backoff before attempt k is 2^(k-1) * base.
  std::chrono::microseconds backoff_base{50};
  /// Optional retry observer (null: no accounting, the zero-overhead
  /// default) and the operation label it sees.
  RetryObserver* observer = nullptr;
  const char* what = "io";
};

/// Run `op`, retrying on TransientIoError per `policy`. Returns op()'s
/// result; rethrows the last TransientIoError when the budget is spent.
template <typename Op>
decltype(auto) retry_io(Op&& op, const RetryPolicy& policy = {}) {
  for (int attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (const TransientIoError&) {
      if (policy.observer != nullptr) {
        policy.observer->on_transient_retry(policy.what, attempt);
      }
      if (attempt >= policy.attempts) {
        throw;
      }
      std::this_thread::sleep_for(policy.backoff_base * (1 << (attempt - 1)));
    }
  }
}

}  // namespace drms::support
