#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace drms::support {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), align_(headers_.size(), Align::kRight) {
  DRMS_EXPECTS(!headers_.empty());
  align_[0] = Align::kLeft;  // first column is almost always a label
}

void TextTable::set_align(std::size_t column, Align a) {
  DRMS_EXPECTS(column < align_.size());
  align_[column] = a;
}

void TextTable::add_row(std::vector<std::string> cells) {
  DRMS_EXPECTS_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_cell = [&](const std::string& text, std::size_t c) {
    const std::size_t pad = width[c] - text.size();
    if (align_[c] == Align::kLeft) {
      os << text << std::string(pad, ' ');
    } else {
      os << std::string(pad, ' ') << text;
    }
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c], '-') << (c + 1 < width.size() ? "-+-" : "");
    }
    os << '\n';
  };

  for (std::size_t c = 0; c < headers_.size(); ++c) {
    emit_cell(headers_[c], c);
    if (c + 1 < headers_.size()) os << " | ";
  }
  os << '\n';
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
      continue;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      emit_cell(row[c], c);
      if (c + 1 < row.size()) os << " | ";
    }
    os << '\n';
  }
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace drms::support
