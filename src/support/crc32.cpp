#include "support/crc32.hpp"

#include <array>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#if defined(__ARM_FEATURE_CRC32) || defined(__GNUC__)
#include <arm_acle.h>
#endif
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#endif

namespace drms::support {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected CRC-32C polynomial

/// Sixteen 256-entry tables: table[0] is the classic bytewise table;
/// table[k][b] extends a byte's contribution across k more zero bytes, so
/// the slicing kernel can fold 16 input bytes per iteration.
constexpr std::array<std::array<std::uint32_t, 256>, 16> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 16> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables[0][i] = crc;
  }
  for (std::size_t k = 1; k < 16; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xffu];
    }
  }
  return tables;
}

constexpr auto kTables = make_tables();

/// All kernels transform the RAW (inverted) running state; the ~ at entry
/// and exit lives in the callers.
std::uint32_t update_bytewise(std::uint32_t crc, const void* p,
                              std::size_t n) noexcept {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ b[i]) & 0xffu];
  }
  return crc;
}

std::uint32_t load_le32(const unsigned char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;  // host is little-endian (asserted in byte_buffer.cpp)
}

std::uint32_t update_slicing16(std::uint32_t crc, const void* ptr,
                               std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(ptr);
  while (n >= 16) {
    const std::uint32_t a = crc ^ load_le32(p);
    const std::uint32_t b = load_le32(p + 4);
    const std::uint32_t c = load_le32(p + 8);
    const std::uint32_t d = load_le32(p + 12);
    crc = kTables[15][a & 0xffu] ^ kTables[14][(a >> 8) & 0xffu] ^
          kTables[13][(a >> 16) & 0xffu] ^ kTables[12][a >> 24] ^
          kTables[11][b & 0xffu] ^ kTables[10][(b >> 8) & 0xffu] ^
          kTables[9][(b >> 16) & 0xffu] ^ kTables[8][b >> 24] ^
          kTables[7][c & 0xffu] ^ kTables[6][(c >> 8) & 0xffu] ^
          kTables[5][(c >> 16) & 0xffu] ^ kTables[4][c >> 24] ^
          kTables[3][d & 0xffu] ^ kTables[2][(d >> 8) & 0xffu] ^
          kTables[1][(d >> 16) & 0xffu] ^ kTables[0][d >> 24];
    p += 16;
    n -= 16;
  }
  return update_bytewise(crc, p, n);
}

#if defined(__x86_64__)

__attribute__((target("sse4.2"))) std::uint32_t update_hardware(
    std::uint32_t crc, const void* ptr, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(ptr);
  // Align to 8 bytes so the 64-bit form runs on aligned loads.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    crc64 = _mm_crc32_u64(crc64, v);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return crc;
}

bool hardware_available() noexcept {
  return __builtin_cpu_supports("sse4.2") != 0;
}

#elif defined(__aarch64__)

__attribute__((target("+crc"))) std::uint32_t update_hardware(
    std::uint32_t crc, const void* ptr, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(ptr);
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    crc = __crc32cd(crc, v);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  return crc;
}

bool hardware_available() noexcept {
#if defined(__linux__) && defined(HWCAP_CRC32)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#elif defined(__ARM_FEATURE_CRC32)
  return true;  // baked into the target baseline
#else
  return false;
#endif
}

#else

std::uint32_t update_hardware(std::uint32_t crc, const void* ptr,
                              std::size_t n) noexcept {
  return update_slicing16(crc, ptr, n);  // never dispatched
}

bool hardware_available() noexcept { return false; }

#endif

using UpdateFn = std::uint32_t (*)(std::uint32_t, const void*,
                                   std::size_t) noexcept;

UpdateFn kernel_fn(Crc32cKernel kernel) noexcept {
  switch (kernel) {
    case Crc32cKernel::kBytewise:
      return &update_bytewise;
    case Crc32cKernel::kSlicing16:
      return &update_slicing16;
    case Crc32cKernel::kHardware:
      return &update_hardware;
  }
  return &update_bytewise;
}

/// Resolved once per process; every kernel yields identical values, so
/// the choice affects throughput only.
struct Dispatch {
  Crc32cKernel kernel;
  UpdateFn fn;
};

Dispatch resolve_dispatch() noexcept {
  const Crc32cKernel kernel = hardware_available()
                                  ? Crc32cKernel::kHardware
                                  : Crc32cKernel::kSlicing16;
  return Dispatch{kernel, kernel_fn(kernel)};
}

const Dispatch& dispatch() noexcept {
  static const Dispatch d = resolve_dispatch();
  return d;
}

}  // namespace

bool crc32c_kernel_available(Crc32cKernel kernel) noexcept {
  return kernel != Crc32cKernel::kHardware || hardware_available();
}

Crc32cKernel crc32c_active_kernel() noexcept { return dispatch().kernel; }

const char* to_string(Crc32cKernel kernel) noexcept {
  switch (kernel) {
    case Crc32cKernel::kBytewise:
      return "bytewise";
    case Crc32cKernel::kSlicing16:
      return "slicing16";
    case Crc32cKernel::kHardware:
      return "hardware";
  }
  return "unknown";
}

void Crc32c::update(std::span<const std::byte> bytes) noexcept {
  update_raw(bytes.data(), bytes.size());
}

void Crc32c::update_raw(const void* p, std::size_t n) noexcept {
  state_ = dispatch().fn(state_, p, n);
}

std::uint32_t crc32c(std::span<const std::byte> bytes) noexcept {
  return ~dispatch().fn(~0u, bytes.data(), bytes.size());
}

std::uint32_t crc32c(Crc32cKernel kernel,
                     std::span<const std::byte> bytes) noexcept {
  return ~kernel_fn(kernel)(~0u, bytes.data(), bytes.size());
}

namespace {

std::uint32_t gf2_matrix_times(const std::uint32_t* mat,
                               std::uint32_t vec) noexcept {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) {
      sum ^= *mat;
    }
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t* square,
                       const std::uint32_t* mat) noexcept {
  for (int n = 0; n < 32; ++n) {
    square[n] = gf2_matrix_times(mat, mat[n]);
  }
}

}  // namespace

std::uint32_t crc32c_combine(std::uint32_t crc1, std::uint32_t crc2,
                             std::uint64_t len2) noexcept {
  if (len2 == 0) {
    return crc1;
  }
  std::uint32_t even[32];  // even-power-of-two zero operators
  std::uint32_t odd[32];   // odd-power-of-two zero operators

  // Operator for one zero bit.
  odd[0] = kPoly;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // two zero bits
  gf2_matrix_square(odd, even);  // four zero bits

  // Apply len2 zero BYTES to crc1.
  do {
    gf2_matrix_square(even, odd);
    if (len2 & 1u) {
      crc1 = gf2_matrix_times(even, crc1);
    }
    len2 >>= 1;
    if (len2 == 0) {
      break;
    }
    gf2_matrix_square(odd, even);
    if (len2 & 1u) {
      crc1 = gf2_matrix_times(odd, crc1);
    }
    len2 >>= 1;
  } while (len2 != 0);
  return crc1 ^ crc2;
}

}  // namespace drms::support
