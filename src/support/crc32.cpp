#include "support/crc32.hpp"

#include <array>

namespace drms::support {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected CRC-32C polynomial

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32c::update(std::span<const std::byte> bytes) noexcept {
  update_raw(bytes.data(), bytes.size());
}

void Crc32c::update_raw(const void* p, std::size_t n) noexcept {
  const auto* b = static_cast<const unsigned char*>(p);
  std::uint32_t crc = state_;
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ b[i]) & 0xffu];
  }
  state_ = crc;
}

std::uint32_t crc32c(std::span<const std::byte> bytes) noexcept {
  Crc32c c;
  c.update(bytes);
  return c.value();
}

namespace {

std::uint32_t gf2_matrix_times(const std::uint32_t* mat,
                               std::uint32_t vec) noexcept {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) {
      sum ^= *mat;
    }
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t* square,
                       const std::uint32_t* mat) noexcept {
  for (int n = 0; n < 32; ++n) {
    square[n] = gf2_matrix_times(mat, mat[n]);
  }
}

}  // namespace

std::uint32_t crc32c_combine(std::uint32_t crc1, std::uint32_t crc2,
                             std::uint64_t len2) noexcept {
  if (len2 == 0) {
    return crc1;
  }
  std::uint32_t even[32];  // even-power-of-two zero operators
  std::uint32_t odd[32];   // odd-power-of-two zero operators

  // Operator for one zero bit.
  odd[0] = kPoly;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // two zero bits
  gf2_matrix_square(odd, even);  // four zero bits

  // Apply len2 zero BYTES to crc1.
  do {
    gf2_matrix_square(even, odd);
    if (len2 & 1u) {
      crc1 = gf2_matrix_times(even, crc1);
    }
    len2 >>= 1;
    if (len2 == 0) {
      break;
    }
    gf2_matrix_square(odd, even);
    if (len2 & 1u) {
      crc1 = gf2_matrix_times(odd, crc1);
    }
    len2 >>= 1;
  } while (len2 != 0);
  return crc1 ^ crc2;
}

}  // namespace drms::support
