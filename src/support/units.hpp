// Byte-size literals and human-readable formatting helpers.
#pragma once

#include <cstdint>
#include <string>

namespace drms::support {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// The paper reports sizes in MB (decimal-ish usage, but 1997 "MB" on AIX
/// tooling meant 2^20); we follow the 2^20 convention throughout.
[[nodiscard]] double to_mib(std::uint64_t bytes) noexcept;

/// "147.3 MB", "63 KB", "12 B" — for log lines and table cells.
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Fixed-point decimal with the given precision, e.g. format_fixed(3.14159,2)
/// == "3.14".
[[nodiscard]] std::string format_fixed(double v, int precision);

}  // namespace drms::support
