#include "support/stats.hpp"

#include <cmath>

namespace drms::support {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean_of(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

}  // namespace drms::support
