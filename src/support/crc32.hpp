// CRC-32C (Castagnoli) — used to checksum every record in a checkpoint
// file so restart can detect corruption instead of silently loading
// garbage state.
//
// Three kernels compute the same polynomial:
//   kBytewise   the classic one-table loop (~1 byte/cycle) — the portable
//               reference all other kernels are tested against.
//   kSlicing16  slicing-by-16: sixteen tables, 16 bytes per iteration —
//               the portable fast path.
//   kHardware   SSE4.2 (x86-64) / ARMv8 CRC instructions — the
//               memory-bandwidth path where the CPU provides it.
// Dispatch is resolved once at runtime (CPUID / hwcaps); every kernel
// produces bit-identical values, so checkpoint files and stream CRCs do
// not depend on the host the writer ran on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace drms::support {

enum class Crc32cKernel {
  kBytewise,
  kSlicing16,
  kHardware,
};

/// True when the kernel can run on this host (bytewise and slicing-by-16
/// always can; hardware needs SSE4.2 or the ARMv8 CRC extension).
[[nodiscard]] bool crc32c_kernel_available(Crc32cKernel kernel) noexcept;

/// The kernel runtime dispatch selected (the fastest available one).
[[nodiscard]] Crc32cKernel crc32c_active_kernel() noexcept;

[[nodiscard]] const char* to_string(Crc32cKernel kernel) noexcept;

/// Incremental CRC-32C. Construct, feed bytes with update(), read value().
/// Uses the dispatched (fastest available) kernel.
class Crc32c {
 public:
  void update(std::span<const std::byte> bytes) noexcept;
  void update_raw(const void* p, std::size_t n) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }
  void reset() noexcept { state_ = ~0u; }

 private:
  std::uint32_t state_ = ~0u;
};

/// One-shot convenience wrapper (dispatched kernel).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> bytes) noexcept;

/// One-shot through a specific kernel — for the known-answer tests and the
/// data-plane benchmark. The kernel must be available on this host.
[[nodiscard]] std::uint32_t crc32c(Crc32cKernel kernel,
                                   std::span<const std::byte> bytes) noexcept;

/// CRC combination: given crc1 = crc32c(A) and crc2 = crc32c(B), returns
/// crc32c(A || B) where B is `len2` bytes long (zlib's GF(2) matrix
/// technique). Lets parallel writers checksum their chunks independently
/// and still produce the exact CRC of the whole stream, independent of
/// the chunking.
[[nodiscard]] std::uint32_t crc32c_combine(std::uint32_t crc1,
                                           std::uint32_t crc2,
                                           std::uint64_t len2) noexcept;

}  // namespace drms::support
