// CRC-32C (Castagnoli) — used to checksum every record in a checkpoint
// file so restart can detect corruption instead of silently loading
// garbage state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace drms::support {

/// Incremental CRC-32C. Construct, feed bytes with update(), read value().
class Crc32c {
 public:
  void update(std::span<const std::byte> bytes) noexcept;
  void update_raw(const void* p, std::size_t n) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }
  void reset() noexcept { state_ = ~0u; }

 private:
  std::uint32_t state_ = ~0u;
};

/// One-shot convenience wrapper.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> bytes) noexcept;

/// CRC combination: given crc1 = crc32c(A) and crc2 = crc32c(B), returns
/// crc32c(A || B) where B is `len2` bytes long (zlib's GF(2) matrix
/// technique). Lets parallel writers checksum their chunks independently
/// and still produce the exact CRC of the whole stream, independent of
/// the chunking.
[[nodiscard]] std::uint32_t crc32c_combine(std::uint32_t crc1,
                                           std::uint32_t crc2,
                                           std::uint64_t len2) noexcept;

}  // namespace drms::support
