#include "support/error.hpp"

#include <sstream>

namespace drms::support::detail {

void raise_contract_violation(std::string_view kind,
                              std::string_view condition,
                              std::string_view file, int line,
                              std::string_view message) {
  std::ostringstream os;
  os << kind << " violated: (" << condition << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw ContractViolation(os.str());
}

}  // namespace drms::support::detail
