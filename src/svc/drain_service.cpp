#include "svc/drain_service.hpp"

#include <optional>
#include <utility>

namespace drms::svc {

store::TieredBackend::DrainReport DrainTicket::wait() const {
  for (const Completion& completion : completions_) {
    completion.wait();
  }
  if (state_ == nullptr) {
    return {};
  }
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->report;
}

EncodeReport EncodeTicket::wait() const {
  for (const Completion& completion : completions_) {
    completion.wait();
  }
  if (state_ == nullptr) {
    return {};
  }
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->report;
}

EncodeTicket submit_encode(IoScheduler& scheduler, const JobToken& job,
                           store::RedundantBackend& backend,
                           const sim::LoadContext& load) {
  EncodeTicket ticket;
  ticket.state_ = std::make_shared<EncodeTicket::State>();
  for (const auto& item : backend.encode_work()) {
    auto state = ticket.state_;
    ticket.completions_.push_back(scheduler.submit(
        job, Priority::kDrain, item.name, item.bytes,
        backend.encode_write_seconds(item.bytes, load),
        [state, &backend, name = item.name, load] {
          const std::optional<std::uint64_t> encoded =
              backend.encode_file(name);
          if (!encoded.has_value()) {
            return;  // encoded, re-created, or removed since the snapshot
          }
          const double sim = backend.encode_write_seconds(*encoded, load);
          const std::lock_guard<std::mutex> lock(state->mutex);
          state->report.files_encoded += 1;
          state->report.bytes_encoded += *encoded;
          state->report.simulated_seconds += sim;
        }));
  }
  return ticket;
}

DrainTicket submit_drain(IoScheduler& scheduler, const JobToken& job,
                         store::TieredBackend& backend,
                         const sim::LoadContext& load) {
  DrainTicket ticket;
  ticket.state_ = std::make_shared<DrainTicket::State>();
  for (const auto& item : backend.drain_work()) {
    auto state = ticket.state_;
    ticket.completions_.push_back(scheduler.submit(
        job, Priority::kDrain, item.name, item.bytes,
        backend.drain_write_seconds(item.bytes, load),
        [state, &backend, name = item.name, load] {
          const std::optional<std::uint64_t> copied =
              backend.drain_file(name);
          if (!copied.has_value()) {
            return;  // cleaned, spilled, or removed since the snapshot
          }
          const double sim = backend.drain_write_seconds(*copied, load);
          const std::lock_guard<std::mutex> lock(state->mutex);
          state->report.files_drained += 1;
          state->report.bytes_drained += *copied;
          state->report.simulated_seconds += sim;
        }));
  }
  return ticket;
}

}  // namespace drms::svc
