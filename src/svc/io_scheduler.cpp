#include "svc/io_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "support/error.hpp"

namespace drms::svc {

namespace {

[[nodiscard]] std::size_t shard_index(std::string_view key, int shards) {
  return std::hash<std::string_view>{}(key) %
         static_cast<std::size_t>(shards);
}

[[nodiscard]] std::string class_key(const char* stem, Priority p) {
  return std::string(stem) + to_string(p);
}

}  // namespace

const char* to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kRestore:
      return "restore";
    case Priority::kForeground:
      return "foreground";
    case Priority::kDrain:
      return "drain";
  }
  return "?";
}

// ---- shared states ----------------------------------------------------------

struct Completion::State {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  double wait_seconds = 0.0;
  std::exception_ptr error;
};

bool Completion::done() const {
  if (state_ == nullptr) {
    return true;
  }
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void Completion::wait() const {
  if (state_ == nullptr) {
    return;
  }
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error != nullptr) {
    std::rethrow_exception(state_->error);
  }
}

double Completion::wait_seconds() const {
  if (state_ == nullptr) {
    return 0.0;
  }
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->wait_seconds;
}

struct JobState {
  std::string name;
  std::uint64_t id = 0;
  QosLimits limits;
  std::mutex mutex;
  std::condition_variable cv;
  /// Items submitted and not yet finished (queued or running).
  int inflight = 0;
  /// First async error since the last barrier(job).
  std::exception_ptr first_error;
  /// True once the scheduler was destroyed with the token still alive.
  std::atomic<bool> orphaned{false};
};

struct IoScheduler::Item {
  std::shared_ptr<JobState> job;
  Priority priority = Priority::kForeground;
  std::uint64_t bytes = 0;
  double sim_seconds = 0.0;
  /// Shard virtual clock at submission (see header: deterministic model).
  double virtual_submit = 0.0;
  std::function<void()> fn;
  std::shared_ptr<Completion::State> completion;
};

struct IoScheduler::Shard {
  std::mutex mutex;
  std::condition_variable cv;
  /// One FIFO per priority class (fifo_only collapses onto index 0).
  std::deque<std::unique_ptr<Item>> queues[kPriorityClasses];
  double virtual_clock = 0.0;
  std::thread thread;

  [[nodiscard]] bool empty() const {
    for (const auto& q : queues) {
      if (!q.empty()) {
        return false;
      }
    }
    return true;
  }
};

// ---- JobToken ---------------------------------------------------------------

JobToken& JobToken::operator=(JobToken&& other) noexcept {
  if (this != &other) {
    release();
    scheduler_ = other.scheduler_;
    state_ = std::move(other.state_);
    other.scheduler_ = nullptr;
  }
  return *this;
}

JobToken::~JobToken() { release(); }

const std::string& JobToken::name() const {
  DRMS_EXPECTS_MSG(valid(), "name of an invalid job token");
  return state_->name;
}

std::uint64_t JobToken::id() const {
  DRMS_EXPECTS_MSG(valid(), "id of an invalid job token");
  return state_->id;
}

void JobToken::release() {
  if (state_ == nullptr) {
    return;
  }
  std::shared_ptr<JobState> state = std::move(state_);
  state_ = nullptr;
  if (!state->orphaned.load()) {
    scheduler_->deregister_job(state);
  }
  scheduler_ = nullptr;
}

// ---- RestoreGuard -----------------------------------------------------------

IoScheduler::RestoreGuard& IoScheduler::RestoreGuard::operator=(
    RestoreGuard&& other) noexcept {
  if (this == &other) {
    return *this;  // self-move: the hold must survive untouched
  }
  // Steal the incoming hold BEFORE releasing the old one: when both
  // guards park the same scheduler the hold count stays >= 1 across the
  // handover, so the drain class cannot wake in between. Each armed
  // guard's hold is released exactly once (here for the overwritten one,
  // by other's now-empty destructor for the stolen one).
  IoScheduler* incoming = other.scheduler_;
  other.scheduler_ = nullptr;
  release();
  scheduler_ = incoming;
  return *this;
}

void IoScheduler::RestoreGuard::release() {
  if (scheduler_ == nullptr) {
    return;
  }
  IoScheduler* s = scheduler_;
  scheduler_ = nullptr;
  {
    const std::lock_guard<std::mutex> lock(s->mutex_);
    --s->drain_holds_;
  }
  for (auto& shard : s->shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cv.notify_all();
  }
}

IoScheduler::RestoreGuard IoScheduler::preempt_drains() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++drain_holds_;
  }
  if (recorder_ != nullptr) {
    recorder_->count("svc.preempt.hold");
  }
  return RestoreGuard(this);
}

// ---- IoScheduler ------------------------------------------------------------

IoScheduler::IoScheduler() : IoScheduler(Options{}) {}

IoScheduler::IoScheduler(Options options)
    : options_(options), recorder_(options.recorder) {
  DRMS_EXPECTS_MSG(options_.shard_count >= 1,
                   "scheduler needs at least one shard");
  paused_ = options_.start_paused;
  shards_.reserve(static_cast<std::size_t>(options_.shard_count));
  for (int i = 0; i < options_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, s = shard.get()] { worker(*s); });
  }
}

IoScheduler::~IoScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    paused_ = false;
    for (const auto& job : jobs_) {
      job->orphaned.store(true);
    }
  }
  for (auto& shard : shards_) {
    {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      shard->cv.notify_all();
    }
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
}

JobToken IoScheduler::register_job(std::string name, QosLimits limits) {
  auto state = std::make_shared<JobState>();
  state->name = std::move(name);
  state->limits = limits;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    DRMS_EXPECTS_MSG(!stopping_, "register_job on a stopping scheduler");
    state->id = next_job_id_++;
    jobs_.push_back(state);
  }
  if (recorder_ != nullptr) {
    recorder_->count("svc.jobs.registered");
  }
  return JobToken(this, std::move(state));
}

int IoScheduler::registered_jobs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(jobs_.size());
}

void IoScheduler::deregister_job(const std::shared_ptr<JobState>& state) {
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] { return state->inflight == 0; });
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), state), jobs_.end());
}

IoScheduler::Shard& IoScheduler::shard_of(std::string_view key) {
  return *shards_[shard_index(key, options_.shard_count)];
}

Completion IoScheduler::submit(const JobToken& job, Priority priority,
                               std::string_view shard_key,
                               std::uint64_t bytes, double sim_seconds,
                               std::function<void()> fn) {
  DRMS_EXPECTS_MSG(job.valid(), "submit through an invalid job token");
  DRMS_EXPECTS_MSG(job.scheduler_ == this,
                   "job token belongs to a different scheduler");
  const std::shared_ptr<JobState>& state = job.state_;
  const int pri = static_cast<int>(priority);

  // Admission control: block at the job's in-flight budget.
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    if (state->limits.max_inflight > 0) {
      state->cv.wait(lock, [&] {
        return state->inflight < state->limits.max_inflight;
      });
    }
    ++state->inflight;
  }

  bool inline_run = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_[pri].submitted += 1;
    stats_[pri].bytes += bytes;
    // Single-tenant degeneration: nothing queued or running anywhere, one
    // registered job — execute synchronously in submission order.
    inline_run = !options_.force_async && jobs_.size() == 1 &&
                 pending_ == 0 && running_ == 0 && !paused_;
    if (!inline_run) {
      ++pending_;
      peak_pending_ = std::max(peak_pending_, pending_);
    }
  }
  if (recorder_ != nullptr) {
    recorder_->count(class_key("svc.submit.", priority));
    if (!inline_run) {
      const std::lock_guard<std::mutex> lock(mutex_);
      recorder_->gauge_max("svc.queue_depth.peak",
                           static_cast<std::uint64_t>(peak_pending_));
    }
  }

  if (inline_run) {
    Shard& shard = shard_of(shard_key);
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.virtual_clock += sim_seconds;
    }
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stats_[pri].completed += 1;
      if (error != nullptr) {
        stats_[pri].failed += 1;
      }
      if (options_.keep_wait_samples) {
        wait_samples_[pri].push_back(0.0);
      }
    }
    if (recorder_ != nullptr) {
      recorder_->count("svc.inline");
      recorder_->count(class_key("svc.complete.", priority));
      recorder_->record_ns(class_key("svc.wait.", priority), 0);
      if (error != nullptr) {
        recorder_->count(class_key("svc.fail.", priority));
      }
    }
    finish_job_item(state, nullptr);  // inline errors propagate instead
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
    return Completion{};  // already complete
  }

  auto item = std::make_unique<Item>();
  item->job = state;
  item->priority = priority;
  item->bytes = bytes;
  item->sim_seconds = sim_seconds;
  item->fn = std::move(fn);
  item->completion = std::make_shared<Completion::State>();
  Completion ticket;
  ticket.state_ = item->completion;

  Shard& shard = shard_of(shard_key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    item->virtual_submit = shard.virtual_clock;
    const int queue = options_.fifo_only ? 0 : pri;
    shard.queues[queue].push_back(std::move(item));
    shard.cv.notify_one();
  }
  return ticket;
}

std::unique_ptr<IoScheduler::Item> IoScheduler::pop_runnable(Shard& shard) {
  bool stop = false;
  bool paused = false;
  int holds = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop = stopping_;
    paused = paused_;
    holds = drain_holds_;
  }
  if (paused && !stop) {
    return nullptr;
  }
  for (int c = 0; c < kPriorityClasses; ++c) {
    auto& queue = shard.queues[c];
    if (queue.empty()) {
      continue;
    }
    // The drain class is deferred while a restore guard is held — unless
    // the scheduler is shutting down (everything must still execute) or
    // running the FIFO baseline (class-blind by definition).
    if (!options_.fifo_only && c == static_cast<int>(Priority::kDrain) &&
        holds > 0 && !stop) {
      continue;
    }
    std::unique_ptr<Item> item = std::move(queue.front());
    queue.pop_front();
    return item;
  }
  return nullptr;
}

void IoScheduler::worker(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mutex);
  while (true) {
    std::unique_ptr<Item> item = pop_runnable(shard);
    if (item == nullptr) {
      bool stop = false;
      {
        const std::lock_guard<std::mutex> glock(mutex_);
        stop = stopping_;
      }
      if (stop && shard.empty()) {
        return;
      }
      shard.cv.wait(lock);
      continue;
    }
    execute(shard, std::move(item), lock);
  }
}

void IoScheduler::execute(Shard& shard, std::unique_ptr<Item> item,
                          std::unique_lock<std::mutex>& lock) {
  // Deterministic service model: the virtual start is where the shard's
  // clock stands after everything dequeued before this item.
  const double start = std::max(shard.virtual_clock, item->virtual_submit);
  shard.virtual_clock = start + item->sim_seconds;
  const double wait = start - item->virtual_submit;
  lock.unlock();

  const int pri = static_cast<int>(item->priority);
  {
    const std::lock_guard<std::mutex> glock(mutex_);
    --pending_;
    ++running_;
    stats_[pri].total_wait_seconds += wait;
    stats_[pri].max_wait_seconds =
        std::max(stats_[pri].max_wait_seconds, wait);
    if (options_.keep_wait_samples) {
      wait_samples_[pri].push_back(wait);
    }
  }
  if (recorder_ != nullptr) {
    recorder_->record_ns(class_key("svc.wait.", item->priority),
                         static_cast<std::uint64_t>(wait * 1.0e9));
  }

  std::exception_ptr error;
  try {
    item->fn();
  } catch (...) {
    error = std::current_exception();
  }

  // Publish every per-item effect (recorder counters, the job's inflight
  // count, the completion ticket) BEFORE the idle notification, so
  // wait_idle() is a full barrier: once it returns, submit and complete
  // counters match and every ticket is signalled.
  if (recorder_ != nullptr) {
    recorder_->count(class_key("svc.complete.", item->priority));
    if (error != nullptr) {
      recorder_->count(class_key("svc.fail.", item->priority));
    }
  }
  finish_job_item(item->job, error);
  {
    const std::lock_guard<std::mutex> clock_guard(item->completion->mutex);
    item->completion->done = true;
    item->completion->wait_seconds = wait;
    item->completion->error = error;
    item->completion->cv.notify_all();
  }
  {
    const std::lock_guard<std::mutex> glock(mutex_);
    --running_;
    stats_[pri].completed += 1;
    if (error != nullptr) {
      stats_[pri].failed += 1;
    }
    if (pending_ == 0 && running_ == 0) {
      idle_cv_.notify_all();
    }
  }
  lock.lock();
}

void IoScheduler::finish_job_item(const std::shared_ptr<JobState>& job,
                                  std::exception_ptr error) {
  const std::lock_guard<std::mutex> lock(job->mutex);
  --job->inflight;
  if (error != nullptr && job->first_error == nullptr) {
    job->first_error = error;
  }
  job->cv.notify_all();
}

void IoScheduler::barrier(const JobToken& job) {
  DRMS_EXPECTS_MSG(job.valid(), "barrier through an invalid job token");
  const std::shared_ptr<JobState>& state = job.state_;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] { return state->inflight == 0; });
    error = std::exchange(state->first_error, nullptr);
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void IoScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return pending_ == 0 && running_ == 0; });
}

void IoScheduler::pause() {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = true;
}

void IoScheduler::resume() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  for (auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cv.notify_all();
  }
}

ClassStats IoScheduler::class_stats(Priority p) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_[static_cast<int>(p)];
}

std::vector<double> IoScheduler::wait_samples(Priority p) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return wait_samples_[static_cast<int>(p)];
}

double IoScheduler::makespan_seconds() const {
  double makespan = 0.0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    makespan = std::max(makespan, shard->virtual_clock);
  }
  return makespan;
}

int IoScheduler::shard_count() const noexcept {
  return options_.shard_count;
}

std::size_t IoScheduler::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

std::size_t IoScheduler::peak_queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_pending_;
}

}  // namespace drms::svc
