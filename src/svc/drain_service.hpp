// Event-queue drain: submits a TieredBackend's dirty-file work list to an
// IoScheduler as DRAIN-class items (one item per file, sharded by file
// name). Unlike the synchronous TieredBackend::drain() sweep, a queued
// drain yields between files: a restore submitted while the backlog
// flushes preempts at every file boundary, and a RestoreGuard parks the
// remaining backlog entirely until recovery finishes.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "store/redundant_backend.hpp"
#include "store/tiered_backend.hpp"
#include "svc/io_scheduler.hpp"

namespace drms::svc {

/// Handle for one submitted drain. wait() blocks until every queued file
/// copy finished and returns the aggregate report (same shape as the
/// synchronous TieredBackend::drain()).
class DrainTicket {
 public:
  DrainTicket() = default;
  [[nodiscard]] store::TieredBackend::DrainReport wait() const;
  /// Files queued by this drain (0 = backlog was already clean).
  [[nodiscard]] std::size_t files_submitted() const {
    return completions_.size();
  }

 private:
  friend DrainTicket submit_drain(IoScheduler&, const JobToken&,
                                  store::TieredBackend&,
                                  const sim::LoadContext&);
  struct State {
    std::mutex mutex;
    store::TieredBackend::DrainReport report;
  };
  std::shared_ptr<State> state_;
  std::vector<Completion> completions_;
};

/// Snapshot the backend's dirty work list and queue one DRAIN-class item
/// per file under `job`. Returns immediately; the copies run on the
/// scheduler's shard workers. Items race benignly with writers, GC and
/// other drains — a file cleaned in the meantime drops out of the report.
DrainTicket submit_drain(IoScheduler& scheduler, const JobToken& job,
                         store::TieredBackend& backend,
                         const sim::LoadContext& load = {});

/// Aggregate outcome of one submitted redundancy-encode pass.
struct EncodeReport {
  int files_encoded = 0;
  std::uint64_t bytes_encoded = 0;
  /// Modeled background memory-write time of the fragment copies (never
  /// charged to the application's clock, like drain time).
  double simulated_seconds = 0.0;
};

/// Handle for one submitted encode pass (see submit_encode).
class EncodeTicket {
 public:
  EncodeTicket() = default;
  [[nodiscard]] EncodeReport wait() const;
  [[nodiscard]] std::size_t files_submitted() const {
    return completions_.size();
  }

 private:
  friend EncodeTicket submit_encode(IoScheduler&, const JobToken&,
                                    store::RedundantBackend&,
                                    const sim::LoadContext&);
  struct State {
    std::mutex mutex;
    EncodeReport report;
  };
  std::shared_ptr<State> state_;
  std::vector<Completion> completions_;
};

/// Snapshot the fast tier's staged-but-unencoded work list and queue one
/// DRAIN-class item per file (fragment encoding is background protection
/// traffic: it yields to restores and foreground checkpoints, and a
/// RestoreGuard parks it with the drains). Items race benignly with
/// writers and GC — a file encoded, re-created, or removed in the
/// meantime drops out of the report.
EncodeTicket submit_encode(IoScheduler& scheduler, const JobToken& job,
                           store::RedundantBackend& backend,
                           const sim::LoadContext& load = {});

}  // namespace drms::svc
