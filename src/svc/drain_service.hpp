// Event-queue drain: submits a TieredBackend's dirty-file work list to an
// IoScheduler as DRAIN-class items (one item per file, sharded by file
// name). Unlike the synchronous TieredBackend::drain() sweep, a queued
// drain yields between files: a restore submitted while the backlog
// flushes preempts at every file boundary, and a RestoreGuard parks the
// remaining backlog entirely until recovery finishes.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "store/tiered_backend.hpp"
#include "svc/io_scheduler.hpp"

namespace drms::svc {

/// Handle for one submitted drain. wait() blocks until every queued file
/// copy finished and returns the aggregate report (same shape as the
/// synchronous TieredBackend::drain()).
class DrainTicket {
 public:
  DrainTicket() = default;
  [[nodiscard]] store::TieredBackend::DrainReport wait() const;
  /// Files queued by this drain (0 = backlog was already clean).
  [[nodiscard]] std::size_t files_submitted() const {
    return completions_.size();
  }

 private:
  friend DrainTicket submit_drain(IoScheduler&, const JobToken&,
                                  store::TieredBackend&,
                                  const sim::LoadContext&);
  struct State {
    std::mutex mutex;
    store::TieredBackend::DrainReport report;
  };
  std::shared_ptr<State> state_;
  std::vector<Completion> completions_;
};

/// Snapshot the backend's dirty work list and queue one DRAIN-class item
/// per file under `job`. Returns immediately; the copies run on the
/// scheduler's shard workers. Items race benignly with writers, GC and
/// other drains — a file cleaned in the meantime drops out of the report.
DrainTicket submit_drain(IoScheduler& scheduler, const JobToken& job,
                         store::TieredBackend& backend,
                         const sim::LoadContext& load = {});

}  // namespace drms::svc
