// Multi-tenant checkpoint service core (drms::svc).
//
// An IoScheduler turns the storage layer's synchronous per-backend drain
// into an async event-queue model (the DAOS event-queue / per-target
// servicing lineage): callers register as JOBS, submit I/O work items
// tagged with a PRIORITY CLASS and a SHARD KEY, and continue while
// per-shard server queues execute the items on worker threads. The three
// design commitments:
//
//   * Priority classes. RESTORE (a recovery reading state back) beats
//     FOREGROUND (an application checkpointing on its critical path)
//     beats DRAIN (background fast->slow tier traffic). Queued drain
//     items never delay a queued restore: each shard dequeues the most
//     urgent class first, and a RestoreGuard can defer the whole drain
//     class while a recovery is in flight.
//
//   * Per-job QoS tokens. register_job() returns a JobToken carrying the
//     job's admission limits; a job at its max_inflight budget blocks in
//     submit() until its own completions catch up, so one tenant cannot
//     monopolize the queues. barrier(job) is the per-job completion
//     barrier the engines use to preserve manifest-last commit ordering.
//
//   * Sharded server queues. Work lands on hash(shard_key) % shard_count
//     queues with independent locks and workers, so independent jobs
//     (distinct file names) do not serialize on one volume lock.
//
// Deterministic service model: alongside real execution, every shard
// advances a VIRTUAL clock by each item's modeled service seconds at
// dequeue. Queue-wait (virtual start minus virtual submit) and makespan
// (max shard clock) are therefore exact queueing-model quantities —
// reproducible across runs and machines — which is what the contention
// bench gates on. Wall-clock execution remains genuinely concurrent.
//
// Degeneration contract: with a single registered job (and no pending
// items) submit() executes inline, synchronously, in submission order —
// the scheduler adds nothing to a one-job system, which keeps the paper
// tables bit-identical.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/recorder.hpp"

namespace drms::svc {

/// Urgency of one work item; lower enumerator = dequeued first.
enum class Priority : int {
  kRestore = 0,     ///< recovery restore/verify reads
  kForeground = 1,  ///< application checkpoint writes (critical path)
  kDrain = 2,       ///< background tier-drain copies
};
inline constexpr int kPriorityClasses = 3;
[[nodiscard]] const char* to_string(Priority p) noexcept;

/// Admission-control limits of one job (0 = unlimited).
struct QosLimits {
  /// Items a job may have queued or running at once; submit() blocks at
  /// the budget until the job's own completions free a slot.
  int max_inflight = 0;
};

/// Aggregated per-priority-class service statistics.
struct ClassStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  // fn threw; counted within completed
  std::uint64_t bytes = 0;
  /// Virtual queue-wait (seconds, deterministic; see header comment).
  double total_wait_seconds = 0.0;
  double max_wait_seconds = 0.0;
};

class IoScheduler;
/// Shared per-job bookkeeping (defined in io_scheduler.cpp).
struct JobState;

/// One job's registration. Move-only RAII: destruction deregisters (after
/// waiting for the job's in-flight items). The token's id doubles as a
/// per-job deterministic seed (e.g. for retry-backoff jitter).
class JobToken {
 public:
  JobToken() = default;
  JobToken(JobToken&& other) noexcept { *this = std::move(other); }
  JobToken& operator=(JobToken&& other) noexcept;
  JobToken(const JobToken&) = delete;
  JobToken& operator=(const JobToken&) = delete;
  ~JobToken();

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] const std::string& name() const;
  /// Stable nonzero id, unique within the scheduler.
  [[nodiscard]] std::uint64_t id() const;
  /// Release the registration early (idempotent; waits for in-flight
  /// items like the destructor).
  void release();

 private:
  friend class IoScheduler;
  JobToken(IoScheduler* scheduler, std::shared_ptr<JobState> state)
      : scheduler_(scheduler), state_(std::move(state)) {}
  IoScheduler* scheduler_ = nullptr;
  std::shared_ptr<JobState> state_;
};

/// Ticket for one submitted item. wait() blocks until the item executed
/// and rethrows the exception it raised, if any. Default-constructed
/// (and inline-executed) tickets are already complete.
class Completion {
 public:
  Completion() = default;
  /// True once the item finished (successfully or not).
  [[nodiscard]] bool done() const;
  /// Block until done; rethrows the item's exception.
  void wait() const;
  /// Virtual queue-wait seconds of the item (valid once done; 0 inline).
  [[nodiscard]] double wait_seconds() const;

 private:
  friend class IoScheduler;
  struct State;
  std::shared_ptr<State> state_;
};

class IoScheduler {
 public:
  struct Options {
    /// Independent server queues (>= 1). One worker thread per shard.
    int shard_count = 1;
    /// Start with dequeueing gated off — submit builds a backlog until
    /// resume() (deterministic tests and bench phases).
    bool start_paused = false;
    /// Ignore priority classes: one FIFO per shard (the serialized
    /// baseline of the contention bench).
    bool fifo_only = false;
    /// Never take the single-job inline shortcut (tests that want queue
    /// behaviour with one job).
    bool force_async = false;
    /// Record every item's virtual wait for percentile reporting.
    bool keep_wait_samples = false;
    /// Optional metrics sink: svc.submit.<class> / svc.complete.<class> /
    /// svc.fail.<class> / svc.inline counters, svc.wait.<class> latency
    /// histograms and svc.queue_depth.peak gauge.
    obs::Recorder* recorder = nullptr;
  };

  IoScheduler();  // default Options
  explicit IoScheduler(Options options);
  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;
  /// Runs every pending item to completion, then joins the workers.
  ~IoScheduler();

  // ---- tenancy --------------------------------------------------------------
  [[nodiscard]] JobToken register_job(std::string name, QosLimits limits = {});
  [[nodiscard]] int registered_jobs() const;

  // ---- submission -----------------------------------------------------------
  /// Queue one work item. `bytes` and `sim_seconds` describe the item for
  /// QoS accounting and the virtual service clock (both may be 0); `fn`
  /// performs the real storage operation on a worker thread. Blocks while
  /// the job is at its max_inflight budget. With a single registered job
  /// and an empty queue the item runs inline (synchronously, exceptions
  /// propagate to the caller) unless Options::force_async.
  Completion submit(const JobToken& job, Priority priority,
                    std::string_view shard_key, std::uint64_t bytes,
                    double sim_seconds, std::function<void()> fn);

  /// Per-job completion barrier: returns once every item the job
  /// submitted so far has executed. Rethrows the job's FIRST stored
  /// exception (then clears it) so async errors surface like synchronous
  /// ones.
  void barrier(const JobToken& job);
  /// Barrier over all jobs (does not rethrow job errors).
  void wait_idle();

  // ---- flow control ---------------------------------------------------------
  void pause();
  void resume();

  /// While alive, shard workers do not dequeue DRAIN-class items — the
  /// recovery supervisor holds one across verify/restore so background
  /// drains cannot contend with bringing a job back up. Nestable.
  class RestoreGuard {
   public:
    RestoreGuard() = default;
    RestoreGuard(RestoreGuard&& other) noexcept { *this = std::move(other); }
    RestoreGuard& operator=(RestoreGuard&& other) noexcept;
    RestoreGuard(const RestoreGuard&) = delete;
    RestoreGuard& operator=(const RestoreGuard&) = delete;
    ~RestoreGuard() { release(); }
    void release();
    [[nodiscard]] bool held() const noexcept { return scheduler_ != nullptr; }

   private:
    friend class IoScheduler;
    explicit RestoreGuard(IoScheduler* s) : scheduler_(s) {}
    IoScheduler* scheduler_ = nullptr;
  };
  [[nodiscard]] RestoreGuard preempt_drains();

  // ---- introspection --------------------------------------------------------
  [[nodiscard]] ClassStats class_stats(Priority p) const;
  /// Per-item virtual waits of one class (Options::keep_wait_samples).
  [[nodiscard]] std::vector<double> wait_samples(Priority p) const;
  /// Max shard virtual clock — the modeled makespan of everything
  /// serviced so far.
  [[nodiscard]] double makespan_seconds() const;
  [[nodiscard]] int shard_count() const noexcept;
  /// Items queued but not yet started, across all shards.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Highest queue_depth observed so far.
  [[nodiscard]] std::size_t peak_queue_depth() const;

 private:
  struct Item;
  struct Shard;

  void worker(Shard& shard);
  /// Pop the best runnable item (priority order, drain-guard honoured).
  /// Caller holds the shard mutex; returns nullptr when none runnable.
  [[nodiscard]] std::unique_ptr<Item> pop_runnable(Shard& shard);
  void execute(Shard& shard, std::unique_ptr<Item> item,
               std::unique_lock<std::mutex>& lock);
  void finish_job_item(const std::shared_ptr<JobState>& job,
                       std::exception_ptr error);
  void deregister_job(const std::shared_ptr<JobState>& state);
  [[nodiscard]] Shard& shard_of(std::string_view key);

  Options options_;
  obs::Recorder* recorder_;

  mutable std::mutex mutex_;  // jobs, stats, pause/guard state
  std::condition_variable idle_cv_;
  std::vector<std::shared_ptr<JobState>> jobs_;
  std::uint64_t next_job_id_ = 1;
  ClassStats stats_[kPriorityClasses];
  std::vector<double> wait_samples_[kPriorityClasses];
  bool paused_ = false;
  int drain_holds_ = 0;
  bool stopping_ = false;
  std::size_t pending_ = 0;       // queued, not yet started
  std::size_t peak_pending_ = 0;
  std::size_t running_ = 0;       // started, not yet finished

  std::vector<std::unique_ptr<Shard>> shards_;

  friend class JobToken;
};

}  // namespace drms::svc
