// Machine and placement model for the simulated parallel system.
//
// Mirrors the paper's testbed: a 16-node IBM RS/6000 SP where every node
// is both a PIOFS file-system server and a candidate compute node, tasks
// are placed one per processor, and interference arises when application
// tasks share nodes with active file servers.
#pragma once

#include <cstdint>
#include <vector>

#include "support/units.hpp"

namespace drms::sim {

/// Static description of the simulated machine.
struct Machine {
  /// Total nodes (processors). The paper's SP has 16 "thin nodes".
  int node_count = 16;
  /// Number of PIOFS server nodes; files are striped across all of them.
  /// On the paper's system every node is a server.
  int server_count = 16;
  /// Physical memory per node (128 MB on the model 390 thin node).
  std::uint64_t node_memory_bytes = 128 * support::kMiB;

  [[nodiscard]] static Machine paper_sp16() { return Machine{}; }
};

/// Mapping of application tasks onto nodes.
class Placement {
 public:
  Placement(Machine machine, std::vector<int> task_node);

  /// One task per node on nodes 0..tasks-1 (the paper's mapping).
  static Placement one_per_node(const Machine& machine, int tasks);

  [[nodiscard]] const Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] int task_count() const noexcept {
    return static_cast<int>(task_node_.size());
  }
  [[nodiscard]] int node_of(int task) const;
  [[nodiscard]] int tasks_on_node(int node) const;

  /// Fraction of server nodes that also host at least one application
  /// task. Drives the co-location interference terms of the cost model:
  /// 0.5 when 8 tasks run on a 16-server machine, 1.0 when 16 do.
  [[nodiscard]] double busy_server_fraction() const noexcept;

  /// Largest number of tasks sharing any single node.
  [[nodiscard]] int max_tasks_per_node() const noexcept;

 private:
  Machine machine_;
  std::vector<int> task_node_;
  std::vector<int> tasks_per_node_;
};

}  // namespace drms::sim
