// Per-task simulated clock.
//
// Each task of a task group owns a simulated time coordinate; I/O and
// compute primitives advance it, and barriers synchronize all coordinates
// to the maximum (a BSP-style time model). Deterministic regardless of
// host thread scheduling: durations come from the pure CostModel
// functions, and synchronization points are exactly the application's
// barriers.
#pragma once

#include <mutex>
#include <vector>

namespace drms::sim {

class SimClock {
 public:
  explicit SimClock(int tasks);

  /// Advance one task's clock by `seconds` (>= 0).
  void advance(int task, double seconds);

  /// Current simulated time of one task.
  [[nodiscard]] double time_of(int task) const;

  /// Synchronize every task's clock to the group maximum (the runtime
  /// calls this from inside each barrier).
  void sync_to_max();

  /// Maximum over all task clocks.
  [[nodiscard]] double max_time() const;

  /// Reset all clocks to zero.
  void reset();

  [[nodiscard]] int task_count() const noexcept {
    return static_cast<int>(times_.size());
  }

 private:
  mutable std::mutex mutex_;
  std::vector<double> times_;
};

}  // namespace drms::sim
