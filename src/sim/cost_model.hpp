// PIOFS performance model.
//
// The paper's timing results (Tables 5 and 6, Figure 7) are shaped by four
// mechanisms of the PIOFS parallel file system on the 16-node SP:
//
//  1. Writes are SERVER-LIMITED: aggregate write throughput is capped by
//     the file servers, and degrades with memory pressure on the server
//     nodes (application residency + the volume of in-flight state).
//  2. Reads of a SHARED file are CLIENT-LIMITED: server-side prefetch
//     means every additional client adds aggregate read bandwidth (this is
//     why DRMS restart gets *faster* from 8 to 16 processors).
//  3. Reads of many PRIVATE files (one per task, the SPMD restart pattern)
//     collapse once the per-node working set exceeds the buffer memory
//     available — the "threshold" the paper uses to explain BT's five-fold
//     restart blow-up at 16 processors.
//  4. Co-locating application tasks with file servers (the 16-processor
//     runs) steals CPU and memory from the servers.
//
// Every primitive below is a pure function of an operation descriptor, so
// timing is deterministic and order-independent; optional multiplicative
// lognormal jitter reproduces the paper's run-to-run spread.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace drms::sim {

/// Ambient load context for one I/O phase. Built by the checkpoint engine,
/// which knows the placement and the application's memory footprint.
struct LoadContext {
  /// Fraction of server nodes that also host application tasks.
  double busy_server_fraction = 0.0;
  /// Application bytes resident on each busy node (data segment incl.
  /// local array sections) — the source of server memory pressure.
  std::uint64_t per_task_resident_bytes = 0;
  /// Tasks sharing the most loaded node (1 under one-per-node placement).
  int max_tasks_per_node = 1;
  /// Node memory (for pressure normalization).
  std::uint64_t node_memory_bytes = 128 * support::kMiB;
  /// Number of file-system server nodes the phase stripes across.
  int server_count = 16;
};

/// All knobs of the PIOFS model. Plain aggregate; benches use
/// `paper_sp16()`, correctness tests use `zero()` (all durations 0).
struct CostModel {
  // -- client-side streaming rates (bytes/second) ---------------------------
  /// Single-stream client write bandwidth before congestion scaling.
  double client_write_bw = 0.0;
  /// Per-client read bandwidth on a file every task reads concurrently
  /// (prefetch-friendly: the DRMS data-segment restore pattern).
  double client_shared_read_bw = 0.0;
  /// Per-client read bandwidth for a private per-task file while the
  /// node's working set fits in buffer memory...
  double client_private_read_bw_peak = 0.0;
  /// ...and once the working set is far past it.
  double client_private_read_bw_floor = 0.0;
  /// Per-client rate for array-section input streaming (read + scatter
  /// redistribution combined; the paper's Table 6 "arrays" restore rows).
  double client_array_read_bw = 0.0;
  /// Per-client rate at which redistribution (the first half of each
  /// parallel output-streaming round) is processed.
  double redistribution_bw = 0.0;

  // -- server-side capacity --------------------------------------------------
  /// Aggregate striped-write capacity as a piecewise-linear curve over
  /// per-server memory pressure (bytes -> bytes/second). Monotonically
  /// non-increasing in pressure.
  std::vector<std::pair<std::uint64_t, double>> server_write_capacity;

  // -- memory-pressure knee for private-file reads ---------------------------
  /// Below this per-node working set, private reads run at peak rate.
  std::uint64_t read_pressure_knee = 0;
  /// At or above this, private reads run at floor rate (linear between).
  std::uint64_t read_pressure_floor = 0;

  // -- interference -----------------------------------------------------------
  /// Client rates are divided by 1 + alpha * busy_fraction * residency.
  double client_congestion_alpha = 0.0;
  /// Writer-side memory-pressure knee: when the application's resident
  /// bytes exceed this fraction of node memory, the single-writer rate
  /// degrades linearly, reaching `writer_residency_floor_factor` at
  /// `writer_residency_floor`. Captures LU's anomalously slow 85 MB
  /// segment write on 128 MB nodes.
  double writer_residency_knee = 1.0;
  double writer_residency_floor = 1.0;
  double writer_residency_floor_factor = 1.0;

  // -- fixed costs -------------------------------------------------------------
  /// Per-chunk/per-operation latency (seek + request round trip).
  double op_latency = 0.0;
  /// Rate at which the application text segment loads at restart (the
  /// "other" component of the paper's restart breakdown).
  double text_load_bw = 0.0;
  /// Simulated compute throughput (grid points/second/task) used by the
  /// solvers to account iteration time between checkpoints.
  double compute_points_per_second = 0.0;

  // -- node-local memory tier (store::MemoryBackend) --------------------------
  /// Per-task bandwidth into the in-memory checkpoint tier (bytes/second).
  /// Zero disables memory-tier timing (the tier charges nothing).
  double memory_write_bw = 0.0;
  /// Per-task bandwidth out of the in-memory tier.
  double memory_read_bw = 0.0;
  /// Fixed per-phase latency of a memory-tier operation.
  double memory_op_latency = 0.0;

  /// Lognormal sigma applied per primitive call when a jitter Rng is given.
  double jitter_sigma = 0.0;

  /// Model with every duration equal to zero — for correctness-only tests.
  [[nodiscard]] static CostModel zero();
  /// Model calibrated against the paper's Tables 5-6 on the 16-node SP.
  [[nodiscard]] static CostModel paper_sp16();

  // ---- primitives (all return seconds) --------------------------------------

  /// One task writes `bytes` as a stream striped over the servers.
  [[nodiscard]] double single_write_seconds(std::uint64_t bytes,
                                            const LoadContext& ctx,
                                            support::Rng* jitter) const;

  /// `writers` tasks each concurrently write `bytes_per_writer` to private
  /// files (the SPMD checkpoint pattern). Server-limited.
  [[nodiscard]] double concurrent_write_seconds(std::uint64_t bytes_per_writer,
                                                int writers,
                                                const LoadContext& ctx,
                                                support::Rng* jitter) const;

  /// Every one of `readers` tasks reads the same `bytes`-long file in full
  /// (the DRMS data-segment restore). Client-limited; time is per-client
  /// and independent of the reader count.
  [[nodiscard]] double shared_read_seconds(std::uint64_t bytes, int readers,
                                           const LoadContext& ctx,
                                           support::Rng* jitter) const;

  /// `readers` tasks each read their own `bytes_per_reader` private file
  /// (the SPMD restart pattern). Subject to the buffer-memory threshold.
  [[nodiscard]] double private_read_seconds(std::uint64_t bytes_per_reader,
                                            int readers,
                                            const LoadContext& ctx,
                                            support::Rng* jitter) const;

  /// One round of parallel output streaming: redistribute `bytes` into
  /// canonical per-task chunks, then `writers` tasks write concurrently.
  [[nodiscard]] double stream_write_round_seconds(std::uint64_t bytes,
                                                  int writers,
                                                  const LoadContext& ctx,
                                                  support::Rng* jitter) const;

  /// One round of parallel input streaming (read + scatter).
  [[nodiscard]] double stream_read_round_seconds(std::uint64_t bytes,
                                                 int readers,
                                                 const LoadContext& ctx,
                                                 support::Rng* jitter) const;

  /// Restart initialization (application text load).
  [[nodiscard]] double restart_init_seconds(std::uint64_t text_bytes,
                                            support::Rng* jitter) const;

  /// Solver compute time for `grid_points` points on one task.
  [[nodiscard]] double compute_seconds(std::uint64_t grid_points) const;

  // ---- derived quantities (exposed for tests and ablations) -----------------

  /// 1 + alpha * busy_fraction * residency_ratio.
  [[nodiscard]] double client_congestion(const LoadContext& ctx) const;
  /// Multiplier in (0, 1] applied to single-writer rates under high
  /// residency (see writer_residency_knee).
  [[nodiscard]] double writer_residency_factor(const LoadContext& ctx) const;
  /// Interpolated aggregate server write capacity under `pressure` bytes
  /// per server node.
  [[nodiscard]] double server_write_bw(std::uint64_t pressure_per_server)
      const;
  /// Per-node working-set pressure for a private-read phase.
  [[nodiscard]] std::uint64_t private_read_pressure(
      std::uint64_t bytes_per_reader, int readers,
      const LoadContext& ctx) const;
  /// Per-client private-read rate under the threshold model.
  [[nodiscard]] double private_read_rate(std::uint64_t pressure,
                                         const LoadContext& ctx) const;

 private:
  [[nodiscard]] double apply_jitter(double seconds,
                                    support::Rng* jitter) const;
};

}  // namespace drms::sim
