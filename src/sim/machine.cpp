#include "sim/machine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace drms::sim {

Placement::Placement(Machine machine, std::vector<int> task_node)
    : machine_(machine),
      task_node_(std::move(task_node)),
      tasks_per_node_(static_cast<std::size_t>(machine_.node_count), 0) {
  DRMS_EXPECTS(machine_.node_count > 0);
  DRMS_EXPECTS(machine_.server_count > 0);
  DRMS_EXPECTS(machine_.server_count <= machine_.node_count);
  DRMS_EXPECTS(!task_node_.empty());
  for (const int node : task_node_) {
    DRMS_EXPECTS_MSG(node >= 0 && node < machine_.node_count,
                     "task placed on a node outside the machine");
    ++tasks_per_node_[static_cast<std::size_t>(node)];
  }
}

Placement Placement::one_per_node(const Machine& machine, int tasks) {
  DRMS_EXPECTS(tasks > 0 && tasks <= machine.node_count);
  std::vector<int> mapping(static_cast<std::size_t>(tasks));
  for (int t = 0; t < tasks; ++t) {
    mapping[static_cast<std::size_t>(t)] = t;
  }
  return Placement(machine, std::move(mapping));
}

int Placement::node_of(int task) const {
  DRMS_EXPECTS(task >= 0 && task < task_count());
  return task_node_[static_cast<std::size_t>(task)];
}

int Placement::tasks_on_node(int node) const {
  DRMS_EXPECTS(node >= 0 && node < machine_.node_count);
  return tasks_per_node_[static_cast<std::size_t>(node)];
}

double Placement::busy_server_fraction() const noexcept {
  int busy = 0;
  for (int s = 0; s < machine_.server_count; ++s) {
    if (tasks_per_node_[static_cast<std::size_t>(s)] > 0) {
      ++busy;
    }
  }
  return static_cast<double>(busy) / static_cast<double>(machine_.server_count);
}

int Placement::max_tasks_per_node() const noexcept {
  return *std::max_element(tasks_per_node_.begin(), tasks_per_node_.end());
}

}  // namespace drms::sim
