#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace drms::sim {

namespace {

constexpr double kMiBd = static_cast<double>(support::kMiB);

double mib(double v) { return v * kMiBd; }

}  // namespace

CostModel CostModel::zero() { return CostModel{}; }

CostModel CostModel::paper_sp16() {
  CostModel m;
  // Client rates (MiB/s). Calibrated so that the @8-processor values of
  // Table 6 are reproduced and the 8->16 trends follow the paper's
  // co-location mechanisms; see bench/bench_calibration for the fit.
  m.client_write_bw = mib(21.5);
  m.client_shared_read_bw = mib(3.55);
  m.client_private_read_bw_peak = mib(3.2);
  m.client_private_read_bw_floor = mib(0.55);
  m.client_array_read_bw = mib(0.51);
  m.redistribution_bw = mib(3.4);

  // Aggregate striped write capacity vs per-server memory pressure.
  m.server_write_capacity = {
      {0, mib(24.0)},
      {static_cast<std::uint64_t>(mib(35)), mib(18.0)},
      {static_cast<std::uint64_t>(mib(50)), mib(16.0)},
      {static_cast<std::uint64_t>(mib(63)), mib(12.2)},
      {static_cast<std::uint64_t>(mib(85)), mib(9.5)},
      {static_cast<std::uint64_t>(mib(105)), mib(8.7)},
      {static_cast<std::uint64_t>(mib(130)), mib(8.4)},
      {static_cast<std::uint64_t>(mib(170)), mib(7.0)},
  };

  m.read_pressure_knee = static_cast<std::uint64_t>(mib(80));
  m.read_pressure_floor = static_cast<std::uint64_t>(mib(110));

  m.client_congestion_alpha = 3.0;
  m.writer_residency_knee = 0.55;
  m.writer_residency_floor = 0.70;
  m.writer_residency_floor_factor = 0.50;
  m.op_latency = 0.010;
  m.text_load_bw = mib(2.2);
  m.compute_points_per_second = 2.0e6;
  // Memory tier: node-local RAM staging for multi-level checkpoints.
  // Far above the server-limited PIOFS rates, per the SCR/ReStore premise.
  m.memory_write_bw = mib(150.0);
  m.memory_read_bw = mib(200.0);
  m.memory_op_latency = 0.0005;
  m.jitter_sigma = 0.15;
  return m;
}

double CostModel::apply_jitter(double seconds, support::Rng* jitter) const {
  if (jitter == nullptr || jitter_sigma <= 0.0) {
    return seconds;
  }
  return seconds * jitter->jitter(jitter_sigma);
}

double CostModel::client_congestion(const LoadContext& ctx) const {
  const double residency =
      ctx.node_memory_bytes == 0
          ? 0.0
          : static_cast<double>(ctx.per_task_resident_bytes) *
                static_cast<double>(ctx.max_tasks_per_node) /
                static_cast<double>(ctx.node_memory_bytes);
  return 1.0 + client_congestion_alpha * ctx.busy_server_fraction * residency;
}

double CostModel::writer_residency_factor(const LoadContext& ctx) const {
  if (ctx.node_memory_bytes == 0 ||
      writer_residency_floor <= writer_residency_knee) {
    return 1.0;
  }
  const double ratio = static_cast<double>(ctx.per_task_resident_bytes) /
                       static_cast<double>(ctx.node_memory_bytes);
  if (ratio <= writer_residency_knee) {
    return 1.0;
  }
  if (ratio >= writer_residency_floor) {
    return writer_residency_floor_factor;
  }
  const double t = (ratio - writer_residency_knee) /
                   (writer_residency_floor - writer_residency_knee);
  return 1.0 + t * (writer_residency_floor_factor - 1.0);
}

double CostModel::server_write_bw(std::uint64_t pressure_per_server) const {
  if (server_write_capacity.empty()) {
    return 0.0;
  }
  const auto& pts = server_write_capacity;
  if (pressure_per_server <= pts.front().first) {
    return pts.front().second;
  }
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pressure_per_server <= pts[i].first) {
      const double x0 = static_cast<double>(pts[i - 1].first);
      const double x1 = static_cast<double>(pts[i].first);
      const double y0 = pts[i - 1].second;
      const double y1 = pts[i].second;
      const double t = (static_cast<double>(pressure_per_server) - x0) /
                       (x1 - x0);
      return y0 + t * (y1 - y0);
    }
  }
  return pts.back().second;
}

std::uint64_t CostModel::private_read_pressure(std::uint64_t bytes_per_reader,
                                               int readers,
                                               const LoadContext& ctx) const {
  // Working set on the most loaded node: the private files resident for
  // the tasks it hosts, plus the stripe share this node serves when the
  // file servers are co-located with application tasks.
  const double resident = static_cast<double>(bytes_per_reader) *
                          static_cast<double>(ctx.max_tasks_per_node);
  const double stripe_share =
      ctx.busy_server_fraction *
      static_cast<double>(bytes_per_reader) * static_cast<double>(readers) /
      static_cast<double>(std::max(1, ctx.server_count));
  return static_cast<std::uint64_t>(resident + stripe_share);
}

double CostModel::private_read_rate(std::uint64_t pressure,
                                    const LoadContext& /*ctx*/) const {
  if (client_private_read_bw_peak <= 0.0) {
    return 0.0;
  }
  if (pressure <= read_pressure_knee) {
    return client_private_read_bw_peak;
  }
  if (pressure >= read_pressure_floor ||
      read_pressure_floor <= read_pressure_knee) {
    return client_private_read_bw_floor;
  }
  const double t = static_cast<double>(pressure - read_pressure_knee) /
                   static_cast<double>(read_pressure_floor -
                                       read_pressure_knee);
  return client_private_read_bw_peak +
         t * (client_private_read_bw_floor - client_private_read_bw_peak);
}

double CostModel::single_write_seconds(std::uint64_t bytes,
                                       const LoadContext& ctx,
                                       support::Rng* jitter) const {
  if (client_write_bw <= 0.0) {
    return 0.0;
  }
  const double client_rate = client_write_bw / client_congestion(ctx) *
                             writer_residency_factor(ctx);
  const std::uint64_t pressure =
      bytes / static_cast<std::uint64_t>(std::max(1, ctx.server_count)) +
      static_cast<std::uint64_t>(
          ctx.busy_server_fraction *
          static_cast<double>(ctx.per_task_resident_bytes));
  const double server_rate = server_write_bw(pressure);
  const double rate =
      server_rate > 0.0 ? std::min(client_rate, server_rate) : client_rate;
  const double seconds = static_cast<double>(bytes) / rate + op_latency;
  return apply_jitter(seconds, jitter);
}

double CostModel::concurrent_write_seconds(std::uint64_t bytes_per_writer,
                                           int writers,
                                           const LoadContext& ctx,
                                           support::Rng* jitter) const {
  DRMS_EXPECTS(writers > 0);
  if (client_write_bw <= 0.0) {
    return 0.0;
  }
  const std::uint64_t total =
      bytes_per_writer * static_cast<std::uint64_t>(writers);
  const std::uint64_t pressure =
      total / static_cast<std::uint64_t>(std::max(1, ctx.server_count)) +
      static_cast<std::uint64_t>(
          ctx.busy_server_fraction *
          static_cast<double>(ctx.per_task_resident_bytes));
  const double agg = server_write_bw(pressure);
  const double client_rate = client_write_bw / client_congestion(ctx);
  // Server-limited unless so few writers that the clients cannot even
  // saturate the servers.
  const double eff_agg =
      std::min(agg > 0.0 ? agg : client_rate * writers,
               client_rate * static_cast<double>(writers));
  const double seconds =
      static_cast<double>(total) / eff_agg + op_latency;
  return apply_jitter(seconds, jitter);
}

double CostModel::shared_read_seconds(std::uint64_t bytes, int readers,
                                      const LoadContext& ctx,
                                      support::Rng* jitter) const {
  DRMS_EXPECTS(readers > 0);
  if (client_shared_read_bw <= 0.0) {
    return 0.0;
  }
  // Prefetch makes the shared file effectively server-cached; every client
  // proceeds at its own pace, so the phase takes one client's time. A
  // segment that nearly fills node memory degrades the client rate too,
  // though only about half as strongly as it degrades writes.
  const double residency = 0.5 + 0.5 * writer_residency_factor(ctx);
  const double seconds =
      static_cast<double>(bytes) / (client_shared_read_bw * residency) +
      op_latency;
  return apply_jitter(seconds, jitter);
}

double CostModel::private_read_seconds(std::uint64_t bytes_per_reader,
                                       int readers, const LoadContext& ctx,
                                       support::Rng* jitter) const {
  DRMS_EXPECTS(readers > 0);
  if (client_private_read_bw_peak <= 0.0) {
    return 0.0;
  }
  const std::uint64_t pressure =
      private_read_pressure(bytes_per_reader, readers, ctx);
  const double rate = private_read_rate(pressure, ctx);
  const double seconds =
      static_cast<double>(bytes_per_reader) / rate + op_latency;
  return apply_jitter(seconds, jitter);
}

double CostModel::stream_write_round_seconds(std::uint64_t bytes, int writers,
                                             const LoadContext& ctx,
                                             support::Rng* jitter) const {
  DRMS_EXPECTS(writers > 0);
  if (client_write_bw <= 0.0 && redistribution_bw <= 0.0) {
    return 0.0;
  }
  // Phase 1: redistribute into the canonical distribution (client CPU,
  // parallel over the writers).
  double redist = 0.0;
  if (redistribution_bw > 0.0) {
    const double rate = redistribution_bw / client_congestion(ctx);
    redist = static_cast<double>(bytes) /
             (rate * static_cast<double>(writers));
  }
  // Phase 2: concurrent writes of the canonical chunks (server-limited).
  double write = 0.0;
  if (client_write_bw > 0.0) {
    const std::uint64_t pressure =
        bytes / static_cast<std::uint64_t>(std::max(1, ctx.server_count)) +
        static_cast<std::uint64_t>(
            ctx.busy_server_fraction *
            static_cast<double>(ctx.per_task_resident_bytes));
    const double agg =
        std::min(server_write_bw(pressure),
                 (client_write_bw / client_congestion(ctx)) *
                     static_cast<double>(writers));
    write = static_cast<double>(bytes) / agg;
  }
  return apply_jitter(redist + write + op_latency, jitter);
}

double CostModel::stream_read_round_seconds(std::uint64_t bytes, int readers,
                                            const LoadContext& ctx,
                                            support::Rng* jitter) const {
  DRMS_EXPECTS(readers > 0);
  if (client_array_read_bw <= 0.0) {
    return 0.0;
  }
  // Client-limited: reading the canonical chunks and scattering them into
  // the target distribution proceeds in parallel on every reader.
  (void)ctx;
  const double seconds =
      static_cast<double>(bytes) /
          (client_array_read_bw * static_cast<double>(readers)) +
      op_latency;
  return apply_jitter(seconds, jitter);
}

double CostModel::restart_init_seconds(std::uint64_t text_bytes,
                                       support::Rng* jitter) const {
  if (text_load_bw <= 0.0) {
    return 0.0;
  }
  return apply_jitter(static_cast<double>(text_bytes) / text_load_bw,
                      jitter);
}

double CostModel::compute_seconds(std::uint64_t grid_points) const {
  if (compute_points_per_second <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(grid_points) / compute_points_per_second;
}

}  // namespace drms::sim
