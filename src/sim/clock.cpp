#include "sim/clock.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace drms::sim {

SimClock::SimClock(int tasks)
    : times_(static_cast<std::size_t>(tasks), 0.0) {
  DRMS_EXPECTS(tasks > 0);
}

void SimClock::advance(int task, double seconds) {
  DRMS_EXPECTS(task >= 0 && task < task_count());
  DRMS_EXPECTS(seconds >= 0.0);
  const std::lock_guard<std::mutex> lock(mutex_);
  times_[static_cast<std::size_t>(task)] += seconds;
}

double SimClock::time_of(int task) const {
  DRMS_EXPECTS(task >= 0 && task < task_count());
  const std::lock_guard<std::mutex> lock(mutex_);
  return times_[static_cast<std::size_t>(task)];
}

void SimClock::sync_to_max() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const double m = *std::max_element(times_.begin(), times_.end());
  std::fill(times_.begin(), times_.end(), m);
}

double SimClock::max_time() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return *std::max_element(times_.begin(), times_.end());
}

void SimClock::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::fill(times_.begin(), times_.end(), 0.0);
}

}  // namespace drms::sim
