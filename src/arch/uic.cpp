#include "arch/uic.hpp"

#include "core/checkpoint_catalog.hpp"
#include "support/units.hpp"

namespace drms::arch {

Uic::Uic(Cluster& cluster, JobScheduler& scheduler,
         const store::StorageBackend& storage,
         EventLog& log)
    : cluster_(cluster),
      scheduler_(scheduler),
      storage_(storage),
      log_(log) {}

JobOutcome Uic::submit_and_wait(const JobDescriptor& job) {
  return scheduler_.run_job(job);
}

bool Uic::request_checkpoint(const std::string& job_name) {
  return scheduler_.request_checkpoint(job_name);
}

void Uic::admin_fail_node(int node) { cluster_.fail_node(node); }

void Uic::admin_repair_node(int node) { cluster_.repair_node(node); }

int Uic::available_processors() const {
  return cluster_.available_processors();
}

std::vector<std::string> Uic::list_checkpoint_files(
    const std::string& prefix) const {
  return storage_.list(prefix);
}

std::vector<std::string> Uic::show_checkpoints() const {
  std::vector<std::string> out;
  for (const auto& record : core::list_checkpoints(storage_)) {
    out.push_back(record.prefix + "  " + record.meta.app_name + "  " +
                  (record.spmd ? "SPMD" : "DRMS") + "  tasks=" +
                  std::to_string(record.meta.task_count) + "  sop=" +
                  std::to_string(record.meta.sop) + "  " +
                  support::format_bytes(record.state_bytes));
  }
  return out;
}

std::vector<std::string> Uic::event_trace() const {
  return log_.formatted();
}

}  // namespace drms::arch
