#include "arch/scheduler.hpp"

#include <chrono>
#include <thread>

#include "core/checkpoint_catalog.hpp"
#include "core/checkpoint_format.hpp"
#include "support/error.hpp"

namespace drms::arch {

JobScheduler::JobScheduler(Cluster& cluster, EventLog* log)
    : cluster_(cluster), log_(log) {}

bool JobScheduler::request_checkpoint(const std::string& job_name) {
  const std::lock_guard<std::mutex> lock(running_mutex_);
  const auto it = running_.find(job_name);
  if (it == running_.end()) {
    return false;
  }
  it->second->enable_checkpoint();
  if (log_ != nullptr) {
    log_->record(EventKind::kCheckpointRequested, "job=" + job_name);
  }
  return true;
}

namespace {

/// Highest SOP currently in storage for any state under the filter.
std::int64_t highest_sop(const store::StorageBackend& storage,
                         const std::string& prefix_filter) {
  std::int64_t best = 0;
  for (const auto& record : core::list_checkpoints(storage, prefix_filter)) {
    best = std::max(best, record.meta.sop);
  }
  return best;
}

}  // namespace

bool JobScheduler::preempt_job(const std::string& job_name,
                               const store::StorageBackend& storage,
                               const std::string& prefix_filter,
                               std::int64_t min_sop_exclusive,
                               int timeout_ms) {
  if (!request_checkpoint(job_name)) {
    return false;
  }
  // Wait for the enabling SOP to produce a fresh state.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(timeout_ms);
  while (highest_sop(storage, prefix_filter) <= min_sop_exclusive) {
    if (std::chrono::steady_clock::now() > deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Tear the pool down; run_job's loop will relaunch from the state.
  rt::TaskGroup* group = nullptr;
  {
    const std::lock_guard<std::mutex> lock(running_mutex_);
    if (running_.count(job_name) == 0) {
      return false;  // finished on its own in the meantime
    }
  }
  // The cluster holds the group pointer; kill through it.
  cluster_.kill_pool(job_name, "preempted by the scheduler");
  (void)group;
  if (log_ != nullptr) {
    log_->record(EventKind::kJobPreempted, "job=" + job_name);
  }
  return true;
}

bool JobScheduler::drain_node(int node,
                              const store::StorageBackend& storage,
                              const std::string& prefix_filter,
                              std::int64_t min_sop_exclusive,
                              int timeout_ms) {
  const std::string job = cluster_.job_on_node(node);
  if (!job.empty()) {
    if (!preempt_job(job, storage, prefix_filter, min_sop_exclusive,
                     timeout_ms)) {
      return false;
    }
  }
  cluster_.fail_node(node);
  if (log_ != nullptr) {
    log_->record(EventKind::kNodeDrained, "node=" + std::to_string(node));
  }
  return true;
}

JobOutcome JobScheduler::run_job(const JobDescriptor& job) {
  DRMS_EXPECTS(job.make_program != nullptr && job.body != nullptr);
  DRMS_EXPECTS(!job.name.empty());
  DRMS_EXPECTS(job.base_env.storage != nullptr);
  DRMS_EXPECTS(job.min_tasks >= 1 &&
               job.preferred_tasks >= job.min_tasks);

  JobOutcome outcome;
  int restarts = 0;
  for (;;) {
    const std::vector<int> nodes =
        cluster_.allocate(job.min_tasks, job.preferred_tasks, job.name);
    if (nodes.empty()) {
      throw support::Error("JSA: fewer than " +
                           std::to_string(job.min_tasks) +
                           " processors available for job '" + job.name +
                           "'");
    }
    const int tasks = static_cast<int>(nodes.size());

    // Restart from the job's checkpoint whenever one exists (either from
    // a prior attempt of this invocation or from an earlier submission).
    core::DrmsEnv env = job.base_env;
    bool have_checkpoint = false;
    if (job.restart_from_latest) {
      const auto latest = core::latest_checkpoint(
          *env.storage, job.name, job.checkpoint_prefix);
      if (latest.has_value() &&
          latest->spmd == (env.mode == core::CheckpointMode::kSpmd)) {
        have_checkpoint = true;
        env.restart_prefix = latest->prefix;
      }
    } else {
      have_checkpoint =
          env.mode == core::CheckpointMode::kDrms
              ? core::checkpoint_exists(*env.storage, job.checkpoint_prefix)
              : core::spmd_checkpoint_exists(*env.storage,
                                             job.checkpoint_prefix);
      if (have_checkpoint) {
        env.restart_prefix = job.checkpoint_prefix;
      }
    }

    std::unique_ptr<core::DrmsProgram> program =
        job.make_program(env, tasks);
    DRMS_EXPECTS(program != nullptr);

    rt::TaskGroup group(
        sim::Placement(cluster_.machine(), nodes),
        job.seed + static_cast<std::uint64_t>(restarts) * 7919);
    cluster_.register_pool(job.name, &group);
    {
      const std::lock_guard<std::mutex> lock(running_mutex_);
      running_[job.name] = program.get();
    }
    if (log_ != nullptr) {
      log_->record(have_checkpoint ? EventKind::kJobRestarted
                                   : EventKind::kJobLaunched,
                   "job=" + job.name + " tasks=" + std::to_string(tasks));
    }

    const rt::TaskGroupResult result = group.run(
        [&](rt::TaskContext& ctx) { job.body(*program, ctx); });

    {
      const std::lock_guard<std::mutex> lock(running_mutex_);
      running_.erase(job.name);
    }
    cluster_.deregister_pool(job.name);
    cluster_.release(job.name);

    JobAttempt attempt;
    attempt.tasks = tasks;
    attempt.from_checkpoint = have_checkpoint;
    attempt.completed = result.completed;
    attempt.killed = result.killed;
    attempt.kill_reason = result.kill_reason;
    attempt.errors = result.errors;
    attempt.sim_seconds = result.sim_seconds;
    outcome.attempts.push_back(std::move(attempt));

    if (result.completed) {
      if (log_ != nullptr) {
        log_->record(EventKind::kJobCompleted, "job=" + job.name);
      }
      outcome.completed = true;
      return outcome;
    }
    if (!result.errors.empty()) {
      // An application bug, not a processor failure — do not retry.
      return outcome;
    }
    if (++restarts > job.max_restarts) {
      return outcome;
    }
    if (!core::checkpoint_exists(*job.base_env.storage,
                                 job.checkpoint_prefix) &&
        !core::spmd_checkpoint_exists(*job.base_env.storage,
                                      job.checkpoint_prefix) &&
        log_ != nullptr) {
      log_->record(EventKind::kJobFailedNoCheckpoint,
                   "job=" + job.name + " (restarting from scratch)");
    }
    // Loop: reallocate from the processors still available (the failed
    // node is out of the pool until repaired) and restart.
  }
}

}  // namespace drms::arch
