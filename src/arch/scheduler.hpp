// The Job Scheduler and Analyzer (JSA): assigns processors to
// applications and exploits reconfigurable checkpointing in the three
// ways §4 lists — user-driven checkpoint/restart, system-initiated
// checkpointing for dynamic resource management (the enabling signal of
// drms_reconfig_chkenable), and automatic restart of failed applications
// from their latest checkpoint on whatever processors remain available.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/cluster.hpp"
#include "core/drms_context.hpp"

namespace drms::arch {

struct JobDescriptor {
  std::string name;
  /// Valid task-count range of the application's SOQs (the resource
  /// section of §2.1).
  int min_tasks = 1;
  int preferred_tasks = 8;
  /// Checkpoint prefix this job writes to / restarts from.
  std::string checkpoint_prefix;
  /// When true, the JSA consults the checkpoint catalog and restarts from
  /// the HIGHEST-SOP state whose app name matches (prefix acts as a
  /// filter) — the natural policy when the application alternates between
  /// several prefixes. When false, exactly `checkpoint_prefix` is used.
  bool restart_from_latest = false;
  /// Environment template; the JSA fills in restart_prefix per attempt.
  core::DrmsEnv base_env;
  /// Build the shared program state for one attempt (given env and task
  /// count).
  std::function<std::unique_ptr<core::DrmsProgram>(core::DrmsEnv, int)>
      make_program;
  /// SPMD body run by every task of the attempt.
  std::function<void(core::DrmsProgram&, rt::TaskContext&)> body;
  /// Give up after this many failure-triggered relaunches.
  int max_restarts = 5;
  std::uint64_t seed = 1;
};

struct JobAttempt {
  int tasks = 0;
  bool from_checkpoint = false;
  bool completed = false;
  bool killed = false;
  std::string kill_reason;
  std::vector<std::string> errors;
  double sim_seconds = 0.0;
};

struct JobOutcome {
  bool completed = false;
  std::vector<JobAttempt> attempts;
};

class JobScheduler {
 public:
  JobScheduler(Cluster& cluster, EventLog* log);

  /// Run a job to completion, transparently recovering from processor
  /// failures by restarting from the latest checkpoint on the processors
  /// still available (reconfigured restart). Blocking.
  JobOutcome run_job(const JobDescriptor& job);

  /// Arm the system-initiated checkpoint signal on a running job (the
  /// next drms_reconfig_chkenable SOP will take a checkpoint). Returns
  /// false when the job is not currently running.
  bool request_checkpoint(const std::string& job_name);

  /// Preempt a running job: arm its enabling signal, wait until a NEW
  /// checkpoint lands on the volume (SOP counter advances past
  /// `min_sop_exclusive`), then kill its pool. The surrounding run_job
  /// loop relaunches it from that checkpoint — on however many
  /// processors are then available. Returns false when the job is not
  /// running or no checkpoint appears within `timeout_ms` of polling.
  /// Used for scheduler-driven shrinking and node maintenance (§8).
  bool preempt_job(const std::string& job_name,
                   const store::StorageBackend& storage,
                   const std::string& prefix_filter,
                   std::int64_t min_sop_exclusive, int timeout_ms = 10000);

  /// Drain a node for maintenance: preempt the job running on it (if
  /// any), then fail the node so allocations avoid it until repair.
  /// `storage`/`prefix_filter` locate the job's checkpoints as in
  /// preempt_job.
  bool drain_node(int node, const store::StorageBackend& storage,
                  const std::string& prefix_filter,
                  std::int64_t min_sop_exclusive, int timeout_ms = 10000);

 private:
  Cluster& cluster_;
  EventLog* log_;
  std::mutex running_mutex_;
  std::map<std::string, core::DrmsProgram*> running_;
};

}  // namespace drms::arch
