// The DRMS controlling infrastructure (Figure 6): one Task Coordinator
// (TC) per processor and the master Resource Coordinator (RC).
//
// Failure model (§4): the basic failure event is a processor failure,
// detected as the loss of the connection between that processor's TC and
// the RC. On detection the RC (1) identifies the application and TC pool
// of the lost TC, (2) kills every process of that application and all TCs
// of the pool — the application is terminated, (3) informs the user,
// (4) restarts the killed TCs (the failed processor needs repair first),
// and (5) returns each reactivated processor to the available pool. The
// application restart does NOT wait for the failed processor.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "arch/events.hpp"
#include "rt/task_group.hpp"
#include "sim/machine.hpp"

namespace drms::arch {

enum class TcState {
  kConnected,   // TC up, processor available or allocated
  kLost,        // connection lost (processor failed); awaiting repair
  kRestarting,  // TC killed by the RC during pool teardown; reactivates
};

class Cluster {
 public:
  Cluster(sim::Machine machine, EventLog* log);

  [[nodiscard]] const sim::Machine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] int node_count() const noexcept {
    return machine_.node_count;
  }
  [[nodiscard]] bool node_up(int node) const;
  [[nodiscard]] int available_processors() const;
  /// Every node whose TC connection is live (up, allocated or not) —
  /// the survivor set a redundancy-encoded fast tier scavenges onto.
  [[nodiscard]] std::vector<int> up_nodes() const;

  /// RC: allocate up to `want` processors for `job` (at least `min`).
  /// Returns the node list, or an empty vector when fewer than `min` are
  /// available.
  [[nodiscard]] std::vector<int> allocate(int min_procs, int want,
                                          const std::string& job);
  /// RC: return a job's processors to the pool (failed nodes stay down).
  void release(const std::string& job);

  /// RC: associate the running task group with the job's TC pool so a TC
  /// loss can kill it. The group must outlive the pool registration.
  void register_pool(const std::string& job, rt::TaskGroup* group);
  void deregister_pool(const std::string& job);

  /// Sever the TC connection on `node` (the failure injection). If a pool
  /// is running on the node, the RC teardown protocol fires.
  void fail_node(int node);
  /// Complete the repair of a failed processor; its TC reactivates and the
  /// node returns to the available pool.
  void repair_node(int node);

  /// Nodes currently allocated to `job` (empty if none).
  [[nodiscard]] std::vector<int> nodes_of(const std::string& job) const;

  /// Job whose pool contains `node` ("" when idle).
  [[nodiscard]] std::string job_on_node(int node) const;

  /// Kill a job's running group without failing any node (scheduler
  /// preemption). No-op when the job has no registered group.
  void kill_pool(const std::string& job, const std::string& reason);

 private:
  struct Pool {
    std::vector<int> nodes;
    rt::TaskGroup* group = nullptr;  // null until register_pool
  };

  void record(EventKind kind, std::string detail);

  sim::Machine machine_;
  EventLog* log_;
  mutable std::mutex mutex_;
  std::vector<TcState> tc_state_;
  std::vector<bool> allocated_;
  std::map<std::string, Pool> pools_;
};

}  // namespace drms::arch
