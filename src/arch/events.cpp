#include "arch/events.hpp"

namespace drms::arch {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTcLost:
      return "TC_LOST";
    case EventKind::kPoolKilled:
      return "POOL_KILLED";
    case EventKind::kJobTerminated:
      return "JOB_TERMINATED";
    case EventKind::kUserInformed:
      return "USER_INFORMED";
    case EventKind::kTcRestarting:
      return "TC_RESTARTING";
    case EventKind::kTcReactivated:
      return "TC_REACTIVATED";
    case EventKind::kProcessorsAllocated:
      return "PROCESSORS_ALLOCATED";
    case EventKind::kProcessorsReleased:
      return "PROCESSORS_RELEASED";
    case EventKind::kJobLaunched:
      return "JOB_LAUNCHED";
    case EventKind::kJobRestarted:
      return "JOB_RESTARTED";
    case EventKind::kJobCompleted:
      return "JOB_COMPLETED";
    case EventKind::kJobFailedNoCheckpoint:
      return "JOB_FAILED_NO_CHECKPOINT";
    case EventKind::kCheckpointRequested:
      return "CHECKPOINT_REQUESTED";
    case EventKind::kJobPreempted:
      return "JOB_PREEMPTED";
    case EventKind::kNodeDrained:
      return "NODE_DRAINED";
    case EventKind::kGenerationFallback:
      return "GENERATION_FALLBACK";
    case EventKind::kReconfigured:
      return "RECONFIGURED";
    case EventKind::kRecoveryGaveUp:
      return "RECOVERY_GAVE_UP";
  }
  return "UNKNOWN";
}

void EventLog::record(EventKind kind, std::string detail) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{kind, std::move(detail)});
}

std::vector<Event> EventLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

int EventLog::count(EventKind kind) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) {
      ++n;
    }
  }
  return n;
}

std::vector<std::string> EventLog::formatted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(events_.size());
  for (const auto& e : events_) {
    out.push_back(to_string(e.kind) + " " + e.detail);
  }
  return out;
}

}  // namespace drms::arch
