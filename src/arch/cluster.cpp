#include "arch/cluster.hpp"

#include "support/error.hpp"

namespace drms::arch {

Cluster::Cluster(sim::Machine machine, EventLog* log)
    : machine_(machine),
      log_(log),
      tc_state_(static_cast<std::size_t>(machine.node_count),
                TcState::kConnected),
      allocated_(static_cast<std::size_t>(machine.node_count), false) {
  DRMS_EXPECTS(machine.node_count > 0);
}

void Cluster::record(EventKind kind, std::string detail) {
  if (log_ != nullptr) {
    log_->record(kind, std::move(detail));
  }
}

bool Cluster::node_up(int node) const {
  DRMS_EXPECTS(node >= 0 && node < node_count());
  const std::lock_guard<std::mutex> lock(mutex_);
  return tc_state_[static_cast<std::size_t>(node)] == TcState::kConnected;
}

std::vector<int> Cluster::up_nodes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> up;
  for (int node = 0; node < node_count(); ++node) {
    if (tc_state_[static_cast<std::size_t>(node)] == TcState::kConnected) {
      up.push_back(node);
    }
  }
  return up;
}

int Cluster::available_processors() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (int node = 0; node < node_count(); ++node) {
    if (tc_state_[static_cast<std::size_t>(node)] == TcState::kConnected &&
        !allocated_[static_cast<std::size_t>(node)]) {
      ++n;
    }
  }
  return n;
}

std::vector<int> Cluster::allocate(int min_procs, int want,
                                   const std::string& job) {
  DRMS_EXPECTS(min_procs >= 1 && want >= min_procs);
  const std::lock_guard<std::mutex> lock(mutex_);
  DRMS_EXPECTS_MSG(pools_.count(job) == 0,
                   "job '" + job + "' already holds a processor pool");
  std::vector<int> nodes;
  for (int node = 0; node < node_count() &&
                     static_cast<int>(nodes.size()) < want;
       ++node) {
    if (tc_state_[static_cast<std::size_t>(node)] == TcState::kConnected &&
        !allocated_[static_cast<std::size_t>(node)]) {
      nodes.push_back(node);
    }
  }
  if (static_cast<int>(nodes.size()) < min_procs) {
    return {};
  }
  for (const int node : nodes) {
    allocated_[static_cast<std::size_t>(node)] = true;
  }
  pools_[job] = Pool{nodes, nullptr};
  record(EventKind::kProcessorsAllocated,
         "job=" + job + " count=" + std::to_string(nodes.size()));
  return nodes;
}

void Cluster::release(const std::string& job) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pools_.find(job);
  if (it == pools_.end()) {
    return;
  }
  for (const int node : it->second.nodes) {
    allocated_[static_cast<std::size_t>(node)] = false;
  }
  record(EventKind::kProcessorsReleased,
         "job=" + job + " count=" + std::to_string(it->second.nodes.size()));
  pools_.erase(it);
}

void Cluster::register_pool(const std::string& job, rt::TaskGroup* group) {
  DRMS_EXPECTS(group != nullptr);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pools_.find(job);
  DRMS_EXPECTS_MSG(it != pools_.end(),
                   "register_pool without an allocation for '" + job + "'");
  it->second.group = group;
}

void Cluster::deregister_pool(const std::string& job) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pools_.find(job);
  if (it != pools_.end()) {
    it->second.group = nullptr;
  }
}

void Cluster::fail_node(int node) {
  DRMS_EXPECTS(node >= 0 && node < node_count());
  rt::TaskGroup* to_kill = nullptr;
  std::string victim_job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (tc_state_[static_cast<std::size_t>(node)] != TcState::kConnected) {
      return;  // already down
    }
    tc_state_[static_cast<std::size_t>(node)] = TcState::kLost;
    record(EventKind::kTcLost, "node=" + std::to_string(node));

    // (1) Which application / TC pool owns the disconnected TC?
    for (auto& [job, pool] : pools_) {
      for (const int owned : pool.nodes) {
        if (owned == node) {
          victim_job = job;
          to_kill = pool.group;
          break;
        }
      }
      if (!victim_job.empty()) {
        break;
      }
    }
    if (!victim_job.empty()) {
      // (2)-(4): kill the whole pool's TCs; healthy ones restart and
      // reactivate immediately, the failed one waits for repair_node().
      auto& pool = pools_[victim_job];
      for (const int owned : pool.nodes) {
        record(EventKind::kTcRestarting, "node=" + std::to_string(owned));
        if (owned != node) {
          record(EventKind::kTcReactivated,
                 "node=" + std::to_string(owned));
        }
      }
      record(EventKind::kPoolKilled,
             "job=" + victim_job + " nodes=" +
                 std::to_string(pool.nodes.size()));
      record(EventKind::kJobTerminated, "job=" + victim_job);
      record(EventKind::kUserInformed, "job=" + victim_job);
    }
  }
  // Kill outside the cluster lock: the group's task threads may be inside
  // runtime calls that complete before observing the kill.
  if (to_kill != nullptr) {
    to_kill->kill("lost connection to TC on node " + std::to_string(node));
  }
}

void Cluster::repair_node(int node) {
  DRMS_EXPECTS(node >= 0 && node < node_count());
  const std::lock_guard<std::mutex> lock(mutex_);
  if (tc_state_[static_cast<std::size_t>(node)] == TcState::kConnected) {
    return;
  }
  tc_state_[static_cast<std::size_t>(node)] = TcState::kConnected;
  allocated_[static_cast<std::size_t>(node)] = false;
  record(EventKind::kTcReactivated, "node=" + std::to_string(node));
}

std::string Cluster::job_on_node(int node) const {
  DRMS_EXPECTS(node >= 0 && node < node_count());
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [job, pool] : pools_) {
    for (const int owned : pool.nodes) {
      if (owned == node) {
        return job;
      }
    }
  }
  return "";
}

void Cluster::kill_pool(const std::string& job, const std::string& reason) {
  rt::TaskGroup* group = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pools_.find(job);
    if (it == pools_.end()) {
      return;
    }
    group = it->second.group;
  }
  if (group != nullptr) {
    group->kill(reason);
  }
}

std::vector<int> Cluster::nodes_of(const std::string& job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pools_.find(job);
  return it == pools_.end() ? std::vector<int>{} : it->second.nodes;
}

}  // namespace drms::arch
