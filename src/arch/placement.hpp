// Node/group placement for the redundancy-encoded fast tier.
//
// drms::store::RedundantBackend is deliberately arch-agnostic: it numbers
// fast-tier stores 0..N-1 and knows nothing about processors, TC pools or
// the RC protocol. These helpers are the bridge the harnesses (recovery
// supervisor wiring, chaos campaign, tests) use to couple the two worlds:
// a cluster sized for a redundancy scheme maps its processors one-to-one
// onto fast-tier store nodes, so arch::Cluster::fail_node(k) and
// RedundantBackend::fail_node(k) describe the same physical event.
#pragma once

#include <vector>

#include "arch/cluster.hpp"

namespace drms::arch {

/// Contiguous redundancy groups over `node_count` nodes: {0..g-1},
/// {g..2g-1}, ... `node_count` must be a positive multiple of
/// `group_size` (the same invariant RedundantBackend enforces).
[[nodiscard]] std::vector<std::vector<int>> contiguous_groups(int node_count,
                                                              int group_size);

/// Partner of `node` under pair grouping: 0<->1, 2<->3, ...
[[nodiscard]] int partner_of(int node, int node_count);

/// True when every redundancy group over the cluster's nodes still has at
/// least `group_size - tolerated` live members — i.e. a scheme tolerating
/// `tolerated` losses per group can scavenge every group.
[[nodiscard]] bool groups_scavengeable(const Cluster& cluster, int group_size,
                                       int tolerated);

}  // namespace drms::arch
