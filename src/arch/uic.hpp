// User Interface Coordinator — the facade through which end users and
// administrators interact with the DRMS environment (Figure 6).
#pragma once

#include <string>
#include <vector>

#include "arch/cluster.hpp"
#include "arch/scheduler.hpp"

namespace drms::arch {

class Uic {
 public:
  Uic(Cluster& cluster, JobScheduler& scheduler,
      const store::StorageBackend& storage, EventLog& log);

  /// End user: submit a job and block until it completes (or exhausts its
  /// restart budget).
  JobOutcome submit_and_wait(const JobDescriptor& job);

  /// End user: ask the system to checkpoint a running job at its next
  /// enabling SOP.
  bool request_checkpoint(const std::string& job_name);

  /// Administrator: inject / repair a processor failure.
  void admin_fail_node(int node);
  void admin_repair_node(int node);

  /// Queries.
  [[nodiscard]] int available_processors() const;
  [[nodiscard]] std::vector<std::string> list_checkpoint_files(
      const std::string& prefix) const;
  /// Human-readable inventory of the checkpointed states in storage:
  /// "prefix  app  mode  tasks  sop  size".
  [[nodiscard]] std::vector<std::string> show_checkpoints() const;
  [[nodiscard]] std::vector<std::string> event_trace() const;

 private:
  Cluster& cluster_;
  JobScheduler& scheduler_;
  const store::StorageBackend& storage_;
  EventLog& log_;
};

}  // namespace drms::arch
