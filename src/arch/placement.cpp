#include "arch/placement.hpp"

#include "support/error.hpp"

namespace drms::arch {

std::vector<std::vector<int>> contiguous_groups(int node_count,
                                                int group_size) {
  DRMS_EXPECTS_MSG(group_size >= 2, "redundancy groups need >= 2 nodes");
  DRMS_EXPECTS_MSG(node_count > 0 && node_count % group_size == 0,
                   "node count must be a positive multiple of the group "
                   "size");
  std::vector<std::vector<int>> groups;
  for (int base = 0; base < node_count; base += group_size) {
    std::vector<int> group;
    for (int k = 0; k < group_size; ++k) {
      group.push_back(base + k);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

int partner_of(int node, int node_count) {
  DRMS_EXPECTS_MSG(node >= 0 && node < node_count && node_count % 2 == 0,
                   "partner pairing needs an even node count");
  return node % 2 == 0 ? node + 1 : node - 1;
}

bool groups_scavengeable(const Cluster& cluster, int group_size,
                         int tolerated) {
  for (const auto& group :
       contiguous_groups(cluster.node_count(), group_size)) {
    int down = 0;
    for (const int node : group) {
      if (!cluster.node_up(node)) {
        ++down;
      }
    }
    if (down > tolerated) {
      return false;
    }
  }
  return true;
}

}  // namespace drms::arch
