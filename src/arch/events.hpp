// Event log of the DRMS infrastructure — every protocol step (TC loss,
// pool kill, TC reactivation, job launch/restart/completion) is recorded
// so tests and examples can assert the recovery sequence of §4.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace drms::arch {

enum class EventKind {
  kTcLost,
  kPoolKilled,
  kJobTerminated,
  kUserInformed,
  kTcRestarting,
  kTcReactivated,
  kProcessorsAllocated,
  kProcessorsReleased,
  kJobLaunched,
  kJobRestarted,
  kJobCompleted,
  kJobFailedNoCheckpoint,
  kCheckpointRequested,
  kJobPreempted,
  kNodeDrained,
  kGenerationFallback,
  kReconfigured,
  kRecoveryGaveUp,
};

[[nodiscard]] std::string to_string(EventKind kind);

struct Event {
  EventKind kind;
  std::string detail;
};

class EventLog {
 public:
  void record(EventKind kind, std::string detail);

  [[nodiscard]] std::vector<Event> snapshot() const;
  [[nodiscard]] int count(EventKind kind) const;
  /// First event of the given kind, or nullptr-semantics via empty detail.
  [[nodiscard]] bool contains(EventKind kind) const { return count(kind) > 0; }
  /// Render as "KIND detail" lines, for examples.
  [[nodiscard]] std::vector<std::string> formatted() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace drms::arch
