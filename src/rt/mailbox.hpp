// Per-task message queue with (source, tag) matching — the delivery half
// of the runtime's point-to-point layer.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "rt/kill_switch.hpp"
#include "rt/message.hpp"

namespace drms::rt {

class Mailbox {
 public:
  explicit Mailbox(std::shared_ptr<KillSwitch> kill)
      : kill_(std::move(kill)) {}

  /// Enqueue a message (called by the sender's thread).
  void deliver(Message msg);

  /// Block until a message matching (source, tag) is available, remove it
  /// from the queue, and return it. Wildcards: kAnySource / kAnyTag.
  /// Throws support::TaskKilled if the group is killed while waiting.
  [[nodiscard]] Message receive(int source, int tag);

  /// Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int source, int tag) const;

  /// Number of queued messages (for tests and diagnostics).
  [[nodiscard]] std::size_t pending() const;

  /// Wake any blocked receiver so it can observe a raised kill switch.
  void notify_kill();

 private:
  [[nodiscard]] static bool matches(const Message& m, int source,
                                    int tag) noexcept {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  std::shared_ptr<KillSwitch> kill_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace drms::rt
