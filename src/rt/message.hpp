// Message envelope exchanged between tasks.
#pragma once

#include <limits>

#include "support/byte_buffer.hpp"

namespace drms::rt {

/// Matches any source rank in recv().
inline constexpr int kAnySource = -1;
/// Matches any tag in recv().
inline constexpr int kAnyTag = std::numeric_limits<int>::min();

/// Tags at or above this value are reserved for the runtime's collective
/// implementation; user point-to-point traffic must use tags in
/// [0, kInternalTagBase).
inline constexpr int kInternalTagBase = 1 << 28;

struct Message {
  int source = -1;
  int tag = 0;
  support::ByteBuffer payload;
};

}  // namespace drms::rt
