#include "rt/task_group.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "rt/task_context.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace drms::rt {

TaskGroup::TaskGroup(sim::Placement placement, std::uint64_t seed)
    : placement_(std::move(placement)),
      seed_(seed),
      kill_(std::make_shared<KillSwitch>()),
      clock_(placement_.task_count()),
      barrier_(placement_.task_count(), kill_, &clock_) {
  mailboxes_.reserve(static_cast<std::size_t>(placement_.task_count()));
  for (int t = 0; t < placement_.task_count(); ++t) {
    mailboxes_.push_back(std::make_unique<Mailbox>(kill_));
  }
}

void TaskGroup::wake_all() {
  for (const auto& mb : mailboxes_) {
    mb->notify_kill();
  }
  barrier_.notify_kill();
}

void TaskGroup::kill(const std::string& reason) {
  kill_->kill(reason);
  wake_all();
}

TaskGroupResult TaskGroup::run(const TaskFn& fn) {
  DRMS_EXPECTS(fn != nullptr);
  const int n = task_count();
  std::mutex result_mutex;
  TaskGroupResult result;
  int killed_tasks = 0;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      TaskContext ctx(*this, rank);
      try {
        fn(ctx);
      } catch (const support::TaskKilled&) {
        const std::lock_guard<std::mutex> lock(result_mutex);
        ++killed_tasks;
      } catch (const std::exception& e) {
        {
          const std::lock_guard<std::mutex> lock(result_mutex);
          result.errors.push_back("task " + std::to_string(rank) + ": " +
                                  e.what());
        }
        // A failing task brings the whole parallel application down, as a
        // crashing process would under MPI.
        kill(std::string("task ") + std::to_string(rank) +
             " failed: " + e.what());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  result.killed = kill_->is_killed();
  result.kill_reason = kill_->reason();
  result.completed = !result.killed && result.errors.empty();
  result.sim_seconds = clock_.max_time();
  return result;
}

}  // namespace drms::rt
