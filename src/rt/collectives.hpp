// Collective operations over the task runtime, mirroring the MPI subset
// the DRMS run-time library uses: broadcast, gather/allgather, reductions
// and all-to-all personalized exchange (the workhorse of array
// redistribution).
//
// All collectives must be called by every task of the group in the same
// program order (SPMD discipline); matching is by a per-task sequence
// number, so distinct collectives never interfere even when messages
// arrive early.
#pragma once

#include <cstdint>
#include <vector>

#include "rt/task_context.hpp"
#include "support/byte_buffer.hpp"

namespace drms::rt {

/// Broadcast `buf` from `root` to every task (in place).
void broadcast(TaskContext& ctx, support::ByteBuffer& buf, int root);

/// Gather each task's contribution at `root`. Returns the vector of
/// contributions indexed by rank at the root; an empty vector elsewhere.
[[nodiscard]] std::vector<support::ByteBuffer> gather(
    TaskContext& ctx, support::ByteBuffer contribution, int root);

/// Gather each task's contribution everywhere.
[[nodiscard]] std::vector<support::ByteBuffer> all_gather(
    TaskContext& ctx, support::ByteBuffer contribution);

/// Personalized all-to-all: `outgoing[d]` is sent to task d; the returned
/// vector holds the buffer received from each source rank.
[[nodiscard]] std::vector<support::ByteBuffer> all_to_all(
    TaskContext& ctx, std::vector<support::ByteBuffer> outgoing);

/// Reductions over doubles (result valid on every task).
[[nodiscard]] double all_reduce_sum(TaskContext& ctx, double value);
[[nodiscard]] double all_reduce_max(TaskContext& ctx, double value);
[[nodiscard]] double all_reduce_min(TaskContext& ctx, double value);

/// Reduction over unsigned 64-bit counters.
[[nodiscard]] std::uint64_t all_reduce_sum_u64(TaskContext& ctx,
                                               std::uint64_t value);

/// Exclusive prefix sum over unsigned 64-bit values: task r receives the
/// sum of the values of tasks 0..r-1 (0 on task 0). The workhorse for
/// computing per-task stream offsets.
[[nodiscard]] std::uint64_t exclusive_scan_u64(TaskContext& ctx,
                                               std::uint64_t value);

}  // namespace drms::rt
