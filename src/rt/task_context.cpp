#include "rt/task_context.hpp"

#include "rt/task_group.hpp"
#include "support/error.hpp"

namespace drms::rt {

TaskContext::TaskContext(TaskGroup& group, int rank)
    : group_(group),
      rank_(rank),
      rng_(group.seed() ^
           (static_cast<std::uint64_t>(rank + 1) * 0x9e3779b97f4a7c15ull)),
      shared_rng_(group.seed() ^ 0x7368617265645f72ull) {
  DRMS_EXPECTS(rank >= 0 && rank < group.task_count());
}

int TaskContext::size() const noexcept { return group_.task_count(); }

const sim::Placement& TaskContext::placement() const noexcept {
  return group_.placement();
}

void TaskContext::send(int dest, int tag, support::ByteBuffer payload) {
  DRMS_EXPECTS_MSG(tag >= 0 && tag < kInternalTagBase,
                   "user tags must be in [0, kInternalTagBase)");
  internal_send(dest, tag, std::move(payload));
}

void TaskContext::internal_send(int dest, int tag,
                                support::ByteBuffer payload) {
  DRMS_EXPECTS(dest >= 0 && dest < size());
  check_killed();
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload = std::move(payload);
  group_.mailboxes_[static_cast<std::size_t>(dest)]->deliver(std::move(msg));
}

Message TaskContext::recv(int source, int tag) {
  DRMS_EXPECTS(source == kAnySource || (source >= 0 && source < size()));
  return group_.mailboxes_[static_cast<std::size_t>(rank_)]->receive(source,
                                                                     tag);
}

bool TaskContext::probe(int source, int tag) const {
  return group_.mailboxes_[static_cast<std::size_t>(rank_)]->probe(source,
                                                                   tag);
}

bool TaskContext::PendingRecv::try_complete() {
  if (done_) {
    return true;
  }
  if (!ctx_->probe(source_, tag_)) {
    ctx_->check_killed();
    return false;
  }
  message_ = ctx_->recv(source_, tag_);
  done_ = true;
  return true;
}

Message& TaskContext::PendingRecv::wait() {
  if (!done_) {
    message_ = ctx_->recv(source_, tag_);
    done_ = true;
  }
  return message_;
}

Message& TaskContext::PendingRecv::message() {
  DRMS_EXPECTS_MSG(done_, "PendingRecv::message() before completion");
  return message_;
}

Message TaskContext::sendrecv(int dest, int send_tag,
                              support::ByteBuffer payload, int source,
                              int recv_tag) {
  send(dest, send_tag, std::move(payload));
  return recv(source, recv_tag);
}

void TaskContext::barrier() { group_.barrier_.arrive_and_wait(); }

void TaskContext::charge(double seconds) {
  group_.clock_.advance(rank_, seconds);
}

double TaskContext::sim_time() const { return group_.clock_.time_of(rank_); }

void TaskContext::check_killed() const {
  if (group_.kill_->is_killed()) {
    throw support::TaskKilled(group_.kill_->reason());
  }
}

}  // namespace drms::rt
