// Group-wide kill flag. Raised by the failure injector (or by a task
// hitting an unrecoverable error); every blocking runtime primitive checks
// it and unwinds the task with support::TaskKilled.
#pragma once

#include <atomic>
#include <mutex>
#include <string>

namespace drms::rt {

class KillSwitch {
 public:
  /// Raise the switch. Idempotent; the first reason wins.
  void kill(const std::string& reason) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!killed_.load(std::memory_order_relaxed)) {
      reason_ = reason;
      killed_.store(true, std::memory_order_release);
    }
  }

  [[nodiscard]] bool is_killed() const noexcept {
    return killed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::string reason() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return reason_;
  }

 private:
  std::atomic<bool> killed_{false};
  mutable std::mutex mutex_;
  std::string reason_;
};

}  // namespace drms::rt
