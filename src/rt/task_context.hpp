// Per-task handle passed to the SPMD function: rank/size, point-to-point
// messaging, barrier, simulated-time accounting, and a deterministic
// per-task RNG stream.
#pragma once

#include <cstdint>

#include "rt/message.hpp"
#include "sim/machine.hpp"
#include "support/byte_buffer.hpp"
#include "support/rng.hpp"

namespace drms::rt {

class TaskGroup;

class TaskContext {
 public:
  TaskContext(TaskGroup& group, int rank);

  TaskContext(const TaskContext&) = delete;
  TaskContext& operator=(const TaskContext&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;
  [[nodiscard]] const sim::Placement& placement() const noexcept;

  /// ---- point-to-point ------------------------------------------------------
  /// Asynchronous-buffered send (never blocks; moves the payload into the
  /// destination mailbox). Tag must be in [0, kInternalTagBase).
  void send(int dest, int tag, support::ByteBuffer payload);
  /// Blocking receive with (source, tag) matching; wildcards allowed.
  [[nodiscard]] Message recv(int source, int tag);
  [[nodiscard]] bool probe(int source, int tag) const;

  /// Non-blocking receive handle: poll with try_complete(), block with
  /// wait(). The handle is bound to this context and must not outlive it.
  class PendingRecv {
   public:
    /// Completes the receive if a matching message is queued; returns
    /// true when the message is available via message().
    bool try_complete();
    /// Blocks until the message arrives (kill-aware).
    Message& wait();
    [[nodiscard]] bool completed() const noexcept { return done_; }
    [[nodiscard]] Message& message();

   private:
    friend class TaskContext;
    PendingRecv(TaskContext& ctx, int source, int tag)
        : ctx_(&ctx), source_(source), tag_(tag) {}
    TaskContext* ctx_;
    int source_;
    int tag_;
    bool done_ = false;
    Message message_;
  };
  [[nodiscard]] PendingRecv irecv(int source, int tag) {
    return PendingRecv(*this, source, tag);
  }

  /// Combined send+receive (safe for ring/pairwise exchanges: the send is
  /// buffered, so no ordering deadlock is possible, but the combined call
  /// documents intent and saves a line).
  [[nodiscard]] Message sendrecv(int dest, int send_tag,
                                 support::ByteBuffer payload, int source,
                                 int recv_tag);

  /// ---- synchronization ------------------------------------------------------
  void barrier();

  /// ---- simulated time --------------------------------------------------------
  /// Advance this task's simulated clock (I/O and compute primitives call
  /// this with CostModel durations).
  void charge(double seconds);
  [[nodiscard]] double sim_time() const;

  /// Throw support::TaskKilled if the group has been killed — long
  /// compute-only loops call this at iteration boundaries so an injected
  /// failure interrupts them too.
  void check_killed() const;

  /// Deterministic per-task random stream (seeded from group seed + rank).
  [[nodiscard]] support::Rng& rng() noexcept { return rng_; }

  /// Group-shared random stream: seeded from the group seed ONLY, so as
  /// long as tasks draw in identical (SPMD) order, every task sees the
  /// same values. Used for collective timing jitter — a per-task stream
  /// would bias every barrier toward max-of-N draws.
  [[nodiscard]] support::Rng& shared_rng() noexcept { return shared_rng_; }

  /// ---- runtime-internal (used by collectives.cpp) ----------------------------
  /// Per-task collective sequence counter; SPMD execution order guarantees
  /// the same collective gets the same sequence number on every task.
  [[nodiscard]] std::uint64_t next_collective_seq() noexcept {
    return collective_seq_++;
  }
  /// Send that may use the reserved internal tag space.
  void internal_send(int dest, int tag, support::ByteBuffer payload);

 private:
  TaskGroup& group_;
  int rank_;
  support::Rng rng_;
  support::Rng shared_rng_;
  std::uint64_t collective_seq_ = 0;
};

}  // namespace drms::rt
