// SPMD task group: runs the same function on N tasks (one thread each),
// wired together with mailboxes, a barrier, a kill switch and a shared
// simulated clock. This is the message-passing substrate standing in for
// the paper's MPL/MPI layer on the SP.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rt/barrier.hpp"
#include "rt/kill_switch.hpp"
#include "rt/mailbox.hpp"
#include "sim/clock.hpp"
#include "sim/machine.hpp"

namespace drms::rt {

class TaskContext;

/// Outcome of one SPMD run.
struct TaskGroupResult {
  /// True when every task returned normally.
  bool completed = false;
  /// True when the group was torn down by the kill switch (injected
  /// failure or a sibling task's error).
  bool killed = false;
  std::string kill_reason;
  /// One entry per task that terminated with an exception (other than the
  /// kill unwind), formatted as "task N: what".
  std::vector<std::string> errors;
  /// Simulated wall-clock of the run (max over task clocks).
  double sim_seconds = 0.0;
};

using TaskFn = std::function<void(TaskContext&)>;

class TaskGroup {
 public:
  /// Creates a group of `placement.task_count()` tasks mapped to the given
  /// machine nodes. `seed` feeds the deterministic per-task RNG streams.
  explicit TaskGroup(sim::Placement placement, std::uint64_t seed = 1);

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Run `fn` as rank 0..N-1; blocks until every task finishes (normally,
  /// by error, or by kill).
  TaskGroupResult run(const TaskFn& fn);

  /// Raise the kill switch (thread-safe; callable while run() is active —
  /// this is how the failure injector models a processor loss).
  void kill(const std::string& reason);

  [[nodiscard]] int task_count() const noexcept {
    return placement_.task_count();
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const sim::Placement& placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] sim::SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] const sim::SimClock& clock() const noexcept { return clock_; }

 private:
  friend class TaskContext;

  void wake_all();

  sim::Placement placement_;
  std::uint64_t seed_;
  std::shared_ptr<KillSwitch> kill_;
  sim::SimClock clock_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  GroupBarrier barrier_;
};

}  // namespace drms::rt
