// Kill-aware cyclic barrier that also synchronizes the simulated clock:
// when the last task arrives, every task's simulated time advances to the
// group maximum (BSP semantics — a barrier costs as long as its slowest
// participant).
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>

#include "rt/kill_switch.hpp"

namespace drms::sim {
class SimClock;
}

namespace drms::rt {

class GroupBarrier {
 public:
  GroupBarrier(int parties, std::shared_ptr<KillSwitch> kill,
               sim::SimClock* clock);

  /// Block until all parties arrive. Throws support::TaskKilled if the
  /// group is killed while waiting.
  void arrive_and_wait();

  /// Wake blocked waiters so they can observe a raised kill switch.
  void notify_kill();

 private:
  int parties_;
  std::shared_ptr<KillSwitch> kill_;
  sim::SimClock* clock_;  // may be null (no time accounting)
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace drms::rt
