#include "rt/mailbox.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace drms::rt {

void Mailbox::deliver(Message msg) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [&](const Message& m) { return matches(m, source, tag); });
    if (it != queue_.end()) {
      Message msg = std::move(*it);
      queue_.erase(it);
      return msg;
    }
    if (kill_->is_killed()) {
      throw support::TaskKilled(kill_->reason());
    }
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int source, int tag) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Message& m) {
    return matches(m, source, tag);
  });
}

std::size_t Mailbox::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Mailbox::notify_kill() {
  const std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

}  // namespace drms::rt
