#include "rt/barrier.hpp"

#include "sim/clock.hpp"
#include "support/error.hpp"

namespace drms::rt {

GroupBarrier::GroupBarrier(int parties, std::shared_ptr<KillSwitch> kill,
                           sim::SimClock* clock)
    : parties_(parties), kill_(std::move(kill)), clock_(clock) {
  DRMS_EXPECTS(parties_ > 0);
}

void GroupBarrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (kill_->is_killed()) {
    throw support::TaskKilled(kill_->reason());
  }
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    if (clock_ != nullptr) {
      clock_->sync_to_max();
    }
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] {
    return generation_ != my_generation || kill_->is_killed();
  });
  if (generation_ == my_generation && kill_->is_killed()) {
    throw support::TaskKilled(kill_->reason());
  }
}

void GroupBarrier::notify_kill() {
  const std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

}  // namespace drms::rt
