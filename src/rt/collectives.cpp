#include "rt/collectives.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace drms::rt {

namespace {

/// Tag for the current collective: the reserved space is partitioned by
/// the per-task sequence counter (wrapping; 2^27 in-flight collectives
/// would be needed to alias, far beyond any real program).
int collective_tag(TaskContext& ctx) {
  const std::uint64_t seq = ctx.next_collective_seq();
  return kInternalTagBase + static_cast<int>(seq % (1u << 27));
}

}  // namespace

void broadcast(TaskContext& ctx, support::ByteBuffer& buf, int root) {
  DRMS_EXPECTS(root >= 0 && root < ctx.size());
  const int tag = collective_tag(ctx);
  if (ctx.size() == 1) {
    return;
  }
  if (ctx.rank() == root) {
    for (int d = 0; d < ctx.size(); ++d) {
      if (d == root) continue;
      support::ByteBuffer copy;
      copy.append(buf.bytes());
      ctx.internal_send(d, tag, std::move(copy));
    }
  } else {
    buf = ctx.recv(root, tag).payload;
  }
}

std::vector<support::ByteBuffer> gather(TaskContext& ctx,
                                        support::ByteBuffer contribution,
                                        int root) {
  DRMS_EXPECTS(root >= 0 && root < ctx.size());
  const int tag = collective_tag(ctx);
  std::vector<support::ByteBuffer> result;
  if (ctx.rank() == root) {
    result.resize(static_cast<std::size_t>(ctx.size()));
    result[static_cast<std::size_t>(root)] = std::move(contribution);
    for (int i = 0; i < ctx.size() - 1; ++i) {
      Message msg = ctx.recv(kAnySource, tag);
      result[static_cast<std::size_t>(msg.source)] = std::move(msg.payload);
    }
  } else {
    ctx.internal_send(root, tag, std::move(contribution));
  }
  return result;
}

std::vector<support::ByteBuffer> all_gather(TaskContext& ctx,
                                            support::ByteBuffer contribution) {
  const int tag = collective_tag(ctx);
  std::vector<support::ByteBuffer> result(
      static_cast<std::size_t>(ctx.size()));
  for (int d = 0; d < ctx.size(); ++d) {
    if (d == ctx.rank()) continue;
    support::ByteBuffer copy;
    copy.append(contribution.bytes());
    ctx.internal_send(d, tag, std::move(copy));
  }
  result[static_cast<std::size_t>(ctx.rank())] = std::move(contribution);
  for (int i = 0; i < ctx.size() - 1; ++i) {
    Message msg = ctx.recv(kAnySource, tag);
    result[static_cast<std::size_t>(msg.source)] = std::move(msg.payload);
  }
  return result;
}

std::vector<support::ByteBuffer> all_to_all(
    TaskContext& ctx, std::vector<support::ByteBuffer> outgoing) {
  DRMS_EXPECTS_MSG(static_cast<int>(outgoing.size()) == ctx.size(),
                   "all_to_all requires one outgoing buffer per task");
  const int tag = collective_tag(ctx);
  std::vector<support::ByteBuffer> incoming(
      static_cast<std::size_t>(ctx.size()));
  for (int d = 0; d < ctx.size(); ++d) {
    if (d == ctx.rank()) {
      incoming[static_cast<std::size_t>(d)] =
          std::move(outgoing[static_cast<std::size_t>(d)]);
    } else {
      ctx.internal_send(d, tag,
                        std::move(outgoing[static_cast<std::size_t>(d)]));
    }
  }
  for (int i = 0; i < ctx.size() - 1; ++i) {
    Message msg = ctx.recv(kAnySource, tag);
    incoming[static_cast<std::size_t>(msg.source)] = std::move(msg.payload);
  }
  return incoming;
}

namespace {

template <typename T, typename Fold>
T all_reduce_impl(TaskContext& ctx, T value, Fold fold,
                  void (support::ByteBuffer::*put)(T),
                  T (support::ByteBuffer::*get)()) {
  // Reduce to rank 0, then broadcast. Contributions are folded in rank
  // order so floating-point reductions are bit-reproducible regardless of
  // message arrival order.
  const int tag = collective_tag(ctx);
  if (ctx.rank() == 0) {
    T acc = value;
    for (int src = 1; src < ctx.size(); ++src) {
      Message msg = ctx.recv(src, tag);
      acc = fold(acc, (msg.payload.*get)());
    }
    for (int d = 1; d < ctx.size(); ++d) {
      support::ByteBuffer out;
      (out.*put)(acc);
      ctx.internal_send(d, tag, std::move(out));
    }
    return acc;
  }
  support::ByteBuffer out;
  (out.*put)(value);
  ctx.internal_send(0, tag, std::move(out));
  Message msg = ctx.recv(0, tag);
  return (msg.payload.*get)();
}

}  // namespace

double all_reduce_sum(TaskContext& ctx, double value) {
  return all_reduce_impl<double>(
      ctx, value, [](double a, double b) { return a + b; },
      &support::ByteBuffer::put_f64, &support::ByteBuffer::get_f64);
}

double all_reduce_max(TaskContext& ctx, double value) {
  return all_reduce_impl<double>(
      ctx, value, [](double a, double b) { return std::max(a, b); },
      &support::ByteBuffer::put_f64, &support::ByteBuffer::get_f64);
}

double all_reduce_min(TaskContext& ctx, double value) {
  return all_reduce_impl<double>(
      ctx, value, [](double a, double b) { return std::min(a, b); },
      &support::ByteBuffer::put_f64, &support::ByteBuffer::get_f64);
}

std::uint64_t exclusive_scan_u64(TaskContext& ctx, std::uint64_t value) {
  // Gather to rank 0, prefix-sum, scatter — linear but deterministic.
  const int tag = collective_tag(ctx);
  if (ctx.rank() == 0) {
    std::vector<std::uint64_t> values(static_cast<std::size_t>(ctx.size()));
    values[0] = value;
    for (int src = 1; src < ctx.size(); ++src) {
      Message msg = ctx.recv(src, tag);
      values[static_cast<std::size_t>(src)] = msg.payload.get_u64();
    }
    std::uint64_t running = 0;
    for (int r = 0; r < ctx.size(); ++r) {
      const std::uint64_t prefix = running;
      running += values[static_cast<std::size_t>(r)];
      if (r == 0) {
        continue;
      }
      support::ByteBuffer out;
      out.put_u64(prefix);
      ctx.internal_send(r, tag, std::move(out));
    }
    return 0;
  }
  support::ByteBuffer out;
  out.put_u64(value);
  ctx.internal_send(0, tag, std::move(out));
  Message msg = ctx.recv(0, tag);
  return msg.payload.get_u64();
}

std::uint64_t all_reduce_sum_u64(TaskContext& ctx, std::uint64_t value) {
  return all_reduce_impl<std::uint64_t>(
      ctx, value,
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      &support::ByteBuffer::put_u64, &support::ByteBuffer::get_u64);
}

}  // namespace drms::rt
