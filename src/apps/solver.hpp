// The BT/LU/SP-like iterative solvers (one generic engine parameterized by
// the AppSpec), written against the public DRMS API in the exact shape of
// the paper's Figure 1:
//
//   drms_initialize -> declare + distribute arrays -> main loop with a
//   schedulable-and-observable point (checkpoint site) every
//   checkpoint_every iterations.
//
// The numerics are a deliberately distribution-invariant Jacobi-type
// relaxation (documented substitution; see DESIGN.md): each iteration
// refreshes the shadow regions, evaluates a 7-point stencil of the `u`
// field into the rhs-like buffer, and applies a pointwise update. Every
// floating-point operation on a given grid point is identical regardless
// of the task count, so a field produced by "run, checkpoint, restart on
// any t2, finish" is bitwise equal to an uninterrupted run — which the
// tests verify through the canonical-stream CRC.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "apps/app_spec.hpp"
#include "core/drms_context.hpp"
#include "rt/task_context.hpp"

namespace drms::apps {

struct SolverOptions {
  AppSpec spec;
  core::Index n = 12;
  int iterations = 20;
  int checkpoint_every = 10;
  /// Prefix for checkpoints taken at SOPs; empty = SOPs never checkpoint.
  std::string prefix;
  /// When set, overrides `prefix` per SOP (still gated on `prefix` being
  /// non-empty). The recovery supervisor uses this to write per-generation
  /// prefixes ("base.g000010") so older states survive as fallbacks.
  std::function<std::string(std::int64_t iteration)> prefix_for_iteration;
  /// Stop early after this iteration count (simulates an interruption
  /// between SOPs); -1 = run to `iterations`.
  int stop_at_iteration = -1;
  /// Use the enabling variant (drms_reconfig_chkenable) at SOPs.
  bool use_chkenable = false;
  /// Compute the canonical-stream CRC of `u` at the end (costs one serial
  /// streaming pass; disable in timing-focused benches).
  bool compute_field_crc = true;
  /// Called at the top of every iteration, after the SOP (used by the
  /// failure-injection tests and the fault-recovery example to coordinate
  /// with the outside world). May block; must tolerate TaskKilled.
  std::function<void(std::int64_t iteration, rt::TaskContext&)>
      on_iteration;
  /// When non-null, the solver services this computational-steering
  /// channel at every iteration (after the SOP and the hook).
  core::SteeringChannel* steering = nullptr;
};

struct SolverOutcome {
  bool restarted = false;
  /// The restore took the partial-scope path (env.partial matched): only
  /// lost sections were read from storage, survivors adopted in place.
  bool partial_restore = false;
  std::int64_t start_iteration = 0;
  int delta = 0;
  int checkpoints_written = 0;
  /// CRC-32C of u's distribution-independent stream (identical on every
  /// task); 0 when compute_field_crc is off.
  std::uint32_t field_crc = 0;
  /// Final residual diagnostic (reduction over the last rhs evaluation).
  double residual = 0.0;
};

/// SPMD body: call from every task of a group, with a DrmsProgram built
/// via make_program(). COLLECTIVE throughout.
SolverOutcome run_solver(core::DrmsProgram& program, rt::TaskContext& ctx,
                         const SolverOptions& options);

/// Convenience: a DrmsProgram wired for this app/problem size.
[[nodiscard]] std::unique_ptr<core::DrmsProgram> make_program(
    const SolverOptions& options, core::DrmsEnv env, int task_count);

}  // namespace drms::apps
