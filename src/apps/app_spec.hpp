// Application descriptors for the three NAS-parallel-benchmark-like
// solvers used in the paper's evaluation (BT, LU, SP).
//
// SUBSTITUTION (documented in DESIGN.md): the real NPB codes are ~10k
// lines of Fortran CFD each; the evaluation's tables depend on each
// application's DATA INVENTORY — which arrays are distributed vs private,
// the shadow widths, and the segment composition — not on the CFD
// numerics. These descriptors reproduce the inventories of the paper's
// Tables 3-4:
//
//   app | distributed components | arrays MB (class A) | private bytes
//   BT  | 42                     | 84                  |  5,374,784
//   LU  | 17                     | 34                  | 44,134,872
//   SP  | 24                     | 48                  |  5,621,696
//
// (One class-A component = 64^3 doubles = 2 MiB. The paper's "local
// sections" values correspond to shadow width 1 on a {1,2,2} spatial grid
// at the 4-task compile minimum, which these descriptors reproduce.)
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint_format.hpp"
#include "core/dist_spec.hpp"

namespace drms::apps {

/// One distributed array of the application: `components` grid fields
/// stored as a 4-D array (component, x, y, z).
struct ArrayDecl {
  std::string name;
  int components = 1;
};

/// NPB problem classes used in the paper (class A) and for fast tests.
enum class ProblemClass { kS, kW, kA };

/// Grid edge length of a problem class (cubic grids, as in the NPB).
[[nodiscard]] core::Index grid_size(ProblemClass c);
[[nodiscard]] std::string to_string(ProblemClass c);

struct AppSpec {
  std::string name;
  std::vector<ArrayDecl> arrays;
  /// Private + replicated data (Table 4, exact paper values for class A).
  std::uint64_t private_bytes = 0;
  /// System-library storage (message-passing buffers; same for all apps).
  std::uint64_t system_bytes = 0;
  /// Application text segment size (drives the restart "other" component).
  std::uint64_t text_bytes = 0;
  /// Compile-time minimum task count (the paper compiled for >= 4).
  int min_tasks = 4;
  /// Shadow (ghost) width on each spatial axis.
  core::Index shadow_width = 1;
  /// Static halo allocation per spatial axis: Fortran dimensions local
  /// arrays as (extent + 2*halo) on each axis, unclamped at the global
  /// boundary. BT/SP allocate halos on all three axes; LU skips the x
  /// halo. With these, the Table-4 "local sections" values are
  /// reproduced EXACTLY (e.g. BT: 42 comps * 66*34*34 * 8 B * 4 tasks'
  /// worth = 25,635,456 bytes per task at the {1,2,2} minimum grid).
  std::array<core::Index, 3> static_halo{1, 1, 1};

  [[nodiscard]] static AppSpec bt();
  [[nodiscard]] static AppSpec lu();
  [[nodiscard]] static AppSpec sp();
  /// "BT" | "LU" | "SP" (throws on anything else).
  [[nodiscard]] static AppSpec by_name(const std::string& name);
  [[nodiscard]] static std::vector<AppSpec> all();

  [[nodiscard]] int total_components() const;
  /// Bytes of all distributed arrays for grid edge n (the "array" column
  /// of Table 3).
  [[nodiscard]] std::uint64_t arrays_bytes(core::Index n) const;

  /// 4-D index space of one declared array: (component, x, y, z).
  [[nodiscard]] core::Slice array_box(const ArrayDecl& decl,
                                      core::Index n) const;
  /// Block distribution of such an array over `tasks`: components
  /// undistributed, near-cubic spatial grid, shadow on spatial axes only.
  [[nodiscard]] core::DistSpec array_distribution(const ArrayDecl& decl,
                                                  core::Index n,
                                                  int tasks) const;

  /// Full segment model for grid edge n: static local sections computed
  /// at min_tasks (Fortran static allocation does not shrink with more
  /// tasks), plus the private/system/text components.
  [[nodiscard]] core::AppSegmentModel segment_model(core::Index n) const;
};

}  // namespace drms::apps
