#include "apps/app_spec.hpp"

#include <algorithm>
#include <array>

#include "support/error.hpp"

namespace drms::apps {

using core::Index;

Index grid_size(ProblemClass c) {
  switch (c) {
    case ProblemClass::kS:
      return 12;
    case ProblemClass::kW:
      return 24;
    case ProblemClass::kA:
      return 64;
  }
  throw support::Error("unknown problem class");
}

std::string to_string(ProblemClass c) {
  switch (c) {
    case ProblemClass::kS:
      return "S";
    case ProblemClass::kW:
      return "W";
    case ProblemClass::kA:
      return "A";
  }
  return "?";
}

namespace {

/// The "system related" storage is identical for all three applications
/// (Table 4): mostly message-passing buffers.
constexpr std::uint64_t kSystemBytes = 34'972'228;

AppSpec base(std::string name, std::vector<ArrayDecl> arrays,
             std::uint64_t private_bytes, std::uint64_t text_bytes) {
  AppSpec spec;
  spec.name = std::move(name);
  spec.arrays = std::move(arrays);
  spec.private_bytes = private_bytes;
  spec.system_bytes = kSystemBytes;
  spec.text_bytes = text_bytes;
  return spec;
}

}  // namespace

AppSpec AppSpec::bt() {
  // 42 components -> 84 MiB of distributed arrays at class A.
  return base("BT",
              {{"u", 5},
               {"rhs", 5},
               {"forcing", 5},
               {"us", 1},
               {"vs", 1},
               {"ws", 1},
               {"qs", 1},
               {"rho_i", 1},
               {"square", 1},
               {"lhs_x", 7},
               {"lhs_y", 7},
               {"lhs_z", 7}},
              /*private_bytes=*/5'374'784, /*text_bytes=*/8'388'608);
}

AppSpec AppSpec::lu() {
  // 17 components -> 34 MiB at class A; LU keeps its big work arrays
  // PRIVATE (the paper's explanation for its 44 MB private component).
  // Table 4 prints LU's private/replicated column as 44,134,872, which is
  // inconsistent with its own "Total data" of 89,169,924 by exactly 1000
  // bytes; we use the value implied by the total (44,135,872).
  AppSpec spec =
      base("LU", {{"u", 5}, {"rsd", 5}, {"frct", 5}, {"flux", 2}},
           /*private_bytes=*/44'135'872, /*text_bytes=*/7'340'032);
  spec.static_halo = {0, 1, 1};  // LU's statics carry no x halo
  return spec;
}

AppSpec AppSpec::sp() {
  // 24 components -> 48 MiB at class A.
  return base("SP",
              {{"u", 5},
               {"rhs", 5},
               {"forcing", 5},
               {"us", 1},
               {"vs", 1},
               {"ws", 1},
               {"qs", 1},
               {"rho_i", 1},
               {"speed", 1},
               {"lhs", 3}},
              /*private_bytes=*/5'621'696, /*text_bytes=*/7'864'320);
}

AppSpec AppSpec::by_name(const std::string& name) {
  for (AppSpec spec : all()) {
    if (spec.name == name) {
      return spec;
    }
  }
  throw support::Error("unknown application: '" + name +
                       "' (expected BT, LU or SP)");
}

std::vector<AppSpec> AppSpec::all() { return {bt(), lu(), sp()}; }

int AppSpec::total_components() const {
  int total = 0;
  for (const auto& a : arrays) {
    total += a.components;
  }
  return total;
}

std::uint64_t AppSpec::arrays_bytes(Index n) const {
  return static_cast<std::uint64_t>(total_components()) *
         static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(n) * sizeof(double);
}

core::Slice AppSpec::array_box(const ArrayDecl& decl, Index n) const {
  const std::array<Index, 4> lo{0, 0, 0, 0};
  const std::array<Index, 4> hi{decl.components - 1, n - 1, n - 1, n - 1};
  return core::Slice::box(lo, hi);
}

core::DistSpec AppSpec::array_distribution(const ArrayDecl& decl, Index n,
                                           int tasks) const {
  const std::vector<int> spatial = core::factor_grid(tasks, 3);
  const std::array<int, 4> grid{1, spatial[0], spatial[1], spatial[2]};
  const std::array<Index, 4> shadow{0, shadow_width, shadow_width,
                                    shadow_width};
  return core::DistSpec::block(array_box(decl, n), grid, shadow);
}

core::AppSegmentModel AppSpec::segment_model(Index n) const {
  // Static local storage: the largest per-task sum of local-array sizes
  // at the compile-minimum task count. Fortran dimensions each spatial
  // axis as (assigned extent + 2*static_halo), with no clamping at the
  // global boundary — which is why the paper's local sections exceed
  // 1/min_tasks of the arrays (§5, Table 4).
  std::vector<std::uint64_t> per_task(static_cast<std::size_t>(min_tasks),
                                      0);
  for (const auto& decl : arrays) {
    const core::DistSpec spec = array_distribution(decl, n, min_tasks);
    for (int t = 0; t < min_tasks; ++t) {
      const core::Slice& assigned = spec.assigned(t);
      std::uint64_t points = static_cast<std::uint64_t>(
          assigned.range(0).size());  // components
      for (int axis = 0; axis < 3; ++axis) {
        points *= static_cast<std::uint64_t>(
            assigned.range(axis + 1).size() +
            2 * static_halo[static_cast<std::size_t>(axis)]);
      }
      per_task[static_cast<std::size_t>(t)] += points * sizeof(double);
    }
  }
  core::AppSegmentModel model;
  model.static_local_bytes =
      *std::max_element(per_task.begin(), per_task.end());
  model.private_bytes = private_bytes;
  model.system_bytes = system_bytes;
  model.text_bytes = text_bytes;
  return model;
}

}  // namespace drms::apps
