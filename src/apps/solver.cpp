#include "apps/solver.hpp"

#include <cmath>
#include <memory>

#include "core/redistribute.hpp"
#include "core/streamer.hpp"
#include "rt/collectives.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

namespace drms::apps {

using core::DistArray;
using core::Index;
using core::Slice;

namespace {

/// Per-application relaxation operator shape. The asymmetric LU weights
/// stand in for its lower/upper sweeps, SP's wider weights for the
/// scalar-pentadiagonal system; all remain Jacobi-style so results are
/// distribution-invariant.
struct StencilCoef {
  double wxm, wxp, wym, wyp, wzm, wzp;
  double source;
  double dt;
};

StencilCoef coefficients(const std::string& app) {
  if (app == "BT") {
    return {0.11, 0.11, 0.12, 0.12, 0.13, 0.13, 0.015, 0.4};
  }
  if (app == "LU") {
    return {0.15, 0.07, 0.10, 0.06, 0.12, 0.05, 0.020, 0.5};
  }
  if (app == "SP") {
    return {0.09, 0.09, 0.09, 0.09, 0.09, 0.09, 0.010, 0.6};
  }
  throw support::Error("no stencil coefficients for app '" + app + "'");
}

/// Deterministic initial value of array `a`, component c, point (x,y,z) —
/// a pure function of the global position, so initialization is identical
/// on every task count.
double initial_value(int a, Index c, Index x, Index y, Index z) {
  return 0.1 * static_cast<double>(a + 1) +
         1e-3 * static_cast<double>(c + 1) +
         1e-4 * static_cast<double>(x) + 1e-7 * static_cast<double>(y) +
         1e-10 * static_cast<double>(z);
}

/// Raw-pointer view of a 4-D (comp,x,y,z) block-distributed local section.
struct LocalView {
  double* data = nullptr;
  Index c0 = 0, x0 = 0, y0 = 0, z0 = 0;  // mapped lower bounds
  Index sc = 1, sx = 0, sy = 0, sz = 0;  // column-major strides

  [[nodiscard]] double& at(Index c, Index x, Index y, Index z) const {
    return data[(c - c0) * sc + (x - x0) * sx + (y - y0) * sy +
                (z - z0) * sz];
  }
};

LocalView view_of(DistArray& array, int rank) {
  core::LocalArray& local = array.local(rank);
  const Slice& m = local.mapped();
  DRMS_EXPECTS_MSG(m.rank() == 4, "solver arrays are 4-D");
  LocalView v;
  v.data = local.as_f64().data();
  v.c0 = m.range(0).first();
  v.x0 = m.range(1).first();
  v.y0 = m.range(2).first();
  v.z0 = m.range(3).first();
  v.sc = 1;
  v.sx = m.range(0).size();
  v.sy = v.sx * m.range(1).size();
  v.sz = v.sy * m.range(2).size();
  return v;
}

/// Read-only counterpart of LocalView for arrays the solver never writes
/// (the forcing term). Going through the const accessor leaves the
/// array's mutation log untouched, so delta checkpoints see a frozen
/// array as clean instead of re-dumping it every generation.
struct ConstLocalView {
  const double* data = nullptr;
  Index c0 = 0, x0 = 0, y0 = 0, z0 = 0;
  Index sc = 1, sx = 0, sy = 0, sz = 0;

  [[nodiscard]] double at(Index c, Index x, Index y, Index z) const {
    return data[(c - c0) * sc + (x - x0) * sx + (y - y0) * sy +
                (z - z0) * sz];
  }
};

ConstLocalView const_view_of(const DistArray& array, int rank) {
  const core::LocalArray& local = array.local(rank);
  const Slice& m = local.mapped();
  DRMS_EXPECTS_MSG(m.rank() == 4, "solver arrays are 4-D");
  ConstLocalView v;
  v.data = local.as_f64().data();
  v.c0 = m.range(0).first();
  v.x0 = m.range(1).first();
  v.y0 = m.range(2).first();
  v.z0 = m.range(3).first();
  v.sc = 1;
  v.sx = m.range(0).size();
  v.sy = v.sx * m.range(1).size();
  v.sz = v.sy * m.range(2).size();
  return v;
}

void fill_initial(DistArray& array, int array_index, int rank) {
  const Slice& assigned = array.distribution().assigned(rank);
  if (assigned.empty()) {
    return;
  }
  const LocalView v = view_of(array, rank);
  const auto& rc = assigned.range(0);
  const auto& rx = assigned.range(1);
  const auto& ry = assigned.range(2);
  const auto& rz = assigned.range(3);
  for (Index z = rz.first(); z <= rz.last(); ++z) {
    for (Index y = ry.first(); y <= ry.last(); ++y) {
      for (Index x = rx.first(); x <= rx.last(); ++x) {
        for (Index c = rc.first(); c <= rc.last(); ++c) {
          v.at(c, x, y, z) = initial_value(array_index, c, x, y, z);
        }
      }
    }
  }
}

/// One relaxation step: buf = stencil(u) (+ source), then u += dt * buf.
/// Returns the task-local sum of |buf| for the residual diagnostic.
double relax(DistArray& u, DistArray& buf, DistArray* forcing,
             const StencilCoef& k, Index n, int rank) {
  const Slice& assigned = u.distribution().assigned(rank);
  if (assigned.empty()) {
    return 0.0;
  }
  const LocalView uv = view_of(u, rank);
  const LocalView bv = view_of(buf, rank);
  ConstLocalView fv;
  if (forcing != nullptr) {
    fv = const_view_of(*forcing, rank);
  }
  const auto& rc = assigned.range(0);
  const auto& rx = assigned.range(1);
  const auto& ry = assigned.range(2);
  const auto& rz = assigned.range(3);

  double local_abs = 0.0;
  for (Index z = rz.first(); z <= rz.last(); ++z) {
    const Index zm = z > 0 ? z - 1 : z;
    const Index zp = z < n - 1 ? z + 1 : z;
    for (Index y = ry.first(); y <= ry.last(); ++y) {
      const Index ym = y > 0 ? y - 1 : y;
      const Index yp = y < n - 1 ? y + 1 : y;
      for (Index x = rx.first(); x <= rx.last(); ++x) {
        const Index xm = x > 0 ? x - 1 : x;
        const Index xp = x < n - 1 ? x + 1 : x;
        for (Index c = rc.first(); c <= rc.last(); ++c) {
          const double center = uv.at(c, x, y, z);
          double r = k.wxm * (uv.at(c, xm, y, z) - center) +
                     k.wxp * (uv.at(c, xp, y, z) - center) +
                     k.wym * (uv.at(c, x, ym, z) - center) +
                     k.wyp * (uv.at(c, x, yp, z) - center) +
                     k.wzm * (uv.at(c, x, y, zm) - center) +
                     k.wzp * (uv.at(c, x, y, zp) - center);
          if (forcing != nullptr) {
            r += k.source * fv.at(c, x, y, z);
          }
          bv.at(c, x, y, z) = r;
          local_abs += std::abs(r);
        }
      }
    }
  }
  for (Index z = rz.first(); z <= rz.last(); ++z) {
    for (Index y = ry.first(); y <= ry.last(); ++y) {
      for (Index x = rx.first(); x <= rx.last(); ++x) {
        for (Index c = rc.first(); c <= rc.last(); ++c) {
          uv.at(c, x, y, z) += k.dt * bv.at(c, x, y, z);
        }
      }
    }
  }
  return local_abs;
}

}  // namespace

std::unique_ptr<core::DrmsProgram> make_program(
    const SolverOptions& options, core::DrmsEnv env, int task_count) {
  return std::make_unique<core::DrmsProgram>(
      options.spec.name, env, options.spec.segment_model(options.n),
      task_count);
}

SolverOutcome run_solver(core::DrmsProgram& program, rt::TaskContext& ctx,
                         const SolverOptions& options) {
  const AppSpec& spec = options.spec;
  const Index n = options.n;
  const StencilCoef coef = coefficients(spec.name);

  core::DrmsContext drms(program, ctx);
  std::int64_t it = 0;
  double residual = 0.0;
  drms.store().register_i64("it", &it);
  drms.store().register_f64("residual", &residual);
  drms.initialize();

  // Declare and distribute every array of the inventory (Figure 1's
  // drms_create_distribution + drms_distribute; on a restart, distribute()
  // also loads the checkpointed contents under the new distribution).
  std::vector<DistArray*> arrays;
  arrays.reserve(spec.arrays.size());
  for (const auto& decl : spec.arrays) {
    const Slice box = spec.array_box(decl, n);
    std::vector<Index> lo;
    std::vector<Index> hi;
    for (int k = 0; k < box.rank(); ++k) {
      lo.push_back(box.range(k).first());
      hi.push_back(box.range(k).last());
    }
    DistArray& a = drms.create_array(decl.name, lo, hi);
    drms.distribute(a, spec.array_distribution(decl, n, ctx.size()));
    arrays.push_back(&a);
  }
  DistArray& u = *arrays[0];
  DistArray& buf = *arrays[1];
  DistArray* forcing = arrays.size() > 2 ? arrays[2] : nullptr;

  SolverOutcome out;
  out.restarted = drms.restarted();
  out.partial_restore = drms.partial_restored();
  out.start_iteration = it;
  out.delta = drms.delta();

  if (!drms.restarted()) {
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      fill_initial(*arrays[a], static_cast<int>(a), ctx.rank());
    }
    ctx.barrier();
    core::refresh_shadows(ctx, u);
  }

  const int stop = options.stop_at_iteration >= 0
                       ? options.stop_at_iteration
                       : options.iterations;
  const std::uint64_t points_per_iter =
      static_cast<std::uint64_t>(
          u.distribution().assigned(ctx.rank()).element_count());

  while (it < stop) {
    if (!options.prefix.empty() && it > 0 &&
        it % options.checkpoint_every == 0) {
      const std::string ckpt_prefix = options.prefix_for_iteration
                                          ? options.prefix_for_iteration(it)
                                          : options.prefix;
      const core::ReconfigResult r =
          options.use_chkenable ? drms.reconfig_chkenable(ckpt_prefix)
                                : drms.reconfig_checkpoint(ckpt_prefix);
      if (r.checkpoint_written) {
        ++out.checkpoints_written;
      }
    }
    if (options.on_iteration) {
      options.on_iteration(it, ctx);
    }
    if (options.steering != nullptr) {
      (void)drms.service_steering(*options.steering);
    }
    const double local_abs =
        relax(u, buf, forcing, coef, n, ctx.rank());
    if (program.env().cost != nullptr) {
      drms.charge_compute(
          program.env().cost->compute_seconds(points_per_iter));
    }
    residual = rt::all_reduce_sum(ctx, local_abs);
    core::refresh_shadows(ctx, u);
    ++it;
  }
  out.residual = residual;

  if (options.compute_field_crc) {
    // Canonical (distribution-independent) stream of u, CRC'd on rank 0 —
    // bitwise comparable across task counts and restarts.
    store::StorageBackend& storage = *program.env().storage;
    const std::string crc_file = spec.name + ".__fieldcrc.tmp";
    if (ctx.rank() == 0) {
      storage.create(crc_file);
    }
    ctx.barrier();
    const core::ArrayStreamer streamer(nullptr, {});
    streamer.write_section(ctx, u, u.global_box(), storage.open(crc_file),
                           0, 1);
    ctx.barrier();
    support::ByteBuffer decision;
    if (ctx.rank() == 0) {
      const auto handle = storage.open(crc_file);
      const auto bytes = handle.read_at(0, handle.size());
      decision.put_u32(support::crc32c(bytes));
      storage.remove(crc_file);
    }
    rt::broadcast(ctx, decision, 0);
    decision.rewind();
    out.field_crc = decision.get_u32();
  }
  return out;
}

}  // namespace drms::apps
