// Recording StorageBackend decorator.
//
// Wraps any backend and records every namespace/file operation into an
// obs::Recorder: one "store" span per operation (attrs: backend label,
// file name, offset, byte count), per-backend/op counters and byte
// totals ("store.<label>.<op>.ops" / ".bytes"), wall-clock latency
// histograms ("store.<label>.<op>.ns"), and a flat "store.mutation"
// counter that advances once per mutating operation — the same set of
// operations FaultInjectionBackend gates (create, remove, remove_prefix,
// write_at, write_zeros_at, append), so stacking this layer UNDER a
// fault injector lets tests assert exactly how many mutations survived
// an injected crash.
//
// Simulated time is untouched: the `*_seconds` primitives delegate
// verbatim and record nothing (they are pure cost queries, not I/O).
// With a null recorder the decorator is pass-through: create()/open()
// hand back the inner backend's file handles unwrapped.
#pragma once

#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "store/storage_backend.hpp"

namespace drms::obs {

class InstrumentedBackend final : public store::StorageBackend {
 public:
  /// Does not own `inner` or `recorder`; both must outlive this object
  /// and any file handles it creates. `label` keys the metric names.
  InstrumentedBackend(store::StorageBackend& inner, Recorder* recorder,
                      std::string label = "store")
      : inner_(inner), recorder_(recorder), label_(std::move(label)) {}

  [[nodiscard]] Recorder* recorder() const { return recorder_; }
  [[nodiscard]] const std::string& label() const { return label_; }

  // ---- StorageBackend -------------------------------------------------------
  store::FileHandle create(const std::string& name) override;
  [[nodiscard]] store::FileHandle open(const std::string& name) const override;
  [[nodiscard]] bool exists(const std::string& name) const override {
    return inner_.exists(name);
  }
  void remove(const std::string& name) override;
  int remove_prefix(const std::string& prefix) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix = "") const override {
    return inner_.list(prefix);
  }
  [[nodiscard]] std::uint64_t file_size(
      const std::string& name) const override {
    return inner_.file_size(name);
  }
  [[nodiscard]] std::uint64_t total_size(
      const std::string& prefix) const override {
    return inner_.total_size(prefix);
  }

  [[nodiscard]] store::StorageStats stats() const override {
    return inner_.stats();
  }
  void reset_stats() override { inner_.reset_stats(); }
  [[nodiscard]] std::string description() const override {
    return "obs(" + inner_.description() + ")";
  }
  [[nodiscard]] int server_count() const override {
    return inner_.server_count();
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const override {
    return inner_.capacity_bytes();
  }
  [[nodiscard]] std::uint64_t used_bytes() const override {
    return inner_.used_bytes();
  }

  [[nodiscard]] const sim::CostModel* cost_model() const override {
    return inner_.cost_model();
  }
  [[nodiscard]] double single_write_seconds(
      std::uint64_t bytes, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.single_write_seconds(bytes, ctx, jitter);
  }
  [[nodiscard]] double concurrent_write_seconds(
      std::uint64_t bytes_per_writer, int writers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.concurrent_write_seconds(bytes_per_writer, writers, ctx,
                                           jitter);
  }
  [[nodiscard]] double shared_read_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.shared_read_seconds(bytes, readers, ctx, jitter);
  }
  [[nodiscard]] double private_read_seconds(
      std::uint64_t bytes_per_reader, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.private_read_seconds(bytes_per_reader, readers, ctx, jitter);
  }
  [[nodiscard]] double stream_write_round_seconds(
      std::uint64_t bytes, int writers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.stream_write_round_seconds(bytes, writers, ctx, jitter);
  }
  [[nodiscard]] double stream_read_round_seconds(
      std::uint64_t bytes, int readers, const sim::LoadContext& ctx,
      support::Rng* jitter) const override {
    return inner_.stream_read_round_seconds(bytes, readers, ctx, jitter);
  }

 private:
  store::StorageBackend& inner_;
  Recorder* recorder_;
  std::string label_;
};

}  // namespace drms::obs
