// Deterministic observability layer (drms::obs).
//
// A Recorder collects nestable trace spans and a metrics registry
// (counters, byte totals, latency histograms) from the checkpoint
// engines, the streamer, the exchange layer, retry_io and the storage
// backends. The design contract:
//
//   * OFF by default, zero overhead. Every instrumented call site holds a
//     `Recorder*` that defaults to null and guards with one pointer test;
//     nothing is allocated, timed or formatted when no recorder is
//     attached, so Table 3/5 outputs are bit-identical with the layer
//     compiled in.
//   * Recording NEVER perturbs the simulation: spans snapshot the
//     simulated clock (ctx.sim_time()) but charge nothing and draw no
//     RNG values, so a traced run produces byte-identical checkpoints
//     and identical simulated timings to an untraced one.
//   * Determinism. Every event carries a global sequence number `seq`
//     (a total order consistent with happens-before: the counter is
//     bumped under the recorder mutex at record time). The subsequence
//     recorded by one rank's main task thread is in deterministic program
//     order, and cross-rank order is deterministic wherever the program
//     synchronizes (barriers, joins). Tests therefore assert ordering
//     invariants — manifest-last, decommit-first, pipeline overlap —
//     against seq, never against the (also recorded) host wall clock.
//
// Spans carry both clocks: simulated seconds (deterministic; -1 when the
// recording site has no task context, e.g. inside a storage backend) and
// host wall nanoseconds since recorder construction (for humans; exported
// as the Chrome trace_event timeline by trace_export).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/retry.hpp"

namespace drms::obs {

/// One span/event attribute: a key with either a numeric or a string
/// value (kept unformatted until export).
struct Attr {
  std::string key;
  std::int64_t value = 0;
  std::string text;
  bool numeric = true;

  [[nodiscard]] static Attr num(std::string key, std::int64_t value) {
    Attr a;
    a.key = std::move(key);
    a.value = value;
    return a;
  }
  [[nodiscard]] static Attr str(std::string key, std::string text) {
    Attr a;
    a.key = std::move(key);
    a.text = std::move(text);
    a.numeric = false;
    return a;
  }
};

/// Sentinel span id used by call sites whose recorder is null.
inline constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

struct SpanRecord {
  std::string category;  // "ckpt", "spmd", "stream", "exchange", "store", ...
  std::string name;      // operation within the category
  /// Task rank of the recording site; -1 when no task context (store ops).
  int rank = -1;
  /// Global sequence numbers at begin/end (see determinism contract).
  std::uint64_t begin_seq = 0;
  std::uint64_t end_seq = 0;
  /// Simulated-clock seconds at begin/end; -1 when unknown.
  double begin_sim = -1.0;
  double end_sim = -1.0;
  /// Host wall clock, nanoseconds since recorder construction.
  std::uint64_t begin_wall_ns = 0;
  std::uint64_t end_wall_ns = 0;
  std::vector<Attr> attrs;
  /// False while the span is still open (end_span not yet called).
  bool closed = false;

  [[nodiscard]] const Attr* attr(std::string_view key) const;
  /// Numeric attribute value, or `fallback` when absent/non-numeric.
  [[nodiscard]] std::int64_t attr_num(std::string_view key,
                                      std::int64_t fallback = -1) const;
};

/// Log2-bucketed latency histogram (nanoseconds). Bucket i counts values
/// v with 2^i <= v < 2^(i+1) (bucket 0 also takes v == 0).
struct Histogram {
  static constexpr int kBuckets = 48;
  std::uint64_t buckets[kBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  void add(std::uint64_t v);
};

class Recorder final : public support::RetryObserver {
 public:
  Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // ---- trace spans ----------------------------------------------------------
  /// Open a span; returns its id (a stable index into spans()).
  std::size_t begin_span(std::string_view category, std::string_view name,
                         int rank, double sim_time,
                         std::vector<Attr> attrs = {});
  /// Close a span. `sim_time` < 0 means "unknown at close".
  void end_span(std::size_t id, double sim_time);
  /// Zero-length span (an instant event).
  void instant(std::string_view category, std::string_view name, int rank,
               double sim_time, std::vector<Attr> attrs = {});

  // ---- metrics registry -----------------------------------------------------
  void count(std::string_view key, std::uint64_t delta = 1);
  /// Record a latency sample (nanoseconds) into the named histogram.
  void record_ns(std::string_view key, std::uint64_t ns);
  /// High-watermark gauge: keeps the maximum value ever reported (e.g.
  /// svc.queue_depth.peak).
  void gauge_max(std::string_view key, std::uint64_t value);

  // ---- support::RetryObserver ----------------------------------------------
  /// Counts "retry.transient" and "retry.transient.<what>".
  void on_transient_retry(const char* what, int attempt) override;

  // ---- snapshots (copies; safe while recording continues) -------------------
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  [[nodiscard]] std::uint64_t counter(std::string_view key) const;
  [[nodiscard]] std::map<std::string, Histogram> histograms() const;
  [[nodiscard]] std::map<std::string, std::uint64_t> gauges() const;
  [[nodiscard]] std::uint64_t gauge(std::string_view key) const;

  /// Wall nanoseconds since construction (the spans' wall clock base).
  [[nodiscard]] std::uint64_t wall_now_ns() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t seq_ = 0;
  std::uint64_t wall_base_ns_ = 0;
  std::vector<SpanRecord> spans_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, std::uint64_t, std::less<>> gauges_;
};

/// RAII helper for the null-recorder fast path: constructing with a null
/// recorder is a no-op, and an un-ended span is closed (with unknown sim
/// time) on destruction so exception paths leave no open spans.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Recorder* recorder, std::string_view category,
             std::string_view name, int rank, double sim_time,
             std::vector<Attr> attrs = {})
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      id_ = recorder_->begin_span(category, name, rank, sim_time,
                                  std::move(attrs));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      end(-1.0);
      recorder_ = other.recorder_;
      id_ = other.id_;
      other.recorder_ = nullptr;
      other.id_ = kNoSpan;
    }
    return *this;
  }
  ~ScopedSpan() { end(-1.0); }

  /// Close the span now (idempotent).
  void end(double sim_time) {
    if (recorder_ != nullptr && id_ != kNoSpan) {
      recorder_->end_span(id_, sim_time);
      id_ = kNoSpan;
    }
  }

 private:
  Recorder* recorder_ = nullptr;
  std::size_t id_ = kNoSpan;
};

}  // namespace drms::obs
