#include "obs/trace_export.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/table.hpp"

namespace drms::obs {
namespace {

/// Events recorded with no task context (rank -1) share one trace lane.
constexpr int kStoreTid = 1000;

void write_escaped(std::ostream& out, const std::string& s) {
  static const char* kHex = "0123456789abcdef";
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          out << "\\u00" << kHex[u >> 4] << kHex[u & 0xf];
        } else {
          out << c;
        }
      }
    }
  }
  out << '"';
}

void write_double(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(std::numeric_limits<double>::max_digits10);
  tmp << value;
  out << tmp.str();
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Recorder& recorder) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : recorder.spans()) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << "{\"name\":";
    write_escaped(out, span.name);
    out << ",\"cat\":";
    write_escaped(out, span.category);
    out << ",\"ph\":\"X\",\"pid\":0,\"tid\":"
        << (span.rank >= 0 ? span.rank : kStoreTid) << ",\"ts\":";
    write_double(out, static_cast<double>(span.begin_wall_ns) / 1000.0);
    out << ",\"dur\":";
    const std::uint64_t wall_dur =
        span.end_wall_ns >= span.begin_wall_ns
            ? span.end_wall_ns - span.begin_wall_ns
            : 0;
    write_double(out, static_cast<double>(wall_dur) / 1000.0);
    out << ",\"args\":{\"seq\":" << span.begin_seq
        << ",\"end_seq\":" << span.end_seq;
    if (span.begin_sim >= 0.0) {
      out << ",\"sim_begin_s\":";
      write_double(out, span.begin_sim);
    }
    if (span.end_sim >= 0.0) {
      out << ",\"sim_end_s\":";
      write_double(out, span.end_sim);
    }
    if (!span.closed) {
      out << ",\"open\":true";
    }
    for (const Attr& attr : span.attrs) {
      out << ',';
      write_escaped(out, attr.key);
      out << ':';
      if (attr.numeric) {
        out << attr.value;
      } else {
        write_escaped(out, attr.text);
      }
    }
    out << "}}";
  }
  out << "]}\n";
}

std::string chrome_trace_json(const Recorder& recorder) {
  std::ostringstream out;
  write_chrome_trace(out, recorder);
  return out.str();
}

void write_stats_table(std::ostream& out, const Recorder& recorder) {
  const auto counters = recorder.counters();
  const auto histograms = recorder.histograms();
  if (counters.empty() && histograms.empty()) {
    out << "no recorded metrics\n";
    return;
  }
  if (!counters.empty()) {
    support::TextTable table({"counter", "value"});
    table.set_align(1, support::Align::kRight);
    for (const auto& [key, value] : counters) {
      table.add_row({key, std::to_string(value)});
    }
    table.print(out);
  }
  if (!histograms.empty()) {
    support::TextTable table(
        {"histogram (ns)", "count", "min", "mean", "max"});
    for (std::size_t c = 1; c <= 4; ++c) {
      table.set_align(c, support::Align::kRight);
    }
    for (const auto& [key, h] : histograms) {
      const std::uint64_t mean = h.count == 0 ? 0 : h.sum / h.count;
      table.add_row({key, std::to_string(h.count), std::to_string(h.min),
                     std::to_string(mean), std::to_string(h.max)});
    }
    table.print(out);
  }
}

std::string stats_table(const Recorder& recorder) {
  std::ostringstream out;
  write_stats_table(out, recorder);
  return out.str();
}

}  // namespace drms::obs
