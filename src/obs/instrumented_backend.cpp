#include "obs/instrumented_backend.hpp"

#include <memory>
#include <utility>

namespace drms::obs {
namespace {

/// Shared recording context for one wrapped backend's file objects.
struct Sink {
  Recorder* recorder;
  std::string label;

  // Events are recorded AFTER the inner operation returns, so a crashed
  // or faulted operation leaves no trace — the recorded mutation sequence
  // is exactly the set of mutations that reached the inner backend.
  void op(const char* name, const std::string& file, std::int64_t offset,
          std::uint64_t bytes, bool mutation, std::uint64_t begin_ns) const {
    const std::uint64_t dur_ns = recorder->wall_now_ns() - begin_ns;
    std::vector<Attr> attrs;
    attrs.reserve(5);
    attrs.push_back(Attr::str("backend", label));
    attrs.push_back(Attr::str("file", file));
    if (offset >= 0) {
      attrs.push_back(Attr::num("offset", offset));
    }
    attrs.push_back(Attr::num("bytes", static_cast<std::int64_t>(bytes)));
    attrs.push_back(Attr::num("dur_ns", static_cast<std::int64_t>(dur_ns)));
    recorder->instant("store", name, /*rank=*/-1, /*sim_time=*/-1.0,
                      std::move(attrs));

    const std::string key = "store." + label + "." + name;
    recorder->count(key + ".ops");
    if (bytes > 0) {
      recorder->count(key + ".bytes", bytes);
    }
    recorder->record_ns(key + ".ns", dur_ns);
    if (mutation) {
      recorder->count("store.mutation");
    }
  }
};

class InstrumentedFile final : public store::FileObject {
 public:
  InstrumentedFile(store::FileHandle inner, std::shared_ptr<const Sink> sink)
      : inner_(std::move(inner)), sink_(std::move(sink)) {}

  void write_at(std::uint64_t offset, std::span<const std::byte> data) override {
    const std::uint64_t t0 = sink_->recorder->wall_now_ns();
    inner_.write_at(offset, data);
    sink_->op("write_at", inner_.name(), static_cast<std::int64_t>(offset),
              data.size(), /*mutation=*/true, t0);
  }
  void write_zeros_at(std::uint64_t offset, std::uint64_t count) override {
    const std::uint64_t t0 = sink_->recorder->wall_now_ns();
    inner_.write_zeros_at(offset, count);
    sink_->op("write_zeros_at", inner_.name(),
              static_cast<std::int64_t>(offset), count, /*mutation=*/true, t0);
  }
  [[nodiscard]] std::vector<std::byte> read_at(
      std::uint64_t offset, std::uint64_t count) const override {
    const std::uint64_t t0 = sink_->recorder->wall_now_ns();
    std::vector<std::byte> bytes = inner_.read_at(offset, count);
    sink_->op("read_at", inner_.name(), static_cast<std::int64_t>(offset),
              count, /*mutation=*/false, t0);
    return bytes;
  }
  void read_at_into(std::uint64_t offset,
                    std::span<std::byte> out) const override {
    const std::uint64_t t0 = sink_->recorder->wall_now_ns();
    inner_.read_at_into(offset, out);
    sink_->op("read_at", inner_.name(), static_cast<std::int64_t>(offset),
              out.size(), /*mutation=*/false, t0);
  }
  void append(std::span<const std::byte> data) override {
    const std::uint64_t t0 = sink_->recorder->wall_now_ns();
    const std::uint64_t offset = inner_.size();
    inner_.append(data);
    sink_->op("append", inner_.name(), static_cast<std::int64_t>(offset),
              data.size(), /*mutation=*/true, t0);
  }
  [[nodiscard]] std::uint64_t size() const override { return inner_.size(); }
  [[nodiscard]] const std::string& name() const override {
    return inner_.name();
  }

 private:
  store::FileHandle inner_;
  std::shared_ptr<const Sink> sink_;
};

store::FileHandle wrap(store::FileHandle inner, Recorder* recorder,
                       const std::string& label) {
  if (recorder == nullptr || !inner.valid()) {
    return inner;
  }
  auto sink = std::make_shared<const Sink>(Sink{recorder, label});
  return store::FileHandle(
      std::make_shared<InstrumentedFile>(std::move(inner), std::move(sink)));
}

}  // namespace

store::FileHandle InstrumentedBackend::create(const std::string& name) {
  if (recorder_ == nullptr) {
    return inner_.create(name);
  }
  const std::uint64_t t0 = recorder_->wall_now_ns();
  store::FileHandle handle = inner_.create(name);
  Sink{recorder_, label_}.op("create", name, /*offset=*/-1, /*bytes=*/0,
                             /*mutation=*/true, t0);
  return wrap(std::move(handle), recorder_, label_);
}

store::FileHandle InstrumentedBackend::open(const std::string& name) const {
  if (recorder_ == nullptr) {
    return inner_.open(name);
  }
  const std::uint64_t t0 = recorder_->wall_now_ns();
  store::FileHandle handle = inner_.open(name);
  Sink{recorder_, label_}.op("open", name, /*offset=*/-1, /*bytes=*/0,
                             /*mutation=*/false, t0);
  return wrap(std::move(handle), recorder_, label_);
}

void InstrumentedBackend::remove(const std::string& name) {
  if (recorder_ == nullptr) {
    inner_.remove(name);
    return;
  }
  const std::uint64_t t0 = recorder_->wall_now_ns();
  inner_.remove(name);
  Sink{recorder_, label_}.op("remove", name, /*offset=*/-1, /*bytes=*/0,
                             /*mutation=*/true, t0);
}

int InstrumentedBackend::remove_prefix(const std::string& prefix) {
  if (recorder_ == nullptr) {
    return inner_.remove_prefix(prefix);
  }
  const std::uint64_t t0 = recorder_->wall_now_ns();
  const int removed = inner_.remove_prefix(prefix);
  Sink{recorder_, label_}.op("remove_prefix", prefix, /*offset=*/-1,
                             static_cast<std::uint64_t>(removed),
                             /*mutation=*/true, t0);
  return removed;
}

}  // namespace drms::obs
