#include "obs/recorder.hpp"

#include <algorithm>
#include <chrono>

namespace drms::obs {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int log2_bucket(std::uint64_t v) {
  int b = 0;
  while (v > 1 && b < Histogram::kBuckets - 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

const Attr* SpanRecord::attr(std::string_view key) const {
  for (const Attr& a : attrs) {
    if (a.key == key) {
      return &a;
    }
  }
  return nullptr;
}

std::int64_t SpanRecord::attr_num(std::string_view key,
                                  std::int64_t fallback) const {
  const Attr* a = attr(key);
  return (a != nullptr && a->numeric) ? a->value : fallback;
}

void Histogram::add(std::uint64_t v) {
  ++buckets[log2_bucket(v)];
  if (count == 0 || v < min) {
    min = v;
  }
  if (count == 0 || v > max) {
    max = v;
  }
  ++count;
  sum += v;
}

Recorder::Recorder() : wall_base_ns_(steady_ns()) {}

std::size_t Recorder::begin_span(std::string_view category,
                                 std::string_view name, int rank,
                                 double sim_time, std::vector<Attr> attrs) {
  const std::uint64_t wall = steady_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord& span = spans_.emplace_back();
  span.category.assign(category);
  span.name.assign(name);
  span.rank = rank;
  span.begin_seq = seq_++;
  span.end_seq = span.begin_seq;
  span.begin_sim = sim_time;
  span.begin_wall_ns = wall - wall_base_ns_;
  span.end_wall_ns = span.begin_wall_ns;
  span.attrs = std::move(attrs);
  return spans_.size() - 1;
}

void Recorder::end_span(std::size_t id, double sim_time) {
  const std::uint64_t wall = steady_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= spans_.size() || spans_[id].closed) {
    return;
  }
  SpanRecord& span = spans_[id];
  span.end_seq = seq_++;
  span.end_sim = sim_time;
  span.end_wall_ns = wall - wall_base_ns_;
  span.closed = true;
}

void Recorder::instant(std::string_view category, std::string_view name,
                       int rank, double sim_time, std::vector<Attr> attrs) {
  const std::uint64_t wall = steady_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord& span = spans_.emplace_back();
  span.category.assign(category);
  span.name.assign(name);
  span.rank = rank;
  span.begin_seq = seq_++;
  span.end_seq = span.begin_seq;
  span.begin_sim = sim_time;
  span.end_sim = sim_time;
  span.begin_wall_ns = wall - wall_base_ns_;
  span.end_wall_ns = span.begin_wall_ns;
  span.attrs = std::move(attrs);
  span.closed = true;
}

void Recorder::count(std::string_view key, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    counters_.emplace(std::string(key), delta);
  } else {
    it->second += delta;
  }
}

void Recorder::record_ns(std::string_view key, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(key), Histogram{}).first;
  }
  it->second.add(ns);
}

void Recorder::gauge_max(std::string_view key, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(key), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

void Recorder::on_transient_retry(const char* what, int attempt) {
  (void)attempt;
  count("retry.transient");
  count(std::string("retry.transient.") + what);
}

std::vector<SpanRecord> Recorder::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::size_t Recorder::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::map<std::string, std::uint64_t> Recorder::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::uint64_t Recorder::counter(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, Histogram> Recorder::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {histograms_.begin(), histograms_.end()};
}

std::map<std::string, std::uint64_t> Recorder::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

std::uint64_t Recorder::gauge(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(key);
  return it == gauges_.end() ? 0 : it->second;
}

std::uint64_t Recorder::wall_now_ns() const {
  return steady_ns() - wall_base_ns_;
}

}  // namespace drms::obs
