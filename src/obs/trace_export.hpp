// Export of a Recorder's contents in two shapes:
//
//   * Chrome trace_event JSON (chrome://tracing, Perfetto): one complete
//     "X" event per span. `ts`/`dur` come from the host wall clock in
//     microseconds; the deterministic fields (global sequence numbers,
//     simulated-clock begin/end) and every span attribute ride along in
//     `args`. Ranks map to tids; rank-less events (storage ops recorded
//     outside any task context) land on a dedicated "store" tid.
//   * A flat stats table: every counter, then every latency histogram
//     (count / min / mean / max, nanoseconds).
#pragma once

#include <ostream>
#include <string>

#include "obs/recorder.hpp"

namespace drms::obs {

void write_chrome_trace(std::ostream& out, const Recorder& recorder);
[[nodiscard]] std::string chrome_trace_json(const Recorder& recorder);

void write_stats_table(std::ostream& out, const Recorder& recorder);
[[nodiscard]] std::string stats_table(const Recorder& recorder);

}  // namespace drms::obs
