#include "piofs/volume.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>

#include "support/error.hpp"

namespace drms::piofs {

/// Per-server sharded, lock-free transfer counters (see header).
struct Volume::Accounting {
  explicit Accounting(int servers)
      : per_server_written(static_cast<std::size_t>(servers)),
        per_server_read(static_cast<std::size_t>(servers)) {}
  std::atomic<std::uint64_t> bytes_written{0};
  std::atomic<std::uint64_t> bytes_read{0};
  std::atomic<std::uint64_t> write_ops{0};
  std::atomic<std::uint64_t> read_ops{0};
  std::atomic<std::uint64_t> files_created{0};
  std::vector<std::atomic<std::uint64_t>> per_server_written;
  std::vector<std::atomic<std::uint64_t>> per_server_read;

  void reset() {
    bytes_written.store(0);
    bytes_read.store(0);
    write_ops.store(0);
    read_ops.store(0);
    files_created.store(0);
    for (auto& v : per_server_written) {
      v.store(0);
    }
    for (auto& v : per_server_read) {
      v.store(0);
    }
  }
};

struct FileHandle::FileState {
  explicit FileState(std::string file_name, Volume* owner)
      : name(std::move(file_name)), volume(owner) {}
  std::string name;
  Volume* volume;
  mutable std::mutex mutex;
  ExtentFile data;
};

void FileHandle::write_at(std::uint64_t offset,
                          std::span<const std::byte> data) {
  DRMS_EXPECTS_MSG(valid(), "write through an invalid file handle");
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->data.write_at(offset, data);
  }
  state_->volume->account_write(offset, data.size());
}

void FileHandle::write_zeros_at(std::uint64_t offset, std::uint64_t count) {
  DRMS_EXPECTS_MSG(valid(), "write through an invalid file handle");
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->data.write_zeros_at(offset, count);
  }
  state_->volume->account_write(offset, count);
}

std::vector<std::byte> FileHandle::read_at(std::uint64_t offset,
                                           std::uint64_t count) const {
  std::vector<std::byte> out(static_cast<std::size_t>(count));
  read_at_into(offset, out);
  return out;
}

void FileHandle::read_at_into(std::uint64_t offset,
                              std::span<std::byte> out) const {
  DRMS_EXPECTS_MSG(valid(), "read through an invalid file handle");
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    if (offset + out.size() > state_->data.size()) {
      throw support::IoError("read past end of file '" + state_->name +
                             "' (offset " + std::to_string(offset) +
                             " count " + std::to_string(out.size()) +
                             " size " + std::to_string(state_->data.size()) +
                             ")");
    }
    state_->data.read_at_into(offset, out);
  }
  state_->volume->account_read(offset, out.size());
}

void FileHandle::append(std::span<const std::byte> data) {
  DRMS_EXPECTS_MSG(valid(), "append through an invalid file handle");
  std::uint64_t offset = 0;
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    offset = state_->data.size();
    state_->data.write_at(offset, data);
  }
  state_->volume->account_write(offset, data.size());
}

std::uint64_t FileHandle::size() const {
  DRMS_EXPECTS_MSG(valid(), "size of an invalid file handle");
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->data.size();
}

const std::string& FileHandle::name() const {
  DRMS_EXPECTS_MSG(valid(), "name of an invalid file handle");
  return state_->name;
}

Volume::Volume(int server_count, std::uint64_t stripe_unit)
    : server_count_(server_count), stripe_unit_(stripe_unit) {
  DRMS_EXPECTS(server_count_ > 0);
  DRMS_EXPECTS(stripe_unit_ > 0);
  accounting_ = std::make_unique<Accounting>(server_count_);
}

Volume::~Volume() = default;

int Volume::server_of(std::uint64_t offset) const noexcept {
  return static_cast<int>((offset / stripe_unit_) %
                          static_cast<std::uint64_t>(server_count_));
}

FileHandle Volume::create(const std::string& name) {
  DRMS_EXPECTS(!name.empty());
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = files_[name];
  if (slot == nullptr) {
    slot = std::make_shared<FileHandle::FileState>(name, this);
    accounting_->files_created.fetch_add(1, std::memory_order_relaxed);
  } else {
    const std::lock_guard<std::mutex> file_lock(slot->mutex);
    slot->data.truncate();
  }
  stripe_width_.erase(name);  // create() resets to full-width striping
  return FileHandle(slot);
}

FileHandle Volume::create_striped(const std::string& name,
                                  int stripe_servers) {
  DRMS_EXPECTS_MSG(stripe_servers >= 1 && stripe_servers <= server_count_,
                   "per-file stripe width must be within the server set");
  FileHandle handle = create(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  stripe_width_[name] = stripe_servers;
  return handle;
}

int Volume::stripe_servers_of(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (files_.count(name) == 0) {
    throw support::IoError("no such file: '" + name + "'");
  }
  const auto it = stripe_width_.find(name);
  return it == stripe_width_.end() ? server_count_ : it->second;
}

FileHandle Volume::open(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(name);
  if (it == files_.end()) {
    throw support::IoError("no such file: '" + name + "'");
  }
  return FileHandle(it->second);
}

bool Volume::exists(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(name) != 0;
}

void Volume::remove(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(name) == 0) {
    throw support::IoError("cannot remove missing file: '" + name + "'");
  }
  stripe_width_.erase(name);
}

int Volume::remove_prefix(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  int removed = 0;
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      stripe_width_.erase(it->first);
      it = files_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> Volume::list(const std::string& prefix) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, state] : files_) {
    if (name.rfind(prefix, 0) == 0) {
      names.push_back(name);
    }
  }
  return names;  // std::map iteration is already sorted
}

std::uint64_t Volume::file_size(const std::string& name) const {
  return open(name).size();
}

std::uint64_t Volume::total_size(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& name : list(prefix)) {
    total += open(name).size();
  }
  return total;
}

void Volume::account_write(std::uint64_t offset, std::uint64_t count) {
  Accounting& acc = *accounting_;
  acc.bytes_written.fetch_add(count, std::memory_order_relaxed);
  acc.write_ops.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t pos = offset;
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::uint64_t in_cell = pos % stripe_unit_;
    const std::uint64_t n = std::min(stripe_unit_ - in_cell, remaining);
    acc.per_server_written[static_cast<std::size_t>(server_of(pos))]
        .fetch_add(n, std::memory_order_relaxed);
    pos += n;
    remaining -= n;
  }
}

void Volume::account_read(std::uint64_t offset, std::uint64_t count) const {
  Accounting& acc = *accounting_;
  acc.bytes_read.fetch_add(count, std::memory_order_relaxed);
  acc.read_ops.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t pos = offset;
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::uint64_t in_cell = pos % stripe_unit_;
    const std::uint64_t n = std::min(stripe_unit_ - in_cell, remaining);
    acc.per_server_read[static_cast<std::size_t>(server_of(pos))].fetch_add(
        n, std::memory_order_relaxed);
    pos += n;
    remaining -= n;
  }
}

VolumeStats Volume::stats() const {
  const Accounting& acc = *accounting_;
  VolumeStats out;
  out.bytes_written = acc.bytes_written.load();
  out.bytes_read = acc.bytes_read.load();
  out.write_ops = acc.write_ops.load();
  out.read_ops = acc.read_ops.load();
  out.files_created = acc.files_created.load();
  out.per_server_bytes_written.reserve(acc.per_server_written.size());
  for (const auto& v : acc.per_server_written) {
    out.per_server_bytes_written.push_back(v.load());
  }
  out.per_server_bytes_read.reserve(acc.per_server_read.size());
  for (const auto& v : acc.per_server_read) {
    out.per_server_bytes_read.push_back(v.load());
  }
  return out;
}

Volume::Usage Volume::usage() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Usage u;
  for (const auto& [name, state] : files_) {
    const std::lock_guard<std::mutex> file_lock(state->mutex);
    u.logical_bytes += state->data.size();
    u.allocated_bytes += state->data.allocated_bytes();
    ++u.file_count;
  }
  return u;
}

void Volume::reset_stats() { accounting_->reset(); }

namespace {

/// Volume file names may contain '/'; map them to host-safe names.
std::string host_name_of(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '/', '%');
  return out;
}

std::string volume_name_of(const std::string& host_name) {
  std::string out = host_name;
  std::replace(out.begin(), out.end(), '%', '/');
  return out;
}

}  // namespace

void Volume::export_to_directory(const std::string& prefix,
                                 const std::string& directory) const {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  for (const auto& name : list(prefix)) {
    const FileHandle handle = open(name);
    const std::vector<std::byte> data = handle.read_at(0, handle.size());
    const fs::path path = fs::path(directory) / host_name_of(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw support::IoError("cannot create host file: " + path.string());
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) {
      throw support::IoError("short write to host file: " + path.string());
    }
  }
}

void Volume::import_from_directory(const std::string& directory,
                                   const std::string& prefix) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(directory)) {
    throw support::IoError("not a directory: " + directory);
  }
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = volume_name_of(entry.path().filename().string());
    if (name.rfind(prefix, 0) != 0) {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) {
      throw support::IoError("cannot open host file: " +
                             entry.path().string());
    }
    std::vector<std::byte> data(
        static_cast<std::size_t>(fs::file_size(entry.path())));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (!in) {
      throw support::IoError("short read from host file: " +
                             entry.path().string());
    }
    create(name).write_at(0, data);
  }
}

}  // namespace drms::piofs
