// PIOFS-like striped parallel file system (storage substrate).
//
// A Volume holds named files striped round-robin over `server_count`
// logical server nodes in `stripe_unit`-sized cells, matching the paper's
// description of PIOFS ("each array stored in a single logical file that
// is physically distributed among the server nodes"). The volume moves
// real bytes and keeps per-server accounting; *timing* of operations is
// the province of sim::CostModel, charged by the checkpoint/streaming
// engines which have the global view of each I/O phase.
//
// Thread-safe: application tasks on different threads read and write
// concurrently during parallel streaming.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "piofs/extent_file.hpp"

namespace drms::piofs {

/// Cumulative transfer counters, including the per-server byte split
/// implied by the striping layout.
struct VolumeStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t files_created = 0;
  std::vector<std::uint64_t> per_server_bytes_written;
  std::vector<std::uint64_t> per_server_bytes_read;
};

class Volume;

/// Handle to one open file. Cheap to copy; all copies refer to the same
/// file state. Offsets are explicit (parallel streaming needs seek), with
/// an append() convenience for the serial streaming mode.
class FileHandle {
 public:
  FileHandle() = default;

  void write_at(std::uint64_t offset, std::span<const std::byte> data);
  /// Logical zero-fill write: accounted like a real write (the simulated
  /// bytes still cross the wire) but stored sparsely.
  void write_zeros_at(std::uint64_t offset, std::uint64_t count);
  [[nodiscard]] std::vector<std::byte> read_at(std::uint64_t offset,
                                               std::uint64_t count) const;
  /// Zero-copy read: lands the bytes directly in the caller's buffer.
  void read_at_into(std::uint64_t offset, std::span<std::byte> out) const;
  /// Append at the current end of file (serial streaming; no seek needed).
  void append(std::span<const std::byte> data);

  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class Volume;
  struct FileState;
  explicit FileHandle(std::shared_ptr<FileState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<FileState> state_;
};

class Volume {
 public:
  /// `server_count` logical file servers; `stripe_unit` bytes per stripe
  /// cell (PIOFS used 32 KB cells by default).
  explicit Volume(int server_count, std::uint64_t stripe_unit = 32 * 1024);

  Volume(const Volume&) = delete;
  Volume& operator=(const Volume&) = delete;
  ~Volume();  // out-of-line: Accounting is incomplete here

  /// Create (or truncate) a file.
  FileHandle create(const std::string& name);
  /// Create with a file-specific stripe width (<= server_count servers) —
  /// PIOFS allowed per-file basic striping units; narrow striping keeps a
  /// small file's blocks on few servers.
  FileHandle create_striped(const std::string& name, int stripe_servers);
  /// Stripe width of a file (== server_count unless create_striped).
  [[nodiscard]] int stripe_servers_of(const std::string& name) const;
  /// Open an existing file; throws IoError if absent.
  [[nodiscard]] FileHandle open(const std::string& name) const;
  [[nodiscard]] bool exists(const std::string& name) const;
  void remove(const std::string& name);
  /// Remove every file whose name starts with `prefix`; returns the count.
  int remove_prefix(const std::string& prefix);
  /// Names of all files with the given prefix, sorted.
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix = "") const;
  [[nodiscard]] std::uint64_t file_size(const std::string& name) const;
  /// Sum of file sizes under a prefix — the "size of saved state" metric.
  [[nodiscard]] std::uint64_t total_size(const std::string& prefix) const;

  [[nodiscard]] int server_count() const noexcept { return server_count_; }
  [[nodiscard]] std::uint64_t stripe_unit() const noexcept {
    return stripe_unit_;
  }
  /// Server owning the stripe cell containing `offset`.
  [[nodiscard]] int server_of(std::uint64_t offset) const noexcept;

  [[nodiscard]] VolumeStats stats() const;
  void reset_stats();

  /// Space usage ("df"): logical bytes, allocated backing bytes (sparse
  /// zero-fill regions consume none), and file count.
  struct Usage {
    std::uint64_t logical_bytes = 0;
    std::uint64_t allocated_bytes = 0;
    std::size_t file_count = 0;
  };
  [[nodiscard]] Usage usage() const;

  /// Copy every file under `prefix` to a host directory (one file each) —
  /// checkpointed states can migrate to another (simulated) system, per
  /// the paper's introduction.
  void export_to_directory(const std::string& prefix,
                           const std::string& directory) const;
  /// Inverse of export_to_directory: load host files into the volume.
  void import_from_directory(const std::string& directory,
                             const std::string& prefix);

 private:
  /// Lock-free transfer accounting. Every data-path operation used to
  /// take the volume-wide mutex just to bump these counters — the one
  /// serialization point shared by otherwise-independent files. Atomics
  /// shard the accounting per server; mutex_ now guards only the
  /// NAMESPACE (create/open/remove/list), never the data path.
  struct Accounting;
  void account_write(std::uint64_t offset, std::uint64_t count);
  void account_read(std::uint64_t offset, std::uint64_t count) const;

  int server_count_;
  std::uint64_t stripe_unit_;
  mutable std::mutex mutex_;  // namespace only (files_, stripe_width_)
  /// Per-file stripe widths for create_striped files.
  std::map<std::string, int> stripe_width_;
  std::map<std::string, std::shared_ptr<FileHandle::FileState>> files_;
  std::unique_ptr<Accounting> accounting_;

  friend class FileHandle;
};

}  // namespace drms::piofs
