#include "piofs/extent_file.hpp"

#include <algorithm>
#include <cstring>

#include "support/error.hpp"

namespace drms::piofs {

void ExtentFile::write_at(std::uint64_t offset,
                          std::span<const std::byte> data) {
  std::uint64_t pos = offset;
  std::size_t src = 0;
  while (src < data.size()) {
    const std::uint64_t block_index = pos / kBlockSize;
    const std::uint64_t in_block = pos % kBlockSize;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kBlockSize - in_block, data.size() - src));
    auto& block = blocks_[block_index];
    if (block.empty()) {
      block.assign(kBlockSize, std::byte{0});
    }
    std::memcpy(block.data() + in_block, data.data() + src, n);
    pos += n;
    src += n;
  }
  size_ = std::max(size_, offset + data.size());
}

void ExtentFile::write_zeros_at(std::uint64_t offset, std::uint64_t count) {
  // Zero out any blocks that already hold data in the range; untouched
  // blocks stay unallocated (they read back as zeros anyway).
  std::uint64_t pos = offset;
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::uint64_t block_index = pos / kBlockSize;
    const std::uint64_t in_block = pos % kBlockSize;
    const std::uint64_t n = std::min(kBlockSize - in_block, remaining);
    const auto it = blocks_.find(block_index);
    if (it != blocks_.end()) {
      std::memset(it->second.data() + in_block, 0,
                  static_cast<std::size_t>(n));
    }
    pos += n;
    remaining -= n;
  }
  size_ = std::max(size_, offset + count);
}

std::vector<std::byte> ExtentFile::read_at(std::uint64_t offset,
                                           std::uint64_t count) const {
  std::vector<std::byte> out(static_cast<std::size_t>(count));
  read_at_into(offset, out);
  return out;
}

void ExtentFile::read_at_into(std::uint64_t offset,
                              std::span<std::byte> out) const {
  DRMS_EXPECTS_MSG(offset + out.size() <= size_,
                   "ExtentFile read beyond end of file");
  std::uint64_t pos = offset;
  std::size_t dst = 0;
  while (dst < out.size()) {
    const std::uint64_t block_index = pos / kBlockSize;
    const std::uint64_t in_block = pos % kBlockSize;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kBlockSize - in_block, out.size() - dst));
    const auto it = blocks_.find(block_index);
    if (it != blocks_.end()) {
      std::memcpy(out.data() + dst, it->second.data() + in_block, n);
    } else {
      std::memset(out.data() + dst, 0, n);  // sparse region reads as zeros
    }
    pos += n;
    dst += n;
  }
}

void ExtentFile::truncate() {
  blocks_.clear();
  size_ = 0;
}

}  // namespace drms::piofs
