// Sparse in-memory file storage. Data lives in fixed-size blocks allocated
// on first write; unwritten regions read back as zeros, and zero-fill
// writes (used to model the bulk private/system portions of a task's data
// segment) extend the file without allocating memory.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace drms::piofs {

class ExtentFile {
 public:
  /// Block granularity of the sparse store.
  static constexpr std::uint64_t kBlockSize = 64 * 1024;

  void write_at(std::uint64_t offset, std::span<const std::byte> data);

  /// Logically writes `count` zero bytes at `offset` without allocating
  /// storage for untouched blocks.
  void write_zeros_at(std::uint64_t offset, std::uint64_t count);

  /// Reads `count` bytes starting at `offset`. Reading past end_of_file is
  /// a contract violation (checkpoint readers always know record sizes).
  [[nodiscard]] std::vector<std::byte> read_at(std::uint64_t offset,
                                               std::uint64_t count) const;

  /// Zero-copy read: lands out.size() bytes starting at `offset` directly
  /// in the caller's buffer (no intermediate vector).
  void read_at_into(std::uint64_t offset, std::span<std::byte> out) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// Bytes of real backing storage (for tests of the sparse behaviour).
  [[nodiscard]] std::uint64_t allocated_bytes() const noexcept {
    return static_cast<std::uint64_t>(blocks_.size()) * kBlockSize;
  }

  void truncate();

 private:
  std::map<std::uint64_t, std::vector<std::byte>> blocks_;
  std::uint64_t size_ = 0;
};

}  // namespace drms::piofs
