#include "capi/drms_c.h"

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "core/checkpoint_catalog.hpp"
#include "core/drms_context.hpp"
#include "core/redistribute.hpp"
#include "piofs/volume.hpp"
#include "rt/task_group.hpp"
#include "sim/machine.hpp"
#include "store/memory_backend.hpp"
#include "store/piofs_backend.hpp"
#include "store/tiered_backend.hpp"
#include "support/error.hpp"

struct drms_volume {
  drms::piofs::Volume volume;
  drms::store::PiofsBackend piofs_backend;
  /* Present only for tiered volumes (drms_volume_create_tiered). */
  std::unique_ptr<drms::store::MemoryBackend> memory_backend;
  std::unique_ptr<drms::store::TieredBackend> tiered_backend;

  explicit drms_volume(int servers)
      : volume(servers), piofs_backend(volume) {}
  drms_volume(int servers, uint64_t fast_capacity_bytes)
      : volume(servers),
        piofs_backend(volume),
        memory_backend(std::make_unique<drms::store::MemoryBackend>(
            fast_capacity_bytes)),
        tiered_backend(std::make_unique<drms::store::TieredBackend>(
            *memory_backend, piofs_backend)) {}

  /* The backend checkpoint I/O goes through. */
  drms::store::StorageBackend& storage() {
    return tiered_backend != nullptr
               ? static_cast<drms::store::StorageBackend&>(*tiered_backend)
               : piofs_backend;
  }
  const drms::store::StorageBackend& storage() const {
    return tiered_backend != nullptr
               ? static_cast<const drms::store::StorageBackend&>(
                     *tiered_backend)
               : piofs_backend;
  }
};

struct drms_context {
  drms::core::DrmsProgram* program;
  drms::rt::TaskContext* task;
  drms::core::DrmsContext drms;
  std::vector<drms::core::DistArray*> arrays;
  std::string last_error;

  drms_context(drms::core::DrmsProgram& p, drms::rt::TaskContext& t)
      : program(&p), task(&t), drms(p, t) {}
};

namespace {

/// Run `body`, translating exceptions into DRMS_ERR + last_error. Kill
/// requests must keep unwinding the task, so TaskKilled is re-thrown.
template <typename Fn>
int guarded(drms_context_t* ctx, Fn&& body) {
  if (ctx == nullptr) {
    return DRMS_ERR;
  }
  try {
    body();
    return DRMS_OK;
  } catch (const drms::support::TaskKilled&) {
    throw;
  } catch (const std::exception& e) {
    ctx->last_error = e.what();
    return DRMS_ERR;
  }
}

drms::core::DistArray* array_of(drms_context_t* ctx, int array_id) {
  if (array_id < 0 ||
      array_id >= static_cast<int>(ctx->arrays.size())) {
    throw drms::support::Error("invalid array id " +
                               std::to_string(array_id));
  }
  return ctx->arrays[static_cast<std::size_t>(array_id)];
}

}  // namespace

extern "C" {

drms_volume_t* drms_volume_create(int servers) {
  if (servers < 1) {
    return nullptr;
  }
  try {
    return new drms_volume(servers);
  } catch (...) {
    return nullptr;
  }
}

drms_volume_t* drms_volume_create_tiered(int servers,
                                         uint64_t fast_capacity_bytes) {
  if (servers < 1) {
    return nullptr;
  }
  try {
    return new drms_volume(servers, fast_capacity_bytes);
  } catch (...) {
    return nullptr;
  }
}

int drms_volume_drain(drms_volume_t* volume) {
  if (volume == nullptr) {
    return DRMS_ERR;
  }
  if (volume->tiered_backend == nullptr) {
    return 0;
  }
  try {
    return volume->tiered_backend->drain().files_drained;
  } catch (...) {
    return DRMS_ERR;
  }
}

void drms_volume_destroy(drms_volume_t* volume) { delete volume; }

int drms_volume_checkpoint_exists(const drms_volume_t* volume,
                                  const char* prefix) {
  if (volume == nullptr || prefix == nullptr) {
    return 0;
  }
  return drms::core::checkpoint_exists(volume->storage(), prefix) ? 1 : 0;
}

int drms_volume_checkpoint_committed(const drms_volume_t* volume,
                                     const char* prefix) {
  if (volume == nullptr || prefix == nullptr) {
    return 0;
  }
  try {
    const auto& storage = volume->storage();
    return drms::core::commit_status(storage, prefix, false).committed ||
                   drms::core::commit_status(storage, prefix, true).committed
               ? 1
               : 0;
  } catch (...) {
    return 0;
  }
}

int drms_volume_fsck(const drms_volume_t* volume) {
  if (volume == nullptr) {
    return DRMS_ERR;
  }
  try {
    int torn = 0;
    for (const auto& s : drms::core::fsck_scan(volume->storage())) {
      if (!s.committed) {
        ++torn;
      }
    }
    return torn;
  } catch (...) {
    return DRMS_ERR;
  }
}

int drms_volume_gc(drms_volume_t* volume) {
  if (volume == nullptr) {
    return DRMS_ERR;
  }
  try {
    return drms::core::gc_torn_states(volume->storage());
  } catch (...) {
    return DRMS_ERR;
  }
}

int drms_run_spmd(drms_volume_t* volume,
                  const drms_run_options_t* options, drms_task_fn fn,
                  void* user) {
  if (volume == nullptr || options == nullptr || fn == nullptr ||
      options->tasks < 1 || options->app_name == nullptr) {
    return DRMS_ERR;
  }
  try {
    drms::core::DrmsEnv env;
    env.storage = &volume->storage();
    env.restart_prefix =
        options->restart_prefix != nullptr ? options->restart_prefix : "";
    env.mode = options->mode == DRMS_MODE_SPMD
                   ? drms::core::CheckpointMode::kSpmd
                   : drms::core::CheckpointMode::kDrms;
    drms::core::AppSegmentModel segment;
    segment.static_local_bytes = options->static_local_bytes;
    segment.private_bytes = options->private_bytes;
    segment.system_bytes = options->system_bytes;
    segment.text_bytes = options->text_bytes;
    drms::core::DrmsProgram program(options->app_name, env, segment,
                                    options->tasks);

    drms::sim::Machine machine = drms::sim::Machine::paper_sp16();
    if (options->tasks > machine.node_count) {
      machine.node_count = options->tasks;
      machine.server_count = options->tasks;
    }
    drms::rt::TaskGroup group(
        drms::sim::Placement::one_per_node(machine, options->tasks));
    const auto result = group.run([&](drms::rt::TaskContext& task) {
      drms_context ctx(program, task);
      fn(&ctx, user);
    });
    return result.completed ? DRMS_OK : DRMS_ERR;
  } catch (...) {
    return DRMS_ERR;
  }
}

int drms_rank(const drms_context_t* ctx) {
  return ctx == nullptr ? -1 : ctx->task->rank();
}

int drms_size(const drms_context_t* ctx) {
  return ctx == nullptr ? -1 : ctx->task->size();
}

int drms_barrier(drms_context_t* ctx) {
  return guarded(ctx, [&] { ctx->task->barrier(); });
}

int drms_register_i64(drms_context_t* ctx, const char* name,
                      int64_t* var) {
  return guarded(ctx, [&] {
    if (name == nullptr || var == nullptr) {
      throw drms::support::Error("null name or variable");
    }
    ctx->drms.store().register_i64(name, var);
  });
}

int drms_register_f64(drms_context_t* ctx, const char* name, double* var) {
  return guarded(ctx, [&] {
    if (name == nullptr || var == nullptr) {
      throw drms::support::Error("null name or variable");
    }
    ctx->drms.store().register_f64(name, var);
  });
}

int drms_initialize(drms_context_t* ctx) {
  return guarded(ctx, [&] { ctx->drms.initialize(); });
}

int drms_restarted(const drms_context_t* ctx) {
  return ctx != nullptr && ctx->drms.restarted() ? 1 : 0;
}

int drms_create_array(drms_context_t* ctx, const char* name, int rank,
                      const int64_t* lower, const int64_t* upper,
                      int* array_id) {
  return guarded(ctx, [&] {
    if (name == nullptr || lower == nullptr || upper == nullptr ||
        array_id == nullptr || rank < 1) {
      throw drms::support::Error("invalid create_array arguments");
    }
    drms::core::DistArray& array = ctx->drms.create_array(
        name,
        std::span<const drms::core::Index>(lower,
                                           static_cast<std::size_t>(rank)),
        std::span<const drms::core::Index>(upper,
                                           static_cast<std::size_t>(rank)));
    // Reuse the id when this task already declared it (idempotent).
    for (std::size_t i = 0; i < ctx->arrays.size(); ++i) {
      if (ctx->arrays[i] == &array) {
        *array_id = static_cast<int>(i);
        return;
      }
    }
    ctx->arrays.push_back(&array);
    *array_id = static_cast<int>(ctx->arrays.size()) - 1;
  });
}

int drms_distribute_block(drms_context_t* ctx, int array_id,
                          const int64_t* shadow) {
  return guarded(ctx, [&] {
    drms::core::DistArray* array = array_of(ctx, array_id);
    const int rank = array->global_box().rank();
    std::vector<drms::core::Index> widths(
        static_cast<std::size_t>(rank), 0);
    if (shadow != nullptr) {
      for (int k = 0; k < rank; ++k) {
        widths[static_cast<std::size_t>(k)] = shadow[k];
      }
    }
    ctx->drms.distribute(*array,
                         drms::core::DistSpec::block_auto(
                             array->global_box(), ctx->task->size(),
                             widths));
  });
}

int drms_array_get(drms_context_t* ctx, int array_id,
                   const int64_t* point, double* value) {
  return guarded(ctx, [&] {
    drms::core::DistArray* array = array_of(ctx, array_id);
    if (point == nullptr || value == nullptr) {
      throw drms::support::Error("null point or value");
    }
    *value = array->local(ctx->task->rank())
                 .get_f64(std::span<const drms::core::Index>(
                     point,
                     static_cast<std::size_t>(array->global_box().rank())));
  });
}

int drms_array_set(drms_context_t* ctx, int array_id,
                   const int64_t* point, double value) {
  return guarded(ctx, [&] {
    drms::core::DistArray* array = array_of(ctx, array_id);
    if (point == nullptr) {
      throw drms::support::Error("null point");
    }
    array->local(ctx->task->rank())
        .set_f64(std::span<const drms::core::Index>(
                     point,
                     static_cast<std::size_t>(array->global_box().rank())),
                 value);
  });
}

int drms_array_owns(drms_context_t* ctx, int array_id,
                    const int64_t* point) {
  if (ctx == nullptr || point == nullptr) {
    return 0;
  }
  try {
    drms::core::DistArray* array = array_of(ctx, array_id);
    return array->distribution()
                   .assigned(ctx->task->rank())
                   .contains(std::span<const drms::core::Index>(
                       point, static_cast<std::size_t>(
                                  array->global_box().rank())))
               ? 1
               : 0;
  } catch (const drms::support::TaskKilled&) {
    throw;
  } catch (...) {
    return 0;
  }
}

int drms_refresh_shadows(drms_context_t* ctx, int array_id) {
  return guarded(ctx, [&] {
    drms::core::refresh_shadows(*ctx->task, *array_of(ctx, array_id));
  });
}

namespace {

int checkpoint_common(drms_context_t* ctx, const char* prefix, int* status,
                      int* delta, bool enabling) {
  return guarded(ctx, [&] {
    if (prefix == nullptr) {
      throw drms::support::Error("null checkpoint prefix");
    }
    const drms::core::ReconfigResult r =
        enabling ? ctx->drms.reconfig_chkenable(prefix)
                 : ctx->drms.reconfig_checkpoint(prefix);
    if (status != nullptr) {
      *status = r.status == drms::core::CheckpointStatus::kRestarted
                    ? DRMS_STATUS_RESTARTED
                    : DRMS_STATUS_CONTINUED;
    }
    if (delta != nullptr) {
      *delta = r.delta;
    }
  });
}

}  // namespace

int drms_reconfig_checkpoint(drms_context_t* ctx, const char* prefix,
                             int* status, int* delta) {
  return checkpoint_common(ctx, prefix, status, delta, false);
}

int drms_reconfig_chkenable(drms_context_t* ctx, const char* prefix,
                            int* status, int* delta) {
  return checkpoint_common(ctx, prefix, status, delta, true);
}

const char* drms_last_error(const drms_context_t* ctx) {
  return ctx == nullptr ? "null context" : ctx->last_error.c_str();
}

}  // extern "C"
