/* Compile-only check that drms_c.h is valid C (the binding's contract). */
#include "capi/drms_c.h"

int drms_c_header_check_anchor(void) {
  drms_run_options_t options = {0};
  options.tasks = 1;
  return DRMS_OK + DRMS_STATUS_CONTINUED + options.tasks - 1;
}
