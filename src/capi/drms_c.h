/*
 * DRMS C binding — the C-language face of the checkpoint/reconfiguration
 * API (the paper ships C, C++ and Fortran 90 bindings; this is the C
 * one, and the Fortran mapping follows the same call list as Table 2).
 *
 * Model: the embedding (or drms_run_spmd below) runs an SPMD task
 * function on N tasks; each invocation receives a drms_context_t* that
 * wraps the task's DRMS state. All collective rules of the C++ API apply.
 *
 * Every function returns DRMS_OK (0) on success or DRMS_ERR (-1); the
 * per-context message from drms_last_error() describes the failure.
 */
#ifndef DRMS_C_H
#define DRMS_C_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define DRMS_OK 0
#define DRMS_ERR (-1)

/* drms_reconfig_checkpoint status values. */
#define DRMS_STATUS_CONTINUED 0
#define DRMS_STATUS_RESTARTED 1

/* Checkpoint modes. */
#define DRMS_MODE_DRMS 0
#define DRMS_MODE_SPMD 1

typedef struct drms_volume drms_volume_t;
typedef struct drms_context drms_context_t;

/* ---- volume management (host side) ------------------------------------ */

/* A PIOFS-like volume striped over `servers` logical servers. */
drms_volume_t* drms_volume_create(int servers);
/* A multi-level store: checkpoints commit to a node-local memory tier
 * (capped at `fast_capacity_bytes`; 0 = unlimited) backed by a PIOFS
 * volume over `servers` servers. Writes overflowing the memory tier fall
 * through to the volume. Use drms_volume_drain to copy staged data down. */
drms_volume_t* drms_volume_create_tiered(int servers,
                                         uint64_t fast_capacity_bytes);
void drms_volume_destroy(drms_volume_t* volume);
/* 1 if a (DRMS-mode) checkpoint exists under the prefix, else 0. */
int drms_volume_checkpoint_exists(const drms_volume_t* volume,
                                  const char* prefix);
/* Tiered volumes: copy staged (memory-tier) checkpoint data down to the
 * PIOFS tier. Returns the number of files drained, 0 when nothing was
 * staged (including for non-tiered volumes), DRMS_ERR on failure. */
int drms_volume_drain(drms_volume_t* volume);
/* 1 if a COMMITTED checkpoint (either mode) exists under the prefix: its
 * commit manifest was published and every listed file is intact. A state
 * whose checkpoint crashed mid-write reports 0. */
int drms_volume_checkpoint_committed(const drms_volume_t* volume,
                                     const char* prefix);
/* Count torn states on the volume (states with files on disk but no
 * valid commit manifest). 0 means every state is crash-consistent;
 * DRMS_ERR on failure. */
int drms_volume_fsck(const drms_volume_t* volume);
/* Reclaim the files of every torn state. Returns the number of files
 * removed, DRMS_ERR on failure. */
int drms_volume_gc(drms_volume_t* volume);

/* ---- running an SPMD program ------------------------------------------ */

typedef struct {
  const char* app_name;
  int tasks;
  /* NULL or "" for a fresh start; a checkpoint prefix to restart from. */
  const char* restart_prefix;
  int mode; /* DRMS_MODE_DRMS or DRMS_MODE_SPMD */
  /* Data-segment size model (bytes); zeros are fine for small programs. */
  uint64_t static_local_bytes;
  uint64_t private_bytes;
  uint64_t system_bytes;
  uint64_t text_bytes;
} drms_run_options_t;

typedef void (*drms_task_fn)(drms_context_t* ctx, void* user);

/* Run `fn` as an SPMD program over `options->tasks` tasks against the
 * volume. Blocks until every task finishes. Returns DRMS_ERR when the
 * group was killed or any task failed. */
int drms_run_spmd(drms_volume_t* volume,
                  const drms_run_options_t* options, drms_task_fn fn,
                  void* user);

/* ---- task-side API (inside drms_task_fn) ------------------------------ */

int drms_rank(const drms_context_t* ctx);
int drms_size(const drms_context_t* ctx);
int drms_barrier(drms_context_t* ctx);

/* Register replicated variables BEFORE drms_initialize. */
int drms_register_i64(drms_context_t* ctx, const char* name,
                      int64_t* var);
int drms_register_f64(drms_context_t* ctx, const char* name, double* var);

/* drms_initialize: set up the run time; on a restart, restores the
 * registered replicated variables from the checkpointed data segment. */
int drms_initialize(drms_context_t* ctx);
/* 1 when this run resumed from a checkpoint. */
int drms_restarted(const drms_context_t* ctx);

/* Declare a distributed array of doubles over the index space
 * [lower[k], upper[k]], k = 0..rank-1. Returns an array id in *array_id. */
int drms_create_array(drms_context_t* ctx, const char* name, int rank,
                      const int64_t* lower, const int64_t* upper,
                      int* array_id);

/* drms_create_distribution + drms_distribute: block distribution over
 * all tasks with the given per-axis shadow widths. On a restart the
 * checkpointed contents are loaded under the new distribution. */
int drms_distribute_block(drms_context_t* ctx, int array_id,
                          const int64_t* shadow);

/* Local element access (the point must lie in this task's mapped
 * section). */
int drms_array_get(drms_context_t* ctx, int array_id,
                   const int64_t* point, double* value);
int drms_array_set(drms_context_t* ctx, int array_id,
                   const int64_t* point, double value);
/* 1 if the point is assigned to THIS task. */
int drms_array_owns(drms_context_t* ctx, int array_id,
                    const int64_t* point);
/* Refresh shadow copies from the owning tasks (collective). */
int drms_refresh_shadows(drms_context_t* ctx, int array_id);

/* drms_reconfig_checkpoint (Table 2): mandatory checkpoint; on the first
 * call after a restart reports DRMS_STATUS_RESTARTED and the task-count
 * delta instead of writing. */
int drms_reconfig_checkpoint(drms_context_t* ctx, const char* prefix,
                             int* status, int* delta);
/* drms_reconfig_chkenable (Table 2): checkpoint only when the system has
 * armed the enabling signal. */
int drms_reconfig_chkenable(drms_context_t* ctx, const char* prefix,
                            int* status, int* delta);

/* Description of the most recent failure on this context. */
const char* drms_last_error(const drms_context_t* ctx);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* DRMS_C_H */
