// Declarative failure schedules for the recovery supervisor and the
// chaos campaign: a seeded, reproducible list of fault events, each
// pinned to (launch index, solver iteration), covering every failure
// class the supervisor must survive — task kills, node loss, transient
// storage faults, and torn/corrupt newest generations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace drms::recovery {

enum class FailureKind {
  /// Raise the job's kill switch (rt/kill_switch.hpp): every task of the
  /// group unwinds, no node leaves the pool.
  kKillPool,
  /// arch::Cluster::fail_node on one of the job's nodes: the RC teardown
  /// protocol kills the pool AND the node stays down (reconfiguration
  /// pressure).
  kNodeLoss,
  /// store::FaultInjectionBackend::inject_transient_faults: the next
  /// mutations each fail once; the engines' retry_io absorbs them.
  kTransientFaults,
  /// Decommit the newest committed generation (models a crash between
  /// the data files and the manifest publication): the catalog must skip
  /// it and restart from the previous generation.
  kTornNewest,
  /// Flip one byte inside the newest committed generation's payload: the
  /// state stays COMMITTED but deep verification must reject it
  /// (generation fallback).
  kCorruptNewest,
};

[[nodiscard]] const char* to_string(FailureKind kind);

struct FailureEvent {
  FailureKind kind = FailureKind::kKillPool;
  /// 0-based index of the supervisor launch during which the event fires.
  int launch = 0;
  /// Fires at the top of the first iteration >= this (after its SOP).
  std::int64_t at_iteration = 0;
  /// kNodeLoss: ordinal into the job's current node list.
  int node_ordinal = 0;
  /// kTransientFaults: how many mutations fail once.
  int transient_count = 1;
};

/// Shape parameters the random generator works within (must match the
/// solver options the supervisor runs).
struct ScheduleShape {
  int iterations = 12;
  int checkpoint_every = 3;
  /// Allow a second fatal event in the relaunched run.
  bool allow_second_failure = true;
};

struct FailureSchedule {
  std::vector<FailureEvent> events;

  /// Seeded random schedule. The primary failure class cycles with the
  /// seed (seed % 5), so any 5 consecutive seeds cover every kind;
  /// positions, node ordinals and fault counts vary with the seed's RNG
  /// stream. Torn/corrupt primaries pair the storage mutilation with a
  /// task kill in the same run so the restart exercises the fallback.
  [[nodiscard]] static FailureSchedule random(std::uint64_t seed,
                                              const ScheduleShape& shape);

  [[nodiscard]] bool has_kind(FailureKind kind) const;
  /// "kill@L0/i5; nodeloss#2@L1/i8" — for logs and the campaign JSON.
  [[nodiscard]] std::string describe() const;
};

}  // namespace drms::recovery
