#include "recovery/failure_schedule.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace drms::recovery {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kKillPool: return "kill";
    case FailureKind::kNodeLoss: return "nodeloss";
    case FailureKind::kTransientFaults: return "transient";
    case FailureKind::kTornNewest: return "torn";
    case FailureKind::kCorruptNewest: return "corrupt";
  }
  return "?";
}

FailureSchedule FailureSchedule::random(std::uint64_t seed,
                                        const ScheduleShape& shape) {
  const int ce = shape.checkpoint_every;
  const int last = shape.iterations - 1;
  DRMS_EXPECTS_MSG(ce >= 1 && shape.iterations >= 3 * ce + 1,
                   "schedule shape too small for every failure class");
  // The newest checkpoint a torn/corrupt event can target while leaving
  // an older generation to fall back to.
  const int last_ckpt = (last / ce) * ce;

  support::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xC0FFEE);
  FailureSchedule schedule;
  const auto kill_at = [&](int launch, std::int64_t it) {
    FailureEvent e;
    e.kind = FailureKind::kKillPool;
    e.launch = launch;
    e.at_iteration = it;
    schedule.events.push_back(e);
  };

  switch (seed % 5) {
    case 0: {  // plain task kill anywhere in the run
      kill_at(0, rng.uniform_int(1, last));
      break;
    }
    case 1: {  // node loss after the first checkpoint
      FailureEvent e;
      e.kind = FailureKind::kNodeLoss;
      e.launch = 0;
      e.at_iteration = rng.uniform_int(ce + 1, last);
      e.node_ordinal = static_cast<int>(rng.uniform_int(0, 7));
      schedule.events.push_back(e);
      break;
    }
    case 2: {  // transient storage faults, absorbed before a later kill
      FailureEvent e;
      e.kind = FailureKind::kTransientFaults;
      e.launch = 0;
      // Fire right after the first checkpoint; the next checkpoint's
      // retried mutations consume the budget before the kill lands.
      e.at_iteration = ce;
      e.transient_count = static_cast<int>(rng.uniform_int(1, 2));
      schedule.events.push_back(e);
      kill_at(0, rng.uniform_int(2 * ce, last));
      break;
    }
    case 3:
    case 4: {  // mutilate the newest generation, then kill the run
      FailureEvent e;
      e.kind = seed % 5 == 3 ? FailureKind::kTornNewest
                             : FailureKind::kCorruptNewest;
      e.launch = 0;
      e.at_iteration =
          ce * rng.uniform_int(2, std::max(2, last_ckpt / ce));
      schedule.events.push_back(e);
      kill_at(0, e.at_iteration);  // same hook invocation, after the event
      break;
    }
  }

  if (shape.allow_second_failure && rng.next_double() < 0.5) {
    kill_at(1, rng.uniform_int(ce + 1, last));
  }
  return schedule;
}

bool FailureSchedule::has_kind(FailureKind kind) const {
  return std::any_of(events.begin(), events.end(),
                     [kind](const FailureEvent& e) { return e.kind == kind; });
}

std::string FailureSchedule::describe() const {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) {
      out += "; ";
    }
    out += to_string(e.kind);
    if (e.kind == FailureKind::kNodeLoss) {
      out += "#" + std::to_string(e.node_ordinal);
    }
    if (e.kind == FailureKind::kTransientFaults) {
      out += "x" + std::to_string(e.transient_count);
    }
    out += "@L" + std::to_string(e.launch) + "/i" +
           std::to_string(e.at_iteration);
  }
  return out.empty() ? "none" : out;
}

}  // namespace drms::recovery
