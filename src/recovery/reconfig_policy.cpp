#include "recovery/reconfig_policy.hpp"

#include <algorithm>

namespace drms::recovery {

int SameCountPolicy::choose_tasks(const ReconfigInput& in) const {
  const int want =
      in.checkpoint_tasks > 0 ? in.checkpoint_tasks : in.preferred_tasks;
  if (want < in.min_tasks || want > in.survivors) {
    return 0;
  }
  return want;
}

int ShrinkToSurvivorsPolicy::choose_tasks(const ReconfigInput& in) const {
  const int want = std::min(in.preferred_tasks, in.survivors);
  return want >= in.min_tasks ? want : 0;
}

int PowerOfTwoPolicy::choose_tasks(const ReconfigInput& in) const {
  const int cap = std::min(in.preferred_tasks, in.survivors);
  if (cap < 1) {
    return 0;
  }
  int want = 1;
  while (want * 2 <= cap) {
    want *= 2;
  }
  return want >= in.min_tasks ? want : 0;
}

}  // namespace drms::recovery
