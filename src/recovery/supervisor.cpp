#include "recovery/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>

#include "core/checkpoint_catalog.hpp"
#include "core/checkpoint_format.hpp"
#include "core/delta_format.hpp"
#include "core/partial_restore.hpp"
#include "rt/task_group.hpp"
#include "support/error.hpp"

namespace drms::recovery {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  if (b <= a) {
    return 0;
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Newest committed generation of the app in the given layout, if any.
const core::CheckpointRecord* newest_of_layout(
    const std::vector<core::CheckpointRecord>& candidates, bool spmd) {
  for (const auto& c : candidates) {
    if (c.spmd == spmd) {
      return &c;
    }
  }
  return nullptr;
}

}  // namespace

RecoverySupervisor::RecoverySupervisor(arch::Cluster& cluster,
                                       arch::EventLog* log)
    : cluster_(cluster), log_(log) {}

std::string RecoverySupervisor::generation_prefix(const std::string& base,
                                                  std::int64_t iteration) {
  DRMS_EXPECTS(iteration >= 0);
  std::string digits = std::to_string(iteration);
  if (digits.size() < 6) {
    digits.insert(0, 6 - digits.size(), '0');
  }
  return base + ".g" + digits;
}

RecoveryReport RecoverySupervisor::run(const SupervisorOptions& options,
                                       const FailureSchedule& schedule) {
  DRMS_EXPECTS_MSG(options.env.storage != nullptr,
                   "supervisor needs a storage backend");
  DRMS_EXPECTS_MSG(!options.solver.prefix.empty(),
                   "supervisor needs a checkpoint prefix");
  DRMS_EXPECTS(options.max_launches >= 1 && options.min_tasks >= 1 &&
               options.preferred_tasks >= options.min_tasks);

  static const ShrinkToSurvivorsPolicy kDefaultPolicy;
  const ReconfigurationPolicy& policy =
      options.policy != nullptr ? *options.policy : kDefaultPolicy;
  store::StorageBackend& storage = *options.env.storage;
  const std::string base = options.solver.prefix;
  const std::string filter = base + ".g";
  const std::string app = options.solver.spec.name;
  const bool spmd = options.env.mode == core::CheckpointMode::kSpmd;
  obs::Recorder* rec = options.recorder;

  // Checkpoint-service session (optional): the supervisor is one job of
  // the shared scheduler, so its verify reads queue at RESTORE priority.
  svc::IoScheduler* io = options.scheduler;
  svc::JobToken io_job;
  if (io != nullptr) {
    io_job = io->register_job(options.job_name + ".recovery");
  }

  RecoveryReport report;
  std::set<std::string> suspects;  // generations whose restore errored
  std::vector<char> fired(schedule.events.size(), 0);
  auto outcome_slot = std::make_shared<apps::SolverOutcome>();

  // ---- localized-recovery state ---------------------------------------------
  // The retained snapshot is (re)captured at every checkpoint of the
  // CURRENT launch and consulted when deciding the NEXT launch's scope;
  // slot indices are only meaningful for the launch that captured them,
  // so the snapshot is consumed (moved into a per-launch plan) or
  // invalidated at every scope decision.
  const bool partial_enabled = options.partial_restore && !spmd;
  core::RetainedJobState retained;
  std::vector<int> live_nodes;  // node id per slot of the current launch
  std::set<int> lost_slots;     // current launch's slots on failed nodes
  bool pool_killed = false;     // kKillPool: every slot's memory is gone
  bool force_full_next = false;  // failed partial attempt: retry full
  // Generations a chosen restore may still read (or re-read on a retry);
  // passed as gc pins from one selection to the NEXT, so retention can
  // never reclaim a generation mid-restore, nor the fallback target of a
  // failed launch while newer-but-corrupt generations occupy the
  // keep-newest slots. Lifetime is deliberately a full launch: dropping
  // the pin at the first post-restore SOP would let the between-attempt
  // retention pass (which runs before the next selection can re-pin)
  // retire the only generation the next attempt can actually verify.
  std::vector<std::string> pinned;

  // Pending MTTR record of the recovery in flight: detect_ns is filled
  // when the failed launch returns, the middle phases while preparing the
  // relaunch, resume_ns once the relaunched solver reaches its first
  // iteration hook.
  RecoveryPhases pending;
  bool have_pending = false;
  // Wall timestamp (ns since run() entry) of the fatal schedule event of
  // the current launch; -1 when none fired. Written by rank 0's hook.
  const Clock::time_point epoch = Clock::now();
  std::atomic<std::int64_t> fatal_event_ns{-1};
  // First-hook timestamp of the current launch, for resume_ns.
  std::atomic<std::int64_t> first_hook_ns{-1};

  const auto fire_event = [&](const FailureEvent& ev) {
    obs::ScopedSpan span(rec, "recover", "inject", -1, -1.0,
                         {obs::Attr::str("kind", to_string(ev.kind))});
    try {
      switch (ev.kind) {
        case FailureKind::kKillPool:
          fatal_event_ns.store(
              static_cast<std::int64_t>(ns_between(epoch, Clock::now())));
          pool_killed = true;
          cluster_.kill_pool(options.job_name, "injected failure: task kill");
          break;
        case FailureKind::kNodeLoss: {
          const std::vector<int> nodes = cluster_.nodes_of(options.job_name);
          if (nodes.empty()) {
            break;
          }
          fatal_event_ns.store(
              static_cast<std::int64_t>(ns_between(epoch, Clock::now())));
          const int victim =
              nodes[static_cast<std::size_t>(ev.node_ordinal) % nodes.size()];
          // Slots placed on the victim lose their in-memory state; the
          // slot list is read by the scope decision after the group joins.
          for (std::size_t i = 0; i < live_nodes.size(); ++i) {
            if (live_nodes[i] == victim) {
              lost_slots.insert(static_cast<int>(i));
            }
          }
          cluster_.fail_node(victim);
          if (options.on_node_loss) {
            options.on_node_loss(victim);
          }
          break;
        }
        case FailureKind::kTransientFaults:
          if (options.fault != nullptr) {
            options.fault->inject_transient_faults(
                std::max(1, ev.transient_count));
          }
          break;
        case FailureKind::kTornNewest: {
          const auto candidates =
              core::restart_candidates(storage, app, filter);
          const core::CheckpointRecord* newest =
              newest_of_layout(candidates, spmd);
          if (newest != nullptr) {
            core::decommit_checkpoint(storage, newest->prefix);
          }
          break;
        }
        case FailureKind::kCorruptNewest: {
          const auto candidates =
              core::restart_candidates(storage, app, filter);
          const core::CheckpointRecord* newest =
              newest_of_layout(candidates, spmd);
          if (newest == nullptr) {
            break;
          }
          std::string victim;
          if (newest->spmd) {
            victim = core::spmd_task_file_name(newest->prefix, 0);
          } else if (!newest->meta.arrays.empty()) {
            victim = core::array_file_name(newest->prefix,
                                           newest->meta.arrays.front().name);
          } else {
            victim = core::segment_file_name(newest->prefix);
          }
          auto file = storage.open(victim);
          const std::uint64_t offset = file.size() / 2;
          std::vector<std::byte> byte = file.read_at(offset, 1);
          byte[0] ^= std::byte{0xff};
          file.write_at(offset, byte);
          break;
        }
      }
      if (rec != nullptr) {
        rec->count(std::string("recover.inject.") + to_string(ev.kind));
      }
    } catch (const support::Error&) {
      // Chaos injection is best-effort: a fault that cannot land (e.g.
      // nothing to corrupt yet) must not error the application.
      if (rec != nullptr) {
        rec->count("recover.inject.failed");
      }
    }
  };

  for (int launch = 0; launch < options.max_launches; ++launch) {
    const bool is_restart = launch > 0;
    LaunchReport lr;

    // ---- scavenge: rebuild the redundancy-encoded fast tier ----------------
    // Runs before select so rebuilt fast-tier generations are candidates;
    // without it a survivable node loss would silently fall back to the
    // slow tier.
    if (is_restart && options.scavenge) {
      obs::ScopedSpan scavenge_span(rec, "recover", "scavenge", -1, -1.0);
      const store::ScavengeReport sr = options.scavenge();
      if (rec != nullptr) {
        rec->count("recover.scavenge.intact",
                   static_cast<std::uint64_t>(sr.files_intact));
        rec->count("recover.scavenge.rebuilt",
                   static_cast<std::uint64_t>(sr.files_rebuilt));
        rec->count("recover.scavenge.lost",
                   static_cast<std::uint64_t>(sr.files_lost));
        rec->count("recover.scavenge.bytes", sr.bytes_recovered);
      }
    }

    // ---- select: enumerate restart candidates, newest first ----------------
    Clock::time_point t0 = Clock::now();
    obs::ScopedSpan select_span(rec, "recover", "select", -1, -1.0);
    const std::vector<core::CheckpointRecord> candidates =
        core::restart_candidates(storage, app, filter);
    select_span.end(-1.0);
    Clock::time_point t1 = Clock::now();
    if (have_pending) {
      pending.select_ns += ns_between(t0, t1);
    }

    // ---- verify: deep-check the newest, fall back across generations -------
    // With a scheduler, drains are parked from here until the relaunched
    // solver's first iteration: the restore path must never queue behind
    // background tier traffic.
    auto restore_guard = std::make_shared<svc::IoScheduler::RestoreGuard>();
    if (io != nullptr && is_restart) {
      *restore_guard = io->preempt_drains();
    }
    obs::ScopedSpan verify_span(rec, "recover", "verify", -1, -1.0);
    const core::CheckpointRecord* chosen = nullptr;
    for (const auto& c : candidates) {
      if (c.spmd != spmd) {
        continue;  // other layout: not this job's state
      }
      if (suspects.count(c.prefix) != 0) {
        ++lr.generations_skipped;
        if (rec != nullptr) {
          rec->count("recover.suspect_skipped");
        }
        continue;  // escalating SOP rollback past a failed restore
      }
      core::VerifyResult v;
      if (io != nullptr) {
        // RESTORE-class item: beats queued foreground writes and drains.
        io->submit(io_job, svc::Priority::kRestore, c.prefix, 0, 0.0, [&] {
            v = core::verify_checkpoint(storage, c, /*deep=*/true);
          }).wait();
      } else {
        v = core::verify_checkpoint(storage, c, /*deep=*/true);
      }
      if (!v.ok) {
        ++lr.generations_skipped;
        if (rec != nullptr) {
          rec->count("recover.generation_fallback");
        }
        if (log_ != nullptr) {
          log_->record(arch::EventKind::kGenerationFallback,
                       "prefix=" + c.prefix + " " +
                           (v.problems.empty() ? "corrupt"
                                               : v.problems.front()));
        }
        continue;
      }
      chosen = &c;
      break;
    }
    verify_span.end(-1.0);
    // Pin the chosen generation (and, for a delta, its whole chain): the
    // relaunch is about to read it, and retention must not reclaim it —
    // neither mid-restore nor between attempts while newer-but-corrupt
    // generations hold the keep-newest slots. The pin drops once the
    // resumed run commits its first new SOP (the iteration hook clears it
    // after that gc) or at the next selection.
    pinned.clear();
    if (chosen != nullptr) {
      pinned.push_back(chosen->prefix);
      if (chosen->meta.kind == core::GenerationKind::kDelta) {
        try {
          for (const std::string& link :
               core::resolve_checkpoint_chain(storage, chosen->prefix)) {
            pinned.push_back(link);
          }
        } catch (const support::Error&) {
          // A broken chain fails verify/restore on its own; the pin is
          // best-effort protection, not a validity check.
        }
      }
    }
    report.generation_fallbacks += lr.generations_skipped;
    Clock::time_point t2 = Clock::now();
    if (have_pending) {
      pending.verify_ns += ns_between(t1, t2);
    }

    // ---- reconfigure: pick t2 from the survivors and allocate ---------------
    obs::ScopedSpan reconf_span(rec, "recover", "reconfigure", -1, -1.0);
    ReconfigInput in;
    in.survivors = cluster_.available_processors();
    in.checkpoint_tasks = chosen != nullptr ? chosen->meta.task_count : 0;
    in.min_tasks = options.min_tasks;
    in.preferred_tasks = options.preferred_tasks;
    int want = policy.choose_tasks(in);
    if (spmd && chosen != nullptr) {
      // Conventional per-task states restore only onto t2 == t1.
      want = chosen->meta.task_count;
    }
    std::vector<int> nodes;
    if (want >= 1) {
      const int floor_tasks =
          spmd && chosen != nullptr ? want : options.min_tasks;
      nodes = cluster_.allocate(floor_tasks, want, options.job_name);
    }
    reconf_span.end(-1.0);
    Clock::time_point t3 = Clock::now();
    if (have_pending) {
      pending.reconfigure_ns += ns_between(t2, t3);
    }

    if (nodes.empty()) {
      // Cannot field this attempt from the surviving resources; back off
      // and retry (counts against the launch budget).
      lr.errors.push_back("allocation failed: " + std::to_string(want) +
                          " tasks wanted, " + std::to_string(in.survivors) +
                          " processors available");
      report.launches.push_back(std::move(lr));
      if (rec != nullptr) {
        rec->count("recover.allocation_failed");
      }
      std::this_thread::sleep_for(options.backoff_base *
                                  (1 << std::min(launch, 10)));
      continue;
    }

    const int tasks = static_cast<int>(nodes.size());
    lr.tasks = tasks;
    lr.from_checkpoint = chosen != nullptr;
    if (chosen != nullptr) {
      lr.restart_prefix = chosen->prefix;
      lr.restart_sop = chosen->meta.sop;
      if (tasks != chosen->meta.task_count) {
        ++report.reconfigurations;
        if (rec != nullptr) {
          rec->count("recover.reconfigured");
        }
        if (log_ != nullptr) {
          log_->record(arch::EventKind::kReconfigured,
                       "job=" + options.job_name + " t1=" +
                           std::to_string(chosen->meta.task_count) +
                           " t2=" + std::to_string(tasks));
        }
      }
    }

    // ---- restart scope: partial only when the retained snapshot mirrors
    // the chosen generation and some of its capturing slots survived --------
    const RestartScope scope =
        partial_enabled && is_restart && chosen != nullptr &&
                retained.valid && retained.prefix == chosen->prefix &&
                !force_full_next && !pool_killed && !lost_slots.empty() &&
                static_cast<int>(lost_slots.size()) < retained.t1
            ? RestartScope::kPartial
            : RestartScope::kFull;
    force_full_next = false;
    const bool scope_partial = scope == RestartScope::kPartial;
    lr.partial = scope_partial;

    // A partial restart consumes the snapshot: after the adoption the
    // slot-to-memory mapping belongs to the NEW launch, which recaptures
    // at its first checkpoint. Full restarts discard any stale snapshot
    // for the same reason.
    core::RetainedJobState plan_snapshot;
    core::PartialRestorePlan plan;
    if (scope_partial) {
      for (const int s : lost_slots) {
        retained.drop_slot(s);  // the failed nodes' memory is gone
      }
      plan_snapshot = std::move(retained);
      plan.retained = &plan_snapshot;
      plan.slot_lost.assign(static_cast<std::size_t>(plan_snapshot.t1), 0);
      for (const int s : lost_slots) {
        if (s >= 0 && s < plan_snapshot.t1) {
          plan.slot_lost[static_cast<std::size_t>(s)] = 1;
        }
      }
      plan.io = io;
      plan.io_job = io != nullptr ? &io_job : nullptr;
      if (rec != nullptr) {
        rec->count("recover.partial.attempted");
      }
      if (log_ != nullptr) {
        log_->record(arch::EventKind::kReconfigured,
                     "job=" + options.job_name + " partial_restore lost=" +
                         std::to_string(plan.lost_count()) + "/" +
                         std::to_string(plan_snapshot.t1));
      }
    }
    retained.invalidate();

    core::DrmsEnv env = options.env;
    env.restart_prefix = chosen != nullptr ? chosen->prefix : "";
    env.retain = partial_enabled ? &retained : nullptr;
    env.partial = scope_partial ? &plan : nullptr;

    apps::SolverOptions sopts = options.solver;
    sopts.prefix_for_iteration = [base](std::int64_t it) {
      return generation_prefix(base, it);
    };
    fatal_event_ns.store(-1);
    first_hook_ns.store(-1);
    const Clock::time_point launch_tp = Clock::now();
    sopts.on_iteration = [&, launch, restore_guard](std::int64_t it,
                                                    rt::TaskContext& ctx) {
      // Resume marker: the relaunched solver reached its first iteration
      // (restore + redistribution done).
      std::int64_t unset = -1;
      first_hook_ns.compare_exchange_strong(
          unset,
          static_cast<std::int64_t>(ns_between(epoch, Clock::now())));
      if (ctx.rank() == 0) {
        // The job is back up: background drains may flow again. Idempotent
        // and rank-0-only, so the release is single-threaded.
        restore_guard->release();
        // Retention first (the SOP of this iteration has committed), then
        // the schedule's chaos events for this launch.
        if (it > 0 && options.solver.checkpoint_every > 0 &&
            it % options.solver.checkpoint_every == 0) {
          (void)core::gc_superseded_states(storage, app, filter,
                                           options.keep_last_k, pinned);
        }
        for (std::size_t e = 0; e < schedule.events.size(); ++e) {
          if (fired[e] == 0 && schedule.events[e].launch == launch &&
              it >= schedule.events[e].at_iteration) {
            fired[e] = 1;
            fire_event(schedule.events[e]);
          }
        }
      }
      if (options.solver.on_iteration) {
        options.solver.on_iteration(it, ctx);
      }
    };

    // Per-launch failure trackers: events fired during THIS launch feed
    // the NEXT launch's scope decision (group join orders the accesses).
    live_nodes = nodes;
    lost_slots.clear();
    pool_killed = false;

    std::unique_ptr<core::DrmsProgram> program =
        apps::make_program(sopts, env, tasks);
    rt::TaskGroup group(
        sim::Placement(cluster_.machine(), nodes),
        options.seed + static_cast<std::uint64_t>(launch) * 7919);
    cluster_.register_pool(options.job_name, &group);
    if (log_ != nullptr) {
      log_->record(lr.from_checkpoint ? arch::EventKind::kJobRestarted
                                      : arch::EventKind::kJobLaunched,
                   "job=" + options.job_name + " tasks=" +
                       std::to_string(tasks) +
                       (lr.from_checkpoint ? " from=" + lr.restart_prefix
                                           : " fresh"));
    }
    obs::ScopedSpan resume_span(
        rec, "recover", is_restart ? "resume" : "launch", -1, -1.0,
        {obs::Attr::num("tasks", tasks),
         obs::Attr::str("from", lr.restart_prefix)});

    const rt::TaskGroupResult result = group.run([&](rt::TaskContext& ctx) {
      const apps::SolverOutcome out = apps::run_solver(*program, ctx, sopts);
      if (ctx.rank() == 0) {
        *outcome_slot = out;
      }
    });
    resume_span.end(-1.0);
    cluster_.deregister_pool(options.job_name);
    cluster_.release(options.job_name);
    // All tasks have joined; if the first hook never fired (the launch
    // died during restore) the guard is still held — drop it now.
    restore_guard->release();

    if (have_pending) {
      // Resume cost of the recovery that produced THIS launch: launch to
      // first solver iteration (whole launch when it died earlier).
      const std::int64_t hook_ns = first_hook_ns.load();
      const std::uint64_t launch_off = ns_between(epoch, launch_tp);
      pending.resume_ns =
          hook_ns >= 0 && static_cast<std::uint64_t>(hook_ns) > launch_off
              ? static_cast<std::uint64_t>(hook_ns) - launch_off
              : ns_between(launch_tp, Clock::now());
      pending.partial = scope_partial;
      report.recoveries.push_back(pending);
      pending = RecoveryPhases{};
      have_pending = false;
    }

    if (lr.from_checkpoint) {
      // Simulated restore cost of this launch (deterministic MTTR signal,
      // unlike the host-clock phase times).
      lr.restore_seconds = program->last_restart_timing().total_seconds();
    }
    if (scope_partial && first_hook_ns.load() >= 0 && rec != nullptr) {
      rec->count("recover.partial.completed");
    }
    lr.completed = result.completed;
    lr.killed = result.killed;
    lr.kill_reason = result.kill_reason;
    lr.errors.insert(lr.errors.end(), result.errors.begin(),
                     result.errors.end());
    report.launches.push_back(lr);

    if (result.completed) {
      report.completed = true;
      report.outcome = *outcome_slot;
      if (log_ != nullptr) {
        log_->record(arch::EventKind::kJobCompleted,
                     "job=" + options.job_name);
      }
      if (rec != nullptr) {
        rec->count("recover.completed");
      }
      break;
    }

    // ---- detect: the failure is established once the group unwound ---------
    obs::ScopedSpan detect_span(rec, "recover", "detect", -1, -1.0);
    const std::int64_t fatal_ns = fatal_event_ns.load();
    pending = RecoveryPhases{};
    const std::uint64_t now_ns = ns_between(epoch, Clock::now());
    pending.detect_ns =
        fatal_ns >= 0 && static_cast<std::uint64_t>(fatal_ns) < now_ns
            ? now_ns - static_cast<std::uint64_t>(fatal_ns)
            : 0;
    have_pending = true;
    detect_span.end(-1.0);
    if (rec != nullptr) {
      rec->count("recover.detected");
    }

    if (!result.errors.empty() && chosen != nullptr) {
      if (scope_partial) {
        // Fallback ladder: a failed partial attempt retries the SAME
        // generation with full scope before any SOP rollback — the
        // generation deep-verified clean, so the suspect is the partial
        // path (stale adoption state), not the data.
        force_full_next = true;
        if (rec != nullptr) {
          rec->count("recover.partial.fallback_full");
        }
      } else {
        // The restore (or the run it fed) errored: roll the next attempt
        // back one generation further.
        suspects.insert(chosen->prefix);
        if (rec != nullptr) {
          rec->count("recover.suspect_marked");
        }
      }
    }
    // Trim superseded generations between attempts too, so a kill before
    // the first SOP of a relaunch cannot grow storage unboundedly. The
    // pin keeps the generation the next attempt will re-read. Best
    // effort: after a storage-level crash the backend may still be
    // unreachable here — retention must not kill the supervisor; the
    // next attempt's select surfaces a storage that stays down.
    try {
      (void)core::gc_superseded_states(storage, app, filter,
                                       options.keep_last_k, pinned);
    } catch (const support::Error&) {
    }
    std::this_thread::sleep_for(options.backoff_base *
                                (1 << std::min(launch, 10)));
  }

  if (!report.completed && log_ != nullptr) {
    log_->record(arch::EventKind::kRecoveryGaveUp,
                 "job=" + options.job_name + " launches=" +
                     std::to_string(report.launches.size()));
  }
  return report;
}

}  // namespace drms::recovery
