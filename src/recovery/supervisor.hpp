// RecoverySupervisor — the closed detect -> select -> verify ->
// reconfigure -> resume loop the paper's title promises.
//
// The supervisor runs an apps::AppSpec solver under a declarative
// FailureSchedule and drives recovery automatically:
//
//   detect       group.run returns without completing (kill switch, node
//                loss via the RC protocol, or task errors)
//   select       checkpoint_catalog::restart_candidates, newest first
//   verify       deep CRC verification of the newest candidate; torn or
//                corrupt generations are skipped (generation fallback),
//                suspect generations from a failed restore are rolled
//                past (escalating SOP rollback)
//   reconfigure  a pluggable ReconfigurationPolicy picks t2 from the
//                surviving processors (SPMD checkpoints pin t2 == t1)
//   resume       relaunch the task group from the chosen generation and
//                continue until the solver completes
//
// Restart storms are bounded: attempts are capped (max_launches) with
// exponential backoff between them, and a generation whose restore
// errored is marked suspect so the next attempt rolls back one SOP
// further. Retention (keep_last_k) trims superseded generations after
// every SOP so fallback depth stays bounded in storage. Every phase is
// traced through drms::obs ("recover" spans + counters) and timed on the
// host clock for the MTTR breakdown of BENCH_recovery.json.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/solver.hpp"
#include "arch/cluster.hpp"
#include "core/drms_context.hpp"
#include "obs/recorder.hpp"
#include "recovery/failure_schedule.hpp"
#include "recovery/reconfig_policy.hpp"
#include "store/fault_injection_backend.hpp"
#include "store/redundancy.hpp"
#include "svc/io_scheduler.hpp"

namespace drms::recovery {

/// Scope of one restart attempt. kFull bounces the whole job (every task
/// re-reads its sections from the generation); kPartial keeps the
/// surviving tasks' in-memory arrays — only the replaced tasks' sections
/// stream in from storage, and the live tasks redistribute in place.
enum class RestartScope { kFull, kPartial };

struct SupervisorOptions {
  /// Base solver options. `solver.prefix` is REQUIRED (the generation
  /// base name); the supervisor installs prefix_for_iteration over it, so
  /// checkpoints land under "<prefix>.g<iteration>".
  apps::SolverOptions solver;
  /// Environment template; `env.storage` is required. restart_prefix is
  /// managed by the supervisor.
  core::DrmsEnv env;
  std::string job_name = "job";
  int min_tasks = 1;
  int preferred_tasks = 4;
  /// Restart-storm cap: total task-group launches (first run included).
  int max_launches = 8;
  /// Retention depth: newest committed generations kept per SOP.
  int keep_last_k = 3;
  /// Localized recovery (DRMS mode only): capture a RetainedJobState
  /// snapshot at every checkpoint and, when a failure leaves some of the
  /// capturing slots alive, restart with RestartScope::kPartial — the
  /// replaced tasks read only their sections from the chosen generation
  /// while survivors keep their arrays and redistribute in place. A
  /// failed partial attempt falls back to a full restart of the SAME
  /// generation before any SOP rollback (ladder partial -> full ->
  /// generation fallback). Default off: behavior is bit-identical to the
  /// pre-partial supervisor.
  bool partial_restore = false;
  std::uint64_t seed = 1;
  /// Null: ShrinkToSurvivorsPolicy.
  const ReconfigurationPolicy* policy = nullptr;
  /// Exponential backoff base between launches (real time, like
  /// support::retry_io).
  std::chrono::microseconds backoff_base{50};
  /// Target of kTransientFaults schedule events (usually the same object
  /// as env.storage); null disables those events.
  store::FaultInjectionBackend* fault = nullptr;
  obs::Recorder* recorder = nullptr;
  /// Optional checkpoint-service scheduler. When set, the supervisor
  /// registers as a job, submits each deep verify as a RESTORE-class item
  /// (restores beat queued foreground writes and drains), and holds a
  /// RestoreGuard from the start of verify until the relaunched solver's
  /// first iteration hook — background tier drains are parked for the
  /// whole bring-back-up window instead of contending with it.
  svc::IoScheduler* scheduler = nullptr;
  /// Fired after a kNodeLoss schedule event lands, with the failed node's
  /// id. Harness hook for coupling the cluster to a redundancy-encoded
  /// fast tier (RedundantBackend::fail_node + TieredBackend::
  /// reconcile_fast_tier), so the storage side of the node dies with the
  /// processor side.
  std::function<void(int node)> on_node_loss;
  /// When set, runs before the select phase of every restart: scavenge
  /// the redundancy-encoded fast tier so select sees rebuilt generations
  /// instead of falling back to the slow tier. Traced as a
  /// "recover"/"scavenge" span; the report feeds recover.scavenge.*
  /// counters.
  std::function<store::ScavengeReport()> scavenge;
};

/// Host-clock nanoseconds of one recovery, split by phase (the MTTR
/// breakdown). `resume_ns` runs from group launch to the first
/// on_iteration hook of the relaunched solver (restore + redistribution).
struct RecoveryPhases {
  std::uint64_t detect_ns = 0;
  std::uint64_t select_ns = 0;
  std::uint64_t verify_ns = 0;
  std::uint64_t reconfigure_ns = 0;
  std::uint64_t resume_ns = 0;
  /// The resume used RestartScope::kPartial.
  bool partial = false;

  [[nodiscard]] std::uint64_t total_ns() const {
    return detect_ns + select_ns + verify_ns + reconfigure_ns + resume_ns;
  }
};

struct LaunchReport {
  int tasks = 0;
  bool from_checkpoint = false;
  /// This launch restored with RestartScope::kPartial.
  bool partial = false;
  /// Simulated seconds of the restore that brought this launch up (valid
  /// for from_checkpoint launches that reached the solver; deterministic,
  /// unlike the host-clock RecoveryPhases).
  double restore_seconds = 0.0;
  std::string restart_prefix;  // empty for a fresh start
  std::int64_t restart_sop = 0;
  /// Committed candidates rejected before this launch (deep-verify
  /// failures and suspect generations).
  int generations_skipped = 0;
  bool completed = false;
  bool killed = false;
  std::string kill_reason;
  std::vector<std::string> errors;
};

struct RecoveryReport {
  bool completed = false;
  /// Solver outcome of the completing launch (valid when completed).
  apps::SolverOutcome outcome;
  std::vector<LaunchReport> launches;
  /// One entry per recovery (every launch after the first that ran).
  std::vector<RecoveryPhases> recoveries;
  /// Total committed candidates skipped across the run.
  int generation_fallbacks = 0;
  /// Restarts whose t2 differed from the checkpoint's t1.
  int reconfigurations = 0;

  [[nodiscard]] std::uint64_t total_recovery_ns() const {
    std::uint64_t total = 0;
    for (const auto& r : recoveries) {
      total += r.total_ns();
    }
    return total;
  }
};

class RecoverySupervisor {
 public:
  RecoverySupervisor(arch::Cluster& cluster, arch::EventLog* log = nullptr);

  /// Run the job to completion under the schedule. Blocking; returns when
  /// the solver finished or the launch budget is exhausted.
  RecoveryReport run(const SupervisorOptions& options,
                     const FailureSchedule& schedule = {});

  /// "base.g000042" — the per-SOP generation prefix.
  [[nodiscard]] static std::string generation_prefix(const std::string& base,
                                                     std::int64_t iteration);

 private:
  arch::Cluster& cluster_;
  arch::EventLog* log_;
};

}  // namespace drms::recovery
