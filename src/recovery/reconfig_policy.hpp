// Pluggable reconfiguration policies for the recovery supervisor.
//
// After a failure the supervisor must pick a new task count t2 from the
// surviving resources (the paper's scalable-recovery axis: a DRMS
// checkpoint written by t1 tasks restarts on any t2 >= 1). Fohry (2021)
// frames this as a policy decision — whole-application rollback with the
// same shape vs. localized adaptation — so the choice is a small
// interface rather than a hard-wired rule.
#pragma once

#include <string>

namespace drms::recovery {

/// Everything a policy may look at when choosing t2.
struct ReconfigInput {
  /// Processors currently available in the cluster (failed nodes are out
  /// of the pool until repaired).
  int survivors = 0;
  /// Task count t1 recorded in the chosen restart candidate; 0 when the
  /// run starts fresh (no checkpoint survived).
  int checkpoint_tasks = 0;
  /// Job bounds: never run below min_tasks, never ask above preferred.
  int min_tasks = 1;
  int preferred_tasks = 1;
};

class ReconfigurationPolicy {
 public:
  virtual ~ReconfigurationPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// The task count to request for the restart, or 0 when the policy
  /// cannot field a run from the surviving resources.
  [[nodiscard]] virtual int choose_tasks(const ReconfigInput& in) const = 0;
};

/// Restart with exactly the checkpoint's task count (the conventional
/// SPMD constraint; also useful to pin DRMS runs for A/B comparisons).
/// Fails (returns 0) when fewer processors survive than the checkpoint
/// used.
class SameCountPolicy final : public ReconfigurationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "same-count"; }
  [[nodiscard]] int choose_tasks(const ReconfigInput& in) const override;
};

/// Restart immediately on whatever survives: t2 = min(preferred,
/// survivors), without waiting for repairs — the paper's §4 recipe.
class ShrinkToSurvivorsPolicy final : public ReconfigurationPolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "shrink-to-survivors";
  }
  [[nodiscard]] int choose_tasks(const ReconfigInput& in) const override;
};

/// Largest power of two not above min(preferred, survivors) — for
/// applications whose decomposition wants 2^k tasks.
class PowerOfTwoPolicy final : public ReconfigurationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "power-of-two"; }
  [[nodiscard]] int choose_tasks(const ReconfigInput& in) const override;
};

}  // namespace drms::recovery
