# Empty compiler generated dependencies file for bench_table4_segment.
# This may be replaced when dependencies are built.
