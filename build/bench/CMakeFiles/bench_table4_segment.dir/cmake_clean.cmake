file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_segment.dir/bench_table4_segment.cpp.o"
  "CMakeFiles/bench_table4_segment.dir/bench_table4_segment.cpp.o.d"
  "bench_table4_segment"
  "bench_table4_segment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
