# Empty compiler generated dependencies file for bench_table6_breakdown.
# This may be replaced when dependencies are built.
