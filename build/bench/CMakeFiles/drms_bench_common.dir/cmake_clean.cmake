file(REMOVE_RECURSE
  "CMakeFiles/drms_bench_common.dir/harness.cpp.o"
  "CMakeFiles/drms_bench_common.dir/harness.cpp.o.d"
  "libdrms_bench_common.a"
  "libdrms_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drms_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
