# Empty compiler generated dependencies file for drms_bench_common.
# This may be replaced when dependencies are built.
