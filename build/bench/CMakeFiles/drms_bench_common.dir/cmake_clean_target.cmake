file(REMOVE_RECURSE
  "libdrms_bench_common.a"
)
