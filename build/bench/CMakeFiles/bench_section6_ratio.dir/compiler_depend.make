# Empty compiler generated dependencies file for bench_section6_ratio.
# This may be replaced when dependencies are built.
