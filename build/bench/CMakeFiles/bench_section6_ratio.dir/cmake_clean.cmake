file(REMOVE_RECURSE
  "CMakeFiles/bench_section6_ratio.dir/bench_section6_ratio.cpp.o"
  "CMakeFiles/bench_section6_ratio.dir/bench_section6_ratio.cpp.o.d"
  "bench_section6_ratio"
  "bench_section6_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section6_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
