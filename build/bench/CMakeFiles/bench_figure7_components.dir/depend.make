# Empty dependencies file for bench_figure7_components.
# This may be replaced when dependencies are built.
