file(REMOVE_RECURSE
  "CMakeFiles/bench_availability_model.dir/bench_availability_model.cpp.o"
  "CMakeFiles/bench_availability_model.dir/bench_availability_model.cpp.o.d"
  "bench_availability_model"
  "bench_availability_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_availability_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
