# Empty dependencies file for bench_availability_model.
# This may be replaced when dependencies are built.
