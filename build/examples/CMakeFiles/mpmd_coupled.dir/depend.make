# Empty dependencies file for mpmd_coupled.
# This may be replaced when dependencies are built.
